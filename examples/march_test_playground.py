#!/usr/bin/env python3
"""March-test playground: author a test, microprogram it, measure it.

"Changing these files to implement a different test algorithm is a
simple and straightforward matter" — this example does the full loop: a
custom march test written in the paper's notation is compiled into a
TRPLA microprogram (and its two plane files), then its fault coverage
is measured against IFA-9 and the classic baselines.
"""

from pathlib import Path

from repro.bist import (
    IFA_9,
    MARCH_C_MINUS,
    MATS_PLUS,
    build_test_program,
    parse_march,
    write_plane_files,
)
from repro.bist.microcode import assemble
from repro.memsim import coverage_campaign

OUT = Path(__file__).parent / "out"

#: A custom test: March C- plus one retention pause — cheaper than
#: IFA-9 (11 ops/address vs 12, one Delay instead of two) but keeps
#: most of the retention coverage.
MY_MARCH = parse_march(
    "March C-R",
    "m(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); Delay; m(r0)",
)

KINDS = ("stuck_at", "transition", "stuck_open", "state_coupling",
         "data_retention")


def main() -> None:
    OUT.mkdir(exist_ok=True)

    print(f"custom test: {MY_MARCH}")
    print(f"  {MY_MARCH.operations_per_address} ops/address, "
          f"{MY_MARCH.delay_count} retention pause(s)\n")

    # Microprogram it, as BISRAMGEN would, and emit the plane files.
    program = build_test_program(MY_MARCH, passes=2)
    pla = assemble(program)
    and_path = OUT / "march_cr_and.plane"
    or_path = OUT / "march_cr_or.plane"
    write_plane_files(and_path, or_path, pla.and_plane, pla.or_plane)
    print(f"controller: {len(program)} states in {pla.state_bits} "
          f"flip-flops, {pla.term_count} PLA terms")
    print(f"control code written to {and_path.name} / {or_path.name}\n")

    # Coverage shoot-out.
    print(f"{'fault class':<18}" + "".join(
        f"{name:>12}" for name in
        ("IFA-9", "March C-R", "March C-", "MATS+")
    ))
    reports = {
        test.name: coverage_campaign(
            test, kinds=KINDS, samples_per_kind=20,
            rows=8, bpw=4, bpc=2, seed=7,
        )
        for test in (IFA_9, MY_MARCH, MARCH_C_MINUS, MATS_PLUS)
    }
    for kind in KINDS:
        row = f"{kind:<18}"
        for name in ("IFA-9", "March C-R", "March C-", "MATS+"):
            row += f"{reports[name].coverage(kind):>12.0%}"
        print(row)
    row = f"{'OVERALL':<18}"
    for name in ("IFA-9", "March C-R", "March C-", "MATS+"):
        row += f"{reports[name].coverage():>12.0%}"
    print(row)

    print("\nreading: one Delay catches leak-to-0 or leak-to-1 only "
          "when the pause happens while the victim holds the leaking "
          "polarity; IFA-9's two pauses (after opposite backgrounds) "
          "catch both, which is why it keeps 100% retention coverage.")


if __name__ == "__main__":
    main()
