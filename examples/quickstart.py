#!/usr/bin/env python3
"""Quickstart: compile a BISR RAM, read its datasheet, self-test it.

This is the 30-second tour of the tool: one configuration in, a full
macro out — layout, area accounting, timing guarantees, and a working
behavioural model with its microprogrammed self-test controller.
"""

from repro import RamConfig, compile_ram


def main() -> None:
    # A 64 Kbit embedded macro: 2048 words of 32 bits, 8-way column
    # multiplexing (so 256 rows), four spare rows, on the 0.7 um
    # process — the paper's Table I class of configuration.
    config = RamConfig(words=2048, bpw=32, bpc=8, spares=4,
                       process="cda07")
    print(f"compiling: {config.describe()}\n")

    ram = compile_ram(config)

    # 0. What the pipeline did (the paper's Fig. 1, as a report).
    print(ram.flow_report())
    print()

    # 1. The datasheet: extrapolated guarantees (RAMGEN tradition).
    print(ram.datasheet.summary())

    # 2. The Table I area accounting.
    ar = ram.area_report
    print(f"\narea: {ar.total_mm2:.2f} mm^2 "
          f"(plain RAM {ar.baseline_mm2:.2f} mm^2, "
          f"BIST+BISR+spares overhead {ar.overhead_percent:.2f}%)")

    # 3. The layout, as a terminal sketch (Figs. 6-7 style).
    print()
    print(ram.render_ascii(columns=76, rows=18))

    # 4. The self-test: a behavioural device driven by the TRPLA
    #    controller compiled from the same IFA-9 microprogram that is
    #    in the layout's control PLA.
    device = ram.simulation_model()
    controller = ram.self_test_controller(device)
    result = controller.run()
    print(f"\nself-test on a defect-free part: "
          f"{result.op_count} memory operations in {controller.cycles} "
          f"controller cycles -> "
          f"{'REPAIRED/CLEAN' if result.repaired else 'REPAIR FAILED'}")


if __name__ == "__main__":
    main()
