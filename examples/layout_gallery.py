#!/usr/bin/env python3
"""Layout gallery: regenerate the paper's Figs. 6-7 as SVG + CIF.

Compiles the two figure configurations (plus a small teaching macro),
writes SVG plots, CIF layout files, and the TRPLA control-code plane
files into ``examples/out/``.
"""

from pathlib import Path

from repro import RamConfig, compile_ram

OUT = Path(__file__).parent / "out"

GALLERY = {
    # "SRAM array with 4K words of 128 bits each (bpw), 8 bits per
    # column (bpc), 32 cells between strap, four spare rows and buffer
    # size 2" — Fig. 6 (64 kB).
    "fig6_64kB": RamConfig(words=4096, bpw=128, bpc=8, spares=4,
                           gate_size=2, strap_every=32),
    # Fig. 7 (128 kB): 256-bit words, 16 bits per column.
    "fig7_128kB": RamConfig(words=4096, bpw=256, bpc=16, spares=4,
                            gate_size=2, strap_every=32),
    # A small macro whose SVG is readable down to the leaf cells.
    "teaching_2kbit": RamConfig(words=64, bpw=32, bpc=4, spares=4,
                                strap_every=8),
}


def main() -> None:
    OUT.mkdir(exist_ok=True)
    for name, config in GALLERY.items():
        ram = compile_ram(config)
        svg_path = OUT / f"{name}.svg"
        depth = None if "teaching" in name else 2
        svg_path.write_text(
            ram.render_svg(flatten_depth=depth, width_px=1200)
        )
        cif_path = OUT / f"{name}.cif"
        ram.write_cif(cif_path)
        planes = ram.write_control_code(OUT / f"{name}_control")
        ar = ram.area_report
        print(f"{name}: {config.describe()}")
        print(f"  {ar.total_mm2:.2f} mm^2, overhead "
              f"{ar.overhead_percent:.2f}%")
        print(f"  wrote {svg_path.name}, {cif_path.name}, "
              f"{planes['and'].parent.name}/")
        print(ram.render_ascii(columns=72, rows=14))
        print()


if __name__ == "__main__":
    main()
