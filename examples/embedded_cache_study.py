#!/usr/bin/env python3
"""Embedded-cache business case: yield, reliability, and cost.

The paper's motivating scenario: a microprocessor with on-chip caches.
This example sizes a BISR L1 cache with the compiler, then walks the
full analysis chain — repairable yield (Fig. 4 machinery), field
reliability (Fig. 5), and the manufacturing-cost impact for a real
processor from the reconstructed MPR dataset (Tables II-III).
"""

from repro import RamConfig, compile_ram
from repro.cost import die_cost_comparison, get_processor
from repro.reliability import crossover_age, reliability_words
from repro.yieldmodel import bisr_yield

KH = 1000.0  # hours per kilohour


def main() -> None:
    # --- 1. Compile the cache macro -----------------------------------
    # A 16 KB (128 Kbit) L1 data cache: 4096 words x 32 bits.
    config = RamConfig(words=4096, bpw=32, bpc=8, spares=4)
    ram = compile_ram(config)
    ar = ram.area_report
    print(f"L1 cache macro: {config.describe()}")
    print(f"  area {ar.total_mm2:.2f} mm^2, BIST+BISR overhead "
          f"{ar.overhead_percent:.2f}% "
          f"(circuitry alone {ar.bist_bisr_only_percent:.2f}%)")
    print(f"  access {ram.datasheet.read_access_s * 1e9:.2f} ns, "
          f"TLB penalty {ram.datasheet.tlb_penalty_s * 1e9:.2f} ns "
          f"({ram.datasheet.masking_strategy})\n")

    # --- 2. Manufacturing yield ---------------------------------------
    print("repairable yield of the cache (defects injected into the "
          "plain array):")
    growth = ar.total_mm2 / ar.baseline_mm2
    for defects in (1, 3, 5, 10):
        y0 = bisr_yield(config.rows, 0, config.bpw, config.bpc, defects)
        y4 = bisr_yield(config.rows, 4, config.bpw, config.bpc, defects,
                        growth_factor=growth)
        print(f"  {defects:>2} defects: {y0:6.1%} plain -> "
              f"{y4:6.1%} with BISR  ({y4 / max(y0, 1e-12):,.1f}x)")

    # --- 3. Field reliability ------------------------------------------
    # 1e-6 per kilohour per cell: this macro has 32-bit words, so the
    # word fault probability is 8x that of Fig. 5's 4-bit words at the
    # same cell rate — the lower rate keeps the story in the same
    # regime.
    lam = 1e-6 / KH
    print("\nfield reliability at lambda = 1e-6 per kilohour per cell:")
    for years in (1, 5, 10):
        t = years * 8766
        r0 = reliability_words(t, config.rows, 0, config.bpw,
                               config.bpc, lam)
        r4 = reliability_words(t, config.rows, 4, config.bpw,
                               config.bpc, lam)
        print(f"  {years:>2} years: {r0:6.1%} plain -> {r4:6.1%} with "
              f"4 spares")
    crossover = crossover_age(config.rows, config.bpw, config.bpc, lam,
                              4, 8, t_hint=7e4)
    print(f"  (4-vs-8-spare crossover at {crossover / 8766:.1f} years: "
          f"more spares only pay off in old age)")

    # --- 4. The chip-level cost case ------------------------------------
    print("\nmanufacturing-cost impact (reconstructed 1994 MPR data):")
    for name in ("TI SuperSPARC", "MIPS R4400", "Intel486DX2"):
        cpu = get_processor(name)
        without, with_ = die_cost_comparison(cpu)
        print(f"  {name:<14} die ${without.die_cost:8.2f} -> "
              f"${with_.die_cost:8.2f}  "
              f"({without.die_cost / with_.die_cost:.2f}x cheaper, "
              f"yield {without.die_yield:.1%} -> {with_.die_yield:.1%})")


if __name__ == "__main__":
    main()
