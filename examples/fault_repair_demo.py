#!/usr/bin/env python3
"""Fault injection and self-repair, narrated step by step.

The scenario the paper's BISR exists for: a manufactured part comes
back with defects — a stuck cell, a dead row, and (to show the
strictly-increasing spare sequence at work) a dead *spare* row.  The
two-pass self-test finds and repairs the faults; the faulty spare needs
one more 2-pass cycle, exactly the paper's "2k-pass" iteration.
"""

from repro import RamConfig, compile_ram
from repro.memsim.faults import RowStuck, StuckAt


def main() -> None:
    config = RamConfig(words=256, bpw=8, bpc=4, spares=4)
    ram = compile_ram(config)
    device = ram.simulation_model()

    print(f"device: {device.describe()}\n")

    # Manufacturing defects: a single stuck-at cell in row 10, a broken
    # word line at row 37, and spare row 0 (physical row 64) dead too.
    device.array.inject(
        StuckAt(device.array.cell_index(10, 3, 1), value=1)
    )
    device.array.inject(RowStuck(37, device.array.phys_cols, value=0))
    device.array.inject(RowStuck(64, device.array.phys_cols, value=0))
    print("injected: stuck-at-1 cell in row 10, dead row 37, "
          "dead SPARE row 0\n")

    # A plain functional sweep sees the damage.
    broken_words = device.check_pattern(0b10100101)
    print(f"functional sweep before repair: {broken_words} bad words")

    # First 2-pass self-test cycle.
    result = ram.self_test_controller(device).run()
    print(f"\ncycle 1: pass 1 recorded {device.tlb.spares_used} faulty "
          f"rows -> TLB map {device.tlb.mapped_rows()}")
    print(f"cycle 1: pass 2 verdict: "
          f"{'repair unsuccessful' if result.repair_unsuccessful else 'repaired'}"
          f"  (row 10 landed on the dead spare)")

    # Iterate: the strictly increasing spare sequence advances row 10
    # past the dead spare.
    result = ram.self_test_controller(device, fresh=False).run()
    print(f"\ncycle 2: TLB map {device.tlb.mapped_rows()}")
    print(f"cycle 2: verdict: "
          f"{'repair unsuccessful' if result.repair_unsuccessful else 'REPAIRED'}")

    broken_words = device.check_pattern(0b01011010)
    print(f"\nfunctional sweep after repair: {broken_words} bad words")
    print(f"address diversions served so far: {device.diversion_count}")

    # Epilogue: what diagnosis would have told us up front — and why a
    # column defect would have been hopeless.
    from repro.bist import IFA_9
    from repro.memsim import collect_fail_records, diagnose
    from repro.memsim.faults import ColumnStuck

    fresh = ram.simulation_model()
    fresh.array.inject(
        ColumnStuck(0, fresh.array.total_rows, fresh.array.phys_cols, 1)
    )
    records = collect_fail_records(IFA_9, fresh, bpw=config.bpw)
    verdict = diagnose(records, config.rows, config.bpw, config.bpc,
                       config.spares)
    print(f"\nfor contrast, a broken bit line diagnoses as: "
          f"{verdict.summary()}")
    print("(detected but not row-repairable — exactly the paper's "
          "column-failure caveat)")


if __name__ == "__main__":
    main()
