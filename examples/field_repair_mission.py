#!/usr/bin/env python3
"""In-field self-repair: the mission-critical scenario.

The paper motivates BISR with "mission-critical space, oceanic, and
avionic applications where external field testing and repair are
prohibitively expensive or infeasible".  This example plays out that
life: an embedded memory launches with live data aboard, word lines die
over the years, and periodic *transparent* maintenance cycles (contents
preserved — no ground station reload available) capture and divert each
failure onto the strictly increasing spare sequence.
"""

import random

from repro import RamConfig, compile_ram
from repro.bist import IFA_9
from repro.bist.field_repair import FieldRepairController
from repro.memsim.faults import RowStuck, StuckAt


def main() -> None:
    config = RamConfig(words=256, bpw=8, bpc=4, spares=4)
    ram = compile_ram(config)
    device = ram.simulation_model()
    controller = FieldRepairController(IFA_9, device)

    # Launch: load the flight software image.
    rng = random.Random(1969)
    image = [rng.randrange(256) for _ in range(device.word_count)]
    for address, value in enumerate(image):
        device.write(address, value)
    print(f"launched: {config.describe()}")
    print(f"flight image loaded: {device.word_count} words\n")

    # Years in orbit: failures accumulate between maintenance windows.
    mission_events = [
        ("year 2 — word-line driver wearout, row 11",
         RowStuck(11, device.array.phys_cols, 0)),
        ("year 5 — stuck cell in row 40",
         StuckAt(device.array.cell_index(40, 3, 2), 1)),
        ("year 8 — word-line short, row 23",
         RowStuck(23, device.array.phys_cols, 1)),
    ]
    for event, fault in mission_events:
        device.array.inject(fault)
        result = controller.maintenance_cycle()
        status = "HEALTHY" if result.healthy else "DEGRADED"
        print(f"{event}")
        print(f"  maintenance: {result.faults_found} comparator hits, "
              f"rows mapped {list(result.new_rows_mapped)}, "
              f"rescued {result.words_rescued}/{result.words_rescued + result.words_lost} "
              f"words -> {status}")

    # End of mission: how much of the original image survived?
    intact = sum(
        device.read(a) == image[a] for a in range(device.word_count)
    )
    print(f"\nafter three failures: {intact}/{device.word_count} words "
          f"of the flight image intact "
          f"({device.tlb.spares_used}/{config.spares} spares consumed)")
    print(f"TLB map: {device.tlb.mapped_rows()}")
    print("\nwithout BISR, each dead word line would have been a "
          "mission-ending event; with it, the memory healed in place "
          "three times without ground intervention.")


if __name__ == "__main__":
    main()
