"""Ablation benches for the design choices DESIGN.md calls out.

* **Iterated 2k-pass repair** — how many 2-pass cycles does convergence
  take as spares die?  (Ablating the strictly-increasing sequence's
  iteration capability back to plain 2-pass.)
* **Defect clustering** — Stapper's motivation: clustered defects are
  kinder to row repair than uniform ones at the same count.
* **Transparent BIST cost** — the op-count premium of transparency over
  destructive testing (the trade the paper's §III comparison implies).
* **Spare-count economics** — the optimizer's decision flipping with
  defect density.
"""

import random

import pytest

from conftest import print_table
from repro import RamConfig
from repro.analysis import optimize_spares
from repro.bist import IFA_9, BistScheduler
from repro.bist.transparent import TransparentBist
from repro.memsim import BisrRam, DefectInjector, FaultMix
from repro.memsim.faults import RowStuck


def test_ablation_iterated_repair(benchmark):
    """Without iteration (plain 2-pass), any faulty spare that gets
    assigned is fatal; with 2k passes the strictly increasing sequence
    walks past it."""

    def run(passes):
        wins = 0
        trials = 20
        rng = random.Random(31)
        for _ in range(trials):
            device = BisrRam(rows=16, bpw=4, bpc=4, spares=4)
            # One faulty regular row + 1-2 faulty spares.
            device.array.inject(
                RowStuck(rng.randrange(16), device.array.phys_cols, 1)
            )
            for s in rng.sample(range(3), rng.randrange(1, 3)):
                device.array.inject(
                    RowStuck(16 + s, device.array.phys_cols, 0)
                )
            result = BistScheduler(IFA_9, bpw=4).run(
                device, passes=passes, stop_on_repair_fail=False
            )
            wins += result.repaired
        return wins / trials

    fraction_2pass = benchmark.pedantic(run, args=(2,), rounds=1,
                                        iterations=1)
    rows = []
    for passes in (2, 4, 6, 8):
        rows.append([passes, f"{run(passes):.0%}"])
    print_table(
        "Ablation: repair success vs pass count (faulty spares present)",
        ["passes", "repaired"],
        rows,
    )
    # Plain 2-pass fails whenever the assigned spare is dead; by 6-8
    # passes the increasing sequence has walked past every dead spare
    # it can.
    assert fraction_2pass < 0.7
    assert run(8) >= 0.9


def test_ablation_defect_clustering(benchmark):
    """Clustered defects concentrate damage in fewer rows, so row
    repair survives counts that kill under uniform placement —
    Stapper's point, measured through the whole BIST/BISR stack."""
    mix = FaultMix(column_defect=0.0, row_defect=0.0)
    n_defects, trials = 10, 25

    def run(clustering, seed):
        rng = random.Random(seed)
        wins = 0
        for _ in range(trials):
            device = BisrRam(rows=24, bpw=4, bpc=4, spares=4)
            DefectInjector(
                rng=rng, mix=mix, clustering=clustering
            ).inject(device.array, n_defects)
            result = BistScheduler(IFA_9, bpw=4).run(device)
            wins += result.repaired
        return wins / trials

    uniform = benchmark.pedantic(run, args=(0.0, 7), rounds=1,
                                 iterations=1)
    clustered = run(12.0, 7)
    print_table(
        f"Ablation: clustering vs repairability ({n_defects} defects, "
        f"{trials} trials)",
        ["placement", "repaired"],
        [["uniform", f"{uniform:.0%}"],
         ["clustered", f"{clustered:.0%}"]],
    )
    assert clustered >= uniform


def test_ablation_transparent_cost(benchmark):
    """Transparency is not free: the signature pre-read and restore
    sweeps add operations over the destructive test."""
    device = BisrRam(rows=16, bpw=4, bpc=4, spares=4)
    rng = random.Random(2)
    for a in range(device.word_count):
        device.write(a, rng.randrange(16))

    transparent = benchmark.pedantic(
        lambda: TransparentBist(IFA_9, bpw=4).run(device),
        rounds=1, iterations=1,
    )
    destructive = BistScheduler(IFA_9, bpw=4).run(
        BisrRam(rows=16, bpw=4, bpc=4, spares=4), passes=1
    )
    overhead = transparent.op_count / destructive.op_count - 1
    print(f"\ndestructive IFA-9 pass: {destructive.op_count} ops")
    print(f"transparent IFA-9 pass: {transparent.op_count} ops "
          f"(+{overhead:.1%})")
    assert transparent.contents_preserved
    assert 0.0 < overhead < 0.5


def test_ablation_spare_economics(benchmark):
    """The optimizer's choice must track the defect environment."""
    config = RamConfig(words=1024, bpw=16, bpc=4, spares=4)

    def decisions():
        return {
            d: optimize_spares(config, expected_defects=d).spares
            for d in (0.2, 1.0, 3.0, 6.0)
        }

    table = benchmark(decisions)
    print_table(
        "Ablation: optimal spare count vs expected defects",
        ["expected defects", "recommended spares"],
        [[d, s] for d, s in table.items()],
    )
    values = list(table.values())
    assert values == sorted(values)          # monotone escalation
    assert values[0] <= 4 and values[-1] >= 8


def test_ablation_johnson_vs_alternatives(benchmark):
    """Section V's DATAGEN trade, quantified: the Johnson counter's
    log2(bpw)+1 backgrounds cost a fraction of the walking generator's
    hardware while keeping the intra-word coupling coverage a single
    background forfeits (the coverage half is shown in
    bench_fault_coverage's background ablation)."""
    from repro.bist import IFA_9
    from repro.bist.testtime import (
        datagen_hardware,
        test_application_time,
    )

    def sweep():
        rows = []
        for bpw in (8, 32, 128):
            for scheme in ("single", "johnson", "walking"):
                hw = datagen_hardware(bpw, scheme)
                tt = test_application_time(
                    IFA_9, words=4096, bpw=bpw, cycle_s=10e-9,
                    scheme=scheme, passes=2,
                )
                rows.append(
                    [bpw, scheme, hw["flip_flops"],
                     f"{tt.op_time_s * 1e3:.1f} ms",
                     f"{tt.retention_time_s:.1f} s"]
                )
        return rows

    rows = benchmark(sweep)
    print_table(
        "Ablation: DATAGEN scheme vs hardware and test time "
        "(IFA-9, 4096 words, 2 passes)",
        ["bpw", "scheme", "flip-flops", "march time", "retention time"],
        rows,
    )
    from repro.bist.testtime import datagen_hardware as hw

    # The paper's preference, asserted at the widest word:
    assert hw(128, "johnson")["flip_flops"] == 8
    assert hw(128, "walking")["flip_flops"] == 128


def test_ablation_learning_curve(benchmark):
    """Section X's learning-curve complication: BISR's per-die saving is
    largest during the early process ramp, when yields are worst — the
    months when a vendor's margin pressure peaks."""
    from conftest import print_table as _pt
    from repro.cost import get_processor
    from repro.cost.learning import LearningCurve, bisr_advantage_over_ramp

    cpu = get_processor("TI SuperSPARC")
    curve = LearningCurve(d0_per_cm2=2.5, d_inf_per_cm2=0.5,
                          tau_months=6.0)
    rows = benchmark(bisr_advantage_over_ramp, cpu, curve,
                     (0.0, 3.0, 6.0, 12.0, 24.0))
    _pt(
        "Ablation: BISR saving across the process learning curve "
        "(TI SuperSPARC)",
        ["months in production", "die yield", "die w/o BISR",
         "die w/ BISR", "saving"],
        [
            [f"{m:.0f}", f"{y:.1%}", f"${wo:.2f}", f"${w:.2f}",
             f"${wo - w:.2f}"]
            for m, y, wo, w in rows
        ],
    )
    savings = [wo - w for _, _, wo, w in rows]
    assert savings == sorted(savings, reverse=True)
    assert savings[0] > 2 * savings[-1]
