"""The campaign runtime's two quantitative promises.

* **Parallel speedup** — sharded Monte-Carlo yield on a process pool
  must beat the serial run while producing bit-identical aggregates
  (seed-sharded via ``SeedSequence.spawn``, so parallelism is free of
  statistical cost).  The >=2x-at-4-workers assertion only fires on
  machines that actually have 4 cores; everywhere we assert equality.
* **Resume overhead** — replaying a finished checkpoint journal must
  cost <10% of the original run: the runner adopts journaled shards
  without ever creating a worker pool.
"""

import os
import time

from conftest import print_table
from repro.runtime import CampaignRunner
from repro.runtime.drivers import montecarlo_campaign

ROWS = 1024
SPARES = 4
DEFECTS = 5.0
TRIALS = 400_000
SHARDS = 8


def spec():
    return montecarlo_campaign(ROWS, SPARES, 4, 4, defects=DEFECTS,
                               trials=TRIALS, n_shards=SHARDS, seed=42)


def timed(runner):
    start = time.perf_counter()
    result = runner.run(spec())
    return result, time.perf_counter() - start


def test_parallel_speedup():
    serial, t1 = timed(CampaignRunner(workers=1))
    parallel, t4 = timed(CampaignRunner(workers=4))
    speedup = t1 / t4
    print_table(
        "campaign speedup (Monte-Carlo yield, "
        f"{TRIALS} trials / {SHARDS} shards)",
        ("workers", "wall s", "speedup", "yield"),
        [(1, f"{t1:.2f}", "1.00", f"{serial.aggregates['yield']:.4f}"),
         (4, f"{t4:.2f}", f"{speedup:.2f}",
          f"{parallel.aggregates['yield']:.4f}")],
    )
    # Determinism is unconditional; the speedup floor only applies
    # where the hardware can deliver it.
    assert serial.aggregates == parallel.aggregates
    assert serial.completed == parallel.completed == SHARDS
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0


def test_resume_overhead(tmp_path):
    checkpoint = tmp_path / "campaign.jsonl"
    full, t_full = timed(CampaignRunner(workers=1,
                                        checkpoint=str(checkpoint)))
    resumed, t_resume = timed(CampaignRunner(workers=1,
                                             checkpoint=str(checkpoint),
                                             resume=True))
    overhead = t_resume / t_full
    print_table(
        "checkpoint resume overhead",
        ("run", "wall s", "fraction"),
        [("full", f"{t_full:.3f}", "1.000"),
         ("resume", f"{t_resume:.3f}", f"{overhead:.3f}")],
    )
    assert resumed.resumed == SHARDS
    assert resumed.aggregates == full.aggregates
    assert overhead < 0.10
