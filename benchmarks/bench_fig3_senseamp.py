"""Fig. 3: the current-mode sense amplifier, simulated.

"A minor current differential in the bl and blb lines latches the sense
amplifier."  The bench drives the generated sense-amp netlist with a
small differential on heavily-loaded bit lines and measures the latch
decision; the figure's claim is that a fraction-of-a-volt differential
resolves to full swing quickly (that is why bit lines only need ~0.1 V
of development, the speed advantage over voltage sensing).
"""

import pytest

from conftest import print_table
from repro.cells import senseamp_netlist
from repro.spice import TransientEngine, crossing_time, step
from repro.tech import get_process

PROCESS = get_process("cda07")
VDD = PROCESS.vdd


def latch_decision(differential_v: float):
    """Simulate one sense: returns (decision_time_s, out, outb)."""
    net = senseamp_netlist(PROCESS, bitline_cap_f=300e-15)
    net.add_source("vdd", VDD)
    net.add_source("se", step(1e-9, 0.0, VDD))
    engine = TransientEngine(net)
    mid = VDD / 2
    result = engine.run(
        8e-9,
        record=["out", "outb", "bl", "blb"],
        initial={
            "bl": mid + differential_v / 2,
            "blb": mid - differential_v / 2,
            "out": mid + differential_v / 2,
            "outb": mid - differential_v / 2,
        },
    )
    t_hi = crossing_time(result, "out", 0.9 * VDD, rising=True,
                         after=1e-9)
    t_lo = crossing_time(result, "outb", 0.1 * VDD, rising=False,
                         after=1e-9)
    return t_hi, t_lo, result.final("out"), result.final("outb")


def test_fig3_senseamp_latches(benchmark):
    t_hi, t_lo, out, outb = benchmark.pedantic(
        latch_decision, args=(0.3,), rounds=1, iterations=1
    )
    rows = []
    for dv in (0.1, 0.2, 0.3, 0.5):
        hi, lo, o, ob = latch_decision(dv)
        rows.append(
            [f"{dv * 1000:.0f} mV",
             f"{(hi - 1e-9) * 1e9:.2f} ns" if hi else "-",
             f"{o:.2f} V", f"{ob:.2f} V"]
        )
    print_table(
        "Fig. 3 — current-mode sense amp: decision vs differential",
        ["bitline differential", "latch time (after SE)",
         "out", "outb"],
        rows,
    )

    # Shape claims:
    # (a) the latch resolves to full swing from a 300 mV differential;
    assert out > 0.9 * VDD and outb < 0.1 * VDD
    # (b) the decision is fast (nanoseconds);
    assert t_hi is not None and (t_hi - 1e-9) < 4e-9
    # (c) a bigger differential decides at least as fast.
    hi_small, _, _, _ = latch_decision(0.1)
    hi_big, _, _, _ = latch_decision(0.5)
    assert hi_big <= hi_small


def test_fig3_polarity_symmetric():
    """The mirror input resolves to the mirror output."""
    net = senseamp_netlist(PROCESS, bitline_cap_f=300e-15)
    net.add_source("vdd", VDD)
    net.add_source("se", step(1e-9, 0.0, VDD))
    mid = VDD / 2
    result = TransientEngine(net).run(
        8e-9, record=["out", "outb"],
        initial={"bl": mid - 0.15, "blb": mid + 0.15,
                 "out": mid - 0.15, "outb": mid + 0.15},
    )
    assert result.final("out") < 0.1 * VDD
    assert result.final("outb") > 0.9 * VDD
