"""Fig. 8: frequency binning under process variation.

"Minor process variations cause a statistical distribution of the
number of chips about a median clock frequency ... the vendor may be
forced to considerably expand his supply of all parts to meet [skewed]
demand ... compelling the vendor to charge enough of a premium to cover
the cost of the unsold (slower) parts."
"""

import pytest

from conftest import print_table
from repro.cost import SpeedBinning, binning_distribution


def test_fig8_distribution(benchmark):
    edges = (80.0, 90.0, 100.0, 110.0, 120.0)
    fractions = benchmark(binning_distribution, 100.0, 10.0, edges)

    labels = ["<80", "80-90", "90-100", "100-110", "110-120", ">120"]
    print_table(
        "Fig. 8 — production fraction per frequency bin "
        "(mean 100 MHz, sigma 10)",
        ["bin (MHz)", "fraction"],
        [[l, f"{f:.1%}"] for l, f in zip(labels, fractions)],
    )
    assert sum(fractions) == pytest.approx(1.0)
    # Bell shape: interior bins dominate, symmetric tails.
    assert fractions[2] == max(fractions)
    assert fractions[0] == pytest.approx(fractions[-1], rel=1e-6)


def test_fig8_demand_mismatch_premium(benchmark):
    binning = SpeedBinning(
        mean_mhz=100.0, sigma_mhz=10.0,
        bin_edges=(90.0, 110.0),
        prices=(120.0, 250.0, 500.0),
    )

    def scenario():
        supply = binning.supply_fractions()
        matched = binning.production_scale_for_demand(supply)
        skewed = binning.production_scale_for_demand([0.1, 0.3, 0.6])
        premium = binning.premium_for_demand([0.1, 0.3, 0.6],
                                             unit_cost=60.0)
        return supply, matched, skewed, premium

    supply, matched, skewed, premium = benchmark(scenario)
    print(f"\nsupply fractions: "
          f"{[f'{s:.1%}' for s in supply]}")
    print(f"production scale (matched demand):  {matched:.2f}x")
    print(f"production scale (60% fast demand): {skewed:.2f}x")
    print(f"premium per sold unit at $60 cost:  ${premium:.2f}")

    # Shape claims:
    assert matched == pytest.approx(1.0)
    assert skewed > 3.0        # big overbuild for fast-part demand
    assert premium > 60.0      # premium exceeds the unit cost itself
