"""Fig. 4: yield vs. number of defects for 0/4/8/16 spare rows.

Configuration from the paper: 1024 rows, bpc = 4, bpw = 4.  Growth
factors (redundant + BISR area over plain area) come from actually
compiling both variants with the tool, exactly as the paper prescribes
("the total number of defects shown in the x axis must be multiplied by
the growth factor").
"""

import pytest

from conftest import print_table
from repro import RamConfig, compile_ram
from repro.yieldmodel import yield_curve

ROWS, BPW, BPC = 1024, 4, 4
SPARE_COUNTS = (0, 4, 8, 16)
DEFECTS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 50.0, 80.0)


def compiled_growth_factors():
    """Area growth factor per spare count, measured on real layouts."""
    factors = []
    base = None
    for spares in SPARE_COUNTS:
        if spares == 0:
            factors.append(1.0)
            continue
        ram = compile_ram(
            RamConfig(words=ROWS * BPC, bpw=BPW, bpc=BPC, spares=spares,
                      strap_every=0)
        )
        if base is None:
            base = ram.area_report.baseline_mm2
        factors.append(ram.area_report.total_mm2 / base)
    return factors


def compute_fig4(growth):
    return yield_curve(ROWS, BPW, BPC, SPARE_COUNTS, DEFECTS,
                       growth_factors=growth)


@pytest.fixture(scope="module")
def growth():
    return compiled_growth_factors()


def test_fig4_yield_curves(benchmark, growth):
    curves = benchmark(compute_fig4, growth)

    rows = []
    for i, n in enumerate(DEFECTS):
        rows.append(
            [f"{n:.0f}"] + [f"{series[i]:.4f}" for _, series in curves]
        )
    print_table(
        "Fig. 4 — yield vs defects (1024 rows, bpc=4, bpw=4)",
        ["defects"] + [f"{s} spares" for s in SPARE_COUNTS],
        rows,
    )
    print(f"growth factors: "
          f"{[f'{g:.4f}' for g in growth]}")

    # Monte-Carlo cross-check of the analytic curve at 4 spares.
    from repro.yieldmodel.montecarlo import simulate_yield
    import numpy as np

    rng = np.random.default_rng(11)
    mc_rows = []
    for n in (1.0, 5.0, 10.0):
        analytic = dict(curves)[4][DEFECTS.index(n)]
        mc = simulate_yield(ROWS, 4, BPW, BPC, n,
                            growth_factor=growth[1],
                            trials=20_000, rng=rng)
        mc_rows.append([f"{n:.0f}", f"{analytic:.4f}",
                        f"{mc.yield_estimate:.4f}"])
        assert mc.yield_estimate == pytest.approx(analytic, abs=0.05)
    print_table(
        "Monte-Carlo cross-check (4 spares, 20k trials/point)",
        ["defects", "analytic Y_R", "Monte-Carlo"],
        mc_rows,
    )

    by_spares = dict(curves)
    # Shape claims of the figure:
    # (a) with no spares the yield collapses exponentially;
    assert by_spares[0][DEFECTS.index(5.0)] < 0.01
    # (b) BISR holds the yield up: 4 spares still >30% at 5 defects
    #     (vs <1% without) — a >30x improvement;
    assert by_spares[4][DEFECTS.index(5.0)] > 0.3
    assert by_spares[4][DEFECTS.index(5.0)] > \
        30 * by_spares[0][DEFECTS.index(5.0)]
    # (c) more spares win once defects exceed the small budgets;
    at_20 = [by_spares[s][DEFECTS.index(20.0)] for s in SPARE_COUNTS]
    assert at_20 == sorted(at_20)
    # (d) every curve starts at 1 and decreases monotonically.
    for _, series in curves:
        assert series[0] == pytest.approx(1.0)
        assert all(a >= b - 1e-12 for a, b in zip(series, series[1:]))
