"""Section VII: fatal-flaw critical area vs defect radius (Khare-style).

"Khare et al. show that the critical area for these fatal flaws,
plotted against the defect radius, may be either very high ... or
nonexistent ... depending on which of two possible RAM layout templates
are chosen.  BISRAMGEN implements the 6T SRAM cell layout that causes a
near-zero critical area for these fatal faults."

The bench plots the fatal (global-net) critical area of our cell
against defect radius, alongside the *repairable* (bit-line) critical
area for contrast: defects that kill bit lines are row/column-local and
the redundancy machinery handles (or at least detects) them, while
supply/word-line breaks are chip-level fatal.
"""

import pytest

from conftest import print_table
from repro.cells import sram6t_cell
from repro.tech import get_process
from repro.yieldmodel.critical_area import (
    critical_area_curve,
    global_net_critical_area,
)

PROCESS = get_process("cda07")
LAM = PROCESS.lambda_cu


def test_fatal_critical_area_curve(benchmark):
    bit = sram6t_cell(PROCESS)
    radii = [0, LAM // 2, LAM, 2 * LAM, 3 * LAM, 4 * LAM]

    def curves():
        fatal = {}
        for r in radii:
            reports = global_net_critical_area(bit, r)
            fatal[r] = sum(rep.total for rep in reports.values())
        repairable = dict(critical_area_curve(bit, "metal2", radii))
        return fatal, repairable

    fatal, repairable = benchmark(curves)
    cell_area = bit.area()
    rows = []
    for r in radii:
        rows.append(
            [
                f"{r / LAM:.1f} lambda",
                f"{fatal[r] / cell_area:.2%}",
                f"{repairable[r] / cell_area:.2%}",
            ]
        )
    print_table(
        "Critical area vs defect radius (fractions of one 6T cell)",
        ["defect radius", "fatal (rails + word line)",
         "repairable (bit lines)"],
        rows,
    )

    # The paper's claim: near-zero fatal critical area at realistic
    # spot-defect radii.  Typical spot defects are well under a micron;
    # 1 lambda = 0.35 um here, so the 0-1 lambda rows cover them.
    assert fatal[0] == 0.0
    assert fatal[LAM // 2] == 0.0
    assert fatal[LAM] == 0.0
    # The template's protection has a sharp threshold: just past it the
    # exposure is still small...
    assert fatal[2 * LAM] / cell_area < 0.05
    # ...and only defects several times the feature size (rare tail of
    # the size distribution) threaten the wide rails — the model is not
    # vacuous.
    assert fatal[4 * LAM] > 0.0
