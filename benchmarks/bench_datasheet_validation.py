"""Datasheet validation: the staged access-time model vs the column
simulation.

The compiler promises timing guarantees extrapolated from simulated
leaf cells; this bench closes the loop by simulating a complete read
through the *generated transistor netlists* (cells + precharge + sense
amp on a shared column) and comparing the bit-line development and
sense stages against the datasheet's staged model.
"""

import pytest

from conftest import print_table
from repro import RamConfig
from repro.circuit.column_sim import simulate_read_access
from repro.core.datasheet import build_datasheet
from repro.tech import get_process

PROCESS = get_process("cda07")


def test_column_sim_vs_datasheet_stages(benchmark):
    rows = 32
    result = benchmark.pedantic(
        simulate_read_access,
        kwargs=dict(process=PROCESS, rows=rows, stored_bit=1, row=17,
                    t_develop=0.6e-9),
        rounds=1, iterations=1,
    )
    config = RamConfig(words=rows * 4, bpw=4, bpc=4, strap_every=0)
    datasheet = build_datasheet(config, area_mm2=1.0)
    model_bitline_sense = (
        datasheet.stage_delays["bitline"] + datasheet.stage_delays["sense"]
    )
    sim_develop_sense = result.access_time_s

    print_table(
        "Datasheet staged model vs column transistor simulation "
        f"({rows} rows, cda07)",
        ["quantity", "datasheet model", "column simulation"],
        [
            ["bit-line + sense path",
             f"{model_bitline_sense * 1e9:.2f} ns",
             f"{sim_develop_sense * 1e9:.2f} ns"],
            ["read value", "-",
             f"{result.value_read} (stored {result.value_stored})"],
            ["differential at sense", "~0.12 V target",
             f"{abs(result.differential_v):.2f} V"],
        ],
    )

    # The model and the transistor-level simulation must agree within
    # 3x — the accuracy class of staged RC models vs transient runs.
    ratio = model_bitline_sense / sim_develop_sense
    assert 1 / 3 <= ratio <= 3.0
    assert result.correct


def test_access_grows_with_rows(benchmark):
    """More rows -> more bit-line capacitance -> slower development.
    Checked in both the model and the simulation."""

    def measure():
        out = []
        for rows in (8, 32, 64):
            sim = simulate_read_access(
                PROCESS, rows=rows, stored_bit=0, row=rows // 2,
                t_develop=0.6e-9,
            )
            config = RamConfig(words=rows * 4, bpw=4, bpc=4,
                               strap_every=0)
            ds = build_datasheet(config, area_mm2=1.0)
            out.append((rows, abs(sim.differential_v),
                        ds.stage_delays["bitline"]))
        return out

    data = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Bit-line loading vs rows (fixed 0.6 ns develop window)",
        ["rows", "simulated differential", "model bit-line delay"],
        [[r, f"{d:.2f} V", f"{m * 1e9:.2f} ns"] for r, d, m in data],
    )
    differentials = [d for _, d, _ in data]
    model_delays = [m for _, _, m in data]
    # More rows: smaller developed differential, larger modelled delay.
    assert differentials[0] > differentials[-1]
    assert model_delays == sorted(model_delays)
