"""Fig. 2: column-multiplexed addressing.

"A log2(bpc)-to-bpc column decoder chooses exactly one out of bpc
bit-line pairs from each of bpw I/O subarrays, producing a bpw-bit
word."  The bench verifies the address-to-cell mapping at the model
level and benchmarks word access throughput through the mux.
"""

import pytest

from conftest import print_table
from repro.memsim import MemoryArray


def test_fig2_address_mapping():
    bpw, bpc = 4, 4
    array = MemoryArray(rows=4, bpw=bpw, bpc=bpc)
    rows = []
    for address in range(8):
        row, col = array.split_address(address)
        cells = [array.cell_index(row, b, col) for b in range(bpw)]
        rows.append([address, row, col, cells])
    print_table(
        "Fig. 2 — column-multiplexed address map (bpw=4, bpc=4)",
        ["address", "row", "column", "cells (bit 0..3)"],
        rows,
    )
    # Word bits land bpc cells apart — one per I/O subarray.
    row, col = array.split_address(5)
    cells = [array.cell_index(row, b, col) for b in range(bpw)]
    assert [c % array.phys_cols for c in cells] == \
        [col + b * bpc for b in range(bpw)]
    # Consecutive addresses in a row differ only in the column.
    assert array.split_address(4)[0] == array.split_address(5)[0]


def test_fig2_unique_cells_per_address():
    array = MemoryArray(rows=8, bpw=8, bpc=4)
    seen = set()
    for address in range(array.words):
        row, col = array.split_address(address)
        for b in range(array.bpw):
            cell = array.cell_index(row, b, col)
            assert cell not in seen
            seen.add(cell)
    assert len(seen) == array.rows * array.phys_cols


def test_fig2_access_throughput(benchmark):
    array = MemoryArray(rows=64, bpw=32, bpc=8)

    def sweep():
        for address in range(array.words):
            array.write_word(address, address & 0xFFFF)
        errors = 0
        for address in range(array.words):
            if array.read_word(address) != address & 0xFFFF:
                errors += 1
        return errors

    errors = benchmark(sweep)
    assert errors == 0
