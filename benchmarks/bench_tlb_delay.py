"""Section VI: the TLB delay penalty and its masking.

The paper quotes "about 1.2 ns with four spare rows and a 0.7-um
technology" and guarantees maskability for 1-4 spares.  The bench
sweeps spares and processes through the analytic model, cross-checks
the match-line stage against a transient simulation of the CAM
discharge path, and evaluates the three masking strategies.
"""

import pytest

from conftest import print_table
from repro.bisr import (
    AsyncPrechargeOverlap,
    DecoderUpsizing,
    SyncAddressRegisterOverlap,
    best_masking_strategy,
    tlb_delay_breakdown,
    tlb_delay_s,
)
from repro.cells import cam_match_netlist
from repro.spice import TransientEngine, crossing_time, step
from repro.tech import available_processes, get_process

ADDRESS_BITS = 10


def sweep():
    rows = {}
    for pname in available_processes():
        p = get_process(pname)
        rows[pname] = [
            tlb_delay_s(p, ADDRESS_BITS, s) for s in (1, 4, 8, 16)
        ]
    return rows


def test_tlb_delay_sweep(benchmark):
    data = benchmark(sweep)
    print_table(
        "TLB delay penalty (ns), 10-bit row address",
        ["process", "1 spare", "4 spares", "8 spares", "16 spares"],
        [
            [name] + [f"{d * 1e9:.2f}" for d in delays]
            for name, delays in sorted(data.items())
        ],
    )

    # (a) the paper's operating point: ~1.2 ns @ cda07, 4 spares;
    assert 0.9e-9 <= data["cda07"][1] <= 1.5e-9
    # (b) monotone in spares on every process;
    for delays in data.values():
        assert delays == sorted(delays)
    # (c) faster processes are faster.
    assert data["cda05"][1] < data["cda07"][1]


def test_match_line_stage_vs_transient():
    """The analytic match-line stage must agree with a transient
    simulation of the CAM discharge path within 2x."""
    p = get_process("cda07")
    parts = tlb_delay_breakdown(p, ADDRESS_BITS, 4)
    analytic = parts["match_line"]

    net = cam_match_netlist(p, ADDRESS_BITS,
                            matchline_cap_f=150e-15)
    net.add_source("sl", step(0.2e-9, 0.0, p.vdd))
    result = TransientEngine(net).run(
        6e-9, record=["match"], initial={"match": p.vdd}
    )
    t_start = 0.2e-9
    t_cross = crossing_time(result, "match", p.vdd / 2, rising=False)
    simulated = t_cross - t_start
    print(f"\nmatch-line: analytic {analytic * 1e9:.3f} ns vs "
          f"transient {simulated * 1e9:.3f} ns")
    assert 0.5 <= analytic / simulated <= 2.0


def test_masking_verdicts(benchmark):
    p = get_process("cda07")
    access = 6e-9  # a realistic large-macro access time at 0.7 um

    def verdicts():
        out = {}
        for spares in (1, 4, 8, 16):
            penalty = tlb_delay_s(p, ADDRESS_BITS, spares)
            best = best_masking_strategy(
                [
                    AsyncPrechargeOverlap(precharge_time_s=0.4 * access),
                    SyncAddressRegisterOverlap(
                        clock_low_time_s=0.5 * access
                    ),
                    DecoderUpsizing(decoder_delay_s=0.4 * access),
                ],
                penalty,
            )
            out[spares] = (penalty, best)
        return out

    data = benchmark(verdicts)
    print_table(
        "TLB delay masking (cda07, 6 ns access)",
        ["spares", "penalty", "masked via"],
        [
            [s, f"{pen * 1e9:.2f} ns",
             best.strategy if best else "NOT MASKABLE"]
            for s, (pen, best) in data.items()
        ],
    )
    # The paper guarantees masking up to 4 spares.
    for spares in (1, 4):
        assert data[spares][1] is not None
