"""Fault-diagnosis accuracy campaign.

The diagnosis layer (cell / row / column classification from the BIST
failure log) exists so the repair allocator knows *before* burning
spares whether row redundancy can win — the paper's column-failure
caveat operationalised.  The bench measures classification accuracy
over randomized single-fault devices and verifies the repair verdict
matches the actual BIST/BISR outcome.
"""

import random

import pytest

from conftest import print_table
from repro.bist import IFA_9, BistScheduler
from repro.memsim import BisrRam, collect_fail_records, diagnose
from repro.memsim.faults import ColumnStuck, RowStuck, StuckAt

ROWS, BPW, BPC, SPARES = 12, 4, 4, 4


def classify_one(kind, rng):
    device = BisrRam(rows=ROWS, bpw=BPW, bpc=BPC, spares=SPARES)
    if kind == "cell":
        device.array.inject(StuckAt(
            device.array.cell_index(
                rng.randrange(ROWS), rng.randrange(BPW),
                rng.randrange(BPC),
            ),
            rng.randrange(2),
        ))
    elif kind == "row":
        device.array.inject(RowStuck(
            rng.randrange(ROWS), device.array.phys_cols,
            rng.randrange(2),
        ))
    else:
        device.array.inject(ColumnStuck(
            rng.randrange(device.array.phys_cols),
            device.array.total_rows, device.array.phys_cols,
            rng.randrange(2),
        ))
    records = collect_fail_records(IFA_9, device, bpw=BPW)
    verdict = diagnose(records, ROWS, BPW, BPC, SPARES)
    if verdict.column_faults:
        got = "column"
    elif verdict.row_faults:
        got = "row"
    elif verdict.cell_faults:
        got = "cell"
    else:
        got = "none"
    return got, verdict


def test_diagnosis_accuracy(benchmark):
    trials = 20

    def campaign():
        rng = random.Random(77)
        results = {}
        for kind in ("cell", "row", "column"):
            correct = 0
            for _ in range(trials):
                got, _ = classify_one(kind, rng)
                correct += got == kind
            results[kind] = correct / trials
        return results

    accuracy = benchmark.pedantic(campaign, rounds=1, iterations=1)
    print_table(
        f"Diagnosis accuracy ({trials} single-fault trials per class)",
        ["injected class", "classified correctly"],
        [[k, f"{v:.0%}"] for k, v in accuracy.items()],
    )
    assert accuracy["cell"] == 1.0
    assert accuracy["row"] == 1.0
    assert accuracy["column"] == 1.0


def test_diagnosis_verdict_matches_bist_outcome(benchmark):
    """The diagnosis's repairability prediction must agree with the
    actual BIST/BISR run on the same fault pattern."""

    def campaign():
        rng = random.Random(13)
        agreements = 0
        trials = 20
        for _ in range(trials):
            device = BisrRam(rows=ROWS, bpw=BPW, bpc=BPC, spares=SPARES)
            for _ in range(rng.randrange(1, 7)):
                kind = rng.choice(["cell", "row"])
                if kind == "cell":
                    device.array.inject(StuckAt(
                        device.array.cell_index(
                            rng.randrange(ROWS), rng.randrange(BPW),
                            rng.randrange(BPC),
                        ), 1,
                    ))
                else:
                    device.array.inject(RowStuck(
                        rng.randrange(ROWS), device.array.phys_cols, 1,
                    ))
            probe = BisrRam(rows=ROWS, bpw=BPW, bpc=BPC, spares=SPARES)
            probe.array._faults = device.array._faults
            probe.array._cell_faults = device.array._cell_faults
            records = collect_fail_records(IFA_9, probe, bpw=BPW)
            verdict = diagnose(records, ROWS, BPW, BPC, SPARES)
            outcome = BistScheduler(IFA_9, bpw=BPW).run(device)
            agreements += verdict.repairable_with_rows == \
                outcome.repaired
        return agreements / trials

    agreement = benchmark.pedantic(campaign, rounds=1, iterations=1)
    print(f"\ndiagnosis-vs-BIST agreement: {agreement:.0%}")
    assert agreement >= 0.9
