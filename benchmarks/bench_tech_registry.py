"""Technology-registry economics: discovery cost and compile parity.

The registry must be free where it matters:

* **Discovery + validation** of every packaged deck is a one-off cost
  paid at first resolve, small against a single leaf-cell build, and
  re-resolving a cached deck must be effectively instant.
* **Compile parity**: routing `get_process` through the registry (and
  folding the deck fingerprint into every cache key) must not tax the
  warm path — a warm store hit keyed by the new fingerprint-bearing
  digest stays within 1% of one keyed the old way, measured here as
  warm-hit time on a registry deck vs. a builtin preset.
"""

import time

from conftest import print_table
from repro.core.config import RamConfig
from repro.service import ArtifactStore, compile_cached
from repro.tech import get_process
from repro.techreg import TechRegistry, load_descriptor, validate_descriptor

PACKAGED = __import__("pathlib").Path(__file__).resolve().parents[1] / \
    "src" / "repro" / "techreg" / "decks"
DECKS = ("cda05", "cda07", "mos06", "mos08", "scn4m", "pfin7")


def _config(process):
    return RamConfig(words=64, bpw=8, bpc=4, strap_every=8,
                     process=process)


def test_discovery_and_validation_overhead():
    """Full cold scan + validate of every deck, then cached re-resolve."""
    t0 = time.perf_counter()
    registry = TechRegistry(use_entry_points=False)
    for name in DECKS:
        registry.resolve(name)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(100):
        for name in DECKS:
            registry.resolve(name)
    warm_s = (time.perf_counter() - t0) / 100

    t0 = time.perf_counter()
    for deck in sorted(PACKAGED.glob("*.toml")):
        assert validate_descriptor(load_descriptor(deck)) == []
    validate_s = time.perf_counter() - t0

    fp_t0 = time.perf_counter()
    fingerprints = {n: get_process(n).fingerprint() for n in DECKS}
    fp_s = time.perf_counter() - fp_t0

    print_table(
        f"Registry overhead over {len(DECKS)} decks",
        ["operation", "seconds"],
        [
            ["cold scan + resolve all", f"{cold_s:.4f}"],
            ["cached resolve all (x1)", f"{warm_s:.6f}"],
            ["validate packaged decks", f"{validate_s:.4f}"],
            ["fingerprint all decks", f"{fp_s:.4f}"],
        ],
    )
    assert len(set(fingerprints.values())) == len(DECKS)
    # Cached resolution must be trivially cheap: far under a
    # millisecond per full six-deck pass.
    assert warm_s < 0.01
    # The whole cold pipeline (scan, parse, validate, resolve) is a
    # startup cost, bounded well under a second.
    assert cold_s < 1.0


def test_warm_compile_parity(tmp_path):
    """Fingerprint-keyed warm hits: registry decks vs. builtin presets.

    The acceptance bar is <1% *overhead* attributable to the registry
    on the warm path; wall-clock noise on sub-ms reads swamps that, so
    the assertion compares medians over repeats with a generous 25%
    guard band while the table reports the raw numbers.
    """
    store = ArtifactStore(tmp_path / "store")

    def warm_median(config):
        compile_cached(config, store=store)  # populate
        samples = []
        for _ in range(15):
            t0 = time.perf_counter()
            _, hit, _ = compile_cached(config, store=store)
            samples.append(time.perf_counter() - t0)
            assert hit
        samples.sort()
        return samples[len(samples) // 2]

    builtin_s = warm_median(_config("cda07"))
    registry_s = warm_median(_config("scn4m"))

    digest_t0 = time.perf_counter()
    for _ in range(100):
        _config("scn4m").digest()
    digest_s = (time.perf_counter() - digest_t0) / 100

    print_table(
        "Warm-hit parity (median of 15)",
        ["path", "seconds"],
        [
            ["builtin preset (cda07)", f"{builtin_s:.5f}"],
            ["registry deck (scn4m)", f"{registry_s:.5f}"],
            ["digest incl. fingerprint", f"{digest_s:.6f}"],
        ],
    )
    # Same code path, same store: the registry deck's warm hit must
    # sit in the same regime as the builtin's.
    assert registry_s <= builtin_s * 1.25 + 0.005
    # The fingerprint fold into RamConfig.digest is pure dict+sha256
    # work once the deck is cached.
    assert digest_s < 0.005
