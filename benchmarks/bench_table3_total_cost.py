"""Table III: total manufacturing cost per packaged, tested chip.

MPR cost model: die cost + wafer test & assembly + packaging & final
test.  The paper reports reductions from 2.35% (Intel486DX2) up to
47.2% (TI SuperSPARC) when the on-chip caches get BISR.
"""

from conftest import print_table
from repro.cost import table3_rows


def test_table3_total_cost(benchmark):
    rows_data = benchmark(table3_rows)

    table = []
    for r in rows_data:
        if r["total_with"] is None:
            table.append(
                [r["name"], f"${r['total_without']:.2f}", "-", "-",
                 f"{r['die_cost_share']:.0%}"]
            )
        else:
            table.append(
                [
                    r["name"],
                    f"${r['total_without']:.2f}",
                    f"${r['total_with']:.2f}",
                    f"-{r['reduction_percent']:.1f}%",
                    f"{r['die_cost_share']:.0%}",
                ]
            )
    print_table(
        "Table III — total manufacturing cost per packaged chip",
        ["processor", "without", "with", "reduction", "die share"],
        table,
    )

    by_name = {r["name"]: r for r in rows_data}
    # Shape claims:
    # (a) the reduction band spans small (~2-8%) for cheap dies to
    #     large (30-50%) for SuperSPARC-class dies;
    assert 1.0 <= by_name["Intel486DX2"]["reduction_percent"] <= 8.0
    assert 30.0 <= by_name["TI SuperSPARC"]["reduction_percent"] <= 50.0
    # (b) die cost is 30-70%+ of the total, growing with die size;
    assert by_name["Intel486DX2"]["die_cost_share"] < \
        by_name["TI SuperSPARC"]["die_cost_share"]
    # (c) reductions are ordered consistently with Table II's
    #     improvements (bigger die-cost wins -> bigger total wins).
    assert by_name["MIPS R4400"]["reduction_percent"] > \
        by_name["PowerPC603"]["reduction_percent"]
