"""Repair-allocator throughput and exact-vs-greedy quality gap.

The branch-and-bound allocator is on the hot path of both the Monte-
Carlo 2-D yield model (thousands of calls per campaign) and the
in-field repair controller.  This bench measures plans/second across
fault densities and quantifies what the greedy fallback gives up: how
often a node-budget-starved greedy cover burns more lines than the
exact optimum, and how often it misses a repair the exact search finds.
"""

import random
import time

from conftest import print_table
from repro.bisr import allocate

ROWS, COLS = 64, 32
SPARES_R, SPARES_C = 4, 4


def random_faults(rng, n):
    faults = set()
    while len(faults) < n:
        faults.add((rng.randrange(ROWS), rng.randrange(COLS)))
    return sorted(faults)


def test_allocator_throughput(benchmark):
    densities = (2, 6, 12, 20)
    trials = 60

    def campaign():
        rows = []
        for n in densities:
            rng = random.Random(n)
            patterns = [random_faults(rng, n) for _ in range(trials)]
            start = time.perf_counter()
            exact = sum(
                allocate(p, ROWS, COLS, SPARES_R, SPARES_C).exact
                for p in patterns
            )
            elapsed = time.perf_counter() - start
            rows.append([n, f"{trials / elapsed:,.0f}",
                         f"{exact}/{trials}"])
        return rows

    rows = benchmark.pedantic(campaign, rounds=1, iterations=1)
    print_table(
        f"allocate() throughput ({ROWS}x{COLS}, "
        f"{SPARES_R}+{SPARES_C} spares, {trials} trials/density)",
        ["faults", "plans/s", "exact"],
        rows,
    )
    # The exact search must stay interactive even at saturation.
    assert all(float(r[1].replace(",", "")) > 50 for r in rows)


def test_greedy_quality_gap(benchmark):
    """Greedy (node_budget=0) vs exact: count extra lines burned and
    repairs missed over random patterns near the repairability edge."""
    trials = 120

    def campaign():
        rng = random.Random(99)
        extra_lines = 0
        missed = 0
        both_repair = 0
        for _ in range(trials):
            faults = random_faults(rng, rng.randrange(4, 10))
            exact = allocate(faults, ROWS, COLS, SPARES_R, SPARES_C)
            greedy = allocate(faults, ROWS, COLS, SPARES_R, SPARES_C,
                              node_budget=0)
            if exact.repairable and not greedy.repairable:
                missed += 1
            elif exact.repairable and greedy.repairable:
                both_repair += 1
                extra_lines += greedy.lines_used - exact.lines_used
            # Greedy must never claim a win the exact search rejects.
            assert not (greedy.repairable and not exact.repairable)
        return both_repair, missed, extra_lines

    both_repair, missed, extra = benchmark.pedantic(
        campaign, rounds=1, iterations=1)
    print_table(
        f"greedy fallback quality ({trials} random patterns)",
        ["both repair", "greedy missed", "extra lines burned"],
        [[both_repair, missed, extra]],
    )
    # Greedy is allowed to be wasteful, not wrong — and on these
    # densities it should still land the large majority of repairs.
    assert both_repair > trials * 0.5
    assert missed <= trials * 0.2
