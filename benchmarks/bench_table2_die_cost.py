"""Table II: cost per good die for commercial microprocessors, with and
without embedded-RAM BISR (four spare rows).

Reconstructed 1993-94 MPR inputs (see repro.cost.mpr); blank entries
mark 2-metal chips exactly as in the paper.
"""

from conftest import print_table
from repro.cost import MPR_1994_DATASET, table2_rows


def test_table2_die_cost(benchmark):
    rows_data = benchmark(table2_rows)

    table = []
    for r in rows_data:
        if r["die_cost_with"] is None:
            table.append(
                [r["name"], f"{r['metal_layers']}M",
                 f"${r['die_cost_without']:.2f}", "-", "-"]
            )
        else:
            table.append(
                [
                    r["name"],
                    f"{r['metal_layers']}M",
                    f"${r['die_cost_without']:.2f}",
                    f"${r['die_cost_with']:.2f}",
                    f"{r['improvement']:.2f}x",
                ]
            )
    print_table(
        "Table II — cost per good die, without / with RAM BISR",
        ["processor", "metals", "without", "with", "improvement"],
        table,
    )

    by_name = {r["name"]: r for r in rows_data}
    # Shape claims:
    # (a) all 2-metal chips blank;
    for cpu in MPR_1994_DATASET:
        entry = by_name[cpu.name]
        assert (entry["die_cost_with"] is None) == (not cpu.supports_bisr)
    # (b) BISR never increases the die cost;
    for r in rows_data:
        if r["die_cost_with"] is not None:
            assert r["die_cost_with"] <= r["die_cost_without"]
    # (c) the big low-yield dies improve "by a factor of about 2";
    assert by_name["TI SuperSPARC"]["improvement"] >= 1.5
    # (d) small high-yield dies improve only marginally.
    assert by_name["Intel486DX2"]["improvement"] <= 1.10
