"""Compile-as-a-service economics: store payoff and server throughput.

Two claims back the service subsystem:

* A **warm** compile — same configuration, artifact store populated —
  must be at least 5x faster than the cold build it replaces, and must
  hand back byte-identical artifacts (the store is an optimisation,
  never an approximation).
* The macro server must scale request throughput with client
  concurrency when requests hit the store, because warm requests are
  I/O-bound reads behind a thread pool, not compiles.
"""

import threading
import time

from conftest import print_table
from repro.core.config import RamConfig
from repro.core.stages import StageCache
from repro.service import ArtifactStore, MacroServer, compile_cached

CONFIG = RamConfig(words=64, bpw=8, bpc=4, strap_every=8)
CLIENT_THREADS = (1, 4, 8)
REQUESTS_PER_CLIENT = 25


def test_cold_vs_warm_compile(tmp_path):
    """The acceptance bar: warm >= 5x cold, byte-identical bundles."""
    store = ArtifactStore(tmp_path / "store")

    t0 = time.perf_counter()
    cold_bundle, cold_hit, key = compile_cached(CONFIG, store=store)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm_bundle, warm_hit, warm_key = compile_cached(CONFIG,
                                                     store=store)
    warm_s = time.perf_counter() - t0

    assert not cold_hit and warm_hit
    assert warm_key == key
    assert warm_bundle == cold_bundle  # byte-identical, every artifact
    speedup = cold_s / warm_s if warm_s else float("inf")

    # Stage memoization is the middle ground: no store, but a warm
    # stage cache skips every producer.
    cache = StageCache()
    compile_cached(CONFIG, stage_cache=cache, use_cache=False)
    t0 = time.perf_counter()
    staged_bundle, _, _ = compile_cached(CONFIG, stage_cache=cache,
                                         use_cache=False)
    staged_s = time.perf_counter() - t0
    assert staged_bundle == cold_bundle

    print_table(
        "Cold vs. warm compile, 64x8 macro (bundle of "
        f"{len(cold_bundle)} artifacts)",
        ["path", "seconds", "speedup"],
        [
            ["cold build", f"{cold_s:.3f}", "1x"],
            ["warm stage cache", f"{staged_s:.3f}",
             f"{cold_s / staged_s:.0f}x" if staged_s else "inf"],
            ["warm artifact store", f"{warm_s:.4f}",
             f"{speedup:.0f}x"],
        ],
    )
    assert speedup >= 5.0, (
        f"warm path only {speedup:.1f}x faster than cold"
    )


def _hammer(server, n_clients, requests_per_client):
    """``n_clients`` threads, each issuing blocking compiles."""
    errors = []

    def client():
        for _ in range(requests_per_client):
            try:
                server.compile(CONFIG)
            except Exception as error:  # pragma: no cover
                errors.append(error)

    threads = [threading.Thread(target=client)
               for _ in range(n_clients)]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0
    assert not errors, errors[:1]
    return elapsed


def test_server_throughput_scales_with_clients(tmp_path):
    """Warm-store requests through the server at 1/4/8 client threads."""
    store = ArtifactStore(tmp_path / "store")
    compile_cached(CONFIG, store=store)  # pre-warm

    rows = []
    throughputs = {}
    for n_clients in CLIENT_THREADS:
        server = MacroServer(store=store, workers=8, queue_limit=256)
        elapsed = _hammer(server, n_clients, REQUESTS_PER_CLIENT)
        stats = server.stats()
        server.shutdown()
        total = n_clients * REQUESTS_PER_CLIENT
        throughputs[n_clients] = total / elapsed
        rows.append([
            n_clients, total, f"{elapsed:.3f}",
            f"{total / elapsed:.0f}",
            f"{stats['request_latency']['p50_s'] * 1e3:.1f}",
            f"{stats['request_latency']['p99_s'] * 1e3:.1f}",
            stats["builds"],
        ])
        assert stats["builds"] == 0  # pre-warmed: store served all
        # Every request either read the store itself or coalesced
        # onto a request that did.
        assert stats["store_hits"] + stats["coalesced"] == total

    print_table(
        "Macro server throughput, warm store (25 req/client)",
        ["clients", "requests", "seconds", "req/s", "p50 ms",
         "p99 ms", "builds"],
        rows,
    )
    # Warm serving must not collapse under concurrency: 8 clients
    # should clear at least as much as a single client does.
    assert throughputs[8] >= throughputs[1] * 0.8


def test_single_flight_absorbs_a_thundering_herd(tmp_path):
    """8 concurrent cold requests for one key cost one build."""
    store = ArtifactStore(tmp_path / "store")
    server = MacroServer(store=store, workers=8)
    barrier = threading.Barrier(8)
    results = []
    lock = threading.Lock()

    def client():
        barrier.wait()
        response = server.compile(CONFIG)
        with lock:
            results.append(response)

    threads = [threading.Thread(target=client) for _ in range(8)]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0
    stats = server.stats()
    server.shutdown()

    print_table(
        "Thundering herd: 8 concurrent identical cold requests",
        ["requests", "builds", "coalesced", "store hits", "seconds"],
        [[stats["requests"], stats["builds"], stats["coalesced"],
          stats["store_hits"], f"{elapsed:.3f}"]],
    )
    assert len(results) == 8
    assert stats["builds"] + stats["store_hits"] == 1
    assert stats["coalesced"] == 7


def _distinct_configs(count):
    """``count`` configurations with distinct bundle keys (cold work
    that cannot coalesce or hit the store)."""
    configs = [RamConfig(words=64, bpw=8, bpc=4, strap_every=8,
                         gate_size=gate, spares=spares)
               for gate in range(1, 9) for spares in (4, 8)]
    assert count <= len(configs)
    return configs[:count]


def test_process_backend_cold_throughput_scales(tmp_path):
    """Cold builds through the supervised process backend must scale
    with client concurrency — that is the whole point of moving off
    the GIL-bound thread pool.

    The bar is core-aware: builds are CPU-bound, so an N-core box can
    only deliver ~N-fold scaling.  On >= 6 cores we demand the full
    3x at 8 clients vs 1; on smaller boxes we demand proportionally
    less (and on one core only that concurrency does not collapse)."""
    import os

    from repro.service.backend import ProcessPoolBackend
    from repro.service.bundle import bundle_key

    cores = os.cpu_count() or 1
    requests_per_client = 2
    rows = []
    throughputs = {}
    for n_clients in (1, 8):
        configs = _distinct_configs(n_clients * requests_per_client)
        store = ArtifactStore(tmp_path / f"store-{n_clients}")
        backend = ProcessPoolBackend(store, workers=8, poll_s=0.01)
        server = MacroServer(store=store, workers=8,
                             queue_limit=256, backend=backend)
        errors = []

        def client(index, server=server, configs=configs):
            for j in range(requests_per_client):
                config = configs[index * requests_per_client + j]
                try:
                    response = server.compile(config)
                    assert response.key == bundle_key(config)
                except Exception as error:  # pragma: no cover
                    errors.append(error)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(n_clients)]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - t0
        stats = server.stats()
        server.shutdown()
        assert not errors, errors[:1]
        total = n_clients * requests_per_client
        assert stats["backend"]["builds"] == total  # all cold, no dupes
        throughputs[n_clients] = total / elapsed
        rows.append([n_clients, total, f"{elapsed:.3f}",
                     f"{total / elapsed:.2f}"])

    print_table(
        f"Process-backend cold-build throughput ({cores} core(s))",
        ["clients", "cold builds", "seconds", "builds/s"],
        rows,
    )
    ratio = throughputs[8] / throughputs[1]
    if cores >= 6:
        floor = 3.0
    elif cores >= 2:
        floor = 1.2
    else:
        floor = 0.5  # single core: no parallel speedup to be had
    assert ratio >= floor, (
        f"8-client throughput only {ratio:.2f}x the single-client "
        f"rate on {cores} core(s); floor {floor}x")
