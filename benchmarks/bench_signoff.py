"""Signoff cost: full-macro wall time and the leaf-cell cache payoff.

The hierarchical DRC's value proposition is that a *second* signoff on
an unchanged macro is nearly free: every unique cell's verdict is
cached against its content hash and the rule-deck digest, so the warm
sweep re-checks nothing.  This bench measures that across all four
technology nodes (the deck digest differs per node, so each node pays
its own cold sweep) and times one complete signoff — DRC + LVS-lite +
control validation — as the stage gate a build would run.
"""

import time

import pytest

from conftest import print_table
from repro.core.compiler import compile_ram
from repro.core.config import RamConfig
from repro.tech import get_process
from repro.verify import DrcCache, hierarchical_drc, run_signoff

NODES = ("cda05", "mos06", "cda07", "mos08")


def _small_config(process):
    return RamConfig(words=32, bpw=4, bpc=2, spares=4, process=process)


def test_leaf_cache_speedup_across_nodes():
    """Cold vs. warm hierarchical DRC on every node; warm must be ~free."""
    rows = []
    for node in NODES:
        compiled = compile_ram(_small_config(node))
        top = compiled.floorplan.top
        process = get_process(node)
        cache = DrcCache()

        t0 = time.perf_counter()
        cold = hierarchical_drc(top, process, cache=cache)
        t1 = time.perf_counter()
        warm = hierarchical_drc(top, process, cache=cache)
        t2 = time.perf_counter()

        cold_s, warm_s = t1 - t0, t2 - t1
        speedup = cold_s / warm_s if warm_s else float("inf")
        rows.append([
            node, f"{cold_s:.2f}", f"{warm_s:.3f}", f"{speedup:.0f}x",
            cold.stats["unique_cells"],
            f"{warm.stats['cache_hit_rate']:.0%}",
        ])
        assert cold.clean and warm.clean
        assert warm.stats["cache_hit_rate"] == 1.0
        assert warm.stats["leaf_checks"] == 0
        assert speedup > 10

    print_table(
        "Hierarchical DRC: cold sweep vs. warm (content-hash cache)",
        ["node", "cold s", "warm s", "speedup", "unique cells", "warm hits"],
        rows,
    )


def test_full_macro_signoff_walltime(benchmark):
    """One complete stage-gate signoff (DRC + LVS + control), timed."""
    config = _small_config("cda07")
    compiled = compile_ram(config)
    cache = DrcCache()

    # Cold pass populates the cache; the benchmarked pass is the
    # steady-state cost a rebuild pays.
    cold_t0 = time.perf_counter()
    cold = run_signoff(compiled, cache=cache)
    cold_s = time.perf_counter() - cold_t0
    assert cold.clean

    report = benchmark.pedantic(
        run_signoff, args=(compiled,), kwargs={"cache": cache},
        rounds=3, iterations=1,
    )
    assert report.clean

    rows = [[r.checker, r.stage, f"{r.elapsed_s * 1e3:.0f}"]
            for r in report.results]
    rows.append(["total (cold)", "-", f"{cold_s * 1e3:.0f}"])
    print_table(
        "Full-macro signoff wall time, 32x4 macro at cda07 (ms)",
        ["checker", "stage", "elapsed ms"],
        rows,
    )
