"""Section III: BISRAMGEN vs. the Chen-Sunada baseline, head to head.

The paper lists four advantages over the hierarchical two-fault-per-
subblock scheme.  With both schemes implemented, the two quantitative
claims become measurements:

1. "BISRAMGEN affords a much greater degree of fault tolerance of about
   bpc*S to 4*bpc*S faulty addresses in each subblock" — vs two.
2. "the incoming address is compared sequentially, instead of in
   parallel ... BISRAMGEN produces a very tiny delay penalty" — the
   sequential compare scales linearly with entries, the TLB does not.
"""

import pytest

from conftest import print_table
from repro import RamConfig
from repro.analysis import compare_schemes
from repro.bisr.chen_sunada import sequential_compare_delay_s
from repro.bisr.delay import tlb_delay_s
from repro.tech import get_process

CFG = RamConfig(words=1024, bpw=16, bpc=4, spares=4)


def test_scheme_comparison(benchmark):
    comparison = benchmark.pedantic(
        compare_schemes,
        kwargs=dict(config=CFG, subblocks=16, spare_subblocks=1,
                    random_faults=4, trials=300),
        rounds=1, iterations=1,
    )

    c = comparison
    print_table(
        "BISRAMGEN (4 spare rows) vs Chen-Sunada (16 subblocks, "
        "2 captures each, 1 spare block)",
        ["metric", "BISRAMGEN", "Chen-Sunada"],
        [
            ["best-case repairable words", c.bisramgen_capacity_words,
             c.chen_sunada_capacity_words],
            ["worst-case kill (faults)", c.bisramgen_worst_case_kill,
             c.chen_sunada_worst_case_kill],
            ["compare delay (native)",
             f"{c.bisramgen_delay_s * 1e9:.2f} ns",
             f"{c.chen_sunada_delay_s * 1e9:.2f} ns"],
            ["compare delay (equal entries)",
             f"{c.bisramgen_delay_s * 1e9:.2f} ns",
             f"{c.chen_sunada_delay_equal_entries_s * 1e9:.2f} ns"],
            ["survival, 4 mixed defects",
             f"{c.survival_bisramgen:.0%}",
             f"{c.survival_chen_sunada:.0%}"],
        ],
    )

    # The paper's claims, asserted:
    # (1) row repair survives realistic (row-structured) defects the
    #     two-fault scheme cannot;
    assert c.survival_bisramgen > c.survival_chen_sunada + 0.3
    # (2) the parallel TLB scales: sequential compare at the same entry
    #     count is slower, and diverges with more entries.
    assert c.chen_sunada_delay_equal_entries_s > 0.8 * c.bisramgen_delay_s


def test_delay_scaling_with_entries(benchmark):
    p = get_process("cda07")

    def sweep():
        rows = []
        for entries in (1, 2, 4, 8, 16, 32):
            seq = sequential_compare_delay_s(p, 10, captures=entries)
            par = tlb_delay_s(p, 10, entries)
            rows.append((entries, seq, par))
        return rows

    rows = benchmark(sweep)
    print_table(
        "Compare-path delay vs entry count (cda07, 10-bit address)",
        ["entries", "sequential (ns)", "parallel TLB (ns)"],
        [[e, f"{s * 1e9:.2f}", f"{t * 1e9:.2f}"] for e, s, t in rows],
    )
    # Sequential grows ~linearly; the TLB sub-linearly.  By 16 entries
    # the parallel structure must win decisively.
    seq16 = dict((e, s) for e, s, _ in rows)[16]
    par16 = dict((e, t) for e, _, t in rows)[16]
    assert seq16 > 1.5 * par16
    seq = [s for _, s, _ in rows]
    par = [t for _, _, t in rows]
    assert seq[-1] / seq[0] > 8      # ~linear growth
    assert par[-1] / par[0] < 2.5    # gentle growth
