"""Section V: fault coverage of the microprogrammed IFA-9 BIST.

"IFA-9 detects a wide range of functional faults caused by layout
defects; for example, stuck-at and stuck-open faults, transition faults
and state coupling faults" plus retention faults via its two Delay
elements, with Johnson backgrounds covering intra-word couplings.
The bench measures per-class coverage for IFA-9 against the MATS+ and
March C- baselines.
"""

import pytest

from conftest import print_table
from repro.bist import IFA_9, MARCH_C_MINUS, MATS_PLUS
from repro.memsim import coverage_campaign

KINDS = ("stuck_at", "transition", "stuck_open", "state_coupling",
         "idempotent_coupling", "inversion_coupling", "data_retention")
KW = dict(samples_per_kind=15, rows=8, bpw=4, bpc=2, seed=17)


def run_campaigns():
    return {
        test.name: coverage_campaign(test, kinds=KINDS, **KW)
        for test in (IFA_9, MARCH_C_MINUS, MATS_PLUS)
    }


def test_fault_coverage_comparison(benchmark):
    reports = benchmark.pedantic(run_campaigns, rounds=1, iterations=1)

    rows = []
    for kind in KINDS:
        rows.append(
            [kind] + [
                f"{reports[name].coverage(kind):.0%}"
                for name in ("IFA-9", "March C-", "MATS+")
            ]
        )
    rows.append(
        ["OVERALL"] + [
            f"{reports[name].coverage():.0%}"
            for name in ("IFA-9", "March C-", "MATS+")
        ]
    )
    print_table(
        "Fault coverage by march test",
        ["fault class", "IFA-9", "March C-", "MATS+"],
        rows,
    )

    ifa = reports["IFA-9"]
    # The paper's coverage claims:
    assert ifa.coverage("stuck_at") == 1.0
    assert ifa.coverage("transition") == 1.0
    assert ifa.coverage("data_retention") == 1.0
    assert ifa.coverage("state_coupling") >= 0.9
    assert ifa.coverage("stuck_open") >= 0.9
    # Baselines must measurably lose:
    assert reports["MATS+"].coverage("data_retention") == 0.0
    assert reports["March C-"].coverage("data_retention") == 0.0
    assert ifa.coverage() > reports["MATS+"].coverage()


def test_backgrounds_matter_for_wide_words():
    """Ablation: intra-word couplings need the Johnson backgrounds.
    With bpw=8 an aggressor/victim pair inside one word is invisible to
    a single-background test of the same march ops."""
    from repro.bist.march import parse_march
    from repro.memsim import MemoryArray
    from repro.memsim.coverage import _single_fault_detected
    from repro.memsim.faults import StateCoupling

    rows, bpw, bpc = 8, 8, 2
    array = MemoryArray(rows, bpw, bpc, spares=1)
    # Victim and aggressor in the SAME word (adjacent word bits, same
    # column): every all-0/all-1 background writes them identically.
    agg = array.cell_index(2, 3, 1)
    vic = array.cell_index(2, 4, 1)
    fault = StateCoupling(agg, vic, w=1, v=1)

    detected_full = _single_fault_detected(IFA_9, rows, bpw, bpc, fault)
    assert detected_full

    # Same ops, but collapse DATAGEN to a single background by using a
    # 1-bit word generator view: emulate by testing with bpw=1-style
    # patterns — all-0 / all-1 only.
    single_bg = parse_march("IFA-9-single", str(IFA_9).replace("; ", ";"))
    from repro.bist.controller import BistScheduler
    from repro.memsim.device import BisrRam

    device = BisrRam(rows=rows, bpw=bpw, bpc=bpc, spares=1)
    device.array.inject(
        StateCoupling(agg, vic, w=1, v=1)
    )
    scheduler = BistScheduler(single_bg, bpw=bpw)
    scheduler.datagen._patterns = [0]  # ablate: background 0 only
    result = scheduler.run(device, passes=1)
    assert result.fail_count == 0  # escapes without backgrounds
