"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints
the same rows/series the paper reports (run with ``-s`` to see them).
Absolute numbers come from our simulator substrate, not the authors'
testbed; each bench asserts the *shape* claims (who wins, by roughly
what factor, where crossovers fall) so a regression in any model breaks
the bench.
"""

from __future__ import annotations


def print_table(title: str, headers, rows) -> None:
    """Fixed-width table printer used by all benches."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows
        else len(str(h))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
