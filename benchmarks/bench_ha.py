"""High-availability serving economics.

Three claims back the HA layer:

* The **batch endpoint** amortizes HTTP round-trips: N warm items
  through one ``/compile_batch`` stream must not be slower than N
  sequential ``/compile`` calls (and should win clearly at depth).
* A **warm standby** serves store hits at the same order of cost as
  the primary — failover capacity is real capacity, not a cold cache.
* The **resource governor** sits on the admission hot path; its
  interval-cached verdict must cost roughly nothing per request.
"""

import time

from conftest import print_table
from repro.core.config import RamConfig
from repro.service import ArtifactStore, MacroServer, compile_cached
from repro.service.governor import ResourceGovernor
from repro.service.ha import Lease
from repro.service.http import (
    ServiceClient,
    make_http_server,
    serve_forever_in_thread,
)

CONFIG = RamConfig(words=64, bpw=8, bpc=4, strap_every=8)
BATCH_DEPTHS = (1, 8, 32)
WARM_REQUESTS = 200


def test_batch_amortizes_http_roundtrips(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    compile_cached(CONFIG, store=store)  # pre-warm
    server = MacroServer(store=store, workers=8, queue_limit=256,
                         batch_limit=64)
    httpd = make_http_server(server, port=0)
    serve_forever_in_thread(httpd)
    host, port = httpd.server_address[:2]
    client = ServiceClient(host, port)
    rows = []
    ratios = {}
    try:
        for depth in BATCH_DEPTHS:
            t0 = time.perf_counter()
            for _ in range(depth):
                client.compile(CONFIG)
            sequential_s = time.perf_counter() - t0

            t0 = time.perf_counter()
            records = list(client.compile_batch([CONFIG] * depth))
            batch_s = time.perf_counter() - t0
            assert len(records) == depth
            assert all(r["status"] == "ok" for r in records)

            ratios[depth] = sequential_s / batch_s if batch_s else 1.0
            rows.append([depth, f"{sequential_s * 1e3:.1f}",
                         f"{batch_s * 1e3:.1f}",
                         f"{ratios[depth]:.2f}x"])
    finally:
        httpd.shutdown()
        httpd.server_close()
        server.shutdown()
    print_table(
        "Batch endpoint vs sequential /compile (warm store)",
        ["items", "sequential ms", "batch ms", "amortization"],
        rows,
    )
    # At depth 32 one streamed connection must beat 32 round-trips
    # (allowing scheduling noise on loaded CI boxes).
    assert ratios[32] >= 0.8, (
        f"batch of 32 ran {1 / ratios[32]:.2f}x slower than "
        f"sequential round-trips")


def test_standby_hits_cost_like_primary_hits(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    compile_cached(CONFIG, store=store)  # pre-warm
    lease_path = tmp_path / "lease"
    holder = Lease(lease_path, ttl_s=3600.0)
    assert holder.acquire()  # "the primary" keeps the lease fresh
    primary = MacroServer(store=store, workers=4)
    standby = MacroServer(store=store, workers=4, role="standby",
                          lease=Lease(lease_path, ttl_s=3600.0),
                          standby_poll_s=60.0)
    rows = []
    timings = {}
    try:
        for name, server in (("primary", primary),
                             ("standby", standby)):
            t0 = time.perf_counter()
            for _ in range(WARM_REQUESTS):
                response = server.compile(CONFIG)
                assert response.cached
            elapsed = time.perf_counter() - t0
            timings[name] = elapsed
            rows.append([name, WARM_REQUESTS, f"{elapsed:.3f}",
                         f"{WARM_REQUESTS / elapsed:.0f}"])
        assert standby.role == "standby"  # never promoted mid-bench
    finally:
        standby.shutdown()
        primary.shutdown()
    print_table(
        "Warm-hit cost by role (same store, in-process)",
        ["role", "requests", "seconds", "req/s"],
        rows,
    )
    # The standby reads the same store; failover capacity must be the
    # same order of magnitude, not a degraded emergency path.
    assert timings["standby"] <= timings["primary"] * 5.0


def test_governor_verdict_is_cheap_on_the_hot_path(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    compile_cached(CONFIG, store=store)  # pre-warm
    governor = ResourceGovernor(store.root, disk_reserve_bytes=1,
                                sample_interval_s=1.0)
    rows = []
    timings = {}
    try:
        for name, server in (
                ("ungoverned", MacroServer(store=store, workers=4)),
                ("governed", MacroServer(store=store, workers=4,
                                         governor=governor))):
            try:
                server.compile(CONFIG)  # settle first-touch costs
                t0 = time.perf_counter()
                for _ in range(WARM_REQUESTS):
                    server.compile(CONFIG)
                elapsed = time.perf_counter() - t0
            finally:
                server.shutdown()
            timings[name] = elapsed
            rows.append([name, WARM_REQUESTS, f"{elapsed:.3f}",
                         f"{elapsed / WARM_REQUESTS * 1e6:.0f}"])
    finally:
        pass
    print_table(
        "Admission-control overhead on warm hits",
        ["admission", "requests", "seconds", "us/request"],
        rows,
    )
    assert governor.to_dict()["state"] == "admitting"
    # The interval cache means the probes run ~once for the whole
    # loop; the per-request verdict is a lock + a clock read.
    assert timings["governed"] <= timings["ungoverned"] * 3.0 + 0.05
