"""Fig. 5: reliability vs. device age for 0/4/8/16 spare rows.

Configuration: 1024 regular rows, bpc = bpw = 4.  The per-cell defect
rate exponent is garbled in the available paper text; 1e-5 per kilohour
reproduces the stated ~70,000-hour (about 8 years) 4-vs-8-spare
crossover (see EXPERIMENTS.md).
"""

import pytest

from conftest import print_table
from repro.reliability import crossover_age, mttf_words, reliability_words

ROWS, BPW, BPC = 1024, 4, 4
LAM = 1e-5 / 1000.0  # per hour per cell
SPARES = (0, 4, 8, 16)
HOURS = (0, 5_000, 20_000, 50_000, 70_000, 100_000, 200_000, 400_000)


def compute_fig5():
    series = {}
    for s in SPARES:
        series[s] = [
            reliability_words(t, ROWS, s, BPW, BPC, LAM) for t in HOURS
        ]
    crossover = crossover_age(ROWS, BPW, BPC, LAM, 4, 8, t_hint=7e4)
    return series, crossover


def test_fig5_reliability_curves(benchmark):
    series, crossover = benchmark(compute_fig5)

    rows = []
    for i, t in enumerate(HOURS):
        rows.append(
            [f"{t:>7}"] + [f"{series[s][i]:.4f}" for s in SPARES]
        )
    print_table(
        "Fig. 5 — reliability vs age (1024 rows, bpc=4, bpw=4, "
        "lambda=1e-5/kh)",
        ["hours"] + [f"{s} spares" for s in SPARES],
        rows,
    )
    print(f"4-vs-8 spare crossover: {crossover:,.0f} h "
          f"(~{crossover / 8766:.1f} years; paper: ~70,000 h / 8 years)")

    # Shape claims:
    # (a) young device: fewer spares more reliable (4 > 8 > 16 at 5 kh);
    young = [series[s][HOURS.index(5_000)] for s in (4, 8, 16)]
    assert young == sorted(young, reverse=True)
    # (b) old device: more spares win (8 > 4 at 200 kh);
    assert series[8][HOURS.index(200_000)] > \
        series[4][HOURS.index(200_000)]
    # (c) any spares beat none from mid-life on;
    assert series[4][HOURS.index(50_000)] > series[0][HOURS.index(50_000)]
    # (d) the crossover lands near the paper's 70 kh.
    assert 4e4 <= crossover <= 1.2e5


def test_fig5_mttf(benchmark):
    """MTTF companion numbers (closed form, exact rationals)."""
    mttfs = benchmark(
        lambda: {s: mttf_words(128, s, BPW, BPC, LAM) for s in (0, 4, 8)}
    )
    print_table(
        "Fig. 5 companion — MTTF (128 rows)",
        ["spares", "MTTF (hours)"],
        [[s, f"{m:,.0f}"] for s, m in mttfs.items()],
    )
    assert mttfs[4] > mttfs[0]
    assert mttfs[8] > mttfs[4]
