"""Section VI: randomized self-repair campaign.

Monte-Carlo over defect counts: inject defects, run the full two-pass
(and iterated 2k-pass) BIST/BISR flow, measure the repaired fraction,
and compare against the analytic repair probability.  Also exercises
the paper's two negative results: column defects swamp row redundancy,
and too many faulty rows exhaust the spares.
"""

import random

import pytest

from conftest import print_table
from repro.bist import IFA_9, BistScheduler
from repro.bisr import analyze_repair
from repro.memsim import BisrRam, DefectInjector, FaultMix
from repro.memsim.faults import ColumnStuck, RowStuck
from repro.yieldmodel import bisr_yield

ROWS, BPW, BPC, SPARES = 16, 4, 4, 4
TRIALS = 25


def campaign(defect_counts, seed=23):
    rng = random.Random(seed)
    mix = FaultMix(column_defect=0.0)  # column defects measured separately
    results = {}
    for n in defect_counts:
        repaired = 0
        for _ in range(TRIALS):
            device = BisrRam(rows=ROWS, bpw=BPW, bpc=BPC, spares=SPARES)
            DefectInjector(rng=rng, mix=mix).inject(device.array, n)
            outcome = BistScheduler(IFA_9, bpw=BPW).run(
                device, passes=6, stop_on_repair_fail=False
            )
            repaired += outcome.repaired
        results[n] = repaired / TRIALS
    return results


def test_repair_campaign(benchmark):
    counts = (1, 2, 4, 8, 16)
    results = benchmark.pedantic(
        campaign, args=(counts,), rounds=1, iterations=1
    )
    rows = []
    for n in counts:
        analytic = bisr_yield(ROWS, SPARES, BPW, BPC, n)
        rows.append(
            [n, f"{results[n]:.0%}", f"{analytic:.0%}"]
        )
    print_table(
        f"Repair campaign — {ROWS} rows, {SPARES} spares, "
        f"{TRIALS} trials/point",
        ["defects", "BIST/BISR repaired", "analytic Y_R"],
        rows,
    )

    # Shape claims:
    # (a) low defect counts repair nearly always;
    assert results[1] >= 0.9
    # (b) the repaired fraction decreases with defect count;
    values = [results[n] for n in counts]
    assert values[0] >= values[-1]
    # (c) saturation: at 16 defects (~expected faulty rows >> spares)
    #     most arrays are beyond repair.
    assert results[16] <= 0.6


def test_column_defect_swamps_row_redundancy():
    """Paper: "If a column is faulty, the row redundancy will be quickly
    swamped ... column failures can be detected but not directly
    repaired"."""
    device = BisrRam(rows=ROWS, bpw=BPW, bpc=BPC, spares=SPARES)
    device.array.inject(
        ColumnStuck(0, device.array.total_rows, device.array.phys_cols, 1)
    )
    result = BistScheduler(IFA_9, bpw=BPW).run(device)
    assert not result.repaired         # detected, not repairable
    assert device.tlb.overflowed       # redundancy swamped
    assert result.fail_count > 0       # but definitely detected


def test_exactly_spares_many_rows_repairable():
    """Boundary: S faulty rows repair; S+1 do not."""
    device = BisrRam(rows=ROWS, bpw=BPW, bpc=BPC, spares=SPARES)
    for row in range(SPARES):
        device.array.inject(RowStuck(row, device.array.phys_cols, 1))
    assert BistScheduler(IFA_9, bpw=BPW).run(device).repaired

    device2 = BisrRam(rows=ROWS, bpw=BPW, bpc=BPC, spares=SPARES)
    for row in range(SPARES + 1):
        device2.array.inject(RowStuck(row, device2.array.phys_cols, 1))
    assert not BistScheduler(IFA_9, bpw=BPW).run(device2).repaired


def test_static_analysis_agrees_on_random_patterns(benchmark):
    def check(seed):
        rng = random.Random(seed)
        agreements = 0
        trials = 20
        for _ in range(trials):
            bad_rows = sorted(
                rng.sample(range(ROWS), rng.randrange(0, SPARES + 3))
            )
            bad_spares = [s for s in range(SPARES)
                          if rng.random() < 0.25]
            device = BisrRam(rows=ROWS, bpw=BPW, bpc=BPC, spares=SPARES)
            for r in bad_rows:
                device.array.inject(
                    RowStuck(r, device.array.phys_cols, 1)
                )
            for s in bad_spares:
                device.array.inject(
                    RowStuck(ROWS + s, device.array.phys_cols, 1)
                )
            prediction = analyze_repair(bad_rows, SPARES, bad_spares)
            outcome = BistScheduler(IFA_9, bpw=BPW).run(
                device, passes=10, stop_on_repair_fail=False
            )
            agreements += outcome.repaired == prediction.repairable
        return agreements / trials

    agreement = benchmark.pedantic(check, args=(99,), rounds=1,
                                   iterations=1)
    print(f"\nstatic-vs-dynamic agreement: {agreement:.0%}")
    assert agreement == 1.0
