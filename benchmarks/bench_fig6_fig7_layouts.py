"""Figs. 6-7: layout plots of compiled BISR-SRAM macros.

Fig. 6: "SRAM array with 4K words of 128 bits each (bpw), 8 bits per
column (bpc), 32 cells between strap, four spare rows and buffer size 2."
Fig. 7: same with 256-bit words and bpc = 16.  The bench compiles both
configurations, regenerates the plots (ASCII to stdout, SVG + CIF under
the pytest tmp directory), and checks the structural facts the figures
communicate: the array dominates, the periphery strips frame it, and
the BIST/BISR blocks are small.
"""

import pytest

from repro import RamConfig, compile_ram

FIG6 = RamConfig(words=4096, bpw=128, bpc=8, spares=4, gate_size=2,
                 strap_every=32)
FIG7 = RamConfig(words=4096, bpw=256, bpc=16, spares=4, gate_size=2,
                 strap_every=32)


@pytest.mark.parametrize("name,config", [("Fig. 6", FIG6),
                                         ("Fig. 7", FIG7)])
def test_layout_plot(benchmark, name, config, tmp_path):
    ram = benchmark.pedantic(
        compile_ram, args=(config,), rounds=1, iterations=1
    )

    print(f"\n=== {name} — {config.describe()} ===")
    print(ram.render_ascii(columns=76, rows=20))
    ar = ram.area_report
    print(
        f"module {ar.total_mm2:.1f} mm^2 "
        f"(array {ar.array_mm2:.1f}, BIST/BISR {ar.bist_bisr_mm2:.2f}, "
        f"overhead {ar.overhead_percent:.2f}%)"
    )

    svg = ram.render_svg(flatten_depth=2)
    svg_path = tmp_path / f"{name.replace('. ', '').lower()}.svg"
    svg_path.write_text(svg)
    cif_path = tmp_path / f"{name.replace('. ', '').lower()}.cif"
    ram.write_cif(cif_path)
    print(f"wrote {svg_path} and {cif_path}")

    # Structural claims of the figures:
    # (a) the bit-cell array dominates the module;
    assert ar.array_mm2 / ar.total_mm2 > 0.85
    # (b) the test-and-repair silicon is a sliver;
    assert ar.bist_bisr_mm2 / ar.total_mm2 < 0.02
    # (c) straps are present: array wider than bare columns alone;
    lam = 35  # cda07
    bare = config.columns * 68 * lam
    assert ram.floorplan.macrocells["array"].width > bare
    # (d) exports are non-trivial.
    assert len(svg) > 1000
    assert cif_path.stat().st_size > 1000


def test_fig7_larger_than_fig6():
    r6 = compile_ram(FIG6)
    r7 = compile_ram(FIG7)
    assert r7.area_report.total_mm2 > 1.8 * r6.area_report.total_mm2
