"""Table I: BISR area overhead with four spare rows (CDA 0.7 um).

The paper's table sweeps configurations (words, bpw, bpc) with 512 and
1024 regular rows and reports layout area plus the BIST/BISR overhead,
"at most 7% for realistic array sizes" (64 Kbit - 4 Mbit).  Each row
here compiles BOTH the BISR macro and the plain baseline and measures
real generated-layout areas.
"""

import pytest

from conftest import print_table
from repro import RamConfig, compile_ram

#: (words, bpw, bpc) — rows = words/bpc; capacities 8 Kbit - 512 Kbit
#: (the same row counts as the paper's table at simulation-friendly
#: widths; the overhead metric depends on rows x columns, not on the
#: absolute capacity).
CONFIGS = (
    (512, 16, 4),     # 8 Kbit, 128 rows
    (2048, 16, 4),    # 32 Kbit, 512 rows
    (2048, 32, 8),    # 64 Kbit, 256 rows
    (4096, 32, 8),    # 128 Kbit, 512 rows
    (4096, 64, 8),    # 256 Kbit, 512 rows
    (4096, 128, 8),   # 512 Kbit, 512 rows (Fig. 6 configuration)
    (8192, 256, 16),  # 2 Mbit, 512 rows (Fig. 7 organisation, doubled)
    (16384, 256, 16),  # 4 Mbit, 1024 rows — the top of the paper's range
)


def compile_row(words, bpw, bpc):
    ram = compile_ram(
        RamConfig(words=words, bpw=bpw, bpc=bpc, spares=4,
                  process="cda07")
    )
    return ram.area_report


@pytest.mark.parametrize("words,bpw,bpc", CONFIGS[:2])
def test_table1_compile_speed(benchmark, words, bpw, bpc):
    """Compiler throughput on small Table I rows (benchmarked)."""
    report = benchmark(compile_row, words, bpw, bpc)
    assert report.total_mm2 > 0


def test_table1_area_overhead():
    rows = []
    overheads = {}
    for words, bpw, bpc in CONFIGS:
        report = compile_row(words, bpw, bpc)
        kbit = words * bpw / 1024
        overheads[(words, bpw, bpc)] = report
        rows.append(
            [
                f"{words}x{bpw} (bpc={bpc})",
                f"{kbit:.0f} Kbit",
                f"{report.baseline_mm2:.2f}",
                f"{report.total_mm2:.2f}",
                f"{report.overhead_percent:.2f}%",
                f"{report.bist_bisr_only_percent:.2f}%",
            ]
        )
    print_table(
        "Table I — BISR overhead with four spare rows (cda07)",
        ["config", "capacity", "plain mm^2", "BISR mm^2",
         "overhead", "BIST/BISR only"],
        rows,
    )

    # Shape claims:
    # (a) every realistic size (>= 64 Kbit) is under the 7% bound;
    for (words, bpw, bpc), report in overheads.items():
        if words * bpw >= 64 * 1024:
            assert report.overhead_percent <= 7.0, (words, bpw, bpc)
    # (b) overhead shrinks monotonically with array capacity at fixed
    #     organisation style;
    o_small = overheads[(512, 16, 4)].overhead_percent
    o_large = overheads[(16384, 256, 16)].overhead_percent
    assert o_large < o_small
    # (c) excluding spare rows (the paper's accounting) the circuitry
    #     itself costs ~1% or less at the largest sizes.
    assert overheads[(4096, 128, 8)].bist_bisr_only_percent <= 1.0
    assert overheads[(16384, 256, 16)].bist_bisr_only_percent <= 0.2
