"""Section II: place-and-route quality.

"The layout generation quality is provably (1 + epsilon)-optimal ...
for a fixed 'small' epsilon that does not depend on the size of the
memory array."  The bench measures the placement epsilon across
compiled configurations (it must stay bounded as arrays grow), the
port-alignment heuristic's residual, and the abutment count of the
assembled datapath.
"""

import pytest

from conftest import print_table
from repro import RamConfig, compile_ram
from repro.core.floorplan import build_floorplan
from repro.pnr import Block, place_decreasing_area, placement_quality

CONFIGS = (
    RamConfig(words=128, bpw=8, bpc=4, strap_every=0),
    RamConfig(words=512, bpw=16, bpc=4, strap_every=0),
    RamConfig(words=2048, bpw=32, bpc=8, strap_every=0),
)


def measure_epsilon(config):
    plan = build_floorplan(config)
    blocks = [
        Block.from_cell(cell) for cell in plan.macrocells.values()
    ]
    placement = place_decreasing_area(blocks)
    return placement_quality(placement, blocks)


def test_pnr_epsilon_bounded(benchmark):
    quality = benchmark.pedantic(
        measure_epsilon, args=(CONFIGS[0],), rounds=1, iterations=1
    )
    rows = []
    epsilons = []
    for config in CONFIGS:
        q = measure_epsilon(config)
        epsilons.append(q.epsilon)
        rows.append(
            [
                f"{config.bits // 1024} Kbit",
                f"{q.fill_ratio:.3f}",
                f"{q.aspect_ratio:.2f}",
                f"{q.epsilon:.3f}",
            ]
        )
    print_table(
        "P&R quality: whole-module placement",
        ["capacity", "fill ratio", "aspect ratio", "epsilon"],
        rows,
    )

    # (1 + epsilon) optimality with epsilon independent of array size:
    # epsilon stays below a fixed bound and does not grow with the
    # memory.
    assert all(e <= 0.5 for e in epsilons)
    assert epsilons[-1] <= epsilons[0] + 0.05


def test_datapath_abuts_without_routing(benchmark):
    """"No routing is necessary and the signals in adjacent modules are
    perfectly aligned and connected by abutments."  Tile bit cells at
    their natural pitch and count the port abutments."""
    from repro.cells.sram6t import HEIGHT_LAMBDA, WIDTH_LAMBDA, sram6t_cell
    from repro.layout import Cell
    from repro.pnr import abutting_ports
    from repro.tech import get_process

    def count_abutments():
        process = get_process("cda07")
        lam = process.lambda_cu
        bit = sram6t_cell(process)
        tilearr = Cell("tile")
        tilearr.tile(
            bit, columns=4, rows=4,
            pitch_x=WIDTH_LAMBDA * lam, pitch_y=HEIGHT_LAMBDA * lam,
            alternate_mirror_y=True,
        )
        return abutting_ports(tilearr)

    pairs = benchmark.pedantic(count_abutments, rounds=1, iterations=1)
    kinds = {}
    for _, pa, _, pb in pairs:
        key = tuple(sorted((pa, pb)))
        kinds[key] = kinds.get(key, 0) + 1
    print("\nabutment connections in a 4x4 tile:")
    for key, n in sorted(kinds.items()):
        print(f"  {key[0]} <-> {key[1]}: {n}")

    # Horizontal: word line + rails pair left/right edges; vertical:
    # bit lines pair top edges (mirrored rows) and bottom edges.
    assert kinds.get(("wl", "wl_r"), 0) == 12      # 3 seams x 4 rows
    assert kinds.get(("bl", "bl_t"), 0) + \
        kinds.get(("bl_t", "bl_t"), 0) + \
        kinds.get(("bl", "bl"), 0) >= 12           # 3 seams x 4 cols
    assert len(pairs) >= 48
