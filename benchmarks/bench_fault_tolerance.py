"""Robustness campaign: supervised vs. naive repair under unreliable
reads.

The escalation supervisor's value proposition is spare economy: a
transient upset must not burn an entry of the strictly-increasing
spare sequence, while genuinely marginal (intermittent) cells must
still be caught.  This bench runs fault campaigns through both the
naive two-pass flow and the :class:`RepairSupervisor` and compares
spares consumed and repair outcomes.
"""

import random

from conftest import print_table
from repro.bist import IFA_9, BistScheduler
from repro.bisr import EscalationPolicy, RepairSupervisor
from repro.memsim import BisrRam, IntermittentReadFlip, IntermittentStuckAt

ROWS, BPW, BPC, SPARES = 16, 8, 4, 4
TRIALS = 12


def _device_with(fault_kind, rng):
    device = BisrRam(rows=ROWS, bpw=BPW, bpc=BPC, spares=SPARES)
    array = device.array
    cell = array.cell_index(
        rng.randrange(ROWS), rng.randrange(BPW), rng.randrange(BPC)
    )
    if fault_kind == "transient":
        array.inject(IntermittentReadFlip(
            cell, probability=0.01, seed=rng.getrandbits(32)
        ))
    else:
        array.inject(IntermittentStuckAt(
            cell, rng.randrange(2), probability=0.5,
            seed=rng.getrandbits(32),
        ))
    return device


def campaign(seed=29):
    """Per (fault kind, flow): mean spares burned + repair rate."""
    stats = {}
    for kind in ("transient", "intermittent"):
        for flow in ("naive", "supervised"):
            rng = random.Random(seed)
            spares_total = repaired_total = 0
            for _ in range(TRIALS):
                device = _device_with(kind, rng)
                if flow == "naive":
                    outcome = BistScheduler(IFA_9, bpw=BPW).run(
                        device, passes=2, stop_on_repair_fail=False
                    )
                    repaired = outcome.repaired
                else:
                    result = RepairSupervisor(
                        IFA_9, bpw=BPW,
                        policy=EscalationPolicy(max_attempts=3),
                    ).run(device)
                    repaired = result.repaired
                spares_total += device.tlb.spares_used
                repaired_total += bool(repaired)
            stats[kind, flow] = (
                spares_total / TRIALS, repaired_total / TRIALS
            )
    return stats


def test_fault_tolerance(benchmark):
    stats = benchmark.pedantic(campaign, rounds=1, iterations=1)
    rows = [
        (kind, flow, f"{spares:.2f}", f"{rate:.2f}")
        for (kind, flow), (spares, rate) in sorted(stats.items())
    ]
    print_table(
        "Spare economy under unreliable reads "
        f"({TRIALS} trials, {SPARES} spares)",
        ("fault", "flow", "spares/trial", "repair rate"),
        rows,
    )

    # Shape claims.  Transient upsets: the supervisor's N-of-M
    # confirmation burns (almost) no spares where the naive flow
    # condemns a row per upset observed.
    naive_tr = stats["transient", "naive"]
    sup_tr = stats["transient", "supervised"]
    assert sup_tr[0] < naive_tr[0]
    assert sup_tr[0] <= 0.5  # near-zero spares on transients
    assert sup_tr[1] >= naive_tr[1]  # and no worse at repairing

    # Intermittent p=0.5 cells are genuinely bad: the supervisor must
    # still catch and repair them (a spare spent here is well spent).
    sup_int = stats["intermittent", "supervised"]
    assert sup_int[1] >= 0.9
    assert sup_int[0] >= 0.5  # it does consume spares for real faults
