"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


CFG = ["--words", "64", "--bpw", "8", "--bpc", "4", "--strap-every", "8"]


class TestCompile:
    def test_basic(self, capsys):
        code, out = run(capsys, "compile", *CFG)
        assert code == 0
        assert "read access time" in out
        assert "overhead" in out

    def test_ascii(self, capsys):
        code, out = run(capsys, "compile", *CFG, "--ascii")
        assert code == 0
        assert "array" in out

    def test_artifacts(self, capsys, tmp_path):
        svg = tmp_path / "m.svg"
        cif = tmp_path / "m.cif"
        code, out = run(
            capsys, "compile", *CFG,
            "--svg", str(svg), "--cif", str(cif),
            "--control-dir", str(tmp_path / "ctl"),
        )
        assert code == 0
        assert svg.read_text().startswith("<svg")
        assert "DS " in cif.read_text()
        assert (tmp_path / "ctl" / "trpla_and.plane").exists()

    def test_invalid_config_reports_error(self, capsys):
        code = main(["compile", "--words", "63", "--bpw", "8",
                     "--bpc", "4"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestCompileCache:
    """``compile --cache-dir``: the content-addressed artifact store
    must serve byte-identical artifacts to an uncached build."""

    def _artifacts(self, capsys, tmp_path, label, *extra):
        cif = tmp_path / f"{label}.cif"
        ctl = tmp_path / f"{label}-ctl"
        code, out = run(capsys, "compile", *CFG,
                        "--cif", str(cif), "--control-dir", str(ctl),
                        *extra)
        assert code == 0
        return out, {
            "cif": cif.read_bytes(),
            "and": (ctl / "trpla_and.plane").read_bytes(),
            "or": (ctl / "trpla_or.plane").read_bytes(),
        }

    def test_cached_and_uncached_are_byte_identical(self, capsys,
                                                    tmp_path):
        cache = str(tmp_path / "cache")
        plain_out, plain = self._artifacts(capsys, tmp_path, "plain")
        miss_out, miss = self._artifacts(capsys, tmp_path, "miss",
                                         "--cache-dir", cache)
        hit_out, hit = self._artifacts(capsys, tmp_path, "hit",
                                       "--cache-dir", cache)
        assert "cache MISS" in miss_out
        assert "cache HIT" in hit_out
        assert "cache HIT" not in plain_out
        assert "cache MISS" not in plain_out
        assert plain == miss == hit

    def test_cache_hit_prints_same_datasheet(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        code, first = run(capsys, "compile", *CFG,
                          "--cache-dir", cache)
        code, second = run(capsys, "compile", *CFG,
                           "--cache-dir", cache)
        assert code == 0
        strip = lambda text: [l for l in text.splitlines()
                              if not l.startswith("cache ")]
        assert strip(first) == strip(second)
        assert "read access time" in second

    def test_no_cache_skips_the_store(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        run(capsys, "compile", *CFG, "--cache-dir", cache)
        code, out = run(capsys, "compile", *CFG,
                        "--cache-dir", cache, "--no-cache")
        assert code == 0
        assert "cache HIT" not in out

    def test_render_flags_keep_the_store_warm(self, capsys, tmp_path):
        """--ascii takes the direct build path but still publishes, so
        the next cached run hits."""
        cache = str(tmp_path / "cache")
        code, out = run(capsys, "compile", *CFG,
                        "--cache-dir", cache, "--ascii")
        assert code == 0
        assert "array" in out
        code, out = run(capsys, "compile", *CFG, "--cache-dir", cache)
        assert code == 0
        assert "cache HIT" in out

    def test_different_geometry_misses(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        run(capsys, "compile", *CFG, "--cache-dir", cache)
        code, out = run(capsys, "compile", "--words", "64", "--bpw",
                        "8", "--bpc", "4", "--strap-every", "8",
                        "--spares", "8", "--cache-dir", cache)
        assert code == 0
        assert "cache MISS" in out


class TestSelftest:
    def test_clean(self, capsys):
        code, out = run(capsys, "selftest", *CFG)
        assert code == 0
        assert "REPAIRED" in out

    def test_with_defects(self, capsys):
        code, out = run(capsys, "selftest", *CFG,
                        "--defects", "2", "--seed", "4")
        assert "injected 2 defects" in out

    def test_hopeless_defects_fail(self, capsys):
        code, out = run(capsys, "selftest", *CFG,
                        "--defects", "60", "--seed", "1",
                        "--max-cycles", "2")
        assert code == 1
        assert "UNSUCCESSFUL" in out


class TestSupervisedSelftest:
    def test_retries_repair_path(self, capsys):
        code, out = run(capsys, "selftest", *CFG,
                        "--defects", "2", "--seed", "4",
                        "--retries", "3")
        assert code == 0
        assert "REPAIRED" in out
        assert "spare(s)" in out
        assert "2-of-5 confirmation" in out

    def test_custom_confirm_spec(self, capsys):
        code, out = run(capsys, "selftest", *CFG,
                        "--defects", "2", "--seed", "4",
                        "--retries", "2", "--confirm", "3/7")
        assert code == 0
        assert "3-of-7 confirmation" in out

    def test_bad_confirm_spec_is_config_error(self, capsys):
        code = main(["selftest", *CFG, "--retries", "2",
                     "--confirm", "bogus"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one-line message, no traceback
        assert "N/M" in err

    def test_inverted_confirm_spec_rejected(self, capsys):
        code = main(["selftest", *CFG, "--retries", "2",
                     "--confirm", "6/3"])
        assert code == 2

    def test_hopeless_damage_degrades(self, capsys):
        code, out = run(capsys, "selftest", *CFG,
                        "--defects", "60", "--seed", "1",
                        "--retries", "2")
        assert code == 1
        assert "DEGRADED" in out


class TestAnalyses:
    def test_yield(self, capsys):
        code, out = run(capsys, "yield", *CFG, "--defects", "0,5")
        assert code == 0
        assert "0 spares" in out and "1.0000" in out

    def test_reliability(self, capsys):
        code, out = run(capsys, "reliability", *CFG, "--years", "1,5")
        assert code == 0
        assert "lambda" in out

    def test_cost_all(self, capsys):
        code, out = run(capsys, "cost")
        assert code == 0
        assert "TI SuperSPARC" in out

    def test_cost_single(self, capsys):
        code, out = run(capsys, "cost", "--processor", "MIPS R4400")
        assert code == 0
        assert "MIPS R4400" in out
        assert "Intel486DX2" not in out

    def test_coverage_known_march(self, capsys):
        code, out = run(capsys, "coverage", "--march", "MATS+",
                        "--samples", "4")
        assert code == 0
        assert "data_retention" in out

    def test_coverage_custom_notation(self, capsys):
        code, out = run(
            capsys, "coverage", "--march", "m(w0); u(r0,w1); d(r1)",
            "--samples", "4",
        )
        assert code == 0

    def test_coverage_bad_notation(self, capsys):
        code = main(["coverage", "--march", "zz(!!)"])
        assert code == 2

    def test_optimize(self, capsys):
        code, out = run(
            capsys, "optimize", "--words", "1024", "--bpw", "16",
            "--bpc", "4", "--defects", "3",
        )
        assert code == 0
        assert "recommended" in out


class TestDiagnose:
    def test_repairable_damage(self, capsys):
        code, out = run(capsys, "diagnose", *CFG,
                        "--defects", "2", "--seed", "3")
        assert "diagnosis:" in out
        assert code in (0, 1)

    def test_clean_device(self, capsys):
        code, out = run(capsys, "diagnose", *CFG, "--defects", "0")
        assert code == 0
        assert "0 comparator hits" in out


class TestVerify:
    def test_signoff_clean(self, capsys):
        code, out = run(capsys, "verify", *CFG)
        assert code == 0
        assert "CLEAN" in out
        assert out.count("PASS") == 4

    def test_signoff_json(self, capsys):
        import json

        code, out = run(capsys, "verify", *CFG, "--json")
        assert code == 0
        report = json.loads(out)
        assert report["clean"] is True
        assert {r["checker"] for r in report["results"]} == {
            "drc", "lvs", "control"}

    def test_cif_clean_and_corrupt(self, capsys, tmp_path):
        cif = tmp_path / "m.cif"
        code, _ = run(capsys, "compile", *CFG, "--cif", str(cif))
        assert code == 0
        code, out = run(capsys, "verify", *CFG, "--cif", str(cif))
        assert code == 0
        assert "CLEAN" in out

        # Stretch one box: the readback must fail DRC with exit 3.
        lines = cif.read_text().splitlines()
        for i, line in enumerate(lines):
            if line.startswith("B "):
                _, w, h, cx, cy = line.rstrip(";").split()
                lines[i] = f"B {int(w) * 6} {h} {cx} {cy};"
                break
        cif.write_text("\n".join(lines))
        code, out = run(capsys, "verify", *CFG, "--cif", str(cif))
        assert code == 3
        assert "FAIL" in out


class TestCampaign:
    def test_montecarlo_campaign(self, capsys):
        code, out = run(
            capsys, "campaign", "--driver", "montecarlo",
            "--words", "256", "--bpw", "4", "--bpc", "4",
            "--spares", "4", "--defects", "3", "--trials", "4000",
            "--shards", "4", "--workers", "2", "--seed", "7",
        )
        assert code == 0
        assert "4/4 shard(s) completed" in out
        assert "aggregates:" in out
        assert "wilson_low" in out

    def test_checkpoint_and_resume(self, capsys, tmp_path):
        checkpoint = tmp_path / "mc.jsonl"
        argv = [
            "campaign", "--driver", "montecarlo",
            "--words", "256", "--bpw", "4", "--bpc", "4",
            "--spares", "4", "--defects", "3", "--trials", "2000",
            "--shards", "4", "--seed", "7",
            "--checkpoint", str(checkpoint),
        ]
        code, first = run(capsys, *argv)
        assert code == 0
        code, second = run(capsys, *argv, "--resume")
        assert code == 0
        assert "4 resumed from checkpoint" in second
        agg = [l for l in first.splitlines() if "aggregates:" in l]
        assert agg == [l for l in second.splitlines()
                       if "aggregates:" in l]

    def test_sizing_campaign(self, capsys):
        code, out = run(
            capsys, "campaign", "--driver", "sizing",
            "--widths", "0.9", "--shards", "1",
        )
        assert code == 0
        assert "ratio_min" in out

    def test_signoff_campaign(self, capsys):
        code, out = run(
            capsys, "campaign", "--driver", "signoff",
            "--words", "32", "--bpw", "4", "--bpc", "2",
            "--spares", "4", "--processes", "cda07",
        )
        assert code == 0
        assert "1/1 shard(s) completed" in out
        assert '"clean_nodes": 1' in out
