"""Static ``analyze_repair`` vs. the dynamic simulation must agree.

The analytic model predicts iterated 2k-pass repair on the
strictly-increasing spare sequence; the dynamic side really runs the
supervised BIST/BISR flow on a fault-injected :class:`BisrRam`.  The
edge cases here are the faulty-spare ones: spares that are themselves
bad are only discovered one verify pass later, and both models must
burn the same entries of the sequence.
"""

import pytest

from repro.bist import IFA_9
from repro.bisr import EscalationPolicy, RepairSupervisor, analyze_repair
from repro.memsim import BisrRam
from repro.memsim.faults import RowStuck


def run_dynamic(rows, spares, faulty_rows, faulty_spares=(),
                max_attempts=6):
    """Really run supervised repair; return (repaired, spares_used)."""
    ram = BisrRam(rows=rows, bpw=8, bpc=4, spares=spares)
    for row in faulty_rows:
        ram.array.inject(RowStuck(row, ram.array.phys_cols, 1))
    for spare in faulty_spares:
        ram.array.inject(
            RowStuck(rows + spare, ram.array.phys_cols, 1)
        )
    policy = EscalationPolicy(max_attempts=max_attempts)
    result = RepairSupervisor(IFA_9, bpw=8, policy=policy).run(ram)
    return result.repaired, ram.tlb.spares_used


class TestHealthySpares:
    def test_simple_repair_agrees(self):
        analysis = analyze_repair([2, 5], spares=4)
        repaired, used = run_dynamic(8, 4, [2, 5])
        assert analysis.repairable and repaired
        assert analysis.spares_consumed == used == 2

    def test_exhaustion_mid_sequence_agrees(self):
        # Three dead rows, two spares: both models must stop after
        # burning exactly the whole sequence.
        analysis = analyze_repair([1, 3, 5], spares=2)
        repaired, used = run_dynamic(8, 2, [1, 3, 5])
        assert not analysis.repairable and not repaired
        assert analysis.spares_consumed == used == 2


class TestFaultySpares:
    def test_faulty_spare_found_in_verify_pass(self):
        # Spare 0 is bad: the first assignment is wasted, discovered
        # only when the verify pass reads through the diversion.
        analysis = analyze_repair([3], spares=4, faulty_spares=[0])
        repaired, used = run_dynamic(8, 4, [3], faulty_spares=[0])
        assert analysis.repairable and repaired
        assert analysis.spares_consumed == used == 2
        assert analysis.wasted_spares == (0,)

    def test_mixed_good_and_bad_spares(self):
        # Rows 2 and 6 in detection order; spare 1 is bad, so row 6
        # re-records onto spare 2.
        analysis = analyze_repair([2, 6], spares=4, faulty_spares=[1])
        repaired, used = run_dynamic(8, 4, [2, 6], faulty_spares=[1])
        assert analysis.repairable and repaired
        assert analysis.spares_consumed == used == 3
        assert dict(analysis.assignment) == {2: 0, 6: 2}

    def test_all_spares_faulty(self):
        analysis = analyze_repair([4], spares=3,
                                  faulty_spares=[0, 1, 2])
        repaired, used = run_dynamic(8, 3, [4],
                                     faulty_spares=[0, 1, 2])
        assert not analysis.repairable and not repaired
        assert analysis.spares_consumed == used == 3
        assert analysis.wasted_spares == (0, 1, 2)

    def test_cascade_of_bad_spares_agrees(self):
        # Two bad spares in a row before the good one: the sequence
        # walks 0 (bad) -> 1 (bad) -> 2 (good).
        analysis = analyze_repair([7], spares=4, faulty_spares=[0, 1])
        repaired, used = run_dynamic(8, 4, [7], faulty_spares=[0, 1])
        assert analysis.repairable and repaired
        assert analysis.spares_consumed == used == 3

    def test_passes_bound_the_dynamic_attempts(self):
        # Every analytic round is one dynamic attempt at most (the
        # dynamic flow can remap mid-verify and converge faster).
        analysis = analyze_repair([3], spares=4, faulty_spares=[0])
        ram = BisrRam(rows=8, bpw=8, bpc=4, spares=4)
        ram.array.inject(RowStuck(3, ram.array.phys_cols, 1))
        ram.array.inject(RowStuck(8, ram.array.phys_cols, 1))
        result = RepairSupervisor(
            IFA_9, bpw=8, policy=EscalationPolicy(max_attempts=6)
        ).run(ram)
        assert result.repaired
        assert 2 * result.attempts <= analysis.passes_needed


class TestAnalysisValidation:
    def test_rejects_bad_spare_index(self):
        with pytest.raises(ValueError):
            analyze_repair([1], spares=2, faulty_spares=[2])

    def test_rejects_negative_spares(self):
        with pytest.raises(ValueError):
            analyze_repair([1], spares=-1)
