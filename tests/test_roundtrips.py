"""Round-trip tests: CIF export/import and SPICE deck export/import.

These pin down the interchange contracts: what the tool writes, the
tool (and the era's consumers) can read back unchanged.
"""

import pytest

from repro.circuit.netlist import GND, Netlist
from repro.circuit.spice_export import export_spice, read_spice
from repro.geometry import Point, Rect, Transform
from repro.geometry.transform import Orientation
from repro.layout import Cell, write_cif
from repro.layout.cif_reader import read_cif
from repro.spice import Pwl, TransientEngine
from repro.tech import get_process

PROCESS = get_process("cda07")


def _flat_shapes(cell):
    return sorted(cell.flatten())


class TestCifRoundTrip:
    def _roundtrip(self, cell, tmp_path):
        path = tmp_path / "x.cif"
        with open(path, "w") as stream:
            write_cif(cell, stream, PROCESS.layers)
        return read_cif(path, PROCESS.layers)

    def test_flat_cell(self, tmp_path):
        cell = Cell("flat")
        cell.add_shape("metal1", Rect(0, 0, 100, 35))
        cell.add_shape("poly", Rect(10, -20, 30, 90))
        got = self._roundtrip(cell, tmp_path)
        assert got.name == "flat"
        assert _flat_shapes(got) == _flat_shapes(cell)

    def test_layers_preserved(self, tmp_path):
        cell = Cell("layered")
        cell.add_shape("metal2", Rect(0, 0, 40, 40))
        cell.add_shape("via1", Rect(10, 10, 20, 20))
        cell.add_shape("metal2", Rect(100, 0, 140, 40))
        got = self._roundtrip(cell, tmp_path)
        layers = sorted(l for l, _ in got.flatten())
        assert layers == ["metal2", "metal2", "via1"]

    def test_hierarchy_with_transforms(self, tmp_path):
        leaf = Cell("leafy")
        leaf.add_shape("metal1", Rect(0, 0, 10, 4))
        top = Cell("topper")
        top.add_instance(leaf, Transform(translation=Point(100, 50)))
        top.add_instance(
            leaf, Transform(Orientation.R90, Point(300, 0))
        )
        top.add_instance(
            leaf, Transform(Orientation.MX, Point(0, 400))
        )
        got = self._roundtrip(top, tmp_path)
        assert _flat_shapes(got) == _flat_shapes(top)

    def test_all_orientations_roundtrip(self, tmp_path):
        from repro.geometry.transform import ALL_ORIENTATIONS

        leaf = Cell("mark")
        leaf.add_shape("poly", Rect(2, 0, 10, 3))  # asymmetric marker
        top = Cell("every")
        for i, orient in enumerate(ALL_ORIENTATIONS):
            top.add_instance(
                leaf, Transform(orient, Point(100 * i, 37))
            )
        got = self._roundtrip(top, tmp_path)
        assert _flat_shapes(got) == _flat_shapes(top)

    def test_compiled_macro_geometry_survives(self, tmp_path):
        from repro import RamConfig, compile_ram

        ram = compile_ram(
            RamConfig(words=16, bpw=4, bpc=4, strap_every=0)
        )
        path = tmp_path / "macro.cif"
        ram.write_cif(path)
        got = read_cif(path, PROCESS.layers)
        original = ram.floorplan.top
        assert got.count_shapes() == sum(
            1 for _, r in original.flatten() if r.area > 0
        )
        assert got.bbox() == original.bbox()

    def test_reader_rejects_undefined_call(self, tmp_path):
        path = tmp_path / "bad.cif"
        path.write_text("DS 1 1 1;\nC 99 T 0 0;\nDF;\nC 1;\nE\n")
        with pytest.raises(ValueError, match="undefined"):
            read_cif(path, PROCESS.layers)

    def test_reader_requires_top_call(self, tmp_path):
        path = tmp_path / "bad.cif"
        path.write_text("DS 1 1 1;\nDF;\nE\n")
        with pytest.raises(ValueError, match="top"):
            read_cif(path, PROCESS.layers)


class TestSpiceRoundTrip:
    def _netlist(self):
        net = Netlist("dut")
        net.add_source("vdd", PROCESS.vdd)
        net.add_source(
            "in", Pwl([(0.0, 0.0), (1e-9, 0.0), (1.1e-9, 5.0)])
        )
        net.add_inverter("in", "out", PROCESS.nmos, PROCESS.pmos,
                         2.0, 5.0)
        net.add_resistor("out", "tap", 1000.0)
        net.add_capacitor("tap", GND, 50e-15)
        return net

    def test_deck_structure(self, tmp_path):
        path = export_spice(self._netlist(), tmp_path / "dut.sp",
                            PROCESS, t_stop_s=5e-9)
        text = path.read_text()
        assert ".MODEL NCH NMOS" in text
        assert ".MODEL PCH PMOS" in text
        assert "PWL(" in text
        assert text.rstrip().endswith(".END")

    def test_roundtrip_device_counts(self, tmp_path):
        original = self._netlist()
        path = export_spice(original, tmp_path / "dut.sp", PROCESS)
        got = read_spice(path, PROCESS)
        assert len(got.mosfets) == len(original.mosfets)
        assert len(got.resistors) == len(original.resistors)
        assert len(got.capacitors) == len(original.capacitors)
        assert len(got.sources) == len(original.sources)

    def test_roundtrip_simulates_identically(self, tmp_path):
        """The real contract: the re-read deck behaves the same."""
        original = self._netlist()
        path = export_spice(original, tmp_path / "dut.sp", PROCESS)
        reread = read_spice(path, PROCESS)
        r1 = TransientEngine(original).run(
            4e-9, record=["out"], initial={"out": PROCESS.vdd}
        )
        r2 = TransientEngine(reread).run(
            4e-9, record=["out"], initial={"out": PROCESS.vdd}
        )
        assert r1.final("out") == pytest.approx(r2.final("out"),
                                                abs=0.05)

    def test_mosfet_sizes_preserved(self, tmp_path):
        original = self._netlist()
        path = export_spice(original, tmp_path / "dut.sp", PROCESS)
        got = read_spice(path, PROCESS)
        assert sorted(m.w_um for m in got.mosfets) == \
            sorted(m.w_um for m in original.mosfets)

    def test_generated_cell_netlists_export(self, tmp_path):
        from repro.cells import senseamp_netlist, sram6t_netlist

        for build in (sram6t_netlist, senseamp_netlist):
            net = build(PROCESS)
            path = export_spice(net, tmp_path / f"{net.name}.sp",
                                PROCESS)
            got = read_spice(path, PROCESS)
            assert len(got.mosfets) == len(net.mosfets)

    def test_reader_reports_line_numbers(self, tmp_path):
        path = tmp_path / "bad.sp"
        path.write_text("* deck\nM1 a b\n")
        with pytest.raises(ValueError, match="bad.sp:2"):
            read_spice(path, PROCESS)


class TestConfigRoundTrip:
    """RamConfig's canonical dict form: the identity the artifact
    store, stage cache, and campaign journal all key on."""

    def _config(self, **overrides):
        from repro import RamConfig

        params = dict(words=64, bpw=8, bpc=4, spares=8,
                      gate_size=2, strap_every=16, process="mos08")
        params.update(overrides)
        return RamConfig(**params)

    def test_to_dict_from_dict_is_identity(self):
        from repro import RamConfig

        config = self._config()
        assert RamConfig.from_dict(config.to_dict()) == config

    def test_dict_survives_json(self):
        import json

        from repro import RamConfig

        config = self._config()
        wire = json.loads(json.dumps(config.to_dict()))
        assert RamConfig.from_dict(wire) == config

    def test_from_dict_rejects_unknown_keys(self):
        import pytest as _pytest

        from repro import RamConfig
        from repro.core.errors import ConfigError

        payload = self._config().to_dict()
        payload["volts"] = 5
        with _pytest.raises(ConfigError, match="volts"):
            RamConfig.from_dict(payload)

    def test_from_dict_rejects_missing_geometry(self):
        from repro import RamConfig
        from repro.core.errors import ConfigError

        with pytest.raises(ConfigError):
            RamConfig.from_dict({"words": 64})

    def test_from_dict_still_validates(self):
        from repro import RamConfig
        from repro.core.errors import ConfigError

        with pytest.raises(ConfigError):
            RamConfig.from_dict({"words": 63, "bpw": 8, "bpc": 4})

    def test_digest_is_stable_and_discriminating(self):
        config = self._config()
        assert config.digest() == self._config().digest()
        assert config.digest() != self._config(spares=16).digest()
        assert len(config.digest()) == 64
        assert config.digest(16) == config.digest()[:16]

    def test_digest_matches_canonical_json_recipe(self):
        """The digest is pinned to sorted-key compact JSON -> sha256
        over to_dict() plus the resolved deck fingerprint; journal
        fingerprints and store keys rely on this recipe."""
        import hashlib
        import json

        from repro.tech.process import get_process

        config = self._config()
        payload = dict(config.to_dict())
        payload["deck_fingerprint"] = (
            get_process(config.process).fingerprint())
        expected = hashlib.sha256(
            json.dumps(payload, sort_keys=True,
                       separators=(",", ":")).encode("utf-8")
        ).hexdigest()
        assert config.digest() == expected


class TestCifFuzzRoundTrip:
    def test_random_hierarchies_roundtrip(self):
        """Fuzz: random flat-shape cells under random placements must
        survive CIF export/import geometrically intact."""
        import random

        from repro.geometry import Point, Transform
        from repro.geometry.transform import ALL_ORIENTATIONS

        rng = random.Random(2024)
        for trial in range(15):
            leaf = Cell(f"leaf{trial}")
            for _ in range(rng.randrange(1, 6)):
                x, y = rng.randrange(-500, 500), rng.randrange(-500, 500)
                w, h = rng.randrange(1, 200), rng.randrange(1, 200)
                layer = rng.choice(["metal1", "metal2", "poly", "ndiff"])
                leaf.add_shape(layer, Rect(x, y, x + w, y + h))
            top = Cell(f"top{trial}")
            for _ in range(rng.randrange(1, 5)):
                top.add_instance(
                    leaf,
                    Transform(
                        rng.choice(ALL_ORIENTATIONS),
                        Point(rng.randrange(-2000, 2000),
                              rng.randrange(-2000, 2000)),
                    ),
                )
            import io

            buffer = io.StringIO()
            write_cif(top, buffer, PROCESS.layers)
            import tempfile, pathlib

            with tempfile.TemporaryDirectory() as tmp:
                path = pathlib.Path(tmp) / "f.cif"
                path.write_text(buffer.getvalue())
                got = read_cif(path, PROCESS.layers)
            assert _flat_shapes(got) == _flat_shapes(top), trial
