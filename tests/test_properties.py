"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bisr import Tlb, analyze_repair
from repro.bist import AddGen, DataGen, backgrounds_for_word
from repro.geometry import Point, Rect, Transform, total_area
from repro.geometry.transform import ALL_ORIENTATIONS, Orientation
from repro.pnr import Block, place_decreasing_area, placement_quality
from repro.yieldmodel import bisr_yield, repair_probability

coords = st.integers(min_value=-10_000, max_value=10_000)
points = st.builds(Point, coords, coords)
orientations = st.sampled_from(ALL_ORIENTATIONS)
transforms = st.builds(Transform, orientations, points)


def rects():
    return st.builds(
        lambda p, w, h: Rect(p.x, p.y, p.x + w, p.y + h),
        points,
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=0, max_value=5000),
    )


class TestGeometryProperties:
    @given(transforms, points)
    def test_inverse_is_left_and_right_inverse(self, t, p):
        assert t.inverse().apply(t.apply(p)) == p
        assert t.apply(t.inverse().apply(p)) == p

    @given(transforms, transforms, points)
    def test_compose_associates_with_application(self, t1, t2, p):
        assert t1.compose(t2).apply(p) == t1.apply(t2.apply(p))

    @given(rects(), transforms)
    def test_transform_preserves_area_and_shape(self, r, t):
        got = r.transformed(t)
        assert got.area == r.area
        assert {got.width, got.height} == {r.width, r.height}

    @given(rects(), rects())
    def test_intersection_within_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_rect(inter) and b.contains_rect(inter)

    @given(rects(), rects())
    def test_union_bbox_contains_both(self, a, b):
        u = a.union_bbox(b)
        assert u.contains_rect(a) and u.contains_rect(b)

    @given(rects(), rects())
    def test_spacing_symmetric(self, a, b):
        assert a.spacing_to(b) == b.spacing_to(a)

    @given(st.lists(rects(), max_size=12))
    def test_total_area_bounds(self, rs):
        union = total_area(rs)
        assert union <= sum(r.area for r in rs)
        if rs:
            assert union >= max(r.area for r in rs)


class TestBistProperties:
    @given(st.integers(min_value=1, max_value=10),
           st.booleans())
    def test_addgen_sweep_is_permutation(self, width, up):
        gen = AddGen(width)
        gen.reset(up=up)
        seq = list(gen.sequence())
        assert sorted(seq) == list(range(2 ** width))

    @given(st.sampled_from([1, 2, 4, 8, 16, 32, 64]))
    def test_background_count_is_log2_plus_one(self, bpw):
        assert len(backgrounds_for_word(bpw)) == \
            int(math.log2(bpw)) + 1

    @given(st.sampled_from([2, 4, 8, 16, 32]))
    def test_backgrounds_separate_every_bit_pair(self, bpw):
        patterns = backgrounds_for_word(bpw)
        for i in range(bpw):
            for j in range(i + 1, bpw):
                assert any(
                    ((p >> i) ^ (p >> j)) & 1 for p in patterns
                )

    @given(st.sampled_from([1, 2, 4, 8, 16]),
           st.integers(min_value=0, max_value=2 ** 16 - 1))
    def test_comparator_exact(self, bpw, word):
        dg = DataGen(bpw)
        word &= dg.mask
        assert dg.compare(word, 0) == (word != dg.pattern(0))


class TestTlbProperties:
    @given(st.lists(st.integers(min_value=0, max_value=63),
                    max_size=20),
           st.integers(min_value=1, max_value=16))
    def test_tlb_never_duplicates_and_spares_increase(self, rows, spares):
        tlb = Tlb(regular_rows=64, spares=spares)
        for row in rows:
            tlb.record(row)
        keys = [e.row for e in tlb.entries]
        assert len(keys) == len(set(keys))
        assigned = tlb.assigned_spares()
        assert assigned == sorted(assigned)
        assert tlb.spares_used <= spares

    @given(st.lists(st.integers(min_value=0, max_value=63),
                    unique=True, max_size=10),
           st.integers(min_value=1, max_value=16))
    def test_translate_total_function(self, rows, spares):
        tlb = Tlb(regular_rows=64, spares=spares)
        for row in rows:
            tlb.record(row)
        for probe in range(64):
            physical, diverted = tlb.translate(probe)
            if diverted:
                assert physical >= 64
            else:
                assert physical == probe

    @given(
        st.lists(st.integers(min_value=0, max_value=31), unique=True,
                 max_size=8),
        st.integers(min_value=1, max_value=16),
        st.sets(st.integers(min_value=0, max_value=15)),
    )
    def test_analysis_consistent(self, faulty_rows, spares, bad_spares):
        bad = {s for s in bad_spares if s < spares}
        result = analyze_repair(faulty_rows, spares, sorted(bad))
        assert result.spares_consumed <= spares
        if result.repairable:
            # Every assignment ends on a good spare.
            assert all(s not in bad for _, s in result.assignment)
            assert result.passes_needed >= 2
        if not faulty_rows:
            assert result.repairable


class TestYieldProperties:
    @given(
        st.integers(min_value=1, max_value=2048),
        st.integers(min_value=0, max_value=32),
        st.floats(min_value=0.0, max_value=0.01,
                  allow_nan=False),
    )
    def test_repair_probability_in_unit_interval(self, rows, spares, lam):
        p = repair_probability(rows, spares, lam, 16)
        assert 0.0 <= p <= 1.0

    @given(
        st.integers(min_value=16, max_value=512),
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    )
    def test_spares_never_hurt_badly(self, rows, defects):
        """4 spares can cost at most their own exposure; for any defect
        count the 4-spare yield is at least half the 0-spare yield and
        usually far above."""
        y0 = bisr_yield(rows, 0, 4, 4, defects)
        y4 = bisr_yield(rows, 4, 4, 4, defects,
                        growth_factor=1 + 4 / rows)
        assert y4 >= 0.5 * y0

    @given(st.floats(min_value=8.0, max_value=40.0, allow_nan=False))
    def test_yield_monotone_in_spares_when_capacity_binds(self, defects):
        """Once the expected faulty-row count exceeds the smaller spare
        budgets, more spares means more yield (Fig. 4's right side).
        At very low defect counts the ordering legitimately inverts —
        the spares-must-be-fault-free penalty — which is the same
        mechanism behind Fig. 5's reliability crossover."""
        ys = [
            bisr_yield(256, s, 4, 4, defects, growth_factor=1.0)
            for s in (0, 4, 8, 16)
        ]
        assert all(a <= b + 1e-9 for a, b in zip(ys, ys[1:]))

    def test_low_defect_inversion_exists(self):
        """The documented exception to the ordering above."""
        y4 = bisr_yield(256, 4, 4, 4, 1.0, growth_factor=1.0)
        y16 = bisr_yield(256, 16, 4, 4, 1.0, growth_factor=1.0)
        assert y16 < y4


class TestPlacerProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=2000),
                st.integers(min_value=1, max_value=2000),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=50)
    def test_placement_valid_for_any_block_set(self, sizes):
        blocks = [
            Block(f"b{i}", w, h) for i, (w, h) in enumerate(sizes)
        ]
        placement = place_decreasing_area(blocks)
        assert placement.overlaps() == []
        quality = placement_quality(placement, blocks)
        assert 0.0 < quality.fill_ratio <= 1.0
        # Outline must contain every block.
        outline = placement.outline()
        for rect in placement.locations.values():
            assert outline.contains_rect(rect)


class TestTransparencyProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=15),
                 min_size=32, max_size=32),
        st.sampled_from(["IFA-9", "MATS+", "March C-", "March Y"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_transparent_bist_preserves_any_contents(self, words, name):
        """For ANY initial memory image and any shipped march test, the
        transparent transformation passes on a clean memory and leaves
        the contents bit-identical."""
        from repro.bist.march import ALL_TESTS
        from repro.bist.transparent import TransparentBist
        from repro.memsim import BisrRam

        march = {t.name: t for t in ALL_TESTS}[name]
        device = BisrRam(rows=8, bpw=4, bpc=4, spares=4)
        for address, value in enumerate(words):
            device.write(address, value)
        result = TransparentBist(march, bpw=4).run(device)
        assert result.passed
        assert result.contents_preserved
        assert [device.read(a) for a in range(32)] == words


class TestStretchProperties:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=1000),
                      st.integers(min_value=0, max_value=200)),
            max_size=4,
        )
    )
    @settings(max_examples=40)
    def test_stretch_never_shrinks_and_preserves_other_axis(self, cuts):
        from repro.layout import Cell
        from repro.pnr import stretch_cell

        cell = Cell("s")
        cell.add_shape("metal1", Rect(0, 0, 50, 1000))
        cell.add_shape("poly", Rect(10, 100, 30, 300))
        got = stretch_cell(cell, cuts, axis="y")
        originals = sorted(cell.flatten())
        stretched = sorted(got.flatten())
        for (l1, r1), (l2, r2) in zip(originals, stretched):
            assert l1 == l2
            assert r2.width == r1.width          # other axis untouched
            assert r2.height >= r1.height        # never shrinks
            assert r2.y1 >= r1.y1                # only moves upward

    @given(st.integers(min_value=1, max_value=500))
    def test_stretch_by_zero_is_identity(self, position):
        from repro.layout import Cell
        from repro.pnr import stretch_cell

        cell = Cell("s")
        cell.add_shape("metal1", Rect(0, 0, 50, 1000))
        got = stretch_cell(cell, [(position, 0)])
        assert sorted(got.flatten()) == sorted(cell.flatten())


class TestColumnAddressingProperties:
    @given(
        st.sampled_from([1, 2, 4, 8]),
        st.sampled_from([1, 2, 4, 8]),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=40)
    def test_word_roundtrip_through_any_organisation(self, bpw, bpc,
                                                     rows):
        from repro.memsim import MemoryArray

        array = MemoryArray(rows=rows, bpw=bpw, bpc=bpc)
        mask = (1 << bpw) - 1
        for address in range(array.words):
            array.write_word(address, (address * 2654435761) & mask)
        for address in range(array.words):
            assert array.read_word(address) == \
                (address * 2654435761) & mask
