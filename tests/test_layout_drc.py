"""Unit tests for the DRC checker."""

import pytest

from repro.geometry import Rect
from repro.layout import Cell, DrcChecker
from repro.tech import get_process

PROCESS = get_process("cda07")  # lambda = 35 cu
LAM = PROCESS.lambda_cu


def checker():
    return DrcChecker(PROCESS)


class TestWidth:
    def test_wide_enough_passes(self):
        c = Cell("ok")
        c.add_shape("metal1", Rect(0, 0, 3 * LAM, 20 * LAM))
        assert checker().check(c) == []

    def test_too_narrow_flagged(self):
        c = Cell("bad")
        c.add_shape("metal1", Rect(0, 0, 3 * LAM - 1, 20 * LAM))
        violations = checker().check(c)
        assert len(violations) == 1
        assert violations[0].rule == "min-width"
        assert violations[0].layer == "metal1"
        assert violations[0].measured == 3 * LAM - 1

    def test_zero_area_markers_ignored(self):
        c = Cell("marker")
        c.add_shape("metal1", Rect(5, 0, 5, 100))
        assert checker().check(c) == []

    def test_layer_without_rule_ignored(self):
        c = Cell("odd")
        c.add_shape("glass", Rect(0, 0, 1, 1))
        assert checker().check(c) == []


class TestSpacing:
    def test_spaced_passes(self):
        c = Cell("ok")
        c.add_shape("metal1", Rect(0, 0, 3 * LAM, 3 * LAM))
        c.add_shape("metal1", Rect(6 * LAM, 0, 9 * LAM, 3 * LAM))
        assert checker().check(c) == []

    def test_close_pair_flagged(self):
        c = Cell("bad")
        c.add_shape("metal1", Rect(0, 0, 3 * LAM, 3 * LAM))
        c.add_shape("metal1", Rect(5 * LAM, 0, 8 * LAM, 3 * LAM))
        violations = checker().check(c)
        assert [v.rule for v in violations] == ["min-space"]
        assert violations[0].measured == 2 * LAM

    def test_touching_shapes_merge_no_violation(self):
        # A wide wire drawn as two overlapping rectangles must not be
        # flagged against itself.
        c = Cell("wire")
        c.add_shape("metal1", Rect(0, 0, 10 * LAM, 3 * LAM))
        c.add_shape("metal1", Rect(8 * LAM, 0, 20 * LAM, 3 * LAM))
        assert checker().check(c) == []

    def test_hierarchical_spacing_checked(self):
        child = Cell("child")
        child.add_shape("metal1", Rect(0, 0, 3 * LAM, 3 * LAM))
        top = Cell("top")
        from repro.geometry import Point, Transform

        top.add_instance(child, Transform())
        top.add_instance(
            child, Transform(translation=Point(4 * LAM, 0))
        )
        violations = checker().check(top)
        assert len(violations) == 1
        assert violations[0].measured == LAM


class TestEnclosure:
    def test_enclosed_contact_passes(self):
        c = Cell("ok")
        c.add_shape("contact", Rect(LAM, LAM, 3 * LAM, 3 * LAM))
        c.add_shape("metal1", Rect(0, 0, 4 * LAM, 4 * LAM))
        assert checker().check(c) == []

    def test_bare_contact_flagged(self):
        c = Cell("bad")
        c.add_shape("contact", Rect(0, 0, 2 * LAM, 2 * LAM))
        violations = checker().check(c)
        assert any(v.rule == "enclosure-metal1" for v in violations)

    def test_partial_enclosure_flagged(self):
        c = Cell("bad")
        c.add_shape("contact", Rect(LAM, LAM, 3 * LAM, 3 * LAM))
        # Metal flush with the cut on one side: margin 0 < 1 lambda.
        c.add_shape("metal1", Rect(LAM, 0, 4 * LAM, 4 * LAM))
        violations = checker().check(c)
        assert [v.rule for v in violations] == ["enclosure-metal1"]
        assert violations[0].measured == 0

    def test_via2_needs_both_metals(self):
        c = Cell("via2")
        c.add_shape("via2", Rect(2 * LAM, 2 * LAM, 4 * LAM, 4 * LAM))
        c.add_shape("metal2", Rect(0, 0, 6 * LAM, 6 * LAM))
        violations = checker().check(c)
        assert [v.rule for v in violations] == ["enclosure-metal3"]


class TestLimits:
    def test_max_violations_cap(self):
        c = Cell("noisy")
        for i in range(30):
            c.add_shape("metal1", Rect(i * 10 * LAM, 0,
                                       i * 10 * LAM + LAM, 10 * LAM))
        got = checker().check(c, max_violations=5)
        assert len(got) == 5

    def test_violation_str(self):
        c = Cell("bad")
        c.add_shape("metal1", Rect(0, 0, LAM, 10 * LAM))
        text = str(checker().check(c)[0])
        assert "min-width" in text and "metal1" in text


class TestGateGeometry:
    def _gate(self, poly_rect, diff_rect, diff_layer="ndiff"):
        c = Cell("gate")
        c.add_shape(diff_layer, diff_rect)
        c.add_shape("poly", poly_rect)
        return checker().check(c)

    def test_proper_gate_passes(self):
        # Vertical poly crossing a horizontal strip with 2-lambda caps.
        violations = self._gate(
            Rect(10 * LAM, 0, 12 * LAM, 10 * LAM),
            Rect(0, 2 * LAM, 30 * LAM, 8 * LAM),
        )
        assert violations == []

    def test_flush_endcap_flagged(self):
        violations = self._gate(
            Rect(10 * LAM, 2 * LAM, 12 * LAM, 10 * LAM),  # flush bottom
            Rect(0, 2 * LAM, 30 * LAM, 8 * LAM),
        )
        assert [v.rule for v in violations] == ["gate-endcap"]
        assert violations[0].measured == 0

    def test_short_endcap_flagged(self):
        violations = self._gate(
            Rect(10 * LAM, LAM, 12 * LAM, 10 * LAM),  # 1-lambda cap
            Rect(0, 2 * LAM, 30 * LAM, 8 * LAM),
        )
        assert [v.rule for v in violations] == ["gate-endcap"]
        assert violations[0].measured == LAM

    def test_poly_ending_inside_diffusion_flagged(self):
        violations = self._gate(
            Rect(10 * LAM, 4 * LAM, 12 * LAM, 6 * LAM),  # floats inside
            Rect(0, 2 * LAM, 30 * LAM, 8 * LAM),
        )
        assert [v.rule for v in violations] == ["gate-endcap"]

    def test_pdiff_gates_checked_too(self):
        violations = self._gate(
            Rect(10 * LAM, 2 * LAM, 12 * LAM, 10 * LAM),
            Rect(0, 2 * LAM, 30 * LAM, 8 * LAM),
            diff_layer="pdiff",
        )
        assert violations and violations[0].rule == "gate-endcap"

    def test_nonoverlapping_poly_ignored(self):
        violations = self._gate(
            Rect(40 * LAM, 0, 42 * LAM, 10 * LAM),
            Rect(0, 2 * LAM, 30 * LAM, 8 * LAM),
        )
        assert violations == []
