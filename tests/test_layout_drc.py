"""Unit tests for the DRC checker."""

import pytest

from repro.geometry import Rect
from repro.layout import Cell, DrcChecker
from repro.tech import get_process

PROCESS = get_process("cda07")  # lambda = 35 cu
LAM = PROCESS.lambda_cu


def checker():
    return DrcChecker(PROCESS)


class TestWidth:
    def test_wide_enough_passes(self):
        c = Cell("ok")
        c.add_shape("metal1", Rect(0, 0, 3 * LAM, 20 * LAM))
        assert checker().check(c) == []

    def test_too_narrow_flagged(self):
        c = Cell("bad")
        c.add_shape("metal1", Rect(0, 0, 3 * LAM - 1, 20 * LAM))
        violations = checker().check(c)
        assert len(violations) == 1
        assert violations[0].rule == "min-width"
        assert violations[0].layer == "metal1"
        assert violations[0].measured == 3 * LAM - 1

    def test_zero_area_markers_ignored(self):
        c = Cell("marker")
        c.add_shape("metal1", Rect(5, 0, 5, 100))
        assert checker().check(c) == []

    def test_layer_without_rule_ignored(self):
        c = Cell("odd")
        c.add_shape("glass", Rect(0, 0, 1, 1))
        assert checker().check(c) == []


class TestSpacing:
    def test_spaced_passes(self):
        c = Cell("ok")
        c.add_shape("metal1", Rect(0, 0, 3 * LAM, 3 * LAM))
        c.add_shape("metal1", Rect(6 * LAM, 0, 9 * LAM, 3 * LAM))
        assert checker().check(c) == []

    def test_close_pair_flagged(self):
        c = Cell("bad")
        c.add_shape("metal1", Rect(0, 0, 3 * LAM, 3 * LAM))
        c.add_shape("metal1", Rect(5 * LAM, 0, 8 * LAM, 3 * LAM))
        violations = checker().check(c)
        assert [v.rule for v in violations] == ["min-space"]
        assert violations[0].measured == 2 * LAM

    def test_touching_shapes_merge_no_violation(self):
        # A wide wire drawn as two overlapping rectangles must not be
        # flagged against itself.
        c = Cell("wire")
        c.add_shape("metal1", Rect(0, 0, 10 * LAM, 3 * LAM))
        c.add_shape("metal1", Rect(8 * LAM, 0, 20 * LAM, 3 * LAM))
        assert checker().check(c) == []

    def test_hierarchical_spacing_checked(self):
        child = Cell("child")
        child.add_shape("metal1", Rect(0, 0, 3 * LAM, 3 * LAM))
        top = Cell("top")
        from repro.geometry import Point, Transform

        top.add_instance(child, Transform())
        top.add_instance(
            child, Transform(translation=Point(4 * LAM, 0))
        )
        violations = checker().check(top)
        assert len(violations) == 1
        assert violations[0].measured == LAM


class TestEnclosure:
    def test_enclosed_contact_passes(self):
        c = Cell("ok")
        c.add_shape("contact", Rect(LAM, LAM, 3 * LAM, 3 * LAM))
        c.add_shape("metal1", Rect(0, 0, 4 * LAM, 4 * LAM))
        assert checker().check(c) == []

    def test_bare_contact_flagged(self):
        c = Cell("bad")
        c.add_shape("contact", Rect(0, 0, 2 * LAM, 2 * LAM))
        violations = checker().check(c)
        assert any(v.rule == "enclosure-metal1" for v in violations)

    def test_partial_enclosure_flagged(self):
        c = Cell("bad")
        c.add_shape("contact", Rect(LAM, LAM, 3 * LAM, 3 * LAM))
        # Metal flush with the cut on one side: margin 0 < 1 lambda.
        c.add_shape("metal1", Rect(LAM, 0, 4 * LAM, 4 * LAM))
        violations = checker().check(c)
        assert [v.rule for v in violations] == ["enclosure-metal1"]
        assert violations[0].measured == 0

    def test_via2_needs_both_metals(self):
        c = Cell("via2")
        c.add_shape("via2", Rect(2 * LAM, 2 * LAM, 4 * LAM, 4 * LAM))
        c.add_shape("metal2", Rect(0, 0, 6 * LAM, 6 * LAM))
        violations = checker().check(c)
        assert [v.rule for v in violations] == ["enclosure-metal3"]


class TestLimits:
    def test_max_violations_cap(self):
        c = Cell("noisy")
        for i in range(30):
            c.add_shape("metal1", Rect(i * 10 * LAM, 0,
                                       i * 10 * LAM + LAM, 10 * LAM))
        got = checker().check(c, max_violations=5)
        assert len(got) == 5

    def test_violation_str(self):
        c = Cell("bad")
        c.add_shape("metal1", Rect(0, 0, LAM, 10 * LAM))
        text = str(checker().check(c)[0])
        assert "min-width" in text and "metal1" in text


class TestGateGeometry:
    def _gate(self, poly_rect, diff_rect, diff_layer="ndiff"):
        c = Cell("gate")
        c.add_shape(diff_layer, diff_rect)
        c.add_shape("poly", poly_rect)
        return checker().check(c)

    def test_proper_gate_passes(self):
        # Vertical poly crossing a horizontal strip with 2-lambda caps.
        violations = self._gate(
            Rect(10 * LAM, 0, 12 * LAM, 10 * LAM),
            Rect(0, 2 * LAM, 30 * LAM, 8 * LAM),
        )
        assert violations == []

    def test_flush_endcap_flagged(self):
        violations = self._gate(
            Rect(10 * LAM, 2 * LAM, 12 * LAM, 10 * LAM),  # flush bottom
            Rect(0, 2 * LAM, 30 * LAM, 8 * LAM),
        )
        assert [v.rule for v in violations] == ["gate-endcap"]
        assert violations[0].measured == 0

    def test_short_endcap_flagged(self):
        violations = self._gate(
            Rect(10 * LAM, LAM, 12 * LAM, 10 * LAM),  # 1-lambda cap
            Rect(0, 2 * LAM, 30 * LAM, 8 * LAM),
        )
        assert [v.rule for v in violations] == ["gate-endcap"]
        assert violations[0].measured == LAM

    def test_poly_ending_inside_diffusion_flagged(self):
        violations = self._gate(
            Rect(10 * LAM, 4 * LAM, 12 * LAM, 6 * LAM),  # floats inside
            Rect(0, 2 * LAM, 30 * LAM, 8 * LAM),
        )
        assert [v.rule for v in violations] == ["gate-endcap"]

    def test_pdiff_gates_checked_too(self):
        violations = self._gate(
            Rect(10 * LAM, 2 * LAM, 12 * LAM, 10 * LAM),
            Rect(0, 2 * LAM, 30 * LAM, 8 * LAM),
            diff_layer="pdiff",
        )
        assert violations and violations[0].rule == "gate-endcap"

    def test_nonoverlapping_poly_ignored(self):
        violations = self._gate(
            Rect(40 * LAM, 0, 42 * LAM, 10 * LAM),
            Rect(0, 2 * LAM, 30 * LAM, 8 * LAM),
        )
        assert violations == []


class TestCornerTouch:
    """The deck's ``touch.corner`` rule: do corner-only contacts conduct?"""

    def _corner_pair(self):
        c = Cell("diag")
        c.add_shape("metal1", Rect(0, 0, 3 * LAM, 3 * LAM))
        c.add_shape("metal1", Rect(3 * LAM, 3 * LAM, 6 * LAM, 6 * LAM))
        return c

    def _process_with(self, corner_touch):
        from dataclasses import replace

        from repro.tech.rules import DesignRules

        rules = dict(PROCESS.rules.rules)
        rules["touch.corner"] = corner_touch
        return replace(
            PROCESS, rules=DesignRules(PROCESS.lambda_cu, rules))

    def test_corner_contact_conducts_by_default(self):
        assert PROCESS.rules.corner_touch_connects()
        assert checker().check(self._corner_pair()) == []

    def test_corner_contact_flagged_when_deck_forbids(self):
        strict = DrcChecker(self._process_with(0))
        violations = strict.check(self._corner_pair())
        assert [v.rule for v in violations] == ["min-space"]
        assert violations[0].measured == 0

    def test_rule_is_not_lambda_scaled(self):
        from repro.tech.rules import DesignRules

        for lam in (25, 30, 35, 40):
            assert DesignRules.scalable(lam).rules["touch.corner"] == 1

    def test_diagonal_spacing_uses_larger_gap(self):
        # Corner-to-corner spacing: 1 lambda diagonal separation is
        # measured as max(dx, dy), so a 1x2-lambda offset reads 2.
        c = Cell("diag_gap")
        c.add_shape("metal1", Rect(0, 0, 3 * LAM, 3 * LAM))
        c.add_shape("metal1",
                    Rect(4 * LAM, 5 * LAM, 7 * LAM, 8 * LAM))
        violations = checker().check(c)
        assert [v.rule for v in violations] == ["min-space"]
        assert violations[0].measured == 2 * LAM


class TestKnownDirtyFixture:
    """Regression: a fixture with every violation class, checked exactly."""

    def _dirty_cell(self):
        c = Cell("known_dirty")
        # min-width: metal1 one cu too narrow.
        c.add_shape("metal1", Rect(0, 0, 3 * LAM - 1, 20 * LAM))
        # min-space: metal2 pair 2 lambda apart (rule is 4).
        c.add_shape("metal2", Rect(0, 30 * LAM, 3 * LAM, 33 * LAM))
        c.add_shape("metal2", Rect(5 * LAM, 30 * LAM, 8 * LAM, 33 * LAM))
        # enclosure: a bare contact cut with no metal1 around it.
        c.add_shape("contact", Rect(50 * LAM, 0, 52 * LAM, 2 * LAM))
        # gate-endcap: poly stops flush with the diffusion edge.
        c.add_shape("ndiff", Rect(30 * LAM, 30 * LAM, 40 * LAM, 34 * LAM))
        c.add_shape("poly", Rect(33 * LAM, 30 * LAM, 35 * LAM, 40 * LAM))
        return c

    def test_exact_violation_list(self):
        violations = checker().check(self._dirty_cell())
        got = sorted(
            (v.rule, v.layer, v.measured, v.required) for v in violations)
        rules = PROCESS.rules.rules
        expected = sorted([
            ("min-width", "metal1", 3 * LAM - 1, rules["width.metal1"]),
            ("min-space", "metal2", 2 * LAM, rules["space.metal2"]),
            ("enclosure-metal1", "contact", -1,
             rules["enclose.metal1_contact"]),
            ("gate-endcap", "poly", 0, rules["overhang.gate_poly"]),
        ])
        assert got == expected

    def test_round_trips_through_json(self):
        import json

        from repro.layout.drc import DrcViolation

        for v in checker().check(self._dirty_cell()):
            assert DrcViolation.from_dict(
                json.loads(json.dumps(v.to_dict()))) == v
