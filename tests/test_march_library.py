"""Tests for the extended march-test library (March X/Y/B) and the
ability to microprogram and run every shipped test end to end."""

import pytest

from repro.bist.march import (
    ALL_TESTS,
    MARCH_B,
    MARCH_C_MINUS,
    MARCH_X,
    MARCH_Y,
    MATS_PLUS,
)
from repro.bist.controller import (
    BistScheduler,
    TrplaController,
    build_test_program,
)
from repro.bist.microcode import assemble
from repro.memsim import BisrRam
from repro.memsim.coverage import coverage_campaign
from repro.memsim.faults import RowStuck


class TestLibraryStructure:
    def test_lengths(self):
        assert MARCH_X.operations_per_address == 6
        assert MARCH_Y.operations_per_address == 8
        assert MARCH_B.operations_per_address == 17

    def test_classic_ordering(self):
        lengths = [
            MATS_PLUS.operations_per_address,
            MARCH_X.operations_per_address,
            MARCH_Y.operations_per_address,
            MARCH_C_MINUS.operations_per_address,
            MARCH_B.operations_per_address,
        ]
        assert lengths == sorted(lengths)

    def test_all_tests_unique_names(self):
        names = [t.name for t in ALL_TESTS]
        assert len(names) == len(set(names))


@pytest.mark.parametrize("march", ALL_TESTS, ids=lambda t: t.name)
class TestEveryTestRunsEndToEnd:
    def test_microprograms_within_budget(self, march):
        program = build_test_program(march, passes=2)
        assert program.state_bits <= 7  # March B is the largest
        assemble(program)  # must lower without error

    def test_controller_equals_scheduler(self, march):
        d1 = BisrRam(rows=4, bpw=2, bpc=2, spares=4)
        d2 = BisrRam(rows=4, bpw=2, bpc=2, spares=4)
        r1 = BistScheduler(march, bpw=2, record_ops=True).run(d1)
        r2 = TrplaController(march, bpw=2, target=d2,
                             record_ops=True).run()
        assert r1.ops == r2.ops

    def test_repairs_a_dead_row(self, march):
        device = BisrRam(rows=8, bpw=4, bpc=4, spares=4)
        device.array.inject(RowStuck(3, device.array.phys_cols, 1))
        result = BistScheduler(march, bpw=4).run(device)
        assert result.repaired
        assert 3 in device.tlb.mapped_rows()


class TestRelativeCoverage:
    KW = dict(samples_per_kind=10, rows=8, bpw=4, bpc=2, seed=41)

    def test_march_y_catches_transitions_x_level(self):
        y = coverage_campaign(MARCH_Y, kinds=("transition",), **self.KW)
        assert y.coverage("transition") == 1.0

    def test_march_b_catches_idempotent_couplings(self):
        b = coverage_campaign(
            MARCH_B, kinds=("idempotent_coupling",), **self.KW
        )
        assert b.coverage("idempotent_coupling") >= 0.9

    def test_none_of_the_new_tests_catch_retention(self):
        for march in (MARCH_X, MARCH_Y, MARCH_B):
            report = coverage_campaign(
                march, kinds=("data_retention",), **self.KW
            )
            assert report.coverage("data_retention") == 0.0, march.name
