"""Unit tests for the transient engine, waveforms, and measurements."""

import numpy as np
import pytest

from repro.circuit import GND, Netlist
from repro.spice import (
    Pwl,
    TransientEngine,
    crossing_time,
    fall_time,
    propagation_delay,
    pulse,
    rise_time,
    step,
)
from repro.tech import get_process

PROCESS = get_process("cda07")
VDD = PROCESS.vdd


class TestWaveforms:
    def test_pwl_interpolation(self):
        w = Pwl([(0.0, 0.0), (1.0, 2.0)])
        assert w(0.5) == pytest.approx(1.0)

    def test_pwl_holds_ends(self):
        w = Pwl([(1.0, 3.0), (2.0, 5.0)])
        assert w(0.0) == 3.0
        assert w(10.0) == 5.0

    def test_pwl_monotone_times_required(self):
        with pytest.raises(ValueError):
            Pwl([(0.0, 0.0), (0.0, 1.0)])

    def test_step(self):
        w = step(1e-9, 0.0, 5.0, t_rise=100e-12)
        assert w(0.9e-9) == 0.0
        assert w(1.2e-9) == 5.0

    def test_pulse_shape(self):
        w = pulse(1e-9, 2e-9, 0.0, 5.0, t_edge=100e-12)
        assert w(0.5e-9) == 0.0
        assert w(2e-9) == 5.0
        assert w(4e-9) == 0.0

    def test_pulse_width_validated(self):
        with pytest.raises(ValueError):
            pulse(0.0, 1e-10, 0.0, 5.0, t_edge=100e-12)


class TestEngineRC:
    def test_rc_discharge_time_constant(self):
        # 1 kohm / 100 fF: V(t) = V0 exp(-t/RC), RC = 100 ps.
        net = Netlist()
        net.add_resistor("a", GND, 1000.0)
        net.add_capacitor("a", GND, 100e-15)
        engine = TransientEngine(net, cmin=1e-18)
        result = engine.run(300e-12, record=["a"], initial={"a": 1.0})
        t_half = crossing_time(result, "a", 0.5, rising=False)
        assert t_half == pytest.approx(100e-12 * np.log(2), rel=0.05)

    def test_source_pins_node(self):
        net = Netlist()
        net.add_source("s", 3.3)
        net.add_resistor("s", "a", 1000.0)
        net.add_capacitor("a", GND, 50e-15)
        result = TransientEngine(net).run(5e-9, record=["a", "s"])
        assert result.final("s") == pytest.approx(3.3)
        assert result.final("a") == pytest.approx(3.3, rel=0.02)

    def test_source_on_ground_rejected(self):
        net = Netlist()
        net.add_source(GND, 1.0)
        net.add_resistor(GND, "a", 1.0)
        with pytest.raises(ValueError):
            TransientEngine(net)

    def test_unknown_record_node(self):
        net = Netlist()
        net.add_resistor("a", GND, 1.0)
        with pytest.raises(KeyError):
            TransientEngine(net).run(1e-9, record=["zz"])

    def test_bad_t_stop(self):
        net = Netlist()
        net.add_resistor("a", GND, 1.0)
        with pytest.raises(ValueError):
            TransientEngine(net).run(0.0)


class TestEngineInverter:
    def _inverter_net(self):
        net = Netlist()
        net.add_source("vdd", VDD)
        net.add_source("in", step(0.5e-9, 0.0, VDD))
        net.add_inverter("in", "out", PROCESS.nmos, PROCESS.pmos, 2.0, 5.0)
        net.add_capacitor("out", GND, 20e-15)
        return net

    def test_inverter_switches(self):
        result = TransientEngine(self._inverter_net()).run(
            4e-9, record=["in", "out"], initial={"out": VDD}
        )
        assert result.final("out") < 0.1 * VDD

    def test_propagation_delay_positive_and_small(self):
        result = TransientEngine(self._inverter_net()).run(
            4e-9, record=["in", "out"], initial={"out": VDD}
        )
        d = propagation_delay(result, "in", "out", VDD,
                              input_rising=True, output_rising=False)
        assert 1e-12 < d < 1e-9

    def test_ring_behaviour_static_high_input(self):
        # Static low input -> output charges to VDD.
        net = Netlist()
        net.add_source("vdd", VDD)
        net.add_source("in", 0.0)
        net.add_inverter("in", "out", PROCESS.nmos, PROCESS.pmos, 2.0, 5.0)
        net.add_capacitor("out", GND, 10e-15)
        result = TransientEngine(net).run(5e-9, record=["out"])
        assert result.final("out") > 0.9 * VDD


class TestMeasurements:
    def _ramp_result(self):
        net = Netlist()
        net.add_source("x", Pwl([(0, 0.0), (1e-9, 5.0)]))
        net.add_resistor("x", "y", 1e6)
        net.add_capacitor("y", GND, 1e-18)
        return TransientEngine(net).run(2e-9, record=["x"])

    def test_crossing_time_linear(self):
        result = self._ramp_result()
        t = crossing_time(result, "x", 2.5, rising=True)
        assert t == pytest.approx(0.5e-9, rel=0.02)

    def test_crossing_none_when_absent(self):
        result = self._ramp_result()
        assert crossing_time(result, "x", 2.5, rising=False) is None

    def test_rise_time_of_ramp(self):
        result = self._ramp_result()
        # 10%..90% of a linear 1 ns ramp = 0.8 ns.
        assert rise_time(result, "x", 5.0) == pytest.approx(0.8e-9, rel=0.05)

    def test_fall_time_error_when_no_fall(self):
        result = self._ramp_result()
        with pytest.raises(ValueError):
            fall_time(result, "x", 5.0)

    def test_propagation_delay_raises_on_stuck_output(self):
        net = Netlist()
        net.add_source("in", step(0.1e-9, 0.0, 5.0))
        net.add_capacitor("out", GND, 1e-15)
        net.add_resistor("out", GND, 1e3)
        result = TransientEngine(net).run(1e-9, record=["in", "out"])
        with pytest.raises(ValueError):
            propagation_delay(result, "in", "out", 5.0, True, True)
