"""Unit tests for the BISR device and the defect injector."""

import random

import pytest

from repro.memsim import BisrRam, DefectInjector, FaultMix
from repro.memsim.faults import RowStuck, StuckAt


class TestBisrRam:
    def test_word_count_is_regular_space(self):
        d = BisrRam(rows=8, bpw=4, bpc=4, spares=4)
        assert d.word_count == 32

    def test_needs_spares(self):
        with pytest.raises(ValueError):
            BisrRam(rows=8, bpw=4, bpc=4, spares=0)

    def test_no_diversion_without_repair_mode(self):
        d = BisrRam(rows=8, bpw=4, bpc=4, spares=4)
        d.tlb.record(2)
        d.write(2 * 4, 0xF)
        assert d.diversion_count == 0
        assert d.array.read_word(2 * 4) == 0xF  # landed in the real row

    def test_diversion_in_repair_mode(self):
        d = BisrRam(rows=8, bpw=4, bpc=4, spares=4)
        d.tlb.record(2)
        d.set_repair_mode(True)
        d.write(2 * 4, 0xF)
        assert d.diversion_count == 1
        # The data landed in spare row 8, column 0.
        assert d.array.read_word(2 * 4, row_override=8) == 0xF
        assert d.array.read_word(2 * 4) == 0

    def test_record_fail_maps_row(self):
        d = BisrRam(rows=8, bpw=4, bpc=4, spares=4)
        d.record_fail(2 * 4 + 3)   # address in row 2
        assert d.tlb.mapped_rows() == {2: 8}

    def test_record_fail_remaps_only_in_repair_mode(self):
        d = BisrRam(rows=8, bpw=4, bpc=4, spares=4)
        d.record_fail(8)
        d.record_fail(8)
        assert d.tlb.spares_used == 1
        d.set_repair_mode(True)
        d.record_fail(8)
        assert d.tlb.spares_used == 2

    def test_remap_guard_once_per_pass(self):
        d = BisrRam(rows=8, bpw=4, bpc=4, spares=4)
        d.record_fail(8)
        d.set_repair_mode(True)
        d.record_fail(8)
        d.record_fail(8)   # echo within the same pass: swallowed
        assert d.tlb.spares_used == 2
        d.set_repair_mode(True)  # new pass re-arms
        d.record_fail(8)
        assert d.tlb.spares_used == 3

    def test_check_pattern_clean(self):
        d = BisrRam(rows=4, bpw=4, bpc=2, spares=4)
        assert d.check_pattern(0b1010) == 0

    def test_check_pattern_sees_faults(self):
        d = BisrRam(rows=4, bpw=4, bpc=2, spares=4)
        d.array.inject(StuckAt(d.array.cell_index(1, 0, 0), 1))
        assert d.check_pattern(0) == 1

    def test_repair_hides_faults_from_normal_mode(self):
        d = BisrRam(rows=4, bpw=4, bpc=2, spares=4)
        d.array.inject(RowStuck(1, d.array.phys_cols, 1))
        d.tlb.record(1)
        d.set_repair_mode(True)
        assert d.check_pattern(0) == 0

    def test_reset_for_test(self):
        d = BisrRam(rows=4, bpw=4, bpc=2, spares=4)
        d.tlb.record(1)
        d.set_repair_mode(True)
        d.reset_for_test()
        assert len(d.tlb) == 0 and not d.repair_mode

    def test_describe(self):
        d = BisrRam(rows=4, bpw=4, bpc=2, spares=4)
        assert "rows=4" in d.describe()


class TestFaultMix:
    def test_default_weights_positive(self):
        assert all(w >= 0 for w in FaultMix().weights())

    def test_weights_order_matches_kinds(self):
        mix = FaultMix(stuck_at=1.0, transition=0.0, stuck_open=0.0,
                       state_coupling=0.0, idempotent_coupling=0.0,
                       inversion_coupling=0.0, data_retention=0.0,
                       row_defect=0.0, column_defect=0.0)
        assert mix.weights()[0] == 1.0
        assert sum(mix.weights()) == 1.0


class TestInjector:
    def test_reproducible_with_seed(self):
        from repro.memsim import MemoryArray

        def run(seed):
            a = MemoryArray(8, 4, 4, spares=2)
            inj = DefectInjector(rng=random.Random(seed))
            faults = inj.inject(a, 20)
            return [f.describe() for f in faults]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_count(self):
        from repro.memsim import MemoryArray

        a = MemoryArray(8, 4, 4, spares=2)
        faults = DefectInjector(rng=random.Random(0)).inject(a, 15)
        assert len(faults) == 15
        assert len(a.faults) == 15

    def test_pure_mix(self):
        from repro.memsim import MemoryArray
        from repro.memsim.faults import StuckAt as SA

        a = MemoryArray(8, 4, 4)
        mix = FaultMix(stuck_at=1.0, transition=0, stuck_open=0,
                       state_coupling=0, idempotent_coupling=0,
                       inversion_coupling=0, data_retention=0,
                       row_defect=0, column_defect=0)
        faults = DefectInjector(rng=random.Random(0), mix=mix).inject(a, 10)
        assert all(isinstance(f, SA) for f in faults)

    def test_spare_rows_immune_option(self):
        from repro.memsim import MemoryArray

        a = MemoryArray(8, 4, 4, spares=4)
        inj = DefectInjector(rng=random.Random(1))
        inj.inject(a, 50, spare_rows_immune=True)
        assert all(r < a.rows for r in a.faulty_rows())

    def test_make_fault_kinds(self):
        from repro.memsim import MemoryArray

        a = MemoryArray(8, 4, 4)
        inj = DefectInjector(rng=random.Random(0))
        for kind in ("stuck_at", "transition", "stuck_open",
                     "state_coupling", "idempotent_coupling",
                     "inversion_coupling", "data_retention",
                     "row_defect", "column_defect"):
            fault = inj.make_fault(a, kind, 5)
            assert fault.cells()

    def test_unknown_kind(self):
        from repro.memsim import MemoryArray

        a = MemoryArray(8, 4, 4)
        with pytest.raises(ValueError):
            DefectInjector().make_fault(a, "gamma_ray", 0)

    def test_clustering_validation(self):
        with pytest.raises(ValueError):
            DefectInjector(clustering=-1)

    def test_clustered_injection_concentrates(self):
        from repro.memsim import MemoryArray

        rng = random.Random(3)
        a_uniform = MemoryArray(64, 4, 4)
        a_clustered = MemoryArray(64, 4, 4)
        DefectInjector(rng=random.Random(3)).inject(a_uniform, 40)
        DefectInjector(
            rng=random.Random(3), clustering=20.0
        ).inject(a_clustered, 40)
        assert len(a_clustered.faulty_rows()) <= len(a_uniform.faulty_rows())
