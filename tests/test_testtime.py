"""Unit tests for the test-application-time / DATAGEN hardware model."""

import pytest

from repro.bist import IFA_9, MATS_PLUS
from repro.bist.testtime import backgrounds_for_scheme
from repro.bist.testtime import datagen_hardware, retention_wait_total
from repro.bist.testtime import test_application_time as application_time


class TestBackgroundsForScheme:
    def test_counts(self):
        assert backgrounds_for_scheme(32, "single") == 1
        assert backgrounds_for_scheme(32, "johnson") == 6
        assert backgrounds_for_scheme(32, "walking") == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            backgrounds_for_scheme(12, "johnson")
        with pytest.raises(ValueError):
            backgrounds_for_scheme(8, "gray")


class TestApplicationTime:
    def test_operation_count(self):
        tt = application_time(IFA_9, words=1024, bpw=4,
                                   cycle_s=10e-9, passes=1)
        assert tt.operations == 12 * 1024 * 3

    def test_retention_dominates_for_ifa(self):
        """At 100 ms per pause, the two Delay elements dwarf the march
        operations for any realistic array — why the paper needs the
        processor handshake rather than a counter."""
        tt = application_time(IFA_9, words=4096, bpw=32,
                                   cycle_s=10e-9)
        assert tt.retention_time_s > 10 * tt.op_time_s

    def test_mats_has_no_retention_cost(self):
        tt = application_time(MATS_PLUS, words=1024, bpw=4,
                                   cycle_s=10e-9)
        assert tt.retention_time_s == 0.0
        assert tt.total_s == tt.op_time_s

    def test_scheme_scales_time(self):
        kw = dict(words=1024, bpw=32, cycle_s=10e-9)
        single = application_time(IFA_9, scheme="single", **kw)
        johnson = application_time(IFA_9, scheme="johnson", **kw)
        walking = application_time(IFA_9, scheme="walking", **kw)
        assert single.operations < johnson.operations < \
            walking.operations
        assert johnson.operations == 6 * single.operations
        assert walking.operations == 32 * single.operations

    def test_validation(self):
        with pytest.raises(ValueError):
            application_time(IFA_9, words=0, bpw=4, cycle_s=1e-8)
        with pytest.raises(ValueError):
            application_time(IFA_9, words=8, bpw=4, cycle_s=0)


class TestHardwareCost:
    def test_johnson_cheaper_than_walking(self):
        """The paper's claim: log2(bpw)+1 backgrounds need less
        hardware than bpw patterns."""
        for bpw in (8, 32, 128):
            johnson = datagen_hardware(bpw, "johnson")
            walking = datagen_hardware(bpw, "walking")
            assert johnson["flip_flops"] < walking["flip_flops"]

    def test_gap_grows_with_word_width(self):
        gap8 = datagen_hardware(8, "walking")["flip_flops"] - \
            datagen_hardware(8, "johnson")["flip_flops"]
        gap128 = datagen_hardware(128, "walking")["flip_flops"] - \
            datagen_hardware(128, "johnson")["flip_flops"]
        assert gap128 > 10 * gap8

    def test_single_is_free(self):
        assert datagen_hardware(32, "single")["flip_flops"] == 0

    def test_retention_total(self):
        total = retention_wait_total(IFA_9, bpw=4, passes=2)
        # 2 delays x 3 backgrounds x 2 passes x 100 ms.
        assert total == pytest.approx(1.2)
