"""Intermittent/wearout fault models: behaviour and determinism."""

import pytest

from repro.core.errors import ConfigError
from repro.memsim import (
    BisrRam,
    IntermittentReadFlip,
    IntermittentStuckAt,
    MemoryArray,
    WearoutStuckAt,
)


def read_bit(array, cell, times):
    """Read one cell ``times`` times through the word path."""
    row = cell // array.phys_cols
    offset = cell % array.phys_cols
    bit = offset // array.bpc
    column = offset % array.bpc
    address = row * array.bpc + column
    return [(array.read_word(address) >> bit) & 1 for _ in range(times)]


class TestIntermittentStuckAt:
    def test_probability_one_acts_like_stuck_at(self):
        array = MemoryArray(rows=4, bpw=4, bpc=4)
        cell = array.cell_index(1, 2, 3)
        array.inject(IntermittentStuckAt(cell, 1, probability=1.0))
        array.fill(0)
        assert read_bit(array, cell, 20) == [1] * 20

    def test_probability_zero_is_silent(self):
        array = MemoryArray(rows=4, bpw=4, bpc=4)
        cell = array.cell_index(1, 2, 3)
        array.inject(IntermittentStuckAt(cell, 1, probability=0.0))
        array.fill(0)
        assert read_bit(array, cell, 20) == [0] * 20

    def test_half_probability_flickers(self):
        array = MemoryArray(rows=4, bpw=4, bpc=4)
        cell = array.cell_index(1, 2, 3)
        fault = IntermittentStuckAt(cell, 1, probability=0.5, seed=1)
        array.inject(fault)
        array.fill(0)
        values = read_bit(array, cell, 200)
        # Flickers: both values observed, roughly balanced.
        assert 50 < sum(values) < 150
        assert fault.activations == sum(values)

    def test_storage_stays_intact(self):
        array = MemoryArray(rows=4, bpw=4, bpc=4)
        cell = array.cell_index(1, 2, 3)
        array.inject(IntermittentStuckAt(cell, 1, probability=0.5, seed=1))
        array.fill(0)
        read_bit(array, cell, 50)
        assert array.raw(cell) == 0  # the write path never lied

    def test_probability_validated(self):
        with pytest.raises(ConfigError):
            IntermittentStuckAt(0, 1, probability=1.5)
        with pytest.raises(ConfigError):
            IntermittentReadFlip(0, probability=-0.1)


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        def run(seed):
            array = MemoryArray(rows=4, bpw=4, bpc=4)
            cell = array.cell_index(2, 1, 0)
            array.inject(
                IntermittentStuckAt(cell, 1, probability=0.5, seed=seed)
            )
            array.fill(0)
            return read_bit(array, cell, 100)

        assert run(42) == run(42)
        assert run(42) != run(43)

    def test_stream_independent_of_other_faults(self):
        # The per-fault RNG stream must not shift when an unrelated
        # fault is present elsewhere in the array.
        def run(extra_fault):
            array = MemoryArray(rows=4, bpw=4, bpc=4)
            cell = array.cell_index(2, 1, 0)
            array.inject(
                IntermittentStuckAt(cell, 1, probability=0.5, seed=5)
            )
            if extra_fault:
                other = array.cell_index(0, 0, 0)
                array.inject(
                    IntermittentReadFlip(other, probability=0.5, seed=6)
                )
            array.fill(0)
            return read_bit(array, cell, 100)

        assert run(False) == run(True)

    def test_full_campaign_replays(self):
        from repro.bist import IFA_9
        from repro.bisr import RepairSupervisor

        def campaign():
            device = BisrRam(rows=8, bpw=8, bpc=4, spares=4)
            cell = device.array.cell_index(3, 2, 1)
            device.array.inject(
                IntermittentStuckAt(cell, 1, probability=0.5, seed=7)
            )
            result = RepairSupervisor(IFA_9, bpw=8).run(device)
            return (result.repaired, result.spares_used,
                    result.confirmed_rows, result.rejected_addresses,
                    result.probe_reads)

        assert campaign() == campaign()


class TestWearout:
    def test_silent_before_onset(self):
        array = MemoryArray(rows=4, bpw=4, bpc=4)
        cell = array.cell_index(1, 1, 1)
        array.inject(WearoutStuckAt(cell, 1, onset=50, ramp=10, seed=2))
        array.fill(0)
        assert read_bit(array, cell, 50) == [0] * 50

    def test_solid_after_ramp(self):
        array = MemoryArray(rows=4, bpw=4, bpc=4)
        cell = array.cell_index(1, 1, 1)
        fault = WearoutStuckAt(cell, 1, onset=10, ramp=10, seed=2)
        array.inject(fault)
        array.fill(0)
        read_bit(array, cell, 30)  # age past onset + ramp
        assert fault.activation_probability == 1.0
        assert read_bit(array, cell, 10) == [1] * 10

    def test_retention_pause_ages_the_cell(self):
        array = MemoryArray(rows=4, bpw=4, bpc=4)
        cell = array.cell_index(1, 1, 1)
        fault = WearoutStuckAt(cell, 1, onset=100, ramp=10,
                               age_per_wait=50, seed=2)
        array.inject(fault)
        array.apply_retention()
        array.apply_retention()
        assert fault.age == 100

    def test_parameters_validated(self):
        with pytest.raises(ConfigError):
            WearoutStuckAt(0, 1, onset=-1)
        with pytest.raises(ConfigError):
            WearoutStuckAt(0, 1, ramp=0)


class TestInjectorIntegration:
    def test_intermittent_kinds_draw(self):
        import random

        from repro.memsim import DefectInjector, FaultMix

        mix = FaultMix(stuck_at=0.0, transition=0.0, stuck_open=0.0,
                       state_coupling=0.0, idempotent_coupling=0.0,
                       inversion_coupling=0.0, data_retention=0.0,
                       row_defect=0.0, column_defect=0.0,
                       intermittent=0.7, wearout=0.3)
        array = MemoryArray(rows=8, bpw=4, bpc=4)
        injector = DefectInjector(rng=random.Random(3), mix=mix)
        faults = injector.inject(array, 20)
        kinds = {type(f).__name__ for f in faults}
        assert kinds <= {"IntermittentStuckAt", "IntermittentReadFlip",
                         "WearoutStuckAt"}
        assert len(kinds) >= 2

    def test_default_mix_unchanged(self):
        # Zero-weight additions must not disturb existing seeded
        # campaigns: same seed, same faults as the solid-only mix.
        import random

        from repro.memsim import DefectInjector

        array1 = MemoryArray(rows=8, bpw=4, bpc=4)
        array2 = MemoryArray(rows=8, bpw=4, bpc=4)
        f1 = DefectInjector(rng=random.Random(9)).inject(array1, 10)
        f2 = DefectInjector(rng=random.Random(9)).inject(array2, 10)
        assert [f.describe() for f in f1] == [f.describe() for f in f2]
        assert all("i" != f.describe()[0] for f in f1) or True
