"""Serde contracts for the 2-D repair result types, plus digest keys.

The PR-2 conventions apply to every new type: ``to_dict`` carries a
``kind`` discriminator, the module-level ``*_from_dict`` rebuilds the
exact object after a JSON round-trip (lists back to tuples), pickling
preserves equality, and a wrong ``kind`` is rejected loudly.  The
config digest must also separate row-only from 2-D geometry so cache
and service keys cannot collide.
"""

import json
import pickle

import pytest

from repro import RamConfig
from repro.bisr import allocate, repair_plan_from_dict
from repro.bist import IFA_9, TwoDRepairController, repair2d_result_from_dict
from repro.cost import SpareMixPoint, spare_mix_point_from_dict
from repro.memsim import (
    BisrRam,
    FailRecord,
    RowStuck,
    StuckAt,
    diagnose,
    diagnosis_from_dict,
)


def json_cycle(payload):
    return json.loads(json.dumps(payload))


class TestRepairPlanSerde:
    def plan(self):
        return allocate([(0, 0), (1, 1), (2, 1)], rows=8, cols=8,
                        spare_rows=2, spare_cols=2)

    def test_json_round_trip(self):
        plan = self.plan()
        data = json_cycle(plan.to_dict())
        assert data["kind"] == "repair_plan"
        assert repair_plan_from_dict(data) == plan

    def test_pickle_round_trip(self):
        plan = self.plan()
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_wrong_kind_rejected(self):
        data = self.plan().to_dict()
        data["kind"] = "diagnosis"
        with pytest.raises(ValueError):
            repair_plan_from_dict(data)


class TestDiagnosisSerde:
    def diagnosis(self):
        records = [FailRecord(address=0, observed=1, expected=0),
                   FailRecord(address=2, observed=1, expected=0)]
        return diagnose(records, rows=4, bpw=2, bpc=2, spares=2)

    def test_json_round_trip(self):
        diag = self.diagnosis()
        data = json_cycle(diag.to_dict())
        assert data["kind"] == "diagnosis"
        assert diagnosis_from_dict(data) == diag

    def test_pickle_round_trip(self):
        diag = self.diagnosis()
        assert pickle.loads(pickle.dumps(diag)) == diag

    def test_wrong_kind_rejected(self):
        data = self.diagnosis().to_dict()
        data["kind"] = "repair_plan"
        with pytest.raises(ValueError):
            diagnosis_from_dict(data)


class TestRepair2DResultSerde:
    def repaired_result(self):
        device = BisrRam(rows=8, bpw=2, bpc=2, spares=2, spare_cols=1)
        device.array.inject(StuckAt(device.array.cell_index(3, 0, 1), 1))
        return TwoDRepairController(IFA_9, bpw=2).run(device)

    def degraded_result(self):
        device = BisrRam(rows=8, bpw=2, bpc=2, spares=1, spare_cols=1)
        for row in (1, 3, 5):
            device.array.inject(RowStuck(row, device.array.row_stride, 1))
        return TwoDRepairController(IFA_9, bpw=2).run(device)

    def test_repaired_json_round_trip(self):
        result = self.repaired_result()
        assert result.repaired
        data = json_cycle(result.to_dict())
        assert data["kind"] == "repair2d_result"
        clone = repair2d_result_from_dict(data)
        assert clone == result
        assert clone.repaired and not clone.degraded

    def test_degraded_json_round_trip(self):
        result = self.degraded_result()
        assert result.degraded
        clone = repair2d_result_from_dict(json_cycle(result.to_dict()))
        assert clone == result
        assert clone.degraded
        assert clone.reason == result.reason
        assert clone.outcome.unrepaired_rows == \
            result.outcome.unrepaired_rows

    def test_pickle_round_trip(self):
        result = self.repaired_result()
        assert pickle.loads(pickle.dumps(result)) == result

    def test_wrong_kind_rejected(self):
        data = self.repaired_result().to_dict()
        data["kind"] = "supervisor_result"
        with pytest.raises(ValueError):
            repair2d_result_from_dict(data)


class TestSpareMixPointSerde:
    def point(self):
        return SpareMixPoint(spares_r=2, spares_c=2, n_defects=3.0,
                             area_factor=1.11, yield_estimate=0.8,
                             cost_per_good_bit=1.39, trials=1000)

    def test_json_round_trip(self):
        point = self.point()
        data = json_cycle(point.to_dict())
        assert data["kind"] == "spare_mix_point"
        assert spare_mix_point_from_dict(data) == point

    def test_wrong_kind_rejected(self):
        data = self.point().to_dict()
        data["kind"] = "repair_plan"
        with pytest.raises(ValueError):
            spare_mix_point_from_dict(data)


class TestConfigDigest:
    def test_row_only_and_2d_digests_differ(self):
        row_only = RamConfig(words=256, bpw=8, bpc=4, spares=4)
        two_d = RamConfig(words=256, bpw=8, bpc=4, spares=4, spare_cols=2)
        assert row_only.digest() != two_d.digest()

    def test_spare_cols_is_part_of_the_canonical_dict(self):
        config = RamConfig(words=256, bpw=8, bpc=4, spares=4, spare_cols=2)
        assert config.to_dict()["spare_cols"] == 2
        assert RamConfig(words=256, bpw=8, bpc=4,
                         spares=4).to_dict()["spare_cols"] == 0

    def test_different_spare_col_counts_digest_differently(self):
        digests = {
            RamConfig(words=256, bpw=8, bpc=4, spares=4,
                      spare_cols=n).digest()
            for n in (0, 1, 2, 4)
        }
        assert len(digests) == 4
