"""Tests for the concurrent macro server and its HTTP front-end."""

import threading
import time

import pytest

from repro.core.config import RamConfig
from repro.core.errors import ConfigError, ReproError, ServiceUnavailable
from repro.service import (
    ArtifactStore,
    MacroServer,
    bundle_key,
    latency_summary,
    percentile,
)

CFG = RamConfig(words=64, bpw=8, bpc=4)
CFG2 = RamConfig(words=64, bpw=8, bpc=4, spares=8)


def counting_builder(calls, gate=None, delay_s=0.0):
    """A fake compile_cached: records invocations, optionally blocks
    on ``gate`` so tests control exactly when builds finish."""
    lock = threading.Lock()

    def build(config, march, signoff=None, store=None, stage_cache=None):
        with lock:
            calls.append(config)
        if gate is not None:
            assert gate.wait(10.0), "test gate never opened"
        if delay_s:
            time.sleep(delay_s)
        return ({"out.txt": b"payload"}, False,
                bundle_key(config, march, signoff))

    return build


class TestSingleFlight:
    def test_n_concurrent_identical_requests_build_once(self):
        """The acceptance bar: N >= 8 identical requests, 1 build."""
        calls = []
        gate = threading.Event()
        server = MacroServer(workers=8,
                             builder=counting_builder(calls, gate))
        barrier = threading.Barrier(8)
        futures = []
        futures_lock = threading.Lock()

        def request():
            barrier.wait()
            future = server.submit(CFG)
            with futures_lock:
                futures.append(future)

        threads = [threading.Thread(target=request) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        gate.set()

        results = [f.result(10.0) for f in futures]
        server.shutdown()
        assert len(calls) == 1
        assert len(results) == 8
        assert all(r.artifacts == {"out.txt": b"payload"}
                   for r in results)
        stats = server.stats()
        assert stats["requests"] == 8
        assert stats["coalesced"] == 7
        assert stats["builds"] == 1

    def test_different_configs_do_not_coalesce(self):
        calls = []
        server = MacroServer(workers=2,
                             builder=counting_builder(calls))
        server.compile(CFG)
        server.compile(CFG2)
        server.shutdown()
        assert len(calls) == 2

    def test_sequential_repeats_rebuild_after_retire(self):
        """Single-flight is about *concurrent* requests only: once a
        build retires, the next request runs again (the artifact
        store, not the inflight table, handles repeats over time)."""
        calls = []
        server = MacroServer(workers=1,
                             builder=counting_builder(calls))
        server.compile(CFG)
        server.compile(CFG)
        server.shutdown()
        assert len(calls) == 2


class TestBackpressure:
    def test_saturated_queue_rejects(self):
        calls = []
        gate = threading.Event()
        server = MacroServer(workers=1, queue_limit=1,
                             builder=counting_builder(calls, gate))
        first = server.submit(CFG)
        with pytest.raises(ServiceUnavailable) as info:
            server.submit(CFG2)
        assert info.value.reason == "saturated"
        gate.set()
        first.result(10.0)
        server.shutdown()
        assert server.stats()["rejected"] == 1

    def test_coalesced_joins_bypass_the_limit(self):
        """Joining an in-flight build adds no work, so it must never
        be rejected no matter how full the queue is."""
        calls = []
        gate = threading.Event()
        server = MacroServer(workers=1, queue_limit=1,
                             builder=counting_builder(calls, gate))
        first = server.submit(CFG)
        joined = server.submit(CFG)  # same key: allowed at the limit
        assert joined is first
        gate.set()
        first.result(10.0)
        server.shutdown()

    def test_capacity_frees_after_completion(self):
        calls = []
        server = MacroServer(workers=1, queue_limit=1,
                             builder=counting_builder(calls))
        server.compile(CFG)
        server.compile(CFG2)  # would raise if capacity leaked
        server.shutdown()

    def test_draining_rejects_new_requests(self):
        server = MacroServer(workers=1,
                             builder=counting_builder([]))
        server.shutdown()
        with pytest.raises(ServiceUnavailable) as info:
            server.submit(CFG)
        assert info.value.reason == "draining"

    def test_bad_construction(self):
        with pytest.raises(ConfigError):
            MacroServer(workers=0)
        with pytest.raises(ConfigError):
            MacroServer(queue_limit=0)


class TestDrainAndFailures:
    def test_drain_finishes_inflight_builds(self):
        calls = []
        server = MacroServer(workers=2,
                             builder=counting_builder(calls,
                                                      delay_s=0.05))
        futures = [server.submit(CFG), server.submit(CFG2)]
        server.shutdown(drain=True)
        assert all(f.done() for f in futures)
        assert [f.result() for f in futures]

    def test_build_failure_propagates_and_is_counted(self):
        def broken(config, march, signoff=None, store=None,
                   stage_cache=None):
            raise ReproError("melted")

        server = MacroServer(workers=1, builder=broken)
        with pytest.raises(ReproError, match="melted"):
            server.compile(CFG)
        # The failed key retired, so a retry is admitted (and fails
        # again) rather than being served the poisoned future forever.
        with pytest.raises(ReproError, match="melted"):
            server.compile(CFG)
        server.shutdown()
        assert server.stats()["failures"] == 2

    def test_context_manager_drains(self):
        calls = []
        with MacroServer(workers=1,
                         builder=counting_builder(calls)) as server:
            server.compile(CFG)
        assert server.draining


class TestMetrics:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == 5.0
        assert percentile(values, 1.0) == 10.0
        assert percentile([], 0.5) == 0.0

    def test_latency_summary_shape(self):
        summary = latency_summary([0.2, 0.1, 0.3])
        assert summary["count"] == 3
        assert summary["p50_s"] == 0.2
        assert summary["max_s"] == 0.3
        assert summary["mean_s"] == pytest.approx(0.2)
        empty = latency_summary([])
        # Full shape even with no samples: /stats consumers index
        # p50_s unconditionally and must not crash on a fresh server.
        assert empty["count"] == 0
        assert set(empty) == set(summary)
        assert all(value == 0 for value in empty.values())

    def test_stats_track_store_hits(self, tmp_path):
        store = ArtifactStore(tmp_path)
        server = MacroServer(store=store, workers=2)
        first = server.compile(CFG)
        second = server.compile(CFG)
        server.shutdown()
        assert first.cached is False
        assert second.cached is True
        assert second.artifacts == first.artifacts
        stats = server.stats()
        assert stats["builds"] == 1
        assert stats["store_hits"] == 1
        assert stats["request_latency"]["count"] == 2
        assert stats["store"]["writes"] == 1


class TestHttp:
    @pytest.fixture()
    def service(self, tmp_path):
        from repro.service.http import (
            ServiceClient,
            make_http_server,
            serve_forever_in_thread,
        )

        server = MacroServer(store=ArtifactStore(tmp_path), workers=2)
        httpd = make_http_server(server, port=0)
        serve_forever_in_thread(httpd)
        host, port = httpd.server_address[:2]
        yield ServiceClient(host, port)
        httpd.shutdown()
        httpd.server_close()
        server.shutdown()

    def test_compile_roundtrip_with_artifact_bytes(self, service):
        payload = service.compile(CFG, include=("macro.cif",))
        assert payload["cached"] is False
        assert payload["datasheet"]["config"]["words"] == 64
        cif = service.artifact(payload, "macro.cif")
        assert cif.startswith(b"DS ") or b"DS " in cif
        manifest = payload["artifacts"]["macro.cif"]
        assert manifest["bytes"] == len(cif)

        again = service.compile(CFG)
        assert again["cached"] is True
        assert again["key"] == payload["key"]

    def test_missing_include_raises(self, service):
        payload = service.compile(CFG)
        with pytest.raises(ConfigError, match="include"):
            service.artifact(payload, "macro.cif")

    def test_bad_config_maps_to_config_error(self, service):
        with pytest.raises(ConfigError):
            service.compile(_UnvalidatedConfig())

    def test_stats_and_healthz(self, service):
        service.compile(CFG)
        stats = service.stats()
        assert stats["requests"] >= 1
        assert "store" in stats
        assert stats["role"] == "primary"
        assert stats["endpoints"]["compile"] == 1
        health = service.healthz()
        assert health["status"] == "ok"
        assert health["role"] == "primary"
        assert health["governor"] == "admitting"


class TestSignoffDriverCache:
    def test_shard_serves_from_preseeded_store(self, tmp_path):
        """The campaign driver's store path: a shard whose bundle is
        already published never touches the compiler."""
        import json

        import numpy as np

        from repro.bist.march import IFA_9
        from repro.runtime.drivers import signoff_campaign, signoff_shard
        from repro.runtime.runner import ShardSpec
        from repro.verify.report import SignoffReport

        spec = signoff_campaign(words=64, bpw=8, bpc=4, spares=4,
                                processes=["cda07"],
                                cache_dir=str(tmp_path))
        config = RamConfig(words=64, bpw=8, bpc=4, spares=4,
                           process="cda07")
        report = SignoffReport(config_label="preseeded",
                               process="cda07")
        ArtifactStore(tmp_path).put(
            bundle_key(config, IFA_9, "degrade"),
            {"signoff.json":
                json.dumps(report.to_dict()).encode("utf-8")})

        result = signoff_shard(spec.params, ShardSpec(
            index=0, n_shards=1,
            seed_seq=np.random.SeedSequence(0)))
        assert result["cache_hit"] is True
        assert result["clean"] is True
        assert result["process"] == "cda07"
        assert result["report"]["config"] == "preseeded"


class _UnvalidatedConfig:
    """Quacks like a RamConfig but serialises an invalid geometry, so
    only the *server-side* validation can reject it."""

    def to_dict(self):
        return {"words": 63, "bpw": 8, "bpc": 4}


class TestHttpRobustness:
    @pytest.fixture()
    def stack(self, tmp_path):
        from repro.service.http import (
            ServiceClient,
            make_http_server,
            serve_forever_in_thread,
        )

        server = MacroServer(store=ArtifactStore(tmp_path), workers=2)
        httpd = make_http_server(server, port=0)
        serve_forever_in_thread(httpd)
        host, port = httpd.server_address[:2]
        yield server, ServiceClient(host, port)
        httpd.shutdown()
        httpd.server_close()
        server.shutdown()

    def test_readyz_reports_ready(self, stack):
        _, client = stack
        assert client.readyz() == {"status": "ready"}

    def test_readyz_503_while_replaying(self, stack):
        server, client = stack
        server._ready.clear()  # simulate an in-progress WAL replay
        try:
            status, payload, headers = client._request(
                "GET", "/readyz")
            assert status == 503
            assert payload["reason"] == "not_ready"
            assert float(headers["Retry-After"]) > 0
        finally:
            server._ready.set()
        assert client.readyz() == {"status": "ready"}

    def test_compile_503_carries_retry_after(self, stack):
        server, client = stack
        server.shutdown(drain=True)  # draining rejects everything
        status, payload, headers = client._request(
            "POST", "/compile", {"config": CFG.to_dict()})
        assert status == 503
        assert payload["reason"] == "draining"
        assert "Retry-After" in headers
        assert payload["retry_after_s"] > 0

    def test_client_gives_up_with_retry_after_attached(self, stack):
        from repro.service.http import ServiceClient

        server, client = stack
        server.shutdown(drain=True)
        fast = ServiceClient(client.host, client.port, retries=1,
                             backoff_cap_s=0.01)
        with pytest.raises(ServiceUnavailable) as excinfo:
            fast.compile(CFG)
        assert excinfo.value.reason == "draining"
        assert excinfo.value.retry_after_s > 0

    def test_client_honors_retry_after_backoff(self, monkeypatch):
        """Two 503s, then success: the client must sleep the server's
        (capped) Retry-After advice between attempts."""
        from repro.service import http as http_module
        from repro.service.http import ServiceClient

        replies = [
            (503, {"error": "busy", "reason": "saturated",
                   "retry_after_s": 2.0}, {"Retry-After": "2"}),
            (503, {"error": "busy", "reason": "saturated",
                   "retry_after_s": 2.0}, {"Retry-After": "2"}),
            (200, {"key": "k", "cached": False}, {}),
        ]
        slept = []
        client = ServiceClient("127.0.0.1", 1, retries=3,
                               backoff_cap_s=0.5)
        monkeypatch.setattr(
            client, "_request",
            lambda method, path, body=None: replies.pop(0))
        monkeypatch.setattr(http_module.time, "sleep", slept.append)
        payload = client.compile(CFG)
        assert payload == {"key": "k", "cached": False}
        assert len(slept) == 2
        for delay in slept:
            # Capped at backoff_cap_s, jittered at most +25%.
            assert 0.5 <= delay <= 0.625

    def test_client_fail_fast_mode_never_sleeps(self, monkeypatch):
        from repro.service import http as http_module
        from repro.service.http import ServiceClient

        client = ServiceClient("127.0.0.1", 1, retries=0)
        monkeypatch.setattr(
            client, "_request",
            lambda method, path, body=None:
                (503, {"error": "busy", "reason": "saturated"}, {}))
        slept = []
        monkeypatch.setattr(http_module.time, "sleep", slept.append)
        with pytest.raises(ServiceUnavailable):
            client.compile(CFG)
        assert slept == []

    def test_client_validates_retry_settings(self):
        from repro.service.http import ServiceClient

        with pytest.raises(ConfigError):
            ServiceClient(retries=-1)
        with pytest.raises(ConfigError):
            ServiceClient(backoff_cap_s=0)


class TestProcessBackendServer:
    def test_server_over_process_backend(self, tmp_path):
        from repro.service.backend import ProcessPoolBackend

        store = ArtifactStore(tmp_path)
        backend = ProcessPoolBackend(store, workers=2, poll_s=0.01)
        server = MacroServer(store=store, workers=2, backend=backend)
        try:
            first = server.compile(CFG)
            second = server.compile(CFG)
            assert first.cached is False
            assert second.cached is True
            assert second.artifacts == first.artifacts
            stats = server.stats()
            assert stats["backend"]["builds"] == 1
            assert stats["builds"] == 1
            assert stats["store_hits"] == 1
        finally:
            server.shutdown()

    def test_builder_and_backend_are_exclusive(self, tmp_path):
        from repro.service.backend import ProcessPoolBackend

        store = ArtifactStore(tmp_path)
        backend = ProcessPoolBackend(store, workers=1)
        try:
            with pytest.raises(ConfigError, match="exclusive"):
                MacroServer(store=store, builder=lambda *a, **k: None,
                            backend=backend)
        finally:
            backend.shutdown()


class TestBatchSubmit:
    def test_submit_batch_returns_futures_in_order(self):
        from repro.bist.march import IFA_9

        calls = []
        server = MacroServer(workers=4,
                             builder=counting_builder(calls))
        try:
            outcomes = server.submit_batch(
                [(CFG, IFA_9, None), (CFG2, IFA_9, None)])
            assert [kind for kind, _ in outcomes] == ["future", "future"]
            responses = [value.result(timeout=60.0)
                         for _, value in outcomes]
            assert responses[0].key != responses[1].key
        finally:
            server.shutdown()

    def test_submit_batch_coalesces_duplicates(self):
        from repro.bist.march import IFA_9

        calls = []
        gate = threading.Event()
        server = MacroServer(workers=4,
                             builder=counting_builder(calls, gate=gate))
        try:
            outcomes = server.submit_batch(
                [(CFG, IFA_9, None), (CFG, IFA_9, None)])
            gate.set()
            first = outcomes[0][1].result(timeout=60.0)
            second = outcomes[1][1].result(timeout=60.0)
            assert outcomes[0][1] is outcomes[1][1]
            assert first is second
            assert len(calls) == 1
            assert server.stats()["coalesced"] == 1
        finally:
            server.shutdown()

    def test_submit_batch_over_limit_is_refused(self):
        from repro.bist.march import IFA_9

        server = MacroServer(workers=1, batch_limit=2,
                             builder=counting_builder([]))
        try:
            with pytest.raises(ConfigError, match="batch"):
                server.submit_batch([(CFG, IFA_9, None)] * 3)
        finally:
            server.shutdown()

    def test_submit_batch_partial_admission(self):
        """One item tripping admission control must not sink the rest."""
        from repro.bist.march import IFA_9

        calls = []
        gate = threading.Event()
        server = MacroServer(workers=1, queue_limit=1,
                             builder=counting_builder(calls, gate=gate))
        try:
            outcomes = server.submit_batch(
                [(CFG, IFA_9, None), (CFG2, IFA_9, None)])
            kinds = [kind for kind, _ in outcomes]
            assert kinds == ["future", "error"]
            assert isinstance(outcomes[1][1], ServiceUnavailable)
            gate.set()
            assert outcomes[0][1].result(timeout=60.0).key
        finally:
            gate.set()
            server.shutdown()

    def test_bad_batch_limit_is_refused(self):
        with pytest.raises(ConfigError, match="batch_limit"):
            MacroServer(workers=1, batch_limit=0,
                        builder=counting_builder([]))


class TestBatchHttp:
    @pytest.fixture()
    def stack(self, tmp_path):
        from repro.service.http import (
            ServiceClient,
            make_http_server,
            serve_forever_in_thread,
        )

        server = MacroServer(store=ArtifactStore(tmp_path), workers=2,
                             batch_limit=4)
        httpd = make_http_server(server, port=0)
        serve_forever_in_thread(httpd)
        host, port = httpd.server_address[:2]
        yield server, ServiceClient(host, port)
        httpd.shutdown()
        httpd.server_close()
        server.shutdown()

    def test_batch_roundtrip_streams_every_item(self, stack):
        server, client = stack
        records = list(client.compile_batch([CFG, CFG2]))
        assert len(records) == 2
        assert {r["index"] for r in records} == {0, 1}
        assert all(r["status"] == "ok" for r in records)
        keys = {r["key"] for r in records}
        assert len(keys) == 2
        stats = server.stats()
        assert stats["endpoints"]["compile_batch"] == 1

    def test_batch_partial_failure_reports_per_item(self, stack):
        _, client = stack
        records = {r["index"]: r
                   for r in client.compile_batch(
                       [_UnvalidatedConfig(), CFG])}
        assert records[0]["status"] == "failed"
        assert records[0]["kind"] == "config"
        assert records[1]["status"] == "ok"

    def test_batch_deduplicates_identical_items(self, stack):
        server, client = stack
        records = list(client.compile_batch([CFG, CFG, CFG]))
        assert len(records) == 3
        assert len({r["key"] for r in records}) == 1
        assert all(r["status"] == "ok" for r in records)
        assert server.stats()["builds"] == 1

    def test_oversized_batch_is_413(self, stack):
        _, client = stack
        with pytest.raises(ConfigError, match="batch"):
            list(client.compile_batch([CFG] * 5))

    def test_empty_batch_is_400(self, stack):
        _, client = stack
        with pytest.raises(ConfigError):
            list(client.compile_batch([]))

    def test_every_reply_names_its_server_role(self, stack):
        _, client = stack
        status, _, connection, headers = client._open_stream(
            "GET", "/healthz")
        connection.close()
        assert status == 200
        assert headers["X-Served-By"] == "primary"

    def test_artifact_endpoint_serves_store_bytes(self, stack):
        _, client = stack
        payload = client.compile(CFG, include=("macro.cif",))
        raw = client.fetch_artifact(payload["key"], "macro.cif")
        assert raw == client.artifact(payload, "macro.cif")
        with pytest.raises(ConfigError):
            client.fetch_artifact("f" * 64, "macro.cif")

    def test_endpoint_counters_cover_all_routes(self, stack):
        server, client = stack
        payload = client.compile(CFG, include=("macro.cif",))
        list(client.compile_batch([CFG]))
        client.fetch_artifact(payload["key"], "macro.cif")
        counts = server.stats()["endpoints"]
        assert counts["compile"] == 1
        assert counts["compile_batch"] == 1
        assert counts["artifact"] == 1


class TestClientFailover:
    def test_connection_refused_rotates_to_failover(self, tmp_path):
        """Primary endpoint is a dead port: the client must fail over
        to the standby endpoint and succeed."""
        from repro.service.http import (
            ServiceClient,
            make_http_server,
            serve_forever_in_thread,
        )

        server = MacroServer(store=ArtifactStore(tmp_path), workers=2)
        httpd = make_http_server(server, port=0)
        serve_forever_in_thread(httpd)
        host, port = httpd.server_address[:2]
        try:
            dead_port = _claim_dead_port()
            client = ServiceClient(host, dead_port, retries=4,
                                   backoff_cap_s=0.01,
                                   failover=[(host, port)])
            payload = client.compile(CFG)
            assert payload["key"]
        finally:
            httpd.shutdown()
            httpd.server_close()
            server.shutdown()

    def test_all_endpoints_down_is_unreachable(self, monkeypatch):
        from repro.service import http as http_module
        from repro.service.http import ServiceClient

        monkeypatch.setattr(http_module.time, "sleep", lambda s: None)
        dead = _claim_dead_port()
        client = ServiceClient("127.0.0.1", dead, retries=2,
                               backoff_cap_s=0.01,
                               failover=[("127.0.0.1", dead)])
        with pytest.raises(ServiceUnavailable) as excinfo:
            client.compile(CFG)
        assert excinfo.value.reason == "unreachable"

    def test_reset_mid_request_is_retried(self, monkeypatch):
        """A ConnectionResetError on the first attempt must be retried,
        not surfaced to the caller."""
        from repro.service import http as http_module
        from repro.service.http import ServiceClient

        client = ServiceClient("127.0.0.1", 1, retries=2,
                               backoff_cap_s=0.01)
        attempts = []

        class _Reply:
            status = 200

            def read(self):
                return b'{"key": "k", "cached": true}'

        class _Conn:
            def close(self):
                pass

        def fake_attempt(endpoint, method, path, body):
            attempts.append(endpoint)
            if len(attempts) == 1:
                raise ConnectionResetError(104, "peer reset")
            return 200, _Reply(), _Conn(), {}

        monkeypatch.setattr(client, "_attempt", fake_attempt)
        monkeypatch.setattr(http_module.time, "sleep", lambda s: None)
        status, payload, headers = client._request("POST", "/compile",
                                                   {"config": {}})
        assert status == 200
        assert payload["key"] == "k"
        assert len(attempts) == 2


def _claim_dead_port():
    """A port that was just bound and released: connecting to it gets
    ECONNREFUSED (nothing is listening any more)."""
    import socket

    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port
