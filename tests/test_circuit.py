"""Unit tests for the circuit netlist, device model, extraction, sizing."""

import pytest

from repro.circuit import GND, Netlist, extract_parasitics, mosfet_current
from repro.circuit.extract import bitline_parasitics
from repro.circuit.mosfet import effective_resistance, saturation_current
from repro.circuit.sizing import balance_inverter, size_for_drive
from repro.geometry import Rect
from repro.layout import Cell
from repro.tech import get_process

PROCESS = get_process("cda07")
NMOS, PMOS = PROCESS.nmos, PROCESS.pmos
VDD = PROCESS.vdd


class TestNetlistConstruction:
    def test_inverter_device_count(self):
        net = Netlist()
        net.add_inverter("a", "y", NMOS, PMOS, 2.0, 5.0)
        assert len(net.mosfets) == 2
        polarities = {m.params.polarity for m in net.mosfets}
        assert polarities == {"nmos", "pmos"}

    def test_nand_structure(self):
        net = Netlist()
        net.add_nand(["a", "b", "c"], "y", NMOS, PMOS, 2.0, 4.0)
        nmos = [m for m in net.mosfets if m.params.polarity == "nmos"]
        pmos = [m for m in net.mosfets if m.params.polarity == "pmos"]
        assert len(nmos) == 3 and len(pmos) == 3
        # PMOS all parallel between y and vdd.
        assert all(m.drain == "y" and m.source == "vdd" for m in pmos)
        # NMOS stack ends at GND.
        assert any(m.source == GND for m in nmos)

    def test_nor_structure(self):
        net = Netlist()
        net.add_nor(["a", "b"], "y", NMOS, PMOS, 2.0, 4.0)
        nmos = [m for m in net.mosfets if m.params.polarity == "nmos"]
        assert all(m.drain == "y" and m.source == GND for m in nmos)

    def test_device_validation(self):
        net = Netlist()
        with pytest.raises(ValueError):
            net.add_mosfet("d", "g", "s", NMOS, w_um=-1.0)
        with pytest.raises(ValueError):
            net.add_mosfet("d", "g", "s", NMOS, w_um=1.0, l_um=0.1)
        with pytest.raises(ValueError):
            net.add_resistor("a", "b", 0.0)
        with pytest.raises(ValueError):
            net.add_capacitor("a", "b", -1e-15)

    def test_nodes(self):
        net = Netlist()
        net.add_inverter("a", "y", NMOS, PMOS, 2.0, 5.0)
        net.add_capacitor("y", GND, 1e-15)
        assert net.nodes() == {"a", "y", "vdd", GND}

    def test_node_capacitance_accumulates(self):
        net = Netlist()
        m = net.add_mosfet("d", "g", "s", NMOS, 4.0)
        caps = net.node_capacitance()
        assert caps["g"] == pytest.approx(m.gate_cap())
        assert caps["d"] == pytest.approx(m.diff_cap())


class TestMosfetModel:
    def test_cutoff(self):
        assert mosfet_current(NMOS, 0.0, 5.0, 0.0, 4.0, 0.7) == 0.0

    def test_linear_vs_saturation(self):
        lin = mosfet_current(NMOS, 5.0, 0.1, 0.0, 4.0, 0.7)
        sat = mosfet_current(NMOS, 5.0, 5.0, 0.0, 4.0, 0.7)
        assert 0 < lin < sat

    def test_symmetry_swapped_terminals(self):
        fwd = mosfet_current(NMOS, 5.0, 3.0, 0.0, 4.0, 0.7)
        rev = mosfet_current(NMOS, 5.0, 0.0, 3.0, 4.0, 0.7)
        assert fwd == pytest.approx(-rev)

    def test_pmos_sign(self):
        # PMOS with gate low, source at VDD: current flows out of the
        # drain into the load (positive into drain means negative here).
        i = mosfet_current(PMOS, 0.0, 0.0, 5.0, 4.0, 0.7)
        assert i < 0

    def test_width_scaling(self):
        i1 = mosfet_current(NMOS, 5.0, 5.0, 0.0, 2.0, 0.7)
        i2 = mosfet_current(NMOS, 5.0, 5.0, 0.0, 4.0, 0.7)
        assert i2 == pytest.approx(2 * i1)

    def test_saturation_current_positive(self):
        assert saturation_current(NMOS, VDD, 4.0, 0.7) > 0
        assert saturation_current(PMOS, VDD, 4.0, 0.7) > 0

    def test_effective_resistance_scales_inverse_width(self):
        r1 = effective_resistance(NMOS, VDD, 2.0, 0.7)
        r2 = effective_resistance(NMOS, VDD, 4.0, 0.7)
        assert r1 == pytest.approx(2 * r2)

    def test_effective_resistance_off_device(self):
        weak = effective_resistance(NMOS, 0.5, 4.0, 0.7)
        assert weak == float("inf")


class TestExtraction:
    def test_extract_counts_conductors_only(self):
        c = Cell("x")
        c.add_shape("metal1", Rect(0, 0, 1000, 105))   # 10 um wire
        c.add_shape("nwell", Rect(0, 0, 5000, 5000))   # not a conductor
        got = extract_parasitics(c, PROCESS)
        assert set(got) == {"metal1"}
        assert got["metal1"].length_um == pytest.approx(10.0)
        assert got["metal1"].capacitance_f > 0

    def test_poly_more_resistive_than_metal(self):
        c = Cell("x")
        c.add_shape("metal1", Rect(0, 0, 1000, 105))
        c.add_shape("poly", Rect(0, 500, 1000, 570))
        got = extract_parasitics(c, PROCESS)
        assert got["poly"].resistance_ohm > \
            100 * got["metal1"].resistance_ohm

    def test_bitline_scales_with_rows(self):
        short = bitline_parasitics(PROCESS, 64, 48 * PROCESS.lambda_cu)
        long = bitline_parasitics(PROCESS, 256, 48 * PROCESS.lambda_cu)
        assert long.capacitance_f == pytest.approx(
            4 * short.capacitance_f, rel=0.05
        )
        assert long.resistance_ohm == pytest.approx(
            4 * short.resistance_ohm, rel=0.05
        )

    def test_bitline_rejects_bad_rows(self):
        with pytest.raises(ValueError):
            bitline_parasitics(PROCESS, 0, 100)


class TestSizing:
    def test_balance_converges(self):
        sizing = balance_inverter(PROCESS, wn_um=2.0, load_ff=20.0)
        assert sizing.imbalance <= 0.05

    def test_balanced_ratio_near_kp_ratio(self):
        sizing = balance_inverter(PROCESS, wn_um=2.0, load_ff=20.0)
        kp_ratio = PROCESS.nmos.kp / PROCESS.pmos.kp
        assert 0.6 * kp_ratio <= sizing.ratio <= 1.6 * kp_ratio

    def test_balance_rejects_bad_width(self):
        with pytest.raises(ValueError):
            balance_inverter(PROCESS, wn_um=0.0)

    def test_size_for_drive_scales(self):
        base = size_for_drive(PROCESS, 1)
        assert size_for_drive(PROCESS, 3) == pytest.approx(3 * base)

    def test_size_for_drive_validates(self):
        with pytest.raises(ValueError):
            size_for_drive(PROCESS, 0)
