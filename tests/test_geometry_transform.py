"""Unit tests for repro.geometry.transform."""

import pytest

from repro.geometry import Point, Rect
from repro.geometry.transform import (
    ALL_ORIENTATIONS,
    Orientation,
    Transform,
)


class TestApply:
    def test_identity(self):
        assert Transform().apply(Point(3, 4)) == Point(3, 4)

    def test_r90(self):
        t = Transform(Orientation.R90)
        assert t.apply(Point(1, 0)) == Point(0, 1)
        assert t.apply(Point(0, 1)) == Point(-1, 0)

    def test_r180(self):
        assert Transform(Orientation.R180).apply(Point(2, 3)) == Point(-2, -3)

    def test_mx_flips_y(self):
        assert Transform(Orientation.MX).apply(Point(2, 3)) == Point(2, -3)

    def test_my_flips_x(self):
        assert Transform(Orientation.MY).apply(Point(2, 3)) == Point(-2, 3)

    def test_translation_applied_after_orientation(self):
        t = Transform(Orientation.R90, Point(10, 20))
        assert t.apply(Point(1, 0)) == Point(10, 21)


class TestGroupStructure:
    def test_eight_distinct_orientations(self):
        images = set()
        probe = (Point(2, 1), Point(1, 3))
        for orient in ALL_ORIENTATIONS:
            t = Transform(orient)
            images.add(tuple(t.apply(p) for p in probe))
        assert len(images) == 8

    @pytest.mark.parametrize("orient", ALL_ORIENTATIONS)
    def test_inverse_roundtrip(self, orient):
        t = Transform(orient, Point(13, -7))
        inv = t.inverse()
        for p in (Point(0, 0), Point(5, 9), Point(-3, 2)):
            assert inv.apply(t.apply(p)) == p

    @pytest.mark.parametrize("o1", ALL_ORIENTATIONS)
    @pytest.mark.parametrize("o2", ALL_ORIENTATIONS)
    def test_compose_matches_sequential_application(self, o1, o2):
        outer = Transform(o1, Point(3, 4))
        inner = Transform(o2, Point(-1, 2))
        composed = outer.compose(inner)
        for p in (Point(1, 0), Point(2, 5)):
            assert composed.apply(p) == outer.apply(inner.apply(p))

    def test_mirror_detection(self):
        assert Transform(Orientation.MX).is_mirrored()
        assert Transform(Orientation.MY90).is_mirrored()
        assert not Transform(Orientation.R90).is_mirrored()
        assert not Transform(Orientation.R180).is_mirrored()


class TestRectTransform:
    def test_area_preserved_under_all_orientations(self):
        r = Rect(1, 2, 5, 9)
        for orient in ALL_ORIENTATIONS:
            got = r.transformed(Transform(orient, Point(7, -3)))
            assert got.area == r.area

    def test_r90_swaps_width_height(self):
        r = Rect(0, 0, 10, 4)
        got = r.transformed(Transform(Orientation.R90))
        assert (got.width, got.height) == (4, 10)
