"""Physical design of the 2-D macro: floorplan, area, delay, signoff.

A macro compiled with spare columns must carry the column-steer mux
through every physical layer — a ``colsteer`` macrocell in the
floorplan, a non-zero spare-column area line in the area report, and a
``steer`` stage in the datasheet's access-path breakdown — while a
row-only macro shows none of them and keeps its historical numbers.
"""

import pytest

from repro import RamConfig, compile_ram

CFG_2D = RamConfig(words=256, bpw=8, bpc=4, spares=4, spare_cols=2)
CFG_ROW_ONLY = RamConfig(words=256, bpw=8, bpc=4, spares=4)


@pytest.fixture(scope="module")
def ram2d():
    return compile_ram(CFG_2D, signoff="strict")


@pytest.fixture(scope="module")
def ram_row_only():
    return compile_ram(CFG_ROW_ONLY, signoff="strict")


class TestSignoff:
    def test_2d_macro_passes_strict_signoff(self, ram2d):
        assert ram2d.signoff is not None
        assert ram2d.signoff.clean, ram2d.signoff.summary()

    def test_row_only_macro_still_passes(self, ram_row_only):
        assert ram_row_only.signoff.clean, ram_row_only.signoff.summary()


class TestFloorplan:
    def test_colsteer_macrocell_present_only_with_spare_cols(
            self, ram2d, ram_row_only):
        assert "colsteer" in ram2d.floorplan.macrocells
        assert "colsteer" not in ram_row_only.floorplan.macrocells


class TestAreaReport:
    def test_spare_col_area_is_accounted(self, ram2d, ram_row_only):
        assert ram2d.area_report.spare_cols_mm2 > 0.0
        assert ram_row_only.area_report.spare_cols_mm2 == 0.0

    def test_spare_cols_grow_the_macro(self, ram2d, ram_row_only):
        assert ram2d.area_report.total_mm2 > \
            ram_row_only.area_report.total_mm2


class TestDatasheet:
    def test_steer_stage_present_only_with_spare_cols(
            self, ram2d, ram_row_only):
        assert "steer" in ram2d.datasheet.stage_delays
        assert "steer" not in ram_row_only.datasheet.stage_delays

    def test_steer_delay_is_a_small_tax(self, ram2d):
        ds = ram2d.datasheet
        assert 0.0 < ds.stage_delays["steer"] < ds.read_access_s

    def test_simulation_model_matches_the_config(self, ram2d):
        device = ram2d.simulation_model()
        assert device.array.spare_cols == CFG_2D.spare_cols
        assert device.colsteer is not None
