"""Faulty BIST/BISR infrastructure models (the tester itself lies)."""

import random

import pytest

from repro.bist import BistScheduler, IFA_9
from repro.bist.infrastructure import FaultyInfrastructure
from repro.core.errors import ConfigError
from repro.memsim import BisrRam
from repro.memsim.faults import StuckAt


def healthy_device():
    return BisrRam(rows=8, bpw=8, bpc=4, spares=4)


class TestStuckAddressBit:
    def test_addresses_alias(self):
        device = healthy_device()
        gate = FaultyInfrastructure(device, stuck_address_bit=(0, 1))
        # Writing through the gate at an even address lands on the odd
        # alias instead.
        gate.write(4, 0xAB)
        assert device.read(5) == 0xAB
        assert gate.address_aliases > 0

    def test_march_sees_failures_on_healthy_array(self):
        device = healthy_device()
        gate = FaultyInfrastructure(device, stuck_address_bit=(0, 1))
        result = BistScheduler(IFA_9, bpw=8).run(gate, passes=1)
        # Half the address space is shadowed by its alias: the march
        # must observe comparator hits even though every cell is good.
        assert result.fail_count > 0


class TestFlakyComparator:
    def test_false_fail_on_healthy_device(self):
        device = healthy_device()
        gate = FaultyInfrastructure(
            device, rng=random.Random(11), false_fail_rate=0.05
        )
        result = BistScheduler(IFA_9, bpw=8).run(gate, passes=1)
        assert result.fail_count > 0
        assert gate.false_fails > 0

    def test_false_pass_hides_a_real_fault(self):
        device = healthy_device()
        cell = device.array.cell_index(3, 2, 1)
        device.array.inject(StuckAt(cell, 1))
        gate = FaultyInfrastructure(
            device, rng=random.Random(11), false_pass_rate=1.0
        )
        result = BistScheduler(IFA_9, bpw=8).run(gate, passes=1)
        # The comparator always reports "expected" — the solid fault
        # escapes detection entirely.
        assert result.fail_count == 0
        assert gate.false_passes > 0

    def test_deterministic_under_seed(self):
        def run():
            device = healthy_device()
            gate = FaultyInfrastructure(
                device, rng=random.Random(11), false_fail_rate=0.05
            )
            result = BistScheduler(IFA_9, bpw=8).run(gate, passes=1)
            return (result.fail_count, gate.false_fails)

        assert run() == run()


class TestCorruptTlb:
    def test_recorded_row_diverts_to_wrong_spare(self):
        device = healthy_device()
        gate = FaultyInfrastructure(device, corrupt_tlb_entry=(0, 3))
        gate.set_repair_mode(True)
        gate.record_fail(3 * device.array.bpc)  # row 3 -> entry 0
        assert gate.tlb_corruptions == 1
        entry = device.tlb.entries[0]
        assert entry.row == 3
        assert entry.spare == 3  # should have been spare 0

    def test_wrong_spare_breaks_repair_of_faulty_spare(self):
        device = healthy_device()
        # Make the *diverted-to* spare row solidly bad, so the
        # corruption (diverting into it) is observable as a failure.
        spare_row = device.array.rows + 3
        for column in range(device.array.bpc):
            cell = device.array.cell_index(spare_row, 0, column)
            device.array.inject(StuckAt(cell, 1))
        cell = device.array.cell_index(2, 1, 0)
        device.array.inject(StuckAt(cell, 0))
        gate = FaultyInfrastructure(device, corrupt_tlb_entry=(0, 3))
        result = BistScheduler(IFA_9, bpw=8).run(gate, passes=2)
        assert not result.repaired


class TestValidation:
    def test_rates_validated(self):
        device = healthy_device()
        with pytest.raises(ConfigError):
            FaultyInfrastructure(device, false_fail_rate=1.5)
        with pytest.raises(ConfigError):
            FaultyInfrastructure(device, false_pass_rate=-0.1)

    def test_stuck_bit_validated(self):
        device = healthy_device()
        with pytest.raises(ConfigError):
            FaultyInfrastructure(device, stuck_address_bit=(0, 2))

    def test_transparent_when_no_fault_enabled(self):
        device = healthy_device()
        gate = FaultyInfrastructure(device)
        result = BistScheduler(IFA_9, bpw=8).run(gate, passes=2)
        assert result.repaired
        assert result.fail_count == 0
        assert gate.describe()
