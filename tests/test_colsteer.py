"""Column steering: the register file, the array data path, the device.

Covers the strictly increasing spare-assignment rule (the same contract
as the TLB), the ``col_map`` resolution inside ``MemoryArray``, the
bit-for-bit compatibility of the ``spare_cols=0`` layout with the
historical row-stride, and the steering delay model.
"""

import pytest

from repro.bisr import ColumnSteer, ColumnSteerDelayModel, colsteer_delay_s
from repro.memsim import BisrRam, ColumnStuck, MemoryArray, StuckAt
from repro.tech import get_process


class TestColumnSteer:
    def test_strictly_increasing_assignment(self):
        steer = ColumnSteer(regular_cols=8, spares=2)
        assert steer.record(3)
        assert steer.record(5)
        assert steer.active_map() == {3: 0, 5: 1}
        assert steer.spares_used == 2 and steer.spares_left == 0

    def test_duplicate_record_is_a_noop(self):
        steer = ColumnSteer(regular_cols=8, spares=2)
        steer.record(3)
        assert steer.record(3)  # already steered: True, no new spare
        assert steer.spares_used == 1

    def test_remap_advances_a_faulty_spare(self):
        steer = ColumnSteer(regular_cols=8, spares=3)
        steer.record(3)
        assert steer.steer(3) == (0, True)
        # spare 0 turned out faulty: re-record advances, never reuses.
        assert steer.record(3, remap=True)
        assert steer.steer(3) == (1, True)
        assert steer.spares_used == 2

    def test_overflow_sets_the_flag_and_returns_false(self):
        steer = ColumnSteer(regular_cols=8, spares=1)
        assert steer.record(0)
        assert not steer.record(1)
        assert steer.overflowed

    def test_zero_spares_is_a_row_only_device(self):
        steer = ColumnSteer(regular_cols=8, spares=0)
        assert not steer.record(0)
        assert steer.overflowed
        assert steer.active_map() == {}

    def test_only_regular_columns_are_recordable(self):
        steer = ColumnSteer(regular_cols=8, spares=2)
        with pytest.raises(ValueError):
            steer.record(8)

    def test_reset_clears_everything(self):
        steer = ColumnSteer(regular_cols=8, spares=1)
        steer.record(2)
        steer.record(4)  # overflows
        steer.reset()
        assert steer.spares_used == 0 and not steer.overflowed
        assert len(steer) == 0


class TestArraySteering:
    def test_zero_spare_cols_keeps_the_historical_layout(self):
        array = MemoryArray(rows=4, bpw=2, bpc=2)
        assert array.row_stride == array.phys_cols
        assert array.cell_index(3, 1, 1) == 3 * 4 + 1 * 2 + 1

    def test_spare_cells_sit_past_the_regular_columns(self):
        array = MemoryArray(rows=4, bpw=2, bpc=2, spare_cols=2)
        assert array.row_stride == 6
        assert array.spare_cell_index(1, 0) == 1 * 6 + 4
        with pytest.raises(ValueError):
            array.spare_cell_index(0, 2)

    def test_col_map_reroutes_reads_and_writes(self):
        array = MemoryArray(rows=4, bpw=2, bpc=2, spare_cols=1)
        # Stuck bit on logical physical column 2 (= bit 1, column 0).
        array.inject(StuckAt(array.cell_index(0, 1, 0), 1))
        assert array.read_word(0) == 0b10  # fault visible unsteered
        col_map = {2: 0}
        array.write_word(0, 0b00, col_map=col_map)
        assert array.read_word(0, col_map=col_map) == 0b00
        # The spare-column cell actually holds the steered bit.
        assert array.raw(array.spare_cell_index(0, 0)) == 0

    def test_faulty_spare_column_shows_through_the_map(self):
        array = MemoryArray(rows=4, bpw=2, bpc=2, spare_cols=1)
        array.inject(StuckAt(array.spare_cell_index(0, 0), 1))
        col_map = {2: 0}
        array.write_word(0, 0b00, col_map=col_map)
        assert array.read_word(0, col_map=col_map) == 0b10


class TestDeviceSteering:
    def test_column_defect_repaired_by_steering(self):
        device = BisrRam(rows=8, bpw=2, bpc=2, spares=1, spare_cols=1)
        array = device.array
        array.inject(ColumnStuck(2, array.total_rows, array.row_stride, 1))
        device.set_repair_mode(True)
        device.write(0, 0b00)
        assert device.read(0) == 0b10  # bit 1, column 0 is the bad lane
        device.colsteer.record(2)
        device.write(0, 0b00)
        assert device.read(0) == 0b00

    def test_steering_inactive_outside_repair_mode(self):
        device = BisrRam(rows=8, bpw=2, bpc=2, spares=1, spare_cols=1)
        array = device.array
        array.inject(ColumnStuck(2, array.total_rows, array.row_stride, 1))
        device.colsteer.record(2)
        device.set_repair_mode(False)
        device.write(0, 0b00)
        assert device.read(0) == 0b10


class TestDelayModel:
    def test_zero_spares_costs_nothing(self):
        assert colsteer_delay_s(get_process("cda07"), 0) == 0.0

    def test_penalty_grows_gently_with_spares(self):
        process = get_process("cda07")
        d2 = colsteer_delay_s(process, 2)
        d8 = colsteer_delay_s(process, 8)
        assert 0.0 < d2 < d8
        assert d8 < 4 * d2  # sub-linear: only the bus loading grows

    def test_breakdown_names_both_stages(self):
        model = ColumnSteerDelayModel(get_process("cda07"), 2)
        breakdown = model.breakdown()
        assert set(breakdown) == {"steer_mux", "spare_bus"}
        assert model.total() == pytest.approx(sum(breakdown.values()))

    def test_negative_spares_rejected(self):
        with pytest.raises(ValueError):
            ColumnSteerDelayModel(get_process("cda07"), -1)
