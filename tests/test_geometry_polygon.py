"""Unit tests for repro.geometry.polygon."""

import pytest

from repro.geometry import Point, Rect, polygon_area, polygon_bbox
from repro.geometry.polygon import is_rectilinear


class TestArea:
    def test_rectangle(self):
        pts = [Point(0, 0), Point(4, 0), Point(4, 3), Point(0, 3)]
        assert polygon_area(pts) == 12.0

    def test_l_shape(self):
        pts = [
            Point(0, 0), Point(4, 0), Point(4, 2),
            Point(2, 2), Point(2, 4), Point(0, 4),
        ]
        assert polygon_area(pts) == 12.0

    def test_orientation_independent(self):
        pts = [Point(0, 0), Point(4, 0), Point(4, 3), Point(0, 3)]
        assert polygon_area(list(reversed(pts))) == 12.0

    def test_degenerate(self):
        assert polygon_area([Point(0, 0), Point(1, 1)]) == 0.0


class TestBbox:
    def test_bbox(self):
        pts = [Point(-1, 5), Point(3, -2), Point(0, 0)]
        assert polygon_bbox(pts) == Rect(-1, -2, 3, 5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            polygon_bbox([])


class TestRectilinear:
    def test_rectilinear(self):
        pts = [Point(0, 0), Point(4, 0), Point(4, 3), Point(0, 3)]
        assert is_rectilinear(pts)

    def test_diagonal_rejected(self):
        pts = [Point(0, 0), Point(4, 4), Point(0, 4)]
        assert not is_rectilinear(pts)
