"""Unit tests for the BISR package: TLB, repair analysis, delay, masking."""

import pytest

from repro.bisr import (
    AsyncPrechargeOverlap,
    DecoderUpsizing,
    SyncAddressRegisterOverlap,
    Tlb,
    analyze_repair,
    best_masking_strategy,
    tlb_delay_breakdown,
    tlb_delay_s,
)
from repro.tech import get_process


class TestTlb:
    def test_empty_translates_identity(self):
        tlb = Tlb(regular_rows=16, spares=4)
        assert tlb.translate(5) == (5, False)

    def test_record_and_divert(self):
        tlb = Tlb(16, 4)
        assert tlb.record(3)
        assert tlb.translate(3) == (16, True)
        assert tlb.translate(4) == (4, False)

    def test_strictly_increasing_assignment(self):
        tlb = Tlb(16, 4)
        for row in (9, 2, 14):
            tlb.record(row)
        assert tlb.assigned_spares() == [0, 1, 2]

    def test_duplicate_record_is_noop(self):
        tlb = Tlb(16, 4)
        tlb.record(3)
        tlb.record(3)
        assert tlb.spares_used == 1

    def test_remap_advances_spare(self):
        tlb = Tlb(16, 4)
        tlb.record(3)
        tlb.record(3, remap=True)
        assert tlb.translate(3) == (17, True)
        assert tlb.spares_used == 2

    def test_overflow(self):
        tlb = Tlb(16, 2)
        assert tlb.record(1) and tlb.record(2)
        assert not tlb.record(3)
        assert tlb.overflowed

    def test_spare_rows_are_addressable(self):
        """A faulty spare (row >= regular_rows) can itself be recorded —
        the premise of iterated repair."""
        tlb = Tlb(16, 4)
        tlb.record(16)  # spare row 0's address
        assert tlb.translate(16) == (16, True)

    def test_out_of_range_rejected(self):
        tlb = Tlb(16, 4)
        with pytest.raises(ValueError):
            tlb.record(25)

    def test_reset(self):
        tlb = Tlb(16, 4)
        tlb.record(1)
        tlb.reset()
        assert len(tlb) == 0 and tlb.spares_left == 4

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Tlb(0, 4)
        with pytest.raises(ValueError):
            Tlb(16, 0)

    def test_at_most_one_match(self):
        """Parallel compare correctness: entries never duplicate a key."""
        tlb = Tlb(16, 4)
        tlb.record(5)
        tlb.record(5, remap=True)
        rows = [e.row for e in tlb.entries]
        assert rows.count(5) == 1


class TestRepairAnalysis:
    def test_simple_repair(self):
        r = analyze_repair([3, 7], spares=4)
        assert r.repairable
        assert r.spares_consumed == 2
        assert r.passes_needed == 2
        assert r.assignment == ((3, 0), (7, 1))

    def test_not_enough_spares(self):
        r = analyze_repair([1, 2, 3], spares=2)
        assert not r.repairable

    def test_faulty_spare_costs_extra_pass(self):
        r = analyze_repair([5], spares=4, faulty_spares=[0])
        assert r.repairable
        assert r.spares_consumed == 2
        assert r.passes_needed == 4
        assert r.wasted_spares == (0,)
        assert dict(r.assignment)[5] == 1

    def test_all_spares_faulty(self):
        r = analyze_repair([5], spares=2, faulty_spares=[0, 1])
        assert not r.repairable

    def test_duplicates_deduped(self):
        r = analyze_repair([5, 5, 5], spares=4)
        assert r.spares_consumed == 1

    def test_zero_faults(self):
        r = analyze_repair([], spares=4)
        assert r.repairable and r.spares_consumed == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            analyze_repair([1], spares=-1)
        with pytest.raises(ValueError):
            analyze_repair([1], spares=2, faulty_spares=[5])


class TestTlbDelay:
    def test_paper_operating_point(self):
        """~1.2 ns at 0.7 um, 4 spares, 10-bit row address."""
        d = tlb_delay_s(get_process("cda07"), 10, 4)
        assert 0.9e-9 <= d <= 1.5e-9

    def test_grows_with_spares(self):
        p = get_process("cda07")
        delays = [tlb_delay_s(p, 10, s) for s in (1, 4, 8, 16)]
        assert delays == sorted(delays)
        assert delays[-1] > delays[0]

    def test_grows_with_address_bits(self):
        p = get_process("cda07")
        assert tlb_delay_s(p, 12, 4) > tlb_delay_s(p, 6, 4)

    def test_faster_on_smaller_process(self):
        assert tlb_delay_s(get_process("cda05"), 10, 4) < \
            tlb_delay_s(get_process("cda07"), 10, 4)

    def test_breakdown_sums_to_total(self):
        p = get_process("mos06")
        parts = tlb_delay_breakdown(p, 10, 4)
        assert sum(parts.values()) == pytest.approx(tlb_delay_s(p, 10, 4))
        assert set(parts) == {"search_line", "match_line", "encode_mux"}

    def test_validation(self):
        p = get_process("cda07")
        with pytest.raises(ValueError):
            tlb_delay_s(p, 0, 4)
        with pytest.raises(ValueError):
            tlb_delay_s(p, 10, 0)


class TestMasking:
    def test_async_overlap_masks_when_precharge_longer(self):
        r = AsyncPrechargeOverlap(2e-9).evaluate(1.2e-9)
        assert r.masked and r.residual_penalty_s == 0.0

    def test_async_overlap_partial(self):
        r = AsyncPrechargeOverlap(1e-9).evaluate(1.2e-9)
        assert not r.masked
        assert r.residual_penalty_s == pytest.approx(0.2e-9)

    def test_sync_overlap(self):
        r = SyncAddressRegisterOverlap(3e-9).evaluate(1.2e-9)
        assert r.masked

    def test_decoder_upsizing_reports_cost(self):
        r = DecoderUpsizing(decoder_delay_s=3e-9).evaluate(1.2e-9)
        assert r.masked
        assert r.power_factor > 1.0
        assert r.area_factor == pytest.approx(r.power_factor)

    def test_decoder_upsizing_limit(self):
        r = DecoderUpsizing(
            decoder_delay_s=1.5e-9, max_upsizing=2.0
        ).evaluate(1.2e-9)
        assert not r.masked

    def test_decoder_upsizing_wire_floor(self):
        r = DecoderUpsizing(decoder_delay_s=1.0e-9).evaluate(0.99e-9)
        assert not r.masked

    def test_best_prefers_free_overlap(self):
        best = best_masking_strategy(
            [
                DecoderUpsizing(decoder_delay_s=5e-9),
                AsyncPrechargeOverlap(2e-9),
            ],
            1.2e-9,
        )
        assert best.strategy == "async-precharge-overlap"
        assert best.power_factor == 1.0

    def test_best_none_when_unmaskable(self):
        best = best_masking_strategy(
            [AsyncPrechargeOverlap(0.1e-9)], 1.2e-9
        )
        assert best is None
