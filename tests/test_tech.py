"""Unit tests for repro.tech: layers, rules, processes, device params."""

import pytest

from repro.tech import (
    CDA07,
    DesignRules,
    Layer,
    LayerSet,
    available_processes,
    get_process,
)
from repro.tech.spice_params import nmos_for_node, pmos_for_node


class TestLayerSet:
    def test_standard_layers_present(self):
        ls = LayerSet()
        for name in ("ndiff", "pdiff", "poly", "metal1", "metal2",
                     "metal3", "contact", "via1", "via2", "nwell"):
            assert name in ls

    def test_unknown_layer_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known"):
            LayerSet()["metal9"]

    def test_conductors(self):
        names = {l.name for l in LayerSet().conductors()}
        assert "metal1" in names and "poly" in names
        assert "nwell" not in names and "contact" not in names

    def test_routing_layers_ordered(self):
        levels = [l.routing_level for l in LayerSet().routing_layers()]
        assert levels == [1, 2, 3]

    def test_metal_lookup(self):
        assert LayerSet().metal(3).name == "metal3"

    def test_metal_lookup_missing(self):
        with pytest.raises(KeyError):
            LayerSet().metal(4)

    def test_duplicate_layer_rejected(self):
        dup = (Layer("a", "A", 1), Layer("a", "A2", 2))
        with pytest.raises(ValueError):
            LayerSet(dup)


class TestDesignRules:
    def test_scaling(self):
        r1 = DesignRules.scalable(25)
        r2 = DesignRules.scalable(35)
        assert r2.min_width("poly") / r1.min_width("poly") == 35 / 25

    def test_min_width_values(self):
        rules = DesignRules.scalable(35)  # 0.7 um
        assert rules.min_width("poly") == 70
        assert rules.min_width("metal3") == 175

    def test_pitch(self):
        rules = DesignRules.scalable(10)
        assert rules.pitch("metal1") == rules.min_width("metal1") + \
            rules.min_space("metal1")

    def test_enclosure_lookup(self):
        rules = DesignRules.scalable(10)
        assert rules.enclosure("metal1", "contact") == 10

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            DesignRules.scalable(10)["width.metal7"]

    def test_override(self):
        rules = DesignRules.scalable(10, overrides={"width.poly": 3})
        assert rules.min_width("poly") == 30

    def test_unknown_override_rejected(self):
        with pytest.raises(KeyError):
            DesignRules.scalable(10, overrides={"width.bogus": 3})

    def test_bad_lambda(self):
        with pytest.raises(ValueError):
            DesignRules.scalable(0)

    def test_feature_um(self):
        assert DesignRules.scalable(35).feature_um() == pytest.approx(0.7)


class TestProcess:
    def test_presets_available(self):
        assert available_processes() == ("cda05", "cda07", "mos06", "mos08")

    def test_lookup(self):
        assert get_process("cda07") is CDA07

    def test_unknown_process(self):
        with pytest.raises(KeyError, match="available"):
            get_process("tsmc7")

    def test_all_presets_are_3_metal(self):
        for name in available_processes():
            assert get_process(name).metal_layers == 3

    def test_lambda_matches_feature(self):
        for name in available_processes():
            p = get_process(name)
            assert p.lambda_cu == pytest.approx(p.feature_um * 50)

    def test_unit_conversion_roundtrip(self):
        p = get_process("mos06")
        assert p.cu_to_um(p.um_to_cu(12.34)) == pytest.approx(12.34)


class TestMosParams:
    def test_polarity_validation(self):
        with pytest.raises(ValueError):
            nmos_for_node(0.7).__class__(
                polarity="nmos", vto=-0.7, kp=1e-4, lambda_=0.04,
                cox=1e-3, cj=1e-4, cjsw=1e-10, min_l_um=0.7,
            )

    def test_pmos_weaker_than_nmos(self):
        n, p = nmos_for_node(0.7), pmos_for_node(0.7)
        assert p.kp < n.kp

    def test_kp_grows_at_smaller_nodes(self):
        assert nmos_for_node(0.5).kp > nmos_for_node(0.8).kp

    def test_beta(self):
        n = nmos_for_node(0.7)
        assert n.beta(7.0, 0.7) == pytest.approx(10 * n.kp)

    def test_beta_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            nmos_for_node(0.7).beta(0, 1)

    def test_node_range_enforced(self):
        with pytest.raises(ValueError):
            nmos_for_node(0.1)
