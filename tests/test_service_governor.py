"""Tests for admission control under resource pressure."""

import os

import pytest

from repro.core.errors import ConfigError
from repro.service.governor import (
    GOVERNOR_STATES,
    ResourceGovernor,
    rss_bytes,
)

GIB = 1 << 30


def scripted(tmp_path, *, free=None, rss=None, **kwargs):
    """A governor whose probes read mutable dicts, so tests replay
    pressure curves deterministically."""
    return ResourceGovernor(
        tmp_path,
        disk_probe=(lambda: free["now"]) if free is not None else None,
        rss_probe=(lambda: rss["now"]) if rss is not None else None,
        sample_interval_s=0.0,
        **kwargs)


class TestValidation:
    def test_thresholds_must_be_positive(self, tmp_path):
        for field in ("disk_reserve_bytes", "disk_floor_bytes",
                      "rss_limit_bytes"):
            with pytest.raises(ConfigError, match=field):
                ResourceGovernor(tmp_path, **{field: 0})

    def test_floor_must_not_exceed_reserve(self, tmp_path):
        with pytest.raises(ConfigError, match="floor"):
            ResourceGovernor(tmp_path, disk_reserve_bytes=GIB,
                             disk_floor_bytes=2 * GIB)

    def test_retry_after_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigError, match="retry_after"):
            ResourceGovernor(tmp_path, retry_after_s=0)

    def test_sample_interval_must_be_nonnegative(self, tmp_path):
        with pytest.raises(ConfigError, match="sample_interval"):
            ResourceGovernor(tmp_path, sample_interval_s=-1)

    def test_floor_defaults_to_a_quarter_of_the_reserve(self, tmp_path):
        governor = ResourceGovernor(tmp_path, disk_reserve_bytes=GIB)
        assert governor.disk_floor_bytes == GIB // 4


class TestStates:
    def test_state_ordering_constant(self):
        assert GOVERNOR_STATES == ("admitting", "shedding", "read_only")

    def test_disk_pressure_curve(self, tmp_path):
        free = {"now": 10 * GIB}
        governor = scripted(tmp_path, free=free,
                            disk_reserve_bytes=GIB)
        assert governor.state() == "admitting"
        free["now"] = GIB // 2  # below reserve, above floor
        assert governor.state() == "shedding"
        free["now"] = GIB // 8  # below the floor (reserve // 4)
        assert governor.state() == "read_only"
        free["now"] = 10 * GIB
        assert governor.state() == "admitting"
        assert governor.to_dict()["transitions"] == 3

    def test_rss_pressure_sheds(self, tmp_path):
        rss = {"now": 100}
        governor = scripted(tmp_path, rss=rss, rss_limit_bytes=1000)
        assert governor.state() == "admitting"
        rss["now"] = 2000
        assert governor.state() == "shedding"
        rss["now"] = 100
        assert governor.state() == "admitting"

    def test_no_limits_means_always_admitting(self, tmp_path):
        governor = ResourceGovernor(tmp_path, sample_interval_s=0.0)
        assert governor.state() == "admitting"
        snapshot = governor.to_dict()
        assert snapshot["free_disk_bytes"] is None
        assert snapshot["rss_bytes"] is None

    def test_unknowable_disk_headroom_admits(self, tmp_path):
        """A failed statvfs must not wedge the server shut."""
        governor = ResourceGovernor(
            tmp_path / "vanished" / "deeper",
            disk_reserve_bytes=GIB, sample_interval_s=0.0)
        # The probe falls back to the (also absent) parent; a real
        # OSError path returns None, which must admit.
        assert governor.state() in ("admitting", "shedding")

    def test_sampling_is_interval_cached(self, tmp_path):
        probes = []
        governor = ResourceGovernor(
            tmp_path, disk_reserve_bytes=GIB,
            disk_probe=lambda: probes.append(1) or 10 * GIB,
            sample_interval_s=3600.0)
        governor.state()
        governor.state()
        governor.state()
        assert len(probes) == 1
        governor.refresh()  # the bypass valve
        assert len(probes) == 2

    def test_to_dict_reports_without_probing(self, tmp_path):
        probes = []
        governor = ResourceGovernor(
            tmp_path, disk_reserve_bytes=GIB,
            disk_probe=lambda: probes.append(1) or 10 * GIB,
            sample_interval_s=0.0)
        governor.state()
        count = len(probes)
        snapshot = governor.to_dict()
        assert len(probes) == count
        assert snapshot["state"] == "admitting"
        assert snapshot["free_disk_bytes"] == 10 * GIB
        assert snapshot["disk_reserve_bytes"] == GIB
        assert snapshot["retry_after_s"] == 5.0

    def test_real_disk_probe_runs(self, tmp_path):
        governor = ResourceGovernor(tmp_path, disk_reserve_bytes=1,
                                    sample_interval_s=0.0)
        assert governor.state() == "admitting"
        assert governor.to_dict()["free_disk_bytes"] > 0


class TestRss:
    def test_rss_bytes_reads_proc(self):
        own = rss_bytes()
        assert own is not None and own > 0
        assert rss_bytes(os.getpid()) is not None

    def test_rss_bytes_for_a_dead_pid_is_none(self):
        assert rss_bytes(2 ** 22 + 12345) is None

    def test_worker_pids_fold_into_the_budget(self, tmp_path):
        governor = ResourceGovernor(
            tmp_path, rss_limit_bytes=1,
            worker_pids=lambda: [os.getpid()],
            sample_interval_s=0.0)
        assert governor.state() == "shedding"
        # Self + one "worker" (ourselves again): roughly double.
        total = governor.to_dict()["rss_bytes"]
        assert total >= 2 * (rss_bytes() or 0) * 0.5
