"""Unit tests for the compiler core: config, datasheet, BISRAMGen."""

import pytest

from repro import BISRAMGen, RamConfig, compile_ram
from repro.core.datasheet import build_datasheet
from repro.core.floorplan import build_floorplan


class TestRamConfig:
    def test_derived_geometry(self):
        cfg = RamConfig(words=2048, bpw=32, bpc=8)
        assert cfg.rows == 256
        assert cfg.columns == 256
        assert cfg.bits == 65536
        assert cfg.total_rows == 260
        assert cfg.row_address_bits == 8
        assert cfg.column_address_bits == 3

    def test_power_of_two_enforced(self):
        with pytest.raises(ValueError):
            RamConfig(words=96, bpw=24, bpc=8)
        with pytest.raises(ValueError):
            RamConfig(words=96, bpw=32, bpc=6)

    def test_words_multiple_of_bpc(self):
        with pytest.raises(ValueError):
            RamConfig(words=100, bpw=8, bpc=8)

    def test_spares_choices(self):
        for s in (4, 8, 16):
            RamConfig(words=64, bpw=4, bpc=4, spares=s)
        with pytest.raises(ValueError):
            RamConfig(words=64, bpw=4, bpc=4, spares=3)

    def test_gate_size_validated(self):
        with pytest.raises(ValueError):
            RamConfig(words=64, bpw=4, bpc=4, gate_size=0)

    def test_strap_width_validated(self):
        with pytest.raises(ValueError):
            RamConfig(words=64, bpw=4, bpc=4, strap_width_lambda=8)

    def test_spare_word_fraction(self):
        cfg = RamConfig(words=1024, bpw=4, bpc=4, spares=4)
        assert cfg.spare_word_fraction == pytest.approx(16 / 1024)

    def test_describe(self):
        text = RamConfig(words=2048, bpw=32, bpc=8).describe()
        assert "64 Kbit" in text and "cda07" in text


SMALL = RamConfig(words=64, bpw=8, bpc=4, spares=4, strap_every=8)


class TestFloorplan:
    @pytest.fixture(scope="class")
    def plan(self):
        return build_floorplan(SMALL)

    def test_macro_inventory(self, plan):
        assert set(plan.macrocells) >= {
            "array", "precharge_row", "mux_row", "sense_row",
            "decoder_col", "trpla", "tlb", "addgen", "datagen", "streg",
        }

    def test_baseline_lacks_bist(self):
        base = build_floorplan(SMALL, with_bisr=False)
        assert "trpla" not in base.macrocells
        assert "tlb" not in base.macrocells

    def test_array_has_spare_rows(self, plan):
        base = build_floorplan(SMALL, with_bisr=False)
        ratio = plan.areas_cu2["array"] / base.areas_cu2["array"]
        expected = SMALL.total_rows / SMALL.rows
        assert ratio == pytest.approx(expected, rel=0.01)

    def test_component_area_below_bbox(self, plan):
        assert plan.component_area_mm2() <= plan.area_mm2() * 1.001

    def test_trpla_carries_real_microprogram(self, plan):
        # The PLA personality assembled for IFA-9 has >100 terms.
        assert plan.assembled_pla.term_count > 100

    def test_datapath_alignment(self, plan):
        """Precharge row and mux row must span exactly the array width
        (bit-line pitch matching)."""
        a = plan.macrocells["array"].width
        assert plan.macrocells["precharge_row"].width == \
            pytest.approx(a, abs=plan.macrocells["array"].width * 0.02)

    def test_every_bitline_connects_by_abutment(self, plan):
        """'No routing is necessary': every column's bl and blb must
        abut between array<->precharge and array<->mux."""
        from repro.pnr import abutting_ports

        pairs = abutting_ports(plan.top)
        arr_pre = [p for p in pairs
                   if {p[0], p[2]} == {"array", "precharge_row"}]
        arr_mux = [p for p in pairs
                   if {p[0], p[2]} == {"array", "mux_row"}]
        expected = 2 * SMALL.columns  # bl + blb per column
        assert len(arr_pre) == expected
        assert len(arr_mux) == expected


class TestCompile:
    @pytest.fixture(scope="class")
    def ram(self):
        return compile_ram(SMALL)

    def test_area_report_consistency(self, ram):
        ar = ram.area_report
        assert ar.total_mm2 > ar.baseline_mm2 > 0
        assert ar.bbox_mm2 >= ar.total_mm2
        assert ar.overhead_percent > 0
        assert ar.bist_bisr_only_percent < ar.overhead_percent

    def test_datasheet_sanity(self, ram):
        ds = ram.datasheet
        assert 0.5e-9 < ds.read_access_s < 50e-9
        assert ds.cycle_time_s > ds.read_access_s
        assert ds.tlb_penalty_s < ds.read_access_s
        assert ds.supply_v == 5.0
        assert ds.active_power_w > 0
        assert "datasheet" in ds.summary()

    def test_simulation_model_matches_config(self, ram):
        device = ram.simulation_model()
        assert device.word_count == SMALL.words
        assert device.array.spares == SMALL.spares

    def test_self_test_runs_clean(self, ram):
        result = ram.self_test_controller().run()
        assert result.repaired

    def test_control_code_files(self, ram, tmp_path):
        paths = ram.write_control_code(tmp_path)
        from repro.bist import Trpla, read_plane_files

        and_p, or_p = read_plane_files(paths["and"], paths["or"])
        pla = Trpla(and_p, or_p)
        assert pla.term_count == ram.floorplan.assembled_pla.term_count

    def test_cif_export(self, ram, tmp_path):
        path = tmp_path / "ram.cif"
        ram.write_cif(path)
        text = path.read_text()
        assert text.startswith("(")
        assert "DS " in text and text.rstrip().endswith("E")

    def test_svg_render(self, ram):
        svg = ram.render_svg()
        assert svg.startswith("<svg") and "<rect" in svg

    def test_ascii_render(self, ram):
        art = ram.render_ascii()
        assert "array" in art


class TestAreaOverheadShape:
    def test_overhead_shrinks_with_array_size(self):
        """The paper's Table I shape: bigger arrays, smaller relative
        BIST/BISR cost."""
        small = compile_ram(
            RamConfig(words=128, bpw=8, bpc=4, strap_every=0)
        ).area_report
        large = compile_ram(
            RamConfig(words=1024, bpw=16, bpc=4, strap_every=0)
        ).area_report
        assert large.overhead_percent < small.overhead_percent

    def test_realistic_size_below_seven_percent(self):
        """'at most 7% for realistic array sizes' (64 Kbit and up)."""
        ram = compile_ram(RamConfig(words=2048, bpw=32, bpc=8))
        assert ram.area_report.overhead_percent <= 7.0

    def test_gate_size_grows_drivers(self):
        slim = compile_ram(SMALL)
        beefy = compile_ram(
            RamConfig(words=64, bpw=8, bpc=4, spares=4,
                      strap_every=8, gate_size=3)
        )
        assert beefy.area_report.total_mm2 > slim.area_report.total_mm2

    def test_process_independence(self):
        """Same configuration compiles on every preset and areas scale
        with lambda squared."""
        r5 = compile_ram(RamConfig(words=64, bpw=8, bpc=4,
                                   process="cda05"))
        r7 = compile_ram(RamConfig(words=64, bpw=8, bpc=4,
                                   process="cda07"))
        ratio = r7.area_report.total_mm2 / r5.area_report.total_mm2
        assert ratio == pytest.approx((0.7 / 0.5) ** 2, rel=0.01)


class TestSelftestTime:
    def test_datasheet_includes_selftest_duration(self):
        ram = compile_ram(SMALL)
        ds = ram.datasheet
        assert ds.selftest_march_s > 0
        assert ds.selftest_retention_s > 0
        assert ds.selftest_total_s == pytest.approx(
            ds.selftest_march_s + ds.selftest_retention_s
        )
        assert "self-test" in ds.summary()

    def test_retention_dominates(self):
        """The 100 ms handshakes dwarf the march for any small macro."""
        ram = compile_ram(SMALL)
        ds = ram.datasheet
        assert ds.selftest_retention_s > 10 * ds.selftest_march_s


class TestFlowReport:
    def test_flow_report_covers_every_phase(self):
        ram = compile_ram(SMALL)
        report = ram.flow_report()
        for marker in ("leaf-cell library", "macrocell generation",
                       "control microprogram", "assembly",
                       "area accounting", "guarantees"):
            assert marker in report
        assert "trpla" in report
        assert "cam_bit" in report
