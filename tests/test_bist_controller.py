"""Tests for the BIST scheduler, microprogram builder, and TRPLA controller."""

import pytest

from repro.bist import (
    IFA_9,
    MATS_PLUS,
    BistScheduler,
    TrplaController,
    build_test_program,
)
from repro.bist.microcode import assemble
from repro.memsim import BisrRam
from repro.memsim.faults import RowStuck, StuckAt


def device(rows=8, bpw=4, bpc=4, spares=4):
    return BisrRam(rows=rows, bpw=bpw, bpc=bpc, spares=spares)


class TestSchedulerCleanMemory:
    def test_clean_memory_repairs_trivially(self):
        r = BistScheduler(IFA_9, bpw=4).run(device())
        assert r.repaired and r.fail_count == 0
        assert r.passes_run == 2

    def test_op_count_formula(self):
        d = device()
        sched = BistScheduler(IFA_9, bpw=4)
        r = sched.run(d, passes=1)
        backgrounds = 3  # log2(4) + 1
        expected = IFA_9.operations_per_address * d.word_count * backgrounds
        assert r.op_count == expected

    def test_needs_at_least_one_pass(self):
        with pytest.raises(ValueError):
            BistScheduler(IFA_9, bpw=4).run(device(), passes=0)

    def test_march_covers_all_addresses_each_element(self):
        d = device(rows=4)
        sched = BistScheduler(MATS_PLUS, bpw=4, record_ops=True)
        r = sched.run(d, passes=1)
        first_element_ops = [op for op in r.ops if op.background == 0][
            : d.word_count
        ]
        assert [op.address for op in first_element_ops] == \
            list(range(d.word_count))


class TestSchedulerRepair:
    def test_single_cell_fault_repaired(self):
        d = device()
        d.array.inject(StuckAt(d.array.cell_index(3, 1, 2), 1))
        r = BistScheduler(IFA_9, bpw=4).run(d)
        assert r.repaired
        assert d.tlb.mapped_rows() == {3: 8}
        assert d.check_pattern(0b0101) == 0

    def test_row_defect_repaired(self):
        d = device()
        d.array.inject(RowStuck(5, d.array.phys_cols, 0))
        r = BistScheduler(IFA_9, bpw=4).run(d)
        assert r.repaired
        assert 5 in d.tlb.mapped_rows()

    def test_too_many_faulty_rows_unrepairable(self):
        d = device(spares=4)
        for row in range(5):
            d.array.inject(RowStuck(row, d.array.phys_cols, 0))
        r = BistScheduler(IFA_9, bpw=4).run(d)
        assert not r.repaired
        assert d.tlb.overflowed

    def test_faulty_spare_two_pass_fails(self):
        d = device()
        d.array.inject(StuckAt(d.array.cell_index(2, 0, 0), 1))
        d.array.inject(RowStuck(8, d.array.phys_cols, 0))  # spare 0
        r = BistScheduler(IFA_9, bpw=4).run(d, passes=2)
        assert not r.repaired

    def test_faulty_spare_four_pass_converges(self):
        d = device()
        d.array.inject(StuckAt(d.array.cell_index(2, 0, 0), 1))
        d.array.inject(RowStuck(8, d.array.phys_cols, 0))
        r = BistScheduler(IFA_9, bpw=4).run(
            d, passes=4, stop_on_repair_fail=False
        )
        assert r.repaired
        # Strictly increasing: the row advanced past the dead spare.
        assert d.tlb.mapped_rows()[2] == 9

    def test_multiple_faults_same_row_use_one_spare(self):
        d = device()
        for bit in range(3):
            d.array.inject(StuckAt(d.array.cell_index(6, bit, 1), 1))
        BistScheduler(IFA_9, bpw=4).run(d)
        assert d.tlb.spares_used == 1


class TestMicroprogram:
    def test_state_budget(self):
        prog = build_test_program(IFA_9, passes=2)
        # Must fit the paper's six flip-flops (59 states there; the
        # differences are bookkeeping states folded into transitions).
        assert 40 <= len(prog) <= 64
        assert prog.state_bits == 6

    def test_condition_inputs(self):
        prog = build_test_program(IFA_9)
        assert set(prog.condition_inputs()) == {
            "go", "addr_done", "bg_done", "fail", "retention_done",
        }

    def test_key_outputs_present(self):
        prog = build_test_program(IFA_9)
        outs = set(prog.control_outputs())
        assert {"op_read", "op_write", "data_inv", "tlb_record",
                "addr_step", "datagen_shift", "wait_retention",
                "done", "repair_unsuccessful"} <= outs

    def test_passes_validated(self):
        with pytest.raises(ValueError):
            build_test_program(IFA_9, passes=0)

    def test_assembles(self):
        pla = assemble(build_test_program(IFA_9))
        assert pla.term_count > len(build_test_program(IFA_9))


class TestTrplaController:
    def test_stream_equivalence_with_scheduler(self):
        d1, d2 = device(), device()
        r1 = BistScheduler(IFA_9, bpw=4, record_ops=True).run(d1)
        r2 = TrplaController(IFA_9, bpw=4, target=d2,
                             record_ops=True).run()
        assert r1.ops == r2.ops
        assert r1.op_count == r2.op_count

    def test_stream_equivalence_mats(self):
        d1, d2 = device(rows=4, bpw=2, bpc=2), device(rows=4, bpw=2, bpc=2)
        r1 = BistScheduler(MATS_PLUS, bpw=2, record_ops=True).run(d1)
        r2 = TrplaController(MATS_PLUS, bpw=2, target=d2,
                             record_ops=True).run()
        assert r1.ops == r2.ops

    def test_controller_repairs(self):
        d = device()
        d.array.inject(StuckAt(d.array.cell_index(4, 2, 3), 0))
        # StuckAt 0 at a cell: detected when 1 expected.
        result = TrplaController(IFA_9, bpw=4, target=d).run()
        assert result.repaired
        assert 4 in d.tlb.mapped_rows()

    def test_controller_flags_repair_fail(self):
        d = device(spares=4)
        for row in range(5):
            d.array.inject(RowStuck(row, d.array.phys_cols, 1))
        result = TrplaController(IFA_9, bpw=4, target=d).run()
        assert result.repair_unsuccessful

    def test_iterated_cycles_fix_faulty_spare(self):
        d = device()
        d.array.inject(StuckAt(d.array.cell_index(2, 0, 0), 1))
        d.array.inject(RowStuck(8, d.array.phys_cols, 0))
        first = TrplaController(IFA_9, bpw=4, target=d).run()
        assert first.repair_unsuccessful
        second = TrplaController(IFA_9, bpw=4, target=d,
                                 fresh=False).run()
        assert second.repaired
        assert d.check_pattern(0b1001) == 0

    def test_runaway_guard(self):
        d = device()
        c = TrplaController(IFA_9, bpw=4, target=d)
        with pytest.raises(RuntimeError):
            c.run(max_cycles=10)

    def test_idle_until_go(self):
        d = device()
        c = TrplaController(IFA_9, bpw=4, target=d)
        for _ in range(5):
            c.step(go=0)
        assert c.result.op_count == 0
        assert not c.finished
