"""Tests for the request-lifecycle WAL and server crash recovery."""

import json

import pytest

from repro.bist.march import IFA_9
from repro.core.config import RamConfig
from repro.core.errors import ConfigError
from repro.service.bundle import bundle_key
from repro.service.server import MacroServer
from repro.service.store import ArtifactStore
from repro.service.wal import RequestLog

CFG = RamConfig(words=64, bpw=8, bpc=4, strap_every=8)
KEY = bundle_key(CFG, IFA_9)


def admit_one(log, key=KEY, config=None):
    return log.admit(key=key,
                     config=config or CFG.to_dict(),
                     march_name=IFA_9.name,
                     march_notation=str(IFA_9),
                     signoff=None)


class TestRequestLog:
    def test_fresh_log_has_no_backlog(self, tmp_path):
        with RequestLog(tmp_path / "wal.jsonl") as log:
            assert log.pending() == []

    def test_admit_then_done_round_trip(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with RequestLog(path) as log:
            rid = admit_one(log)
            assert [r["id"] for r in log.pending()] == [rid]
            log.done(rid, "ok")
            assert log.pending() == []
        assert RequestLog(path).open() == []

    def test_unfinished_requests_survive_reopen(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with RequestLog(path) as log:
            rid = admit_one(log)
        backlog = RequestLog(path).open()
        assert [r["id"] for r in backlog] == [rid]
        assert backlog[0]["key"] == KEY
        assert backlog[0]["config"] == CFG.to_dict()
        assert backlog[0]["march_notation"] == str(IFA_9)

    def test_torn_final_line_is_forgiven(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with RequestLog(path) as log:
            rid = admit_one(log)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "done", "id": "r000')  # the kill
        backlog = RequestLog(path).open()
        assert [r["id"] for r in backlog] == [rid]

    def test_mid_file_corruption_is_refused(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with RequestLog(path) as log:
            admit_one(log)
        lines = path.read_text("utf-8").splitlines()
        lines.insert(1, "garbage not json")
        path.write_text("\n".join(lines) + "\n", "utf-8")
        with pytest.raises(ConfigError, match="corrupt at line 2"):
            RequestLog(path).open()

    def test_version_mismatch_is_refused(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text(json.dumps(
            {"type": "header", "version": 999}) + "\n", "utf-8")
        with pytest.raises(ConfigError, match="version"):
            RequestLog(path).open()

    def test_open_compacts_done_records_away(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with RequestLog(path) as log:
            done_rid = admit_one(log, key="a" * 64)
            admit_one(log, key="b" * 64)
            log.done(done_rid, "ok")
        RequestLog(path).open()
        lines = path.read_text("utf-8").splitlines()
        assert len(lines) == 2  # header + the one pending admit
        assert json.loads(lines[1])["key"] == "b" * 64

    def test_done_is_idempotent_for_unknown_ids(self, tmp_path):
        with RequestLog(tmp_path / "wal.jsonl") as log:
            log.done("r99999999", "ok")  # no-op, no raise

    def test_done_rejects_bad_status(self, tmp_path):
        with RequestLog(tmp_path / "wal.jsonl") as log:
            rid = admit_one(log)
            with pytest.raises(ConfigError, match="status"):
                log.done(rid, "maybe")

    def test_sequence_continues_across_reopen(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with RequestLog(path) as log:
            first = admit_one(log)
        log = RequestLog(path)
        log.open()
        second = admit_one(log, key="c" * 64)
        log.close()
        assert second != first

    def test_is_open_tracks_the_handle(self, tmp_path):
        log = RequestLog(tmp_path / "wal.jsonl")
        assert log.is_open is False
        log.open()
        assert log.is_open is True
        log.close()
        assert log.is_open is False

    def test_compact_before_open_is_refused(self, tmp_path):
        """Compacting an unloaded log would rewrite the file from an
        empty pending set — destroying a live primary's journal (the
        standby holds an unopened RequestLog until promotion)."""
        path = tmp_path / "wal.jsonl"
        with RequestLog(path) as primary:
            admit_one(primary)
            standby = RequestLog(path)
            with pytest.raises(ConfigError, match="before open"):
                standby.compact()
        # The primary's admit survived the refused compaction.
        assert [r["key"] for r in RequestLog(path).open()] == [KEY]

    def test_compaction_racing_admits(self, tmp_path):
        """Admits from request threads racing the periodic compaction
        must never be lost or duplicated: after the dust settles the
        pending set is exactly the admitted-minus-done ids."""
        import threading

        path = tmp_path / "wal.jsonl"
        log = RequestLog(path)
        log.open()
        admitted = [[] for _ in range(4)]
        errors = []
        start = threading.Barrier(5)

        def admitter(slot):
            try:
                start.wait(10.0)
                for index in range(50):
                    rid = admit_one(
                        log, key=f"{slot}{index:03d}".ljust(64, "e"))
                    admitted[slot].append(rid)
                    if index % 3 == 0:
                        log.done(rid, "ok")
            except Exception as error:  # pragma: no cover
                errors.append(error)

        def compactor():
            try:
                start.wait(10.0)
                for _ in range(25):
                    log.compact()
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=admitter, args=(slot,))
                   for slot in range(4)]
        threads.append(threading.Thread(target=compactor))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        survivors = {rid for slot in admitted for rid in slot}
        # Every third admit per thread was retired inline above.
        retired = {rid for slot in admitted for rid in slot[::3]}
        expected = survivors - retired
        assert {r["id"] for r in log.pending()} == expected
        log.close()
        # The on-disk file replays to the same pending set.
        assert {r["id"]
                for r in RequestLog(path).open()} == expected


class TestServerRecovery:
    def test_requests_are_journaled_and_retired(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        store = ArtifactStore(tmp_path / "store")
        server = MacroServer(store=store, workers=2,
                             wal=RequestLog(path))
        try:
            server.compile(CFG)
        finally:
            server.shutdown()
        assert RequestLog(path).open() == []

    def test_killed_server_replays_its_backlog(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        store = ArtifactStore(tmp_path / "store")
        # The "killed" predecessor: admit journaled, done never was.
        with RequestLog(path) as dead:
            admit_one(dead)
        server = MacroServer(store=store, workers=2,
                             wal=RequestLog(path))
        try:
            assert server.wait_ready(timeout=300.0)
            stats = server.stats()
            assert stats["wal"]["replayed"] == 1
            assert stats["wal"]["pending"] == 0
            assert store.verify(KEY)
        finally:
            server.shutdown()
        assert RequestLog(path).open() == []

    def test_server_serves_while_replaying(self, tmp_path):
        """Readiness is advice, not a gate: requests (especially warm
        hits) are served during replay."""
        path = tmp_path / "wal.jsonl"
        store = ArtifactStore(tmp_path / "store")
        with RequestLog(path) as dead:
            admit_one(dead)
        server = MacroServer(store=store, workers=2,
                             wal=RequestLog(path))
        try:
            response = server.compile(CFG)  # during or after replay
            assert response.key == KEY
            assert server.wait_ready(timeout=300.0)
        finally:
            server.shutdown()

    def test_unreplayable_request_is_retired_as_failed(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        store = ArtifactStore(tmp_path / "store")
        with RequestLog(path) as dead:
            admit_one(dead, config={"words": -1, "bpw": 8, "bpc": 4})
        server = MacroServer(store=store, workers=2,
                             wal=RequestLog(path))
        try:
            assert server.wait_ready(timeout=60.0)
            stats = server.stats()
            assert stats["wal"]["replayed"] == 0
            assert stats["wal"]["replay_failures"] == 1
        finally:
            server.shutdown()
        # Retired, not retried forever: a fresh start has no backlog.
        assert RequestLog(path).open() == []

    def test_server_without_wal_is_ready_immediately(self, tmp_path):
        server = MacroServer(store=ArtifactStore(tmp_path), workers=2)
        try:
            assert server.ready
            assert server.stats().get("wal") is None
        finally:
            server.shutdown()
