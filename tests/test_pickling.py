"""Pickle round-trips required for process-pool dispatch.

The campaign runtime ships fault objects, fault-injected devices, and
infrastructure proxies to worker processes.  The contract is stronger
than "it unpickles": the continuation of a pickled object must draw
*exactly* what the original would have drawn — RNG streams, wear state,
shadow memories and all — or parallel campaigns silently diverge from
their serial twins.
"""

import pickle
import random

import pytest

from repro.bist import IFA_9
from repro.bist.controller import BistScheduler
from repro.bist.infrastructure import FaultyInfrastructure
from repro.memsim import (
    BisrRam,
    DefectInjector,
    FaultMix,
    IntermittentReadFlip,
    IntermittentStuckAt,
    WearoutStuckAt,
)


def continued_draws(fault, cell, stored, n=50):
    return [fault.on_read(cell, stored, None) for _ in range(n)]


class TestIntermittentFaultPickling:
    def test_intermittent_stuck_at_stream_survives(self):
        fault = IntermittentStuckAt(7, 1, probability=0.5, seed=3)
        for _ in range(13):  # advance the stream mid-campaign
            fault.on_read(7, 0, None)
        clone = pickle.loads(pickle.dumps(fault))
        assert clone.activations == fault.activations
        assert continued_draws(clone, 7, 0) == continued_draws(fault, 7, 0)

    def test_intermittent_read_flip_stream_survives(self):
        fault = IntermittentReadFlip(2, probability=0.3, seed=11)
        for _ in range(5):
            fault.on_read(2, 1, None)
        clone = pickle.loads(pickle.dumps(fault))
        assert continued_draws(clone, 2, 1) == continued_draws(fault, 2, 1)

    def test_wearout_age_and_stream_survive(self):
        fault = WearoutStuckAt(5, 1, onset=3, ramp=4, seed=1)
        for _ in range(6):  # past onset, on the ramp
            fault.on_read(5, 0, None)
        clone = pickle.loads(pickle.dumps(fault))
        assert clone.age == fault.age
        assert clone.activation_probability == \
            pytest.approx(fault.activation_probability)
        assert continued_draws(clone, 5, 0) == continued_draws(fault, 5, 0)

    def test_describe_survives(self):
        fault = IntermittentStuckAt(7, 1, probability=0.25, seed=3)
        assert pickle.loads(pickle.dumps(fault)).describe() == \
            fault.describe()


class TestDevicePickling:
    def test_fault_injected_device_behaves_identically(self):
        """A whole BisrRam with a mixed fault population round-trips:
        subsequent reads are bit-identical on both copies."""
        device = BisrRam(rows=8, bpw=4, bpc=2, spares=4)
        mix = FaultMix(intermittent=0.4, wearout=0.2)
        DefectInjector(rng=random.Random(3), mix=mix).inject(
            device.array, 6)
        for address in range(device.word_count):
            device.write(address, address % 16)
        clone = pickle.loads(pickle.dumps(device))
        original = [device.read(a) for a in range(device.word_count)] * 2
        copied = [clone.read(a) for a in range(clone.word_count)] * 2
        assert original == copied

    def test_pickled_device_is_still_repairable(self):
        device = BisrRam(rows=8, bpw=4, bpc=2, spares=4)
        DefectInjector(rng=random.Random(1)).inject(device.array, 2)
        clone = pickle.loads(pickle.dumps(device))
        result = BistScheduler(IFA_9, bpw=4).run(clone)
        assert result.repaired


class TestInfrastructurePickling:
    def test_proxy_rng_and_shadow_survive(self):
        device = BisrRam(rows=4, bpw=4, bpc=2, spares=4)
        proxy = FaultyInfrastructure(
            device, rng=random.Random(5), false_fail_rate=0.2)
        for address in range(proxy.word_count):
            proxy.write(address, 5)
        for _ in range(10):
            proxy.read(0)
        clone = pickle.loads(pickle.dumps(proxy))
        assert clone.false_fails == proxy.false_fails
        assert clone._shadow == proxy._shadow
        assert [clone.read(0) for _ in range(40)] == \
            [proxy.read(0) for _ in range(40)]


class TestShardSpecPickling:
    def test_shard_spec_round_trips_with_seed_lineage(self):
        import numpy as np

        from repro.runtime import ShardSpec

        child = np.random.SeedSequence(7).spawn(3)[1]
        shard = ShardSpec(index=1, n_shards=3, seed_seq=child, attempt=2)
        clone = pickle.loads(pickle.dumps(shard))
        assert clone.index == 1 and clone.attempt == 2
        assert clone.rng().integers(0, 1 << 30) == \
            shard.rng().integers(0, 1 << 30)
        assert clone.py_rng().random() == shard.py_rng().random()
