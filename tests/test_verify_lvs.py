"""LVS-lite: netlist -> layout -> extracted-netlist round trip.

Property-style tests over seeded-random small macro configurations:
the extracted connectivity must be isomorphic to the intended netlist
(every intended net lands in exactly one extracted component, no
component spans two nets), and deliberately injected shorts and opens
must be caught and named.
"""

import random

import pytest

from repro.core.compiler import compile_ram
from repro.core.config import RamConfig
from repro.geometry import Point, Rect, Transform
from repro.tech import get_process
from repro.verify import check_connectivity, extract_nets, intended_netlist

SEEDS = [11, 23, 47]
LAM = get_process("cda07").lambda_cu


def random_config(seed):
    rng = random.Random(seed)
    bpc = rng.choice((2, 4))
    bpw = rng.choice((4, 8))
    rows = rng.choice((8, 16))
    return RamConfig(
        words=rows * bpc, bpw=bpw, bpc=bpc, spares=4,
        process=rng.choice(("cda05", "mos06", "cda07", "mos08")),
        strap_every=rng.choice((0, 8)),
    )


@pytest.mark.parametrize("seed", SEEDS)
class TestRoundTrip:
    def test_extraction_isomorphic_to_intent(self, seed):
        config = random_config(seed)
        compiled = compile_ram(config)
        process = get_process(config.process)
        top = compiled.floorplan.top

        findings, stats = check_connectivity(top, config, process)
        assert findings == []
        assert stats["intended_nets"] == 2 * config.columns

        intended = intended_netlist(config)
        components = extract_nets(top, process)
        for name, endpoints in intended.items():
            containing = [c for c in components if endpoints <= c]
            assert len(containing) == 1, f"net {name} not in one component"
        # No component may span two intended nets.
        for comp in components:
            hit = {name for name, endpoints in intended.items()
                   if endpoints & comp}
            assert len(hit) <= 1


class TestInjections:
    @pytest.fixture()
    def build(self):
        config = RamConfig(words=32, bpw=4, bpc=2, spares=4,
                           process="cda07")
        compiled = compile_ram(config)
        return config, compiled, get_process(config.process)

    def test_deliberate_short_is_caught(self, build):
        config, compiled, process = build
        top = compiled.floorplan.top
        array_inst = next(i for i in top.instances() if i.name == "array")
        a = array_inst.port("bl_t_1").rect
        b = array_inst.port("blb_t_1").rect
        span = a.union_bbox(b)
        top.add_shape("metal2",
                      Rect(span.x1, span.y1 - 70, span.x2, span.y1 + 70))

        findings, _ = check_connectivity(top, config, process)
        shorts = [f for f in findings if f.kind == "short"]
        assert len(shorts) == 1
        assert shorts[0].subject == "bl_1+blb_1"
        assert sorted(shorts[0].data["nets"]) == ["bl_1", "blb_1"]

    def test_deliberate_open_is_caught(self, build):
        config, compiled, process = build
        top = compiled.floorplan.top
        # Drop the mux row off the abutment seam: every bit line loses
        # its mux landing.
        inst = next(i for i in top.instances() if i.name == "mux_row")
        top._instances.remove(inst)
        shifted = Transform(
            inst.transform.orientation,
            Point(inst.transform.translation.x,
                  inst.transform.translation.y - 5 * LAM),
        )
        top.add_instance(inst.cell, shifted, name="mux_row")

        findings, _ = check_connectivity(top, config, process)
        opens = [f for f in findings if f.kind == "open"]
        assert opens, "shifted mux row must read as opens"
        named = {f.subject for f in opens}
        assert f"bl_0" in named and f"blb_0" in named
        # The stranded mux landings also surface as floating ports.
        floating = [f for f in findings if f.kind == "floating-port"]
        assert any(f.subject.startswith("mux_row/") for f in floating)

    def test_missing_macro_reported_missing(self, build):
        config, compiled, process = build
        top = compiled.floorplan.top
        inst = next(i for i in top.instances()
                    if i.name == "precharge_row")
        top._instances.remove(inst)

        findings, _ = check_connectivity(top, config, process)
        opens = [f for f in findings if f.kind == "open"]
        assert opens
        assert any("precharge_row" in str(f.data.get("missing"))
                   for f in opens)
