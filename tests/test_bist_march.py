"""Unit tests for the march-test notation and parser."""

import pytest

from repro.bist import (
    IFA_9,
    IFA_13,
    MARCH_C_MINUS,
    MATS_PLUS,
    MarchElement,
    Op,
    Order,
    parse_march,
)
from repro.bist.march import DELAY


class TestOps:
    def test_read_classification(self):
        assert Op.R0.is_read and Op.R1.is_read
        assert not Op.W0.is_read and not Op.W1.is_read

    def test_data_bits(self):
        assert Op.W0.data_bit == 0 and Op.R0.data_bit == 0
        assert Op.W1.data_bit == 1 and Op.R1.data_bit == 1


class TestElements:
    def test_delay_has_no_ops(self):
        assert DELAY.is_delay and DELAY.ops == ()

    def test_delay_with_ops_rejected(self):
        with pytest.raises(ValueError):
            MarchElement(Order.UP, (Op.R0,), is_delay=True)

    def test_empty_element_rejected(self):
        with pytest.raises(ValueError):
            MarchElement(Order.UP, ())

    def test_str(self):
        e = MarchElement(Order.DOWN, (Op.R1, Op.W0))
        assert str(e) == "d(r1,w0)"


class TestParser:
    def test_roundtrip_ifa9(self):
        reparsed = parse_march("x", str(IFA_9).replace("; ", ";"))
        assert reparsed.elements == IFA_9.elements

    def test_bad_element(self):
        with pytest.raises(ValueError, match="bad march element"):
            parse_march("x", "q(w0)")

    def test_bad_op(self):
        with pytest.raises(ValueError, match="bad op list"):
            parse_march("x", "u(w7)")

    def test_delay_keyword_case_insensitive(self):
        t = parse_march("x", "m(w0); DELAY; m(r0)")
        assert t.elements[1].is_delay

    def test_empty_notation_rejected(self):
        with pytest.raises(ValueError):
            parse_march("x", "  ;  ")


class TestStandardTests:
    def test_ifa9_structure(self):
        # m(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); Delay;
        # m(r0,w1); Delay; m(r1)
        assert len(IFA_9.elements) == 9
        assert IFA_9.delay_count == 2
        assert IFA_9.operations_per_address == 12

    def test_ifa9_orders(self):
        orders = [e.order for e in IFA_9.elements if not e.is_delay]
        assert orders == [
            Order.EITHER, Order.UP, Order.UP, Order.DOWN, Order.DOWN,
            Order.EITHER, Order.EITHER,
        ]

    def test_mats_plus_is_shortest(self):
        assert MATS_PLUS.operations_per_address == 5
        assert MATS_PLUS.operations_per_address < \
            MARCH_C_MINUS.operations_per_address < \
            IFA_9.operations_per_address

    def test_ifa13_longer_than_ifa9(self):
        assert IFA_13.operations_per_address > IFA_9.operations_per_address

    def test_only_ifa_tests_have_retention_delays(self):
        assert IFA_9.delay_count == 2
        assert IFA_13.delay_count == 2
        assert MATS_PLUS.delay_count == 0
        assert MARCH_C_MINUS.delay_count == 0
