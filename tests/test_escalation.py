"""The RepairSupervisor escalation ladder (acceptance scenarios)."""

import random

import pytest

from repro.bist import IFA_9
from repro.bist.infrastructure import FaultyInfrastructure
from repro.bisr import (
    DegradedResult,
    EscalationPolicy,
    RepairSupervisor,
    SupervisorResult,
)
from repro.core.errors import ConfigError
from repro.memsim import BisrRam, IntermittentReadFlip, IntermittentStuckAt
from repro.memsim.faults import RowStuck


def device():
    return BisrRam(rows=8, bpw=8, bpc=4, spares=4)


def supervisor(**policy_kwargs):
    policy = EscalationPolicy(**policy_kwargs) if policy_kwargs else None
    return RepairSupervisor(IFA_9, bpw=8, policy=policy)


class TestIntermittentRepair:
    """Acceptance: a p=0.5 intermittent fault is confirmed by N-of-M
    and repaired consuming at most one spare."""

    @staticmethod
    def _run():
        ram = device()
        cell = ram.array.cell_index(3, 2, 1)
        ram.array.inject(
            IntermittentStuckAt(cell, 1, probability=0.5, seed=7)
        )
        return supervisor().run(ram)

    def test_repaired_with_one_spare(self):
        result = self._run()
        assert result.repaired
        assert not result.degraded
        assert result.spares_used <= 1
        assert 3 in result.confirmed_rows

    def test_deterministic_under_fixed_seed(self):
        first, second = self._run(), self._run()
        assert first == second

    def test_history_records_the_ladder(self):
        result = self._run()
        assert len(result.history) == result.attempts
        assert result.history[0].attempt == 1


class TestTransientRejection:
    """Acceptance: a rare transient upset consumes zero spares."""

    @staticmethod
    def _run():
        ram = device()
        cell = ram.array.cell_index(5, 1, 2)
        ram.array.inject(
            IntermittentReadFlip(cell, probability=0.01, seed=14)
        )
        return supervisor().run(ram)

    def test_no_spare_burned(self):
        result = self._run()
        assert result.repaired
        assert result.spares_used == 0
        assert result.rejected_addresses == (22,)
        assert result.confirmed_rows == ()

    def test_deterministic_under_fixed_seed(self):
        assert self._run() == self._run()


class TestFlakyComparator:
    """Acceptance: a flaky comparator yields a structured
    DegradedResult — never an unhandled exception."""

    @staticmethod
    def _run():
        ram = device()  # perfectly healthy array
        gate = FaultyInfrastructure(
            ram, rng=random.Random(11), false_fail_rate=0.02
        )
        return supervisor().run(gate)

    def test_degrades_instead_of_raising(self):
        result = self._run()
        assert isinstance(result, DegradedResult)
        assert result.degraded
        assert not result.repaired

    def test_diagnosis_names_the_confirmation_ladder(self):
        result = self._run()
        assert "confirmation" in result.reason
        assert result.rejected_addresses  # hits that failed N-of-M

    def test_no_rows_falsely_condemned(self):
        # The array is healthy: the post-mortem sweep must not be able
        # to pin any row, and few-to-no spares may be burned.
        result = self._run()
        assert result.unrepaired_rows == () or result.spares_used < 4

    def test_bounded_attempts(self):
        result = self._run()
        assert result.attempts <= EscalationPolicy().max_attempts


class TestSpareExhaustion:
    def test_more_dead_rows_than_spares_degrades(self):
        ram = BisrRam(rows=8, bpw=8, bpc=4, spares=2)
        for row in (1, 3, 5):
            ram.array.inject(RowStuck(row, ram.array.phys_cols, 1))
        result = supervisor().run(ram)
        assert isinstance(result, DegradedResult)
        assert "spares exhausted" in result.reason
        assert result.unrepaired_rows  # the sweep localised leftovers
        assert result.spares_used == 2

    def test_solid_faults_within_budget_still_repair(self):
        ram = device()
        for row in (2, 6):
            ram.array.inject(RowStuck(row, ram.array.phys_cols, 0))
        result = supervisor().run(ram)
        assert result.repaired
        assert result.spares_used == 2
        assert set(result.confirmed_rows) == {2, 6}


class TestBackoff:
    def test_backoff_grows_exponentially(self):
        ram = BisrRam(rows=8, bpw=8, bpc=4, spares=1)
        for row in (1, 3):
            ram.array.inject(RowStuck(row, ram.array.phys_cols, 1))
        result = supervisor(max_attempts=4, backoff_base=8,
                            backoff_factor=2).run(ram)
        waits = [r.backoff_cycles for r in result.history
                 if r.backoff_cycles]
        # Each recorded wait doubles the previous one.
        assert all(b == 2 * a for a, b in zip(waits, waits[1:]))
        assert result.backoff_cycles == sum(waits)


class TestPolicyValidation:
    def test_threshold_must_fit_reads(self):
        with pytest.raises(ConfigError):
            EscalationPolicy(confirm_reads=3, confirm_threshold=4)

    def test_positive_attempts(self):
        with pytest.raises(ConfigError):
            EscalationPolicy(max_attempts=0)

    def test_backoff_sanity(self):
        with pytest.raises(ConfigError):
            EscalationPolicy(backoff_factor=0)

    def test_default_result_is_not_degraded(self):
        result = SupervisorResult(
            repaired=True, attempts=1, confirmed_rows=(),
            rejected_addresses=(), spares_used=0, probe_reads=0,
            backoff_cycles=0,
        )
        assert not result.degraded


class TestResultSerialisation:
    """Satellite: supervisor results survive dict -> JSON -> dict."""

    def _degraded(self):
        ram = device()
        for row in range(6):
            ram.array.inject(RowStuck(row, ram.array.phys_cols, 1))
        result = supervisor(max_attempts=2).run(ram)
        assert isinstance(result, DegradedResult)
        return result

    def test_degraded_round_trip(self):
        import json

        from repro.bisr import supervisor_result_from_dict

        original = self._degraded()
        wire = json.loads(json.dumps(original.to_dict()))
        assert wire["degraded"] is True
        rebuilt = supervisor_result_from_dict(wire)
        assert isinstance(rebuilt, DegradedResult)
        assert rebuilt.unrepaired_rows == original.unrepaired_rows
        assert rebuilt.unrepaired_rows  # localisation survived the wire
        assert rebuilt.reason == original.reason
        assert rebuilt.attempts == original.attempts
        assert len(rebuilt.history) == len(original.history)
        assert rebuilt.history[0].spares_used == \
            original.history[0].spares_used
        assert rebuilt.spares_used == original.spares_used

    def test_repaired_round_trip_keeps_type(self):
        import json

        from repro.bisr import supervisor_result_from_dict

        ram = device()
        ram.array.inject(RowStuck(1, ram.array.phys_cols, 1))
        original = supervisor().run(ram)
        assert isinstance(original, SupervisorResult)
        assert not original.degraded
        wire = json.loads(json.dumps(original.to_dict()))
        rebuilt = supervisor_result_from_dict(wire)
        assert type(rebuilt) is SupervisorResult
        assert rebuilt.confirmed_rows == original.confirmed_rows
        assert rebuilt.spares_used == original.spares_used
