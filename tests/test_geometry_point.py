"""Unit tests for repro.geometry.point."""

import pytest

from repro.geometry import Point


class TestConstruction:
    def test_basic(self):
        p = Point(3, -4)
        assert p.x == 3 and p.y == -4

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            Point(1.5, 2)

    def test_rejects_float_y(self):
        with pytest.raises(TypeError):
            Point(1, 2.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Point(1, 2).x = 5


class TestArithmetic:
    def test_add(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)

    def test_sub(self):
        assert Point(5, 5) - Point(2, 3) == Point(3, 2)

    def test_neg(self):
        assert -Point(2, -3) == Point(-2, 3)

    def test_scaled(self):
        assert Point(3, -2).scaled(4) == Point(12, -8)

    def test_add_sub_roundtrip(self):
        a, b = Point(7, -9), Point(-3, 11)
        assert (a + b) - b == a


class TestMetrics:
    def test_manhattan_distance(self):
        assert Point(0, 0).manhattan_distance(Point(3, 4)) == 7

    def test_manhattan_symmetric(self):
        a, b = Point(-2, 5), Point(9, -1)
        assert a.manhattan_distance(b) == b.manhattan_distance(a)

    def test_manhattan_zero(self):
        assert Point(5, 5).manhattan_distance(Point(5, 5)) == 0


class TestOrderingAndHash:
    def test_lexicographic_order(self):
        assert Point(1, 9) < Point(2, 0)
        assert Point(1, 1) < Point(1, 2)

    def test_usable_as_dict_key(self):
        d = {Point(1, 2): "a"}
        assert d[Point(1, 2)] == "a"

    def test_as_tuple(self):
        assert Point(4, 5).as_tuple() == (4, 5)
