"""Tests for the HA layer: liveness lease, warm standby, promotion,
drain handoff."""

import json
import os
import socket
import time

import pytest

from repro.bist.march import IFA_9
from repro.core.config import RamConfig
from repro.core.errors import ConfigError, ServiceUnavailable
from repro.core.liveness import process_start_time
from repro.service import ArtifactStore, MacroServer, bundle_key
from repro.service.ha import Lease
from repro.service.wal import RequestLog

CFG = RamConfig(words=64, bpw=8, bpc=4)
CFG2 = RamConfig(words=64, bpw=8, bpc=4, spares=8)


def fake_builder():
    """A builder that publishes to the store, so a standby sharing the
    store can serve the key as a hit."""

    def build(config, march, signoff=None, store=None, stage_cache=None):
        key = bundle_key(config, march, signoff)
        artifacts = {
            "out.txt": b"payload-" + key[:8].encode("ascii"),
            "datasheet.json": json.dumps(
                {"config": config.to_dict()}).encode("utf-8"),
            "area.json": json.dumps({"total_um2": 1.0}).encode("utf-8"),
        }
        if store is not None:
            store.put(key, artifacts)
        return artifacts, False, key

    return build


def write_foreign_record(path, *, pid=1, start=None, age_s=0.0,
                         state="active", epoch=3):
    """A lease record held by someone who is not this process."""
    record = {
        "pid": pid,
        "host": socket.gethostname(),
        "start": (process_start_time(pid) if start is None else start),
        "time": time.time() - age_s,
        "epoch": epoch,
        "state": state,
    }
    path.write_text(json.dumps(record), encoding="utf-8")
    return record


def wait_until(predicate, timeout_s=10.0, poll_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return predicate()


class TestLease:
    def test_bad_ttl_is_refused(self, tmp_path):
        with pytest.raises(ConfigError, match="ttl"):
            Lease(tmp_path / "lease", ttl_s=0)

    def test_acquire_free_lease(self, tmp_path):
        lease = Lease(tmp_path / "lease", ttl_s=60)
        assert lease.acquire() is True
        assert lease.owned() is True
        assert lease.epoch == 1
        snapshot = lease.describe()
        assert snapshot["held_by_us"] is True
        assert snapshot["expired"] is False
        assert snapshot["state"] == "active"
        assert snapshot["holder_pid"] == os.getpid()

    def test_reacquire_own_lease_bumps_epoch(self, tmp_path):
        lease = Lease(tmp_path / "lease", ttl_s=60)
        assert lease.acquire()
        assert lease.acquire()
        assert lease.epoch == 2

    def test_live_foreign_holder_is_respected(self, tmp_path):
        path = tmp_path / "lease"
        write_foreign_record(path)  # pid 1: alive, fresh heartbeat
        lease = Lease(path, ttl_s=60)
        assert lease.expired() is False
        assert lease.acquire() is False
        assert lease.epoch is None

    def test_stale_heartbeat_expires_even_if_pid_lives(self, tmp_path):
        path = tmp_path / "lease"
        write_foreign_record(path, age_s=5.0)
        lease = Lease(path, ttl_s=1.0)
        assert lease.expired() is True
        assert lease.acquire() is True
        assert lease.epoch == 4  # continues the dead holder's line

    def test_recycled_pid_expires_the_lease(self, tmp_path):
        """Same pid, different start time: the original holder is dead
        and the pid was recycled — the lease must not honor the
        impostor."""
        path = tmp_path / "lease"
        pid = os.getpid()
        write_foreign_record(
            path, pid=pid,
            start=(process_start_time(pid) or 0) + 9999)
        lease = Lease(path, ttl_s=60)
        assert lease.expired() is True
        assert lease.acquire() is True

    def test_release_handoff_lets_successor_promote(self, tmp_path):
        path = tmp_path / "lease"
        first = Lease(path, ttl_s=60)
        assert first.acquire()
        first.release(handoff=True)
        assert first.epoch is None
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["state"] == "released"
        successor = Lease(path, ttl_s=60)
        assert successor.expired() is True
        assert successor.acquire() is True
        assert successor.epoch == 2

    def test_release_without_handoff_unlinks(self, tmp_path):
        path = tmp_path / "lease"
        lease = Lease(path, ttl_s=60)
        assert lease.acquire()
        lease.release(handoff=False)
        assert not path.exists()

    def test_release_never_clobbers_a_successor(self, tmp_path):
        path = tmp_path / "lease"
        lease = Lease(path, ttl_s=60)
        assert lease.acquire()
        usurper = write_foreign_record(path, epoch=9)
        lease.release(handoff=True)
        assert json.loads(path.read_text(encoding="utf-8")) == usurper

    def test_heartbeat_refreshes_the_record(self, tmp_path):
        path = tmp_path / "lease"
        lease = Lease(path, ttl_s=60)
        assert lease.acquire()
        before = json.loads(path.read_text(encoding="utf-8"))["time"]
        time.sleep(0.02)
        assert lease.heartbeat() is True
        after = json.loads(path.read_text(encoding="utf-8"))["time"]
        assert after > before

    def test_heartbeat_detects_a_stolen_lease(self, tmp_path):
        path = tmp_path / "lease"
        lease = Lease(path, ttl_s=60)
        assert lease.acquire()
        write_foreign_record(path)
        assert lease.heartbeat() is False
        assert lease.epoch is None

    def test_torn_record_reads_as_free(self, tmp_path):
        path = tmp_path / "lease"
        path.write_text('{"pid": 12', encoding="utf-8")  # the kill
        lease = Lease(path, ttl_s=60)
        assert lease.read() is None
        assert lease.expired() is True
        assert lease.acquire() is True


class TestStandby:
    def test_standby_requires_store_and_lease(self, tmp_path):
        lease = Lease(tmp_path / "lease", ttl_s=60)
        with pytest.raises(ConfigError, match="store"):
            MacroServer(workers=1, role="standby", lease=lease,
                        builder=fake_builder())
        with pytest.raises(ConfigError, match="lease"):
            MacroServer(workers=1, role="standby",
                        store=ArtifactStore(tmp_path / "store"),
                        builder=fake_builder())
        with pytest.raises(ConfigError, match="role"):
            MacroServer(workers=1, role="observer",
                        builder=fake_builder())

    def test_second_primary_is_refused(self, tmp_path):
        write_foreign_record(tmp_path / "lease")
        with pytest.raises(ServiceUnavailable) as excinfo:
            MacroServer(workers=1, builder=fake_builder(),
                        store=ArtifactStore(tmp_path / "store"),
                        lease=Lease(tmp_path / "lease", ttl_s=60))
        assert excinfo.value.reason == "lease_held"

    def test_standby_serves_hits_and_503s_cold_keys(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        primary = MacroServer(
            workers=1, builder=fake_builder(), store=store,
            lease=Lease(tmp_path / "lease", ttl_s=60))
        standby = MacroServer(
            workers=1, builder=fake_builder(), store=store,
            lease=Lease(tmp_path / "lease", ttl_s=60),
            role="standby", standby_poll_s=0.05)
        try:
            warm = primary.compile(CFG)
            served = standby.compile(CFG)
            assert served.cached is True
            assert served.artifacts == warm.artifacts
            with pytest.raises(ServiceUnavailable) as excinfo:
                standby.compile(CFG2)
            assert excinfo.value.reason == "standby_miss"
            stats = standby.stats()
            assert stats["role"] == "standby"
            assert stats["store_hits"] == 1
            assert stats["rejected"] == 1
            assert stats["lease"]["state"] == "active"
        finally:
            standby.shutdown()
            primary.shutdown()

    def test_standby_promotes_on_handoff(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        wal_path = tmp_path / "wal.jsonl"
        primary = MacroServer(
            workers=1, builder=fake_builder(), store=store,
            wal=RequestLog(wal_path),
            lease=Lease(tmp_path / "lease", ttl_s=60))
        standby = MacroServer(
            workers=1, builder=fake_builder(), store=store,
            lease=Lease(tmp_path / "lease", ttl_s=60),
            role="standby", standby_poll_s=0.05)
        try:
            primary.compile(CFG)
            primary.drain()
            assert wait_until(lambda: standby.role == "primary")
            cold = standby.compile(CFG2)  # builds: full rights now
            assert cold.cached is False
            stats = standby.stats()
            assert stats["promotions"] == 1
            assert stats["lease"]["held_by_us"] is True
            assert stats["lease"]["epoch"] == 2
            with pytest.raises(ServiceUnavailable, match="drain"):
                primary.submit(CFG2)
        finally:
            standby.shutdown()
            primary.shutdown()

    def test_standby_promotes_on_ttl_expiry(self, tmp_path):
        """No cooperative handoff — the 'primary' stops heartbeating
        (SIGKILL equivalent) and the standby takes over after the
        TTL."""
        store = ArtifactStore(tmp_path / "store")
        dead = Lease(tmp_path / "lease", ttl_s=0.3)
        assert dead.acquire()  # ...and never heartbeats again
        standby = MacroServer(
            workers=1, builder=fake_builder(), store=store,
            lease=Lease(tmp_path / "lease", ttl_s=0.3),
            role="standby", standby_poll_s=0.05)
        try:
            assert wait_until(lambda: standby.role == "primary")
            assert standby.compile(CFG2).cached is False
            assert standby.stats()["lease"]["epoch"] == 2
        finally:
            standby.shutdown()

    def test_promote_is_idempotent_and_raceable(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        # "The primary" is a live foreign process (pid 1): the lease
        # identity is (pid, host, start), so an in-process MacroServer
        # cannot stand in for it here.
        write_foreign_record(tmp_path / "lease")
        standby = MacroServer(
            workers=1, builder=fake_builder(), store=store,
            lease=Lease(tmp_path / "lease", ttl_s=60),
            role="standby", standby_poll_s=30.0)
        primary = MacroServer(workers=1, builder=fake_builder(),
                              store=store)
        try:
            # The foreign primary is alive: promotion must be refused.
            assert standby.promote() is False
            assert standby.role == "standby"
            assert primary.promote() is True  # primary: no-op True
        finally:
            standby.shutdown()
            primary.shutdown()


class TestDrainHttp:
    def test_admin_drain_hands_off_and_rejects(self, tmp_path):
        from repro.service.http import (
            ServiceClient,
            make_http_server,
            serve_forever_in_thread,
        )

        lease_path = tmp_path / "lease"
        server = MacroServer(
            workers=1, builder=fake_builder(),
            store=ArtifactStore(tmp_path / "store"),
            wal=RequestLog(tmp_path / "wal.jsonl"),
            lease=Lease(lease_path, ttl_s=60))
        httpd = make_http_server(server, port=0)
        serve_forever_in_thread(httpd)
        host, port = httpd.server_address[:2]
        client = ServiceClient(host, port, retries=0)
        try:
            client.compile(CFG)
            ack = client.drain()
            assert ack["status"] == "draining"
            assert wait_until(
                lambda: client.healthz()["status"] == "draining")
            assert wait_until(
                lambda: (json.loads(lease_path.read_text("utf-8"))
                         .get("state") == "released"))
            with pytest.raises(ServiceUnavailable) as excinfo:
                client.compile(CFG2)
            assert excinfo.value.reason == "draining"
            # The journal was compacted to empty before the handoff.
            assert server.stats()["wal"]["pending"] == 0
        finally:
            httpd.shutdown()
            httpd.server_close()
            server.shutdown()
