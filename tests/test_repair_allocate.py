"""The 2-D repair allocator: must-repair, branch-and-bound, fallback.

The contract under test (ISSUE 9 acceptance): exact on
must-repair-reducible patterns, minimal covers from branch-and-bound,
and past the node budget a deterministic greedy fallback that never
raises and never hangs.
"""

import random

import pytest

from repro.bisr import RepairPlan, allocate, sequence_spares_consumed


class TestSequenceSparesConsumed:
    def test_no_repairs_consume_nothing(self):
        assert sequence_spares_consumed(0, {0, 1}, 4) == 0

    def test_clean_sequence_is_exact(self):
        assert sequence_spares_consumed(1, (), 4) == 1
        assert sequence_spares_consumed(3, (), 4) == 3

    def test_faulty_spares_are_walked_over(self):
        # spare 0 bad: landing 2 repairs burns entries 0, 1, 2.
        assert sequence_spares_consumed(2, {0}, 4) == 3
        # bad spare after the last landing spot costs nothing.
        assert sequence_spares_consumed(1, {3}, 4) == 1

    def test_exhausted_sequence_is_fully_spent(self):
        # only two good spares exist; asking for three spends all four.
        assert sequence_spares_consumed(3, {0, 1}, 4) == 4


class TestMustRepair:
    def test_empty_bitmap_is_trivially_repairable(self):
        plan = allocate([], rows=8, cols=8, spare_rows=2, spare_cols=2)
        assert plan.repairable and plan.exact
        assert plan.rows == () and plan.cols == ()
        assert plan.spare_rows_used == 0 and plan.spare_cols_used == 0

    def test_overloaded_row_forces_a_row_spare(self):
        faults = [(3, 0), (3, 1), (3, 2)]  # 3 faults > 2 spare cols
        plan = allocate(faults, rows=8, cols=8, spare_rows=1, spare_cols=2)
        assert plan.repairable and plan.exact
        assert plan.must_repair_rows == (3,)
        assert plan.rows == (3,) and plan.cols == ()

    def test_overloaded_column_forces_a_column_spare(self):
        faults = [(0, 5), (1, 5)]  # 2 faults > 1 spare row
        plan = allocate(faults, rows=8, cols=8, spare_rows=1, spare_cols=1)
        assert plan.repairable and plan.exact
        assert plan.must_repair_cols == (5,)
        assert plan.cols == (5,)

    def test_fixpoint_cascades(self):
        # Row 2 is forced first (4 faults > 1 spare col); with the row
        # budget then empty, column 7's remaining faults force it too.
        faults = ([(2, c) for c in range(4)]
                  + [(r, 7) for r in (0, 1, 3, 4)])
        plan = allocate(faults, rows=8, cols=8, spare_rows=1, spare_cols=1)
        assert plan.repairable and plan.exact
        assert plan.must_repair_rows == (2,)
        assert plan.must_repair_cols == (7,)

    def test_must_repair_infeasibility_is_proven(self):
        # Two overloaded rows, one spare row: exactly infeasible.
        faults = [(1, c) for c in range(3)] + [(2, c) for c in range(3)]
        plan = allocate(faults, rows=8, cols=8, spare_rows=1, spare_cols=1)
        assert not plan.repairable
        assert plan.exact
        assert "must-repair" in plan.reason


class TestBranchAndBound:
    def test_finds_the_minimal_cover(self):
        # row 0 covers two faults; one more line finishes — minimum 2.
        faults = [(0, 0), (0, 1), (1, 0)]
        plan = allocate(faults, rows=8, cols=8, spare_rows=2, spare_cols=2)
        assert plan.repairable and plan.exact
        assert plan.lines_used == 2

    def test_independent_faults_need_one_line_each(self):
        faults = [(0, 0), (1, 1), (2, 2)]
        plan = allocate(faults, rows=8, cols=8, spare_rows=3, spare_cols=3)
        assert plan.repairable and plan.exact
        assert plan.lines_used == 3

    def test_proves_infeasibility_of_independent_overload(self):
        # 3 pairwise independent faults, 1+1 budget: no cover exists.
        faults = [(0, 0), (1, 1), (2, 2)]
        plan = allocate(faults, rows=8, cols=8, spare_rows=1, spare_cols=1)
        assert not plan.repairable
        assert plan.exact
        assert "no cover" in plan.reason

    def test_theorem_n_faults_with_n_spares_always_covers(self):
        # n distinct cells are always coverable with n total spares.
        rng = random.Random(5)
        for _ in range(25):
            faults = {(rng.randrange(16), rng.randrange(16))
                      for _ in range(4)}
            plan = allocate(sorted(faults), rows=16, cols=16,
                            spare_rows=2, spare_cols=2)
            assert plan.repairable, plan.summary()


class TestGreedyFallback:
    def test_budget_exhaustion_falls_back_not_raises(self):
        faults = [(0, 0), (1, 1), (2, 2), (0, 1), (1, 0)]
        plan = allocate(faults, rows=8, cols=8, spare_rows=3,
                        spare_cols=3, node_budget=1)
        assert isinstance(plan, RepairPlan)
        assert plan.repairable  # the greedy cover still fits
        assert not plan.exact
        assert "node budget 1 exhausted" in plan.reason

    def test_zero_budget_skips_straight_to_greedy(self):
        plan = allocate([(0, 0)], rows=8, cols=8, spare_rows=1,
                        spare_cols=1, node_budget=0)
        assert plan.repairable and not plan.exact
        assert plan.nodes_explored == 0
        assert "node budget 0" in plan.reason

    def test_greedy_out_of_spares_reports_unrepairable(self):
        # A 6-cycle of faults: every row and column holds exactly two,
        # so must-repair never fires, yet covering needs 6 lines.
        faults = [(i, i) for i in range(6)] + \
            [(i, (i + 1) % 6) for i in range(6)]
        plan = allocate(faults, rows=8, cols=8, spare_rows=2,
                        spare_cols=2, node_budget=0)
        assert not plan.repairable and not plan.exact
        assert "ran out of spares" in plan.reason

    def test_dense_pattern_terminates_quickly(self):
        # 200 random faults, tiny budget: must return, not hang.
        rng = random.Random(17)
        faults = {(rng.randrange(30), rng.randrange(30))
                  for _ in range(200)}
        plan = allocate(sorted(faults), rows=30, cols=30,
                        spare_rows=4, spare_cols=4, node_budget=500)
        assert isinstance(plan, RepairPlan)
        assert len(plan.rows) <= 4 and len(plan.cols) <= 4

    def test_greedy_is_deterministic(self):
        faults = [(0, 0), (0, 1), (1, 0), (1, 1), (2, 5)]
        plans = [allocate(faults, rows=8, cols=8, spare_rows=2,
                          spare_cols=2, node_budget=0)
                 for _ in range(3)]
        assert plans[0] == plans[1] == plans[2]


class TestFaultySpares:
    def test_faulty_spares_inflate_consumption(self):
        faults = [(0, 0), (1, 1)]
        plan = allocate(faults, rows=8, cols=8, spare_rows=3,
                        spare_cols=0, faulty_spare_rows={0})
        assert plan.repairable
        assert plan.rows == (0, 1)
        # Landing 2 repairs with spare 0 dead walks entries 0, 1, 2.
        assert plan.spare_rows_used == 3

    def test_faulty_spares_shrink_the_budget(self):
        # 2 spare rows but one is dead: two overloaded rows can't fit.
        faults = [(1, c) for c in range(3)] + [(2, c) for c in range(3)]
        plan = allocate(faults, rows=8, cols=8, spare_rows=2,
                        spare_cols=1, faulty_spare_rows={1})
        assert not plan.repairable and plan.exact

    def test_out_of_range_faulty_spares_are_ignored(self):
        plan = allocate([(0, 0)], rows=8, cols=8, spare_rows=1,
                        spare_cols=0, faulty_spare_rows={7})
        assert plan.repairable
        assert plan.spare_rows_used == 1


class TestValidation:
    def test_fault_outside_array_raises(self):
        with pytest.raises(ValueError):
            allocate([(8, 0)], rows=8, cols=8, spare_rows=1, spare_cols=1)
        with pytest.raises(ValueError):
            allocate([(0, -1)], rows=8, cols=8, spare_rows=1, spare_cols=1)

    def test_bad_geometry_raises(self):
        with pytest.raises(ValueError):
            allocate([], rows=0, cols=8, spare_rows=1, spare_cols=1)
        with pytest.raises(ValueError):
            allocate([], rows=8, cols=8, spare_rows=-1, spare_cols=1)
