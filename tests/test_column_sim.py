"""Column datapath simulation tests: generated netlists, wired and
driven through a complete precharge -> access -> sense read."""

import pytest

from repro.circuit.column_sim import (
    build_column_netlist,
    simulate_read_access,
)
from repro.tech import get_process

PROCESS = get_process("cda07")


class TestColumnNetlist:
    def test_device_count(self):
        net = build_column_netlist(PROCESS, rows=4)
        # 4 cells x 6T + precharge 3T + senseamp 6T.
        assert len(net.mosfets) == 4 * 6 + 3 + 6

    def test_shared_bitlines(self):
        net = build_column_netlist(PROCESS, rows=4)
        nodes = net.nodes()
        assert "bl" in nodes and "blb" in nodes
        assert {"wl0", "wl1", "wl2", "wl3"} <= nodes
        assert {"q0", "qb3"} <= nodes

    def test_validation(self):
        with pytest.raises(ValueError):
            build_column_netlist(PROCESS, rows=0)


class TestReadAccess:
    @pytest.mark.parametrize("stored", (0, 1))
    def test_full_swing_read_is_correct(self, stored):
        result = simulate_read_access(PROCESS, rows=8, stored_bit=stored,
                                      row=3)
        assert result.correct
        assert result.access_time_s < 5e-9

    @pytest.mark.parametrize("stored", (0, 1))
    def test_minor_differential_still_latches(self, stored):
        """The Fig. 3 claim at column level: a short develop window
        leaves only a partial bit-line differential, and the
        current-mode latch still resolves the right value."""
        result = simulate_read_access(
            PROCESS, rows=16, stored_bit=stored, row=9,
            t_develop=0.4e-9,
        )
        assert abs(result.differential_v) < 0.8 * PROCESS.vdd
        assert abs(result.differential_v) > 0.02
        assert result.correct

    def test_unselected_rows_do_not_corrupt(self):
        """Neighbour cells store the complement; the read must still
        return the selected cell's value."""
        for row in (0, 7):
            result = simulate_read_access(PROCESS, rows=8,
                                          stored_bit=1, row=row)
            assert result.correct

    def test_selected_cell_state_survives_read(self):
        result = simulate_read_access(PROCESS, rows=8, stored_bit=0,
                                      row=2)
        q = result.trace.final("q2")
        assert q < 0.5 * PROCESS.vdd  # the stored 0 survived

    def test_row_bounds(self):
        with pytest.raises(ValueError):
            simulate_read_access(PROCESS, rows=4, stored_bit=1, row=4)

    def test_works_on_every_process(self):
        for name in ("cda05", "mos06"):
            result = simulate_read_access(get_process(name), rows=4,
                                          stored_bit=1, row=1)
            assert result.correct


class TestWriteCycle:
    """Write-then-read through the full column: write drivers slam the
    bit lines (the sense amp is bypassed in write mode, paper §IV.3),
    the cell captures, and a subsequent read returns the new value."""

    @pytest.mark.parametrize("bit", (0, 1))
    def test_write_then_read(self, bit):
        from repro.circuit.column_sim import build_column_netlist
        from repro.spice import Pwl, TransientEngine

        vdd = PROCESS.vdd
        rows, row = 4, 1
        net = build_column_netlist(PROCESS, rows)
        net.add_source("vdd", vdd)
        # Write phase (0-4 ns): drive the bit lines hard to the target
        # value with WL high; then release WL and float the lines high
        # (precharge) to read back is implicit in cell state.
        net.add_source("pcb", vdd)  # precharge off
        net.add_source("bl", Pwl([(0.0, vdd if bit else 0.0)]))
        net.add_source("blb", Pwl([(0.0, 0.0 if bit else vdd)]))
        net.add_source("se", 0.0)
        for i in range(rows):
            if i == row:
                net.add_source(
                    "wl1", Pwl([(0.0, 0.0), (0.5e-9, 0.0),
                                (0.6e-9, vdd), (3.5e-9, vdd),
                                (3.6e-9, 0.0)]),
                )
            else:
                net.add_source(f"wl{i}", 0.0)
        initial = {}
        for i in range(rows):
            # Every cell starts holding the complement.
            initial[f"q{i}"] = 0.0 if bit else vdd
            initial[f"qb{i}"] = vdd if bit else 0.0
        result = TransientEngine(net).run(
            6e-9, record=[f"q{row}", f"qb{row}", "q0"],
            initial=initial,
        )
        q = result.final(f"q{row}")
        assert (q > 0.9 * vdd) == bool(bit)
        # The unselected neighbour kept its old value.
        q0 = result.final("q0")
        assert (q0 > 0.5 * vdd) == (not bit)
