"""Tests for the extension modules: Chen-Sunada baseline, transparent
BIST, spare optimiser, and the scheme comparison."""

import random

import pytest

from repro import RamConfig
from repro.analysis import (
    compare_schemes,
    optimize_spares,
    spare_tradeoff_table,
)
from repro.bisr.chen_sunada import (
    ChenSunadaRam,
    FaultCaptureBlock,
    sequential_compare_delay_s,
)
from repro.bist import IFA_9, MATS_PLUS
from repro.bist.march import MarchTest, Op, parse_march
from repro.bist.transparent import (
    TransparentBist,
    transparent_march,
)
from repro.memsim import BisrRam
from repro.memsim.faults import StuckAt, TransitionFault
from repro.tech import get_process


class TestFaultCaptureBlock:
    def test_two_capacity(self):
        block = FaultCaptureBlock()
        assert block.record(3) and block.record(9)
        assert not block.record(12)
        assert block.dead

    def test_duplicate_free(self):
        block = FaultCaptureBlock()
        block.record(3)
        block.record(3)
        assert len(block.captures) == 1

    def test_translate_sequential(self):
        block = FaultCaptureBlock()
        block.record(7)
        assert block.translate(7) == (0, True)
        assert block.translate(8) == (8, False)


class TestChenSunadaRam:
    def test_two_faults_per_subblock_fine(self):
        ram = ChenSunadaRam(subblocks=4, words_per_subblock=16)
        assert ram.record_fail(0) and ram.record_fail(1)
        assert ram.translate(0) == ("spare_word", 0, 0)
        assert ram.translate(5) == ("block", 0, 5)

    def test_third_fault_kills_subblock(self):
        ram = ChenSunadaRam(4, 16, spare_subblocks=1)
        for a in (0, 1, 2):
            assert ram.record_fail(a)
        assert ram.translate(3) == ("spare_block", 0, 3)

    def test_no_spare_blocks_unrepairable(self):
        ram = ChenSunadaRam(4, 16, spare_subblocks=0)
        ram.record_fail(0)
        ram.record_fail(1)
        assert not ram.record_fail(2)

    def test_static_repairable(self):
        ram = ChenSunadaRam(4, 16, spare_subblocks=1)
        # Two faults in each of two subblocks: fine.
        assert ram.repairable([0, 1, 16, 17])
        # Three in one subblock: uses the spare block.
        assert ram.repairable([0, 1, 2])
        # Three in each of two subblocks: beyond one spare block.
        assert not ram.repairable([0, 1, 2, 16, 17, 18])

    def test_capacity_and_kill_metrics(self):
        ram = ChenSunadaRam(8, 32, spare_subblocks=1)
        assert ram.repair_capacity_words() == 8 * 2 + 32
        assert ram.worst_case_unrepairable() == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            ChenSunadaRam(0, 16)
        ram = ChenSunadaRam(4, 16)
        with pytest.raises(ValueError):
            ram.record_fail(64)

    def test_sequential_delay_scales_with_captures(self):
        p = get_process("cda07")
        d2 = sequential_compare_delay_s(p, 8, captures=2)
        d8 = sequential_compare_delay_s(p, 8, captures=8)
        assert d8 > 3 * d2


class TestSchemeComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_schemes(
            RamConfig(words=1024, bpw=16, bpc=4, spares=4),
            subblocks=16, spare_subblocks=1,
            random_faults=4, trials=150,
        )

    def test_survival_gap(self, comparison):
        """Row-structured defects: BISRAMGEN survives where the
        two-faults-per-subblock scheme dies."""
        assert comparison.survival_bisramgen > \
            comparison.survival_chen_sunada + 0.3

    def test_parallel_compare_scales_better(self, comparison):
        """At equal entry counts, the sequential compare exceeds the
        parallel TLB."""
        assert comparison.chen_sunada_delay_equal_entries_s > \
            comparison.bisramgen_delay_s * 0.8
        # And the gap widens with entries.
        p = get_process("cda07")
        from repro.bisr.delay import tlb_delay_s

        seq16 = sequential_compare_delay_s(p, 8, captures=16)
        par16 = tlb_delay_s(p, 8, 16)
        assert seq16 > 1.5 * par16

    def test_worst_case_kill(self, comparison):
        # 5 faulty rows kill BISRAMGEN (4 spares); 6 well-placed word
        # faults kill Chen-Sunada with one spare block.
        assert comparison.bisramgen_worst_case_kill == 5
        assert comparison.chen_sunada_worst_case_kill == 6


class TestTransparentMarch:
    def test_already_transparent_untouched(self):
        t = parse_march("x", "m(w0); u(r0,w1); d(r1,w0); m(r0)")
        assert transparent_march(t) is t

    def test_restoring_element_appended(self):
        t = parse_march("x", "m(w0); u(r0,w1); m(r1)")
        got = transparent_march(t)
        assert len(got.elements) == len(t.elements) + 1
        assert got.elements[-1].ops == (Op.W0,)

    def test_ifa9_needs_restore(self):
        # IFA-9's last write is w1 (element m(r0,w1)): the final m(r1)
        # verifies the complement image, so transparency needs one
        # restoring write element.
        got = transparent_march(IFA_9)
        assert len(got.elements) == len(IFA_9.elements) + 1


class TestTransparentBist:
    def _loaded_device(self, seed=3):
        device = BisrRam(rows=8, bpw=4, bpc=4, spares=4)
        rng = random.Random(seed)
        for address in range(device.word_count):
            device.write(address, rng.randrange(16))
        return device

    def test_contents_preserved_on_clean_memory(self):
        device = self._loaded_device()
        before = [device.read(a) for a in range(device.word_count)]
        result = TransparentBist(IFA_9, bpw=4).run(device)
        after = [device.read(a) for a in range(device.word_count)]
        assert result.passed
        assert result.contents_preserved
        assert before == after

    def test_detects_stuck_at(self):
        device = self._loaded_device()
        device.array.inject(StuckAt(device.array.cell_index(2, 1, 1), 1))
        result = TransparentBist(IFA_9, bpw=4).run(device)
        assert not result.passed

    def test_detects_transition(self):
        device = self._loaded_device()
        device.array.inject(
            TransitionFault(device.array.cell_index(5, 0, 2),
                            rising=True)
        )
        result = TransparentBist(IFA_9, bpw=4).run(device)
        assert not result.passed

    def test_mats_transparent_variant(self):
        device = self._loaded_device(seed=9)
        before = [device.read(a) for a in range(device.word_count)]
        result = TransparentBist(MATS_PLUS, bpw=4).run(device)
        assert result.passed and result.contents_preserved
        assert [device.read(a) for a in range(device.word_count)] == \
            before

    def test_op_count_includes_signature_sweep(self):
        device = self._loaded_device()
        result = TransparentBist(MATS_PLUS, bpw=4).run(device)
        # pre-read sweep + march ops per background (+ restore sweep).
        assert result.op_count > \
            MATS_PLUS.operations_per_address * device.word_count


class TestSpareOptimizer:
    CFG = RamConfig(words=1024, bpw=16, bpc=4, spares=4)

    def test_tradeoff_table_covers_candidates(self):
        table = spare_tradeoff_table(self.CFG, expected_defects=3.0)
        assert [c.spares for c in table] == [0, 4, 8, 16]

    def test_zero_spares_loses_under_defects(self):
        table = spare_tradeoff_table(self.CFG, expected_defects=3.0)
        by = {c.spares: c for c in table}
        assert by[0].cost_per_good_die > 5 * by[4].cost_per_good_die

    def test_optimum_shifts_with_defect_density(self):
        clean = optimize_spares(self.CFG, expected_defects=0.2)
        dirty = optimize_spares(self.CFG, expected_defects=6.0)
        assert clean.spares <= dirty.spares

    def test_maskability_constraint_excludes_16(self):
        best = optimize_spares(
            self.CFG, expected_defects=12.0, require_maskable=True,
        )
        # 16 spares exceed the 1.3 ns mask budget on cda07.
        assert best is None or best.spares <= 8

    def test_unsatisfiable_returns_none(self):
        got = optimize_spares(
            self.CFG, expected_defects=3.0, min_reliability=1.1,
        )
        assert got is None

    def test_validation(self):
        from repro.analysis.spare_optimizer import evaluate_spares

        with pytest.raises(ValueError):
            evaluate_spares(self.CFG, 4, expected_defects=-1.0)
