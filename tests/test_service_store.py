"""Tests for the content-addressed artifact store."""

import json

import pytest

from repro.core.errors import ConfigError
from repro.service.store import MANIFEST, ArtifactStore

KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "c" * 64
KEY_D = "d" * 64

BUNDLE = {
    "macro.cif": b"DS 1 1 1;\nE\n",
    "datasheet.json": b'{"t_read_ns": 12}\n',
}


class TestRoundTrip:
    def test_put_then_get_is_byte_identical(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.put(KEY_A, BUNDLE) is True
        assert store.get(KEY_A) == BUNDLE

    def test_get_missing_is_a_counted_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get(KEY_A) is None
        assert store.stats.misses == 1
        assert store.stats.hits == 0

    def test_second_put_loses_the_race_politely(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.put(KEY_A, BUNDLE) is True
        assert store.put(KEY_A, BUNDLE) is False
        assert store.stats.writes == 1

    def test_two_store_instances_share_the_directory(self, tmp_path):
        """A second process (new instance) sees published entries."""
        ArtifactStore(tmp_path).put(KEY_A, BUNDLE)
        assert ArtifactStore(tmp_path).get(KEY_A) == BUNDLE

    def test_keys_and_total_bytes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(KEY_A, BUNDLE)
        store.put(KEY_B, {"x": b"12345"})
        assert store.keys() == sorted([KEY_A, KEY_B])
        assert store.total_bytes() == \
            sum(len(v) for v in BUNDLE.values()) + 5

    def test_delete(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(KEY_A, BUNDLE)
        assert store.delete(KEY_A) is True
        assert store.delete(KEY_A) is False
        assert store.get(KEY_A) is None


class TestValidation:
    def test_rejects_non_hex_keys(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for bad in ("", "XYZ", "abc/../def", KEY_A.upper()):
            with pytest.raises(ConfigError, match="hex"):
                store.get(bad)

    def test_rejects_hostile_artifact_names(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for bad in ("../escape", "a/b", "a\\b", ".hidden", "", MANIFEST):
            with pytest.raises(ConfigError):
                store.put(KEY_A, {bad: b"x"})

    def test_rejects_empty_bundle(self, tmp_path):
        with pytest.raises(ConfigError, match="empty"):
            ArtifactStore(tmp_path).put(KEY_A, {})

    def test_rejects_non_positive_budget(self, tmp_path):
        with pytest.raises(ConfigError, match="byte_budget"):
            ArtifactStore(tmp_path, byte_budget=0)


class TestCorruption:
    """Any on-disk damage must read as a rebuildable miss, not a crash
    and never as silently wrong bytes."""

    def _entry(self, store, key):
        return store._entry_dir(key)

    def test_truncated_artifact_is_a_miss_then_rebuilds(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(KEY_A, BUNDLE)
        target = self._entry(store, KEY_A) / "macro.cif"
        target.write_bytes(target.read_bytes()[:3])

        assert store.get(KEY_A) is None
        assert store.stats.corrupt == 1
        # The damaged entry is gone; a rebuild publishes cleanly.
        assert store.put(KEY_A, BUNDLE) is True
        assert store.get(KEY_A) == BUNDLE

    def test_flipped_byte_fails_the_hash(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(KEY_A, BUNDLE)
        target = self._entry(store, KEY_A) / "datasheet.json"
        data = bytearray(target.read_bytes())
        data[0] ^= 0xFF
        target.write_bytes(bytes(data))
        assert store.get(KEY_A) is None
        assert store.stats.corrupt == 1

    def test_missing_artifact_file(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(KEY_A, BUNDLE)
        (self._entry(store, KEY_A) / "macro.cif").unlink()
        assert store.get(KEY_A) is None

    def test_garbage_manifest(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(KEY_A, BUNDLE)
        (self._entry(store, KEY_A) / MANIFEST).write_text("not json {")
        assert store.get(KEY_A) is None
        assert store.stats.corrupt == 1

    def test_manifest_key_mismatch(self, tmp_path):
        """An entry renamed to the wrong key must not serve."""
        store = ArtifactStore(tmp_path)
        store.put(KEY_A, BUNDLE)
        manifest_path = self._entry(store, KEY_A) / MANIFEST
        manifest = json.loads(manifest_path.read_text())
        manifest["key"] = KEY_B
        manifest_path.write_text(json.dumps(manifest))
        assert store.get(KEY_A) is None


class TestEviction:
    def test_lru_eviction_under_tiny_budget(self, tmp_path):
        """Budget for ~2 bundles: the least-recently-used one goes."""
        bundle = {"data.bin": b"x" * 100}
        store = ArtifactStore(tmp_path, byte_budget=250)
        store.put(KEY_A, bundle)
        store.put(KEY_B, bundle)
        # A is now more recently used than B.
        assert store.get(KEY_A) is not None
        store.put(KEY_C, bundle)  # 300 bytes > 250: evict LRU (B)

        assert store.get(KEY_B) is None
        assert store.get(KEY_A) is not None
        assert store.get(KEY_C) is not None
        assert store.stats.evictions == 1
        assert store.total_bytes() <= 250

    def test_eviction_keeps_store_under_budget(self, tmp_path):
        store = ArtifactStore(tmp_path, byte_budget=150)
        for key in (KEY_A, KEY_B, KEY_C, KEY_D):
            store.put(key, {"data.bin": b"y" * 100})
            assert store.total_bytes() <= 150
        assert store.stats.evictions == 3
        # Only the newest entry survives a 1.5-bundle budget.
        assert store.keys() == [KEY_D]

    def test_no_budget_never_evicts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for key in (KEY_A, KEY_B, KEY_C):
            store.put(key, {"data.bin": b"z" * 10_000})
        assert store.stats.evictions == 0
        assert len(store.keys()) == 3


class TestStats:
    def test_counters_and_footprint(self, tmp_path):
        store = ArtifactStore(tmp_path, byte_budget=10_000)
        store.put(KEY_A, BUNDLE)
        store.get(KEY_A)
        store.get(KEY_B)
        stats = store.stats.to_dict()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["writes"] == 1
        assert stats["entries"] == 1
        assert stats["bytes"] == sum(len(v) for v in BUNDLE.values())
        assert stats["byte_budget"] == 10_000
        assert stats["hit_rate"] == 0.5
        json.dumps(stats)  # must stay JSON-serializable


class TestContainsAndVerify:
    def test_contains_is_accounting_free(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.contains(KEY_A) is False
        store.put(KEY_A, BUNDLE)
        assert store.contains(KEY_A) is True
        assert store.stats.hits == 0
        assert store.stats.misses == 0

    def test_verify_passes_a_clean_entry(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(KEY_A, BUNDLE)
        assert store.verify(KEY_A) is True
        assert store.stats.hits == 0

    def test_verify_deletes_a_torn_entry(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put(KEY_A, BUNDLE)
        entry = store._entry_dir(KEY_A)
        (entry / "macro.cif").write_bytes(b"truncated")
        assert store.verify(KEY_A) is False
        assert store.stats.corrupt == 1
        assert store.contains(KEY_A) is False  # entry deleted


class TestClaims:
    def test_claim_is_exclusive_until_released(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.try_claim(KEY_A) is True
        assert store.try_claim(KEY_A) is False
        store.release_claim(KEY_A)
        assert store.try_claim(KEY_A) is True

    def test_claim_records_its_holder(self, tmp_path):
        import os

        store = ArtifactStore(tmp_path)
        store.try_claim(KEY_A)
        holder = store.claim_holder(KEY_A)
        assert holder["pid"] == os.getpid()
        assert holder["key"] == KEY_A

    def test_stale_claim_by_age_is_broken(self, tmp_path):
        import json as json_module
        import socket
        import time

        store = ArtifactStore(tmp_path)
        store._claim_path(KEY_A).write_text(json_module.dumps({
            "pid": 999999999, "host": socket.gethostname(),
            "time": time.time() - 3600.0, "key": KEY_A}), "utf-8")
        assert store.try_claim(KEY_A, stale_s=1.0) is True

    def test_dead_pid_claim_is_broken_immediately(self, tmp_path):
        import json as json_module
        import socket
        import time

        store = ArtifactStore(tmp_path)
        store._claim_path(KEY_A).write_text(json_module.dumps({
            "pid": 999999999, "host": socket.gethostname(),
            "time": time.time(), "key": KEY_A}), "utf-8")
        assert store.try_claim(KEY_A, stale_s=3600.0) is True

    def test_live_foreign_claim_is_respected(self, tmp_path):
        import json as json_module
        import os
        import socket
        import time

        store = ArtifactStore(tmp_path)
        store._claim_path(KEY_A).write_text(json_module.dumps({
            "pid": os.getpid(), "host": socket.gethostname(),
            "time": time.time(), "key": KEY_A}), "utf-8")
        assert store.try_claim(KEY_A, stale_s=3600.0) is False

    def test_claim_records_owner_start_time(self, tmp_path):
        import os

        from repro.core.liveness import process_start_time

        store = ArtifactStore(tmp_path)
        store.try_claim(KEY_A)
        holder = store.claim_holder(KEY_A)
        assert holder["start"] == process_start_time(os.getpid())

    def test_recycled_pid_claim_is_adopted(self, tmp_path):
        """Same pid number, different process start time: the owner
        died and the kernel reused its pid.  The claim must be
        adoptable immediately, not after the stale_s horizon."""
        import json as json_module
        import os
        import socket
        import time

        from repro.core.liveness import process_start_time

        store = ArtifactStore(tmp_path)
        store._claim_path(KEY_A).write_text(json_module.dumps({
            "pid": os.getpid(), "host": socket.gethostname(),
            "start": (process_start_time(os.getpid()) or 0) + 12345,
            "time": time.time(), "key": KEY_A}), "utf-8")
        assert store.try_claim(KEY_A, stale_s=3600.0) is True

    def test_live_claim_with_matching_start_is_respected(self, tmp_path):
        import json as json_module
        import os
        import socket
        import time

        from repro.core.liveness import process_start_time

        store = ArtifactStore(tmp_path)
        store._claim_path(KEY_A).write_text(json_module.dumps({
            "pid": os.getpid(), "host": socket.gethostname(),
            "start": process_start_time(os.getpid()),
            "time": time.time(), "key": KEY_A}), "utf-8")
        assert store.try_claim(KEY_A, stale_s=3600.0) is False

    def test_fresh_unreadable_claim_is_respected(self, tmp_path):
        """A claim file that exists but holds no parseable record yet
        is a live writer between its O_EXCL open and the holder stamp
        — breaking it on sight admits two builders for one digest."""
        store = ArtifactStore(tmp_path)
        store._claim_path(KEY_A).write_text("", "utf-8")
        assert store.try_claim(KEY_A, stale_s=3600.0) is False
        assert store._claim_path(KEY_A).exists()

    def test_old_unreadable_claim_is_broken_by_age(self, tmp_path):
        import os
        import time

        store = ArtifactStore(tmp_path)
        path = store._claim_path(KEY_A)
        path.write_text("", "utf-8")
        stamp = time.time() - 3600.0
        os.utime(path, (stamp, stamp))
        assert store.try_claim(KEY_A, stale_s=60.0) is True

    def test_release_unowned_claim_is_a_no_op(self, tmp_path):
        ArtifactStore(tmp_path).release_claim(KEY_A)

    def test_bad_stale_budget_is_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="stale_s"):
            ArtifactStore(tmp_path).try_claim(KEY_A, stale_s=0)


class TestEvictionRaces:
    def test_publish_racing_eviction_of_same_digest(self, tmp_path):
        """A reader hammering one digest while a second store instance
        (a second process, in real life) publishes and evicts it must
        only ever see a clean hit with correct bytes or a clean miss."""
        import threading

        size = sum(len(v) for v in BUNDLE.values())
        reader_store = ArtifactStore(tmp_path)
        writer_store = ArtifactStore(tmp_path,
                                     byte_budget=int(size * 1.5))
        writer_store.put(KEY_A, BUNDLE)
        other = {"macro.cif": b"z" * size}
        wrong = []
        reads = 0
        stop = threading.Event()

        def hammer():
            nonlocal reads
            while not stop.is_set():
                got = reader_store.get(KEY_A)
                reads += 1
                if got is not None and got != BUNDLE:
                    wrong.append(got)

        thread = threading.Thread(target=hammer, daemon=True)
        thread.start()
        try:
            for _ in range(50):
                writer_store.put(KEY_B, other)  # overflows the budget
                writer_store.delete(KEY_B)
                writer_store.put(KEY_A, BUNDLE)
        finally:
            stop.set()
            thread.join(timeout=30.0)
        assert reads > 0
        assert wrong == []
        writer_store.put(KEY_A, BUNDLE)
        assert reader_store.get(KEY_A) == BUNDLE

    def test_eviction_is_manifest_first(self, tmp_path):
        """Deleting unlinks the manifest before the artifact bytes, so
        a concurrent reader sees a miss, never a half-entry."""
        store = ArtifactStore(tmp_path)
        store.put(KEY_A, BUNDLE)
        entry = store._entry_dir(KEY_A)
        removed = []
        original_unlink = __import__("os").unlink

        def spying_unlink(path, *args, **kwargs):
            removed.append(str(path))
            return original_unlink(path, *args, **kwargs)

        import unittest.mock as mock
        with mock.patch("repro.service.store.os.unlink",
                        side_effect=spying_unlink):
            store.delete(KEY_A)
        assert removed[0] == str(entry / MANIFEST)
