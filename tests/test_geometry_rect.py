"""Unit tests for repro.geometry.rect."""

import pytest

from repro.geometry import Point, Rect, bounding_box, total_area
from repro.geometry.transform import Orientation, Transform


class TestConstruction:
    def test_canonical_required(self):
        with pytest.raises(ValueError):
            Rect(5, 0, 0, 5)

    def test_from_points_canonicalises(self):
        r = Rect.from_points(Point(5, 7), Point(1, 2))
        assert (r.x1, r.y1, r.x2, r.y2) == (1, 2, 5, 7)

    def test_from_size(self):
        r = Rect.from_size(Point(2, 3), 10, 4)
        assert r == Rect(2, 3, 12, 7)

    def test_from_size_negative_rejected(self):
        with pytest.raises(ValueError):
            Rect.from_size(Point(0, 0), -1, 5)

    def test_degenerate_allowed(self):
        r = Rect(3, 0, 3, 10)
        assert r.width == 0 and r.area == 0


class TestMeasures:
    def test_width_height_area(self):
        r = Rect(1, 2, 5, 10)
        assert (r.width, r.height, r.area) == (4, 8, 32)

    def test_center(self):
        assert Rect(0, 0, 10, 20).center == Point(5, 10)

    def test_aspect_ratio(self):
        assert Rect(0, 0, 10, 5).aspect_ratio() == 2.0
        assert Rect(0, 0, 5, 10).aspect_ratio() == 2.0

    def test_aspect_ratio_degenerate(self):
        assert Rect(0, 0, 0, 5).aspect_ratio() == float("inf")


class TestSetOperations:
    def test_intersects_touching(self):
        assert Rect(0, 0, 5, 5).intersects(Rect(5, 0, 10, 5))

    def test_overlaps_requires_interior(self):
        assert not Rect(0, 0, 5, 5).overlaps(Rect(5, 0, 10, 5))
        assert Rect(0, 0, 5, 5).overlaps(Rect(4, 4, 10, 10))

    def test_intersection(self):
        got = Rect(0, 0, 10, 10).intersection(Rect(5, 5, 20, 20))
        assert got == Rect(5, 5, 10, 10)

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(5, 5, 6, 6)) is None

    def test_union_bbox(self):
        got = Rect(0, 0, 1, 1).union_bbox(Rect(5, 5, 6, 6))
        assert got == Rect(0, 0, 6, 6)

    def test_contains(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(2, 2, 8, 8))
        assert not outer.contains_rect(Rect(2, 2, 11, 8))
        assert outer.contains_point(Point(10, 10))


class TestSpacingAndAbutment:
    def test_spacing_straight(self):
        assert Rect(0, 0, 5, 5).spacing_to(Rect(8, 0, 12, 5)) == 3

    def test_spacing_diagonal_is_max(self):
        # dx=2, dy=3 -> corner spacing = max = 3
        assert Rect(0, 0, 5, 5).spacing_to(Rect(7, 8, 9, 10)) == 3

    def test_spacing_zero_when_touching(self):
        assert Rect(0, 0, 5, 5).spacing_to(Rect(5, 0, 9, 5)) == 0

    def test_abuts_vertical_edge(self):
        assert Rect(0, 0, 5, 5).abuts(Rect(5, 2, 9, 9))

    def test_abuts_requires_nonzero_shared_length(self):
        # Corner contact only: not an abutment.
        assert not Rect(0, 0, 5, 5).abuts(Rect(5, 5, 9, 9))

    def test_overlapping_do_not_abut(self):
        assert not Rect(0, 0, 5, 5).abuts(Rect(4, 0, 9, 5))


class TestDerivedRects:
    def test_translated(self):
        assert Rect(0, 0, 2, 2).translated(Point(3, 4)) == Rect(3, 4, 5, 6)

    def test_expanded(self):
        assert Rect(2, 2, 4, 4).expanded(1) == Rect(1, 1, 5, 5)

    def test_expanded_negative_shrinks(self):
        assert Rect(0, 0, 10, 10).expanded(-2) == Rect(2, 2, 8, 8)

    def test_transformed_r90_recanonicalises(self):
        t = Transform(Orientation.R90)
        got = Rect(1, 2, 3, 5).transformed(t)
        assert got == Rect(-5, 1, -2, 3)


class TestAggregates:
    def test_bounding_box(self):
        rects = [Rect(0, 0, 1, 1), Rect(5, -2, 6, 0), Rect(2, 3, 3, 9)]
        assert bounding_box(rects) == Rect(0, -2, 6, 9)

    def test_bounding_box_empty(self):
        assert bounding_box([]) is None

    def test_total_area_disjoint(self):
        assert total_area([Rect(0, 0, 2, 2), Rect(5, 5, 7, 7)]) == 8

    def test_total_area_overlapping_not_double_counted(self):
        assert total_area([Rect(0, 0, 4, 4), Rect(2, 2, 6, 6)]) == 28

    def test_total_area_contained(self):
        assert total_area([Rect(0, 0, 10, 10), Rect(2, 2, 4, 4)]) == 100

    def test_total_area_ignores_degenerate(self):
        assert total_area([Rect(0, 0, 0, 10)]) == 0
