"""Dual-port arrays: geometry, signoff, digests, port-aware BIST.

The dual-port macro shape rides on the same compile pipeline; these
tests pin (a) that single-port output did not move a single byte when
the port plumbing landed, and (b) that the ``ports=2`` shape carries
its second word-line/bit-line set through floorplan, signoff, the
datasheet, and the self-test schedule.
"""

import hashlib

import pytest

from repro import RamConfig, compile_ram
from repro.bist import IFA_9, PortView, port_bindings, run_dual_port_test
from repro.core.errors import ConfigError
from repro.memsim.device import BisrRam


def _config(**overrides):
    params = dict(words=64, bpw=8, bpc=4, spares=4, strap_every=8)
    params.update(overrides)
    return RamConfig(**params)


class TestSinglePortUnchanged:
    """Adding ``ports`` must not disturb historical layouts."""

    GOLDEN_CIF = {
        "cda05": "2f0f6208a55e5ec5d93a8d34fd939c7f"
                 "8610b85ba69bbd7142f2bd0e84c74a7c",
        "cda07": "9b2f54d6fae49468828bc568a4e4a71d"
                 "1e7a4cf56891644c583716f610441001",
    }

    @pytest.mark.parametrize("process", sorted(GOLDEN_CIF))
    def test_layout_bytes_pinned(self, process):
        ram = compile_ram(_config(process=process), signoff="strict")
        digest = hashlib.sha256(
            ram.cif_text().encode("utf-8")).hexdigest()
        assert digest == self.GOLDEN_CIF[process]

    def test_default_config_is_single_port(self):
        config = _config()
        assert config.ports == 1
        assert "dual-port" not in config.describe()


class TestDualPortConfig:
    def test_ports_validated(self):
        with pytest.raises(ConfigError, match="ports"):
            _config(ports=3)

    def test_roundtrip_and_describe(self):
        config = _config(ports=2)
        assert RamConfig.from_dict(config.to_dict()) == config
        assert "dual-port" in config.describe()


class TestDualPortMacro:
    @pytest.fixture(scope="class")
    def compiled(self):
        return compile_ram(_config(ports=2), signoff="strict")

    def test_signoff_clean(self, compiled):
        assert compiled.signoff.clean

    def test_floorplan_carries_port_b_structures(self, compiled):
        names = set(compiled.floorplan.macrocells)
        assert "precharge_row_b" in names
        assert "decoder_col_b" in names

    def test_array_exports_second_bitline_pair(self, compiled):
        array = compiled.floorplan.macrocells["array"]
        ports = {p.name for p in array.ports()}
        assert "bl2_0" in ports and "blb2_0" in ports
        assert "bl2_t_0" in ports and "blb2_t_0" in ports

    def test_datasheet_reports_deck_fingerprint(self, compiled):
        from repro.tech import get_process

        fp = get_process("cda07").fingerprint()
        assert compiled.datasheet.deck_fingerprint == fp
        assert fp in compiled.datasheet.summary()

    def test_flow_report_names_rule_deck(self, compiled):
        assert "rule deck" in compiled.flow_report()

    def test_simulation_model_is_dual_port(self, compiled):
        model = compiled.simulation_model()
        assert model.ports == 2

    def test_dual_port_taller_cell_grows_area(self):
        single = compile_ram(_config(), signoff=None)
        dual = compile_ram(_config(ports=2), signoff=None)
        assert dual.floorplan.top.bbox().height > \
            single.floorplan.top.bbox().height


class TestPortAwareBist:
    def _device(self, **overrides):
        params = dict(rows=16, bpw=8, bpc=4, spares=4, ports=2)
        params.update(overrides)
        return BisrRam(**params)

    def test_bindings_sweep(self):
        assert port_bindings(1) == [("a", 0, 0)]
        labels = [b[0] for b in port_bindings(2)]
        assert labels == ["a", "b", "w0r1", "w1r0"]

    def test_portview_bounds(self):
        device = self._device()
        with pytest.raises(ValueError):
            PortView(device, write_port=2)
        with pytest.raises(ValueError):
            device.read(0, port=5)

    def test_all_bindings_repair_clean_device(self):
        results = run_dual_port_test(self._device(), IFA_9, passes=2)
        assert set(results) == {"a", "b", "w0r1", "w1r0"}
        assert all(not r.repair_unsuccessful for r in results.values())

    def test_cross_port_sees_shared_storage(self):
        device = self._device()
        device.write(3, 0xA5, port=0)
        assert device.read(3, port=1) == 0xA5
        assert device.port_ops == [1, 1]

    def test_repair_via_one_port_serves_both(self):
        from repro.memsim.faults import RowStuck

        device = self._device()
        # Kill a storage row, repair through the port-A pass, then
        # confirm port B reads diverted data too.
        device.array.inject(
            RowStuck(row=2, phys_cols=device.array.phys_cols, value=0))
        view = PortView(device, write_port=0, read_port=0)
        from repro.bist.controller import BistScheduler

        result = BistScheduler(IFA_9, bpw=8).run(view, passes=2)
        assert not result.repair_unsuccessful
        device.repair_mode = True
        device.write(8, 0x3C, port=1)
        assert device.read(8, port=0) == 0x3C
