"""The montecarlo2d campaign driver: sharding, determinism, resume."""

import pytest

from repro.core.errors import ConfigError
from repro.runtime import CampaignRunner
from repro.runtime.drivers import montecarlo2d_campaign


class TestMonteCarlo2DDriver:
    def test_aggregates_pool_all_shards(self):
        spec = montecarlo2d_campaign(
            64, 4, 4, 2, 2, defects=2.0, trials=2000, n_shards=4,
            seed=11, col_defect_frac=0.1)
        result = CampaignRunner(workers=2).run(spec)
        assert result.completed == 4
        assert result.aggregates["trials"] == 2000
        assert 0.0 < result.aggregates["yield"] < 1.0
        assert result.aggregates["wilson_low"] \
            < result.aggregates["yield"] \
            < result.aggregates["wilson_high"]

    def test_worker_count_invariance(self):
        spec = montecarlo2d_campaign(
            32, 4, 4, 2, 2, defects=1.5, trials=600, n_shards=5,
            seed=4, row_defect_frac=0.05, col_defect_frac=0.05)
        one = CampaignRunner(workers=1).run(spec)
        three = CampaignRunner(workers=3).run(spec)
        assert one.aggregates == three.aggregates

    def test_kill_resume_is_bit_identical(self, tmp_path):
        def spec():
            return montecarlo2d_campaign(
                32, 4, 4, 2, 2, defects=2.0, trials=400, n_shards=4,
                seed=7, col_defect_frac=0.1)

        reference = CampaignRunner(workers=1).run(spec())
        # First run checkpoints; the resumed run adopts its shards and
        # must reproduce the reference aggregates exactly.
        journal = tmp_path / "mc2d.jsonl"
        CampaignRunner(workers=1, checkpoint=str(journal)).run(spec())
        resumed = CampaignRunner(workers=1, checkpoint=str(journal),
                                 resume=True).run(spec())
        assert resumed.aggregates == reference.aggregates

    def test_bad_parameters_fail_fast(self):
        with pytest.raises(ConfigError):
            montecarlo2d_campaign(32, 4, 4, -1, 2, defects=1.0)
        with pytest.raises(ConfigError):
            montecarlo2d_campaign(32, 4, 4, 2, 2, defects=1.0,
                                  row_defect_frac=0.8,
                                  col_defect_frac=0.8)
        with pytest.raises(ConfigError):
            montecarlo2d_campaign(32, 4, 4, 2, 2, defects=-1.0)
