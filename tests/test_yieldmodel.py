"""Unit tests for the yield models (Fig. 4 machinery)."""

import math

import pytest

from repro.yieldmodel import (
    bisr_yield,
    cell_fault_prob,
    cell_yield,
    chip_yield,
    chip_yield_with_bisr,
    defects_from_yield,
    embedded_ram_yield,
    repair_probability,
    row_fault_prob,
    stapper_yield,
    word_fault_prob,
    yield_curve,
)


class TestPoisson:
    def test_cell_yield_zero_defects(self):
        assert cell_yield(0.0) == 1.0

    def test_complement(self):
        assert cell_fault_prob(0.3) == pytest.approx(1 - math.exp(-0.3))

    def test_word_scales_with_bpw(self):
        assert word_fault_prob(1e-4, 32) > word_fault_prob(1e-4, 4)

    def test_row_equals_word_when_same_bits(self):
        assert row_fault_prob(1e-4, 16) == word_fault_prob(1e-4, 16)

    def test_validation(self):
        with pytest.raises(ValueError):
            cell_yield(-1.0)
        with pytest.raises(ValueError):
            word_fault_prob(0.1, 0)


class TestStapper:
    def test_zero_defects(self):
        assert stapper_yield(0.0, 100.0) == 1.0

    def test_decreases_with_area(self):
        assert stapper_yield(0.01, 200.0) < stapper_yield(0.01, 100.0)

    def test_clustering_helps(self):
        # Small alpha (clustered) gives better yield at same d*A.
        assert stapper_yield(0.02, 100.0, alpha=0.5) > \
            stapper_yield(0.02, 100.0, alpha=10.0)

    def test_large_alpha_approaches_poisson(self):
        da = 1.5
        assert stapper_yield(da, 1.0, alpha=1e6) == pytest.approx(
            math.exp(-da), rel=1e-4
        )

    def test_inversion_roundtrip(self):
        y = stapper_yield(0.01, 150.0, alpha=2.0)
        assert defects_from_yield(y, alpha=2.0) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            stapper_yield(-1, 10)
        with pytest.raises(ValueError):
            defects_from_yield(0.0)


class TestRepairProbability:
    def test_no_defects(self):
        assert repair_probability(100, 4, 0.0, 16) == 1.0

    def test_zero_spares_is_plain_yield(self):
        lam = 1e-4
        got = repair_probability(100, 0, lam, 16)
        assert got == pytest.approx((1 - row_fault_prob(lam, 16)) ** 100)

    def test_spares_help_under_defects(self):
        lam = 5e-4
        assert repair_probability(1024, 8, lam, 16) > \
            repair_probability(1024, 0, lam, 16)

    def test_spares_hurt_slightly_at_tiny_defect_rates(self):
        """The spares-must-be-good factor: with near-zero defects more
        spares only add exposure."""
        lam = 1e-8
        assert repair_probability(1024, 16, lam, 16) < \
            repair_probability(1024, 4, lam, 16)


class TestBisrYield:
    def test_fig4_ordering_at_high_defects(self):
        """Fig. 4's headline: 16 > 8 > 4 > 0 spares for many defects."""
        ys = [
            bisr_yield(1024, s, 4, 4, n_defects=10.0,
                       growth_factor=1 + s / 1024)
            for s in (0, 4, 8, 16)
        ]
        assert ys == sorted(ys)

    def test_no_spares_matches_poisson(self):
        assert bisr_yield(1024, 0, 4, 4, 2.0) == pytest.approx(
            math.exp(-2.0), rel=0.01
        )

    def test_monotone_decreasing_in_defects(self):
        ys = [bisr_yield(256, 4, 4, 4, n) for n in (0, 1, 2, 5, 10, 30)]
        assert ys == sorted(ys, reverse=True)
        assert ys[0] == 1.0

    def test_growth_factor_costs_yield(self):
        assert bisr_yield(256, 4, 4, 4, 5.0, growth_factor=1.2) < \
            bisr_yield(256, 4, 4, 4, 5.0, growth_factor=1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            bisr_yield(256, 4, 4, 4, -1.0)
        with pytest.raises(ValueError):
            bisr_yield(256, 4, 4, 4, 1.0, growth_factor=0.9)

    def test_yield_curve_shape(self):
        curves = yield_curve(1024, 4, 4, (0, 4), [0.0, 5.0, 20.0])
        assert len(curves) == 2
        spares, series = curves[1]
        assert spares == 4 and len(series) == 3

    def test_yield_curve_growth_factor_count_checked(self):
        with pytest.raises(ValueError):
            yield_curve(1024, 4, 4, (0, 4), [1.0], growth_factors=[1.0])


class TestChipYield:
    def test_product(self):
        assert chip_yield([0.9, 0.8]) == pytest.approx(0.72)

    def test_validation(self):
        with pytest.raises(ValueError):
            chip_yield([])
        with pytest.raises(ValueError):
            chip_yield([1.2])

    def test_embedded_ram_yield(self):
        assert embedded_ram_yield(0.49, 0.5) == pytest.approx(0.7)

    def test_chip_with_bisr_improves(self):
        before = 0.2
        after = chip_yield_with_bisr(before, 0.25, 1.4)
        assert after > before

    def test_chip_with_bisr_capped_at_perfect_ram(self):
        after = chip_yield_with_bisr(0.5, 0.3, 100.0)
        rest = 0.5 / embedded_ram_yield(0.5, 0.3)
        assert after == pytest.approx(rest)

    def test_improvement_below_one_rejected(self):
        with pytest.raises(ValueError):
            chip_yield_with_bisr(0.5, 0.3, 0.9)
