"""Tests for the supervised process-pool build backend."""

import threading

import pytest

from repro.bist.march import IFA_9
from repro.core.config import RamConfig
from repro.core.errors import (
    BuildCrashed,
    ConfigError,
    ServiceUnavailable,
)
from repro.core.errors import ReproError
from repro.runtime.supervision import RetryPolicy
from repro.service.backend import ProcessPoolBackend
from repro.service.bundle import build_bundle, bundle_key
from repro.service.chaos import ChaosPlan, ChaosSpec
from repro.service.store import ArtifactStore

CFG = RamConfig(words=64, bpw=8, bpc=4, strap_every=8)
KEY = bundle_key(CFG, IFA_9)


def make_backend(tmp_path, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("deadline_s", 120.0)
    kwargs.setdefault("poll_s", 0.01)
    return ProcessPoolBackend(ArtifactStore(tmp_path / "store"),
                              **kwargs)


class TestBuildPath:
    def test_cold_build_publishes_and_serves(self, tmp_path):
        with make_backend(tmp_path) as backend:
            result = backend.build(KEY, CFG, IFA_9)
            assert result.source == "built"
            assert result.cached is False
            assert result.attempts == 1
            assert backend.store.verify(KEY)
            assert result.artifacts == build_bundle(CFG, IFA_9)

    def test_second_build_is_a_store_hit(self, tmp_path):
        with make_backend(tmp_path) as backend:
            first = backend.build(KEY, CFG, IFA_9)
            second = backend.build(KEY, CFG, IFA_9)
            assert second.cached is True
            assert second.source == "store"
            assert second.artifacts == first.artifacts
            assert backend.stats.builds == 1
            assert backend.stats.store_hits == 1

    def test_artifacts_never_cross_the_pickle_boundary(self, tmp_path):
        """The parent reads the store, so the store must hold the
        bytes the caller got (not a pickled copy)."""
        with make_backend(tmp_path) as backend:
            result = backend.build(KEY, CFG, IFA_9)
            assert backend.store.get(KEY) == result.artifacts

    def test_config_error_propagates_without_retry(self, tmp_path):
        with make_backend(tmp_path) as backend:
            with pytest.raises(ConfigError, match="signoff policy"):
                backend.build(bundle_key(CFG, IFA_9, "bogus"), CFG,
                              IFA_9, signoff="bogus")
            assert backend.stats.retries == 0

    def test_store_is_mandatory(self):
        with pytest.raises(ConfigError, match="store"):
            ProcessPoolBackend(None)


class TestSupervision:
    def test_worker_kill_is_retried_solo_and_recovers(self, tmp_path):
        plan = ChaosPlan(ChaosSpec("kill", "pre_build"))
        with make_backend(tmp_path, chaos=plan) as backend:
            result = backend.build(KEY, CFG, IFA_9)
            assert result.artifacts == build_bundle(CFG, IFA_9)
            assert backend.stats.crashes == 1
            assert KEY not in backend.quarantined_keys

    def test_repeat_killer_is_quarantined(self, tmp_path):
        plan = ChaosPlan(ChaosSpec("kill", "spawn"), fail_times=10)
        with make_backend(tmp_path, chaos=plan) as backend:
            with pytest.raises(BuildCrashed) as excinfo:
                backend.build(KEY, CFG, IFA_9)
            assert excinfo.value.key == KEY
            assert excinfo.value.crashes == 2  # crash_retries=1, then out
            assert KEY in backend.quarantined_keys
            # Quarantine is sticky: the next attempt fails fast,
            # without touching another worker.
            crashes_before = backend.stats.crashes
            with pytest.raises(BuildCrashed):
                backend.build(KEY, CFG, IFA_9)
            assert backend.stats.crashes == crashes_before

    def test_hung_worker_hits_deadline_then_recovers(self, tmp_path):
        plan = ChaosPlan(ChaosSpec("hang", "pre_build", hang_s=60.0))
        with make_backend(tmp_path, chaos=plan,
                          deadline_s=2.0) as backend:
            result = backend.build(KEY, CFG, IFA_9)
            assert backend.stats.timeouts == 1
            assert result.artifacts == build_bundle(CFG, IFA_9)

    def test_transient_io_failure_is_retried(self, tmp_path):
        plan = ChaosPlan(ChaosSpec("enospc", "pre_publish"))
        with make_backend(tmp_path, chaos=plan) as backend:
            result = backend.build(KEY, CFG, IFA_9)
            assert backend.stats.retries >= 1
            assert result.attempts == 2
            assert backend.store.verify(KEY)

    def test_retries_exhaust_into_repro_error(self, tmp_path):
        plan = ChaosPlan(ChaosSpec("enospc", "pre_publish"),
                         fail_times=99)
        retry = RetryPolicy(max_attempts=2, backoff_base=0.01)
        with make_backend(tmp_path, chaos=plan,
                          retry=retry) as backend:
            with pytest.raises(ReproError, match=r"\[io\]"):
                backend.build(KEY, CFG, IFA_9)

    def test_shutdown_refuses_new_builds(self, tmp_path):
        backend = make_backend(tmp_path)
        backend.shutdown()
        with pytest.raises(ServiceUnavailable, match="shut down"):
            backend.build(KEY, CFG, IFA_9)


class TestCrossProcessSingleFlight:
    def test_two_backends_sharing_a_store_build_once(self, tmp_path):
        """Two backends over one store root (two server processes in
        real life): the claim file lets exactly one build, the other
        waits for the publish."""
        store_a = ArtifactStore(tmp_path / "store")
        store_b = ArtifactStore(tmp_path / "store")
        backend_a = ProcessPoolBackend(store_a, workers=1,
                                       poll_s=0.01)
        backend_b = ProcessPoolBackend(store_b, workers=1,
                                       poll_s=0.01)
        results = {}

        def run(name, backend):
            results[name] = backend.build(KEY, CFG, IFA_9)

        threads = [
            threading.Thread(target=run, args=("a", backend_a)),
            threading.Thread(target=run, args=("b", backend_b)),
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300.0)
        finally:
            backend_a.shutdown()
            backend_b.shutdown()
        assert set(results) == {"a", "b"}
        assert results["a"].artifacts == results["b"].artifacts
        # Exactly one compile happened across both backends; the
        # other request found the publish (waiting on the claim, or
        # arriving after it).
        sources = sorted(r.source for r in results.values())
        assert sources.count("built") == 1
        assert sources[1] in ("store", "waited") or \
            sources[0] in ("store", "waited")

    def test_dead_claim_holder_is_adopted(self, tmp_path):
        """A claim owned by a dead pid must not wedge the digest."""
        import json
        import socket
        import time

        store = ArtifactStore(tmp_path / "store")
        # Fake a claim from a process that no longer exists.
        store._claim_path(KEY).write_text(json.dumps({
            "pid": 999999999, "host": socket.gethostname(),
            "time": time.time(), "key": KEY}), "utf-8")
        with ProcessPoolBackend(store, workers=1,
                                poll_s=0.01) as backend:
            result = backend.build(KEY, CFG, IFA_9)
            assert result.source == "built"
