"""Targeted tests for remaining coverage gaps across modules."""

import pytest

from repro.cells.base import CellBuilder
from repro.cells.stdcell import draw_logic_block
from repro.geometry import Point, Rect
from repro.layout import Cell, render_svg
from repro.tech import get_process

PROCESS = get_process("cda07")


class TestCellBuilderValidation:
    def test_thin_wire_rejected(self):
        b = CellBuilder("x", PROCESS)
        with pytest.raises(ValueError, match="below minimum"):
            b.wire_h("metal1", 0, 10, 5, width_lam=1)

    def test_bad_edge_rejected(self):
        b = CellBuilder("x", PROCESS)
        with pytest.raises(ValueError, match="bad edge"):
            b.edge_port("p", "metal1", "diagonal", 0, 4, 0)

    def test_bad_polarity_rejected(self):
        b = CellBuilder("x", PROCESS)
        with pytest.raises(ValueError, match="polarity"):
            b.mosfet("cmos", 10, 10, 4)

    def test_horizontal_gate_orientation(self):
        b = CellBuilder("x", PROCESS)
        diff, poly = b.mosfet("nmos", 20, 20, 6, vertical_gate=False)
        # Horizontal gate: poly wider than tall.
        assert poly.width > poly.height
        assert diff.height > diff.width


class TestStdcellOptions:
    def test_no_terminal_contacts(self):
        b = CellBuilder("bare", PROCESS)
        draw_logic_block(b, 4, contact_all_terminals=False)
        cell = b.finish()
        contacts = [r for l, r in cell.flatten() if l == "contact"]
        # Only the gate-input contacts remain (one per gate).
        assert len(contacts) == 4

    def test_needs_a_gate(self):
        b = CellBuilder("none", PROCESS)
        with pytest.raises(ValueError):
            draw_logic_block(b, 0)


class TestRenderLimits:
    def test_svg_truncation(self):
        c = Cell("many")
        for i in range(50):
            c.add_shape("metal1", Rect(i * 10, 0, i * 10 + 5, 5))
        svg = render_svg(c, PROCESS.layers, max_shapes=10)
        assert "truncated" in svg


class TestFloorplanEdges:
    def test_bist_area_zero_without_bisr(self):
        from repro import RamConfig
        from repro.core.floorplan import build_floorplan

        plan = build_floorplan(
            RamConfig(words=64, bpw=4, bpc=4, strap_every=0),
            with_bisr=False,
        )
        assert plan.bist_bisr_area_cu2() == 0

    def test_decoder_column_has_spare_drivers(self):
        from repro import RamConfig
        from repro.core.floorplan import build_floorplan

        plan = build_floorplan(
            RamConfig(words=64, bpw=4, bpc=4, spares=4, strap_every=0)
        )
        names = [i.name for i in plan.macrocells["decoder_col"].instances()]
        assert sum(1 for n in names if n.startswith("spare_drv")) == 4
        # Spare rows get drivers but no address decoders.
        assert sum(1 for n in names if n.startswith("dec_")) == 16


class TestTlbDelayModelObject:
    def test_frozen_and_validated(self):
        from repro.bisr.delay import TlbDelayModel

        with pytest.raises(ValueError):
            TlbDelayModel(PROCESS, 0, 4)
        model = TlbDelayModel(PROCESS, 8, 4)
        assert model.total() == pytest.approx(
            sum(model.breakdown().values())
        )


class TestChenSunadaTranslationModes:
    def test_all_three_translation_kinds(self):
        from repro.bisr.chen_sunada import ChenSunadaRam

        ram = ChenSunadaRam(2, 8, spare_subblocks=1)
        ram.record_fail(1)                      # captured word
        for a in (8, 9, 10):                    # kill subblock 1
            ram.record_fail(a)
        assert ram.translate(1)[0] == "spare_word"
        assert ram.translate(8)[0] == "spare_block"
        assert ram.translate(3)[0] == "block"
