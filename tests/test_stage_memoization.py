"""Tests for stage-level memoization of the build pipeline."""

import pytest

from repro.bist.march import MATS_PLUS, parse_march
from repro.core.compiler import BISRAMGen, compile_ram, march_digest
from repro.core.config import RamConfig
from repro.core.stages import STAGE_ORDER, StageCache, StageTiming
from repro.service import render_bundle

CFG = RamConfig(words=64, bpw=8, bpc=4, strap_every=8)


class TestStageCache:
    def test_lookup_miss_then_hit(self):
        cache = StageCache()
        hit, _ = cache.lookup("floorplan", "k1")
        assert not hit
        cache.store("floorplan", "k1", "product")
        hit, value = cache.lookup("floorplan", "k1")
        assert hit and value == "product"
        assert cache.hits == 1 and cache.misses == 1

    def test_stage_and_key_both_partition(self):
        cache = StageCache()
        cache.store("floorplan", "k1", "a")
        assert not cache.lookup("layout", "k1")[0]
        assert not cache.lookup("floorplan", "k2")[0]

    def test_caches_falsy_products(self):
        """A stage whose product is falsy (0, empty tuple) must still
        hit — the sentinel, not truthiness, decides."""
        cache = StageCache()
        cache.store("datasheet", "k", ())
        hit, value = cache.lookup("datasheet", "k")
        assert hit and value == ()

    def test_bounded_lru(self):
        cache = StageCache(max_entries=2)
        cache.store("s", "k1", 1)
        cache.store("s", "k2", 2)
        assert cache.lookup("s", "k1")[0]  # refresh k1
        cache.store("s", "k3", 3)          # evicts k2
        assert not cache.lookup("s", "k2")[0]
        assert cache.lookup("s", "k1")[0]
        assert cache.evictions == 1

    def test_stats_shape(self):
        cache = StageCache()
        cache.store("s", "k", 1)
        cache.lookup("s", "k")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert 0.0 <= stats["hit_rate"] <= 1.0


class TestMemoizedBuild:
    def test_cold_build_records_misses_in_order(self):
        cache = StageCache()
        compiled = BISRAMGen(CFG).build(stage_cache=cache)
        names = [t.name for t in compiled.stages]
        assert names == [s for s in STAGE_ORDER if s != "signoff"]
        assert all(not t.hit for t in compiled.stages)

    def test_warm_build_hits_every_stage(self):
        cache = StageCache()
        BISRAMGen(CFG).build(stage_cache=cache)
        warm = BISRAMGen(CFG).build(stage_cache=cache)
        assert all(t.hit for t in warm.stages)

    def test_flow_report_carries_stage_verdicts(self):
        cache = StageCache()
        BISRAMGen(CFG).build(stage_cache=cache)
        warm = BISRAMGen(CFG).build(stage_cache=cache)
        report = warm.flow_report()
        assert "stage cache" in report
        assert "floorplan HIT" in report
        cold = compile_ram(CFG)
        assert "floorplan MISS" in cold.flow_report()

    def test_warm_artifacts_are_byte_identical(self):
        """The contract the artifact store relies on: memoized and
        from-scratch builds render the same bytes."""
        cache = StageCache()
        BISRAMGen(CFG).build(stage_cache=cache)
        warm = BISRAMGen(CFG).build(stage_cache=cache)
        fresh = compile_ram(CFG)
        assert render_bundle(warm) == render_bundle(fresh)

    def test_different_march_misses(self):
        cache = StageCache()
        BISRAMGen(CFG).build(stage_cache=cache)
        other = BISRAMGen(CFG, MATS_PLUS).build(stage_cache=cache)
        assert all(not t.hit for t in other.stages)

    def test_different_config_misses(self):
        cache = StageCache()
        BISRAMGen(CFG).build(stage_cache=cache)
        other = BISRAMGen(
            RamConfig(words=64, bpw=8, bpc=4, strap_every=8, spares=8)
        ).build(stage_cache=cache)
        assert all(not t.hit for t in other.stages)

    def test_no_cache_builds_standalone(self):
        compiled = BISRAMGen(CFG).build()
        assert all(not t.hit for t in compiled.stages)
        assert len(compiled.stages) == 4

    def test_policy_change_reuses_layout_stages(self, monkeypatch):
        """Adding signoff to a warmed geometry re-runs *only* the
        signoff stage; floorplan/layout/planes/datasheet all hit."""

        class _CleanReport:
            clean = True

        sweeps = []
        monkeypatch.setattr(
            "repro.verify.signoff.run_signoff",
            lambda compiled, march=None, **kw:
                sweeps.append(1) or _CleanReport())

        cache = StageCache()
        BISRAMGen(CFG).build(stage_cache=cache)
        gated = BISRAMGen(CFG).build(signoff="degrade",
                                     stage_cache=cache)
        verdicts = {t.name: t.hit for t in gated.stages}
        assert verdicts == {"floorplan": True, "layout": True,
                            "control-planes": True, "datasheet": True,
                            "signoff": False}
        assert len(sweeps) == 1
        # Same policy again: even the signoff sweep hits now.
        again = BISRAMGen(CFG).build(signoff="degrade",
                                     stage_cache=cache)
        assert all(t.hit for t in again.stages)
        assert len(sweeps) == 1


class TestStageKeys:
    def test_stage_key_folds_in_config_march_and_deck(self):
        key = BISRAMGen(CFG).stage_key()
        assert BISRAMGen(CFG).stage_key() == key
        assert BISRAMGen(
            RamConfig(words=64, bpw=8, bpc=4, strap_every=8,
                      process="mos08")
        ).stage_key() != key
        assert BISRAMGen(CFG, MATS_PLUS).stage_key() != key

    def test_march_digest_distinguishes_same_name(self):
        a = parse_march("twin", "m(w0); u(r0,w1)")
        b = parse_march("twin", "m(w0); d(r0,w1)")
        assert march_digest(a) != march_digest(b)

    def test_timing_describe(self):
        timing = StageTiming(name="layout", hit=True, elapsed_s=0.25)
        text = timing.describe()
        assert "layout" in text and "hit" in text
