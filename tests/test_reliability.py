"""Unit tests for the reliability models (Fig. 5 machinery)."""

import pytest

from repro.reliability import (
    crossover_age,
    failure_pdf,
    mttf_numeric,
    mttf_words,
    reliability_rows,
    reliability_words,
    word_fault_prob_at,
)

#: Fig. 5 configuration.  The defect-rate exponent is garbled in the
#: available paper text; 1e-5 per kilohour per cell reproduces the
#: stated ~70,000 h crossover (see EXPERIMENTS.md).
ROWS, BPW, BPC = 1024, 4, 4
LAM = 1e-5 / 1000.0


class TestBasics:
    def test_word_fault_prob_zero_at_t0(self):
        assert word_fault_prob_at(0.0, LAM, BPW) == 0.0

    def test_word_fault_prob_monotone(self):
        ps = [word_fault_prob_at(t, LAM, BPW) for t in (0, 1e4, 1e5, 1e6)]
        assert ps == sorted(ps)

    def test_reliability_one_at_t0(self):
        assert reliability_words(0.0, ROWS, 4, BPW, BPC, LAM) == 1.0
        assert reliability_rows(0.0, ROWS, 4, BPW, BPC, LAM) == 1.0

    def test_reliability_decreasing_in_time(self):
        rs = [
            reliability_words(t, ROWS, 4, BPW, BPC, LAM)
            for t in (0, 1e4, 5e4, 2e5, 1e6)
        ]
        assert rs == sorted(rs, reverse=True)

    def test_bounds(self):
        for t in (0.0, 1e3, 1e5, 1e7):
            r = reliability_words(t, ROWS, 8, BPW, BPC, LAM)
            assert 0.0 <= r <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            word_fault_prob_at(-1.0, LAM, BPW)
        with pytest.raises(ValueError):
            reliability_words(1.0, 0, 4, BPW, BPC, LAM)


class TestSparesTradeoff:
    def test_young_device_prefers_fewer_spares(self):
        """The paper's counterintuitive observation: early in life,
        reliability *decreases* with spare count."""
        t_young = 5e3
        r4 = reliability_words(t_young, ROWS, 4, BPW, BPC, LAM)
        r8 = reliability_words(t_young, ROWS, 8, BPW, BPC, LAM)
        r16 = reliability_words(t_young, ROWS, 16, BPW, BPC, LAM)
        assert r4 > r8 > r16

    def test_old_device_prefers_more_spares(self):
        t_old = 4e5
        r4 = reliability_words(t_old, ROWS, 4, BPW, BPC, LAM)
        r8 = reliability_words(t_old, ROWS, 8, BPW, BPC, LAM)
        assert r8 > r4

    def test_spares_beat_none_at_any_meaningful_age(self):
        t = 1e5
        r0 = reliability_words(t, ROWS, 0, BPW, BPC, LAM)
        r4 = reliability_words(t, ROWS, 4, BPW, BPC, LAM)
        assert r4 > r0

    def test_crossover_near_70k_hours(self):
        """Fig. 5: the 4-vs-8-spare crossover at ~8 years (70 kh)."""
        t = crossover_age(ROWS, BPW, BPC, LAM, 4, 8, t_hint=7e4)
        assert 4e4 <= t <= 1.2e5

    def test_crossover_rows_model_same_ballpark(self):
        t = crossover_age(ROWS, BPW, BPC, LAM, 4, 8, t_hint=7e4,
                          model=reliability_rows)
        assert 1e3 <= t <= 1e6

    def test_no_crossover_raises(self):
        with pytest.raises(ValueError):
            crossover_age(ROWS, BPW, BPC, LAM, 4, 4, t_hint=7e4)


class TestMttf:
    def test_closed_form_matches_numeric(self):
        rows = 64
        closed = mttf_words(rows, 2, BPW, BPC, LAM)
        numeric = mttf_numeric(
            lambda t: reliability_words(t, rows, 2, BPW, BPC, LAM),
            t_scale=1.0 / (BPW * LAM * rows * BPC),
        )
        assert closed == pytest.approx(numeric, rel=1e-3)

    def test_more_spares_longer_mttf(self):
        m2 = mttf_words(64, 2, BPW, BPC, LAM)
        m4 = mttf_words(64, 4, BPW, BPC, LAM)
        assert m4 > m2

    def test_scales_inverse_with_rate(self):
        m1 = mttf_words(64, 2, BPW, BPC, LAM)
        m2 = mttf_words(64, 2, BPW, BPC, 2 * LAM)
        assert m1 == pytest.approx(2 * m2, rel=1e-9)

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            mttf_words(64, 2, BPW, BPC, 0.0)


class TestFailurePdf:
    def test_nonnegative_and_integrates(self):
        def r(t):
            return reliability_words(t, 64, 2, BPW, BPC, LAM)

        for t in (1e3, 1e4, 1e5):
            assert failure_pdf(r, t) >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            failure_pdf(lambda t: 1.0, -1.0)
