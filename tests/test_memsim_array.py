"""Unit tests for the column-multiplexed memory array model."""

import pytest

from repro.memsim import MemoryArray
from repro.memsim.faults import StuckAt


class TestGeometry:
    def test_counts(self):
        a = MemoryArray(rows=8, bpw=4, bpc=4, spares=2)
        assert a.words == 32
        assert a.total_words == 40
        assert a.phys_cols == 16
        assert a.cell_count == 160

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryArray(rows=0, bpw=4, bpc=4)
        with pytest.raises(ValueError):
            MemoryArray(rows=4, bpw=3, bpc=4)  # not power of two
        with pytest.raises(ValueError):
            MemoryArray(rows=4, bpw=4, bpc=4, spares=-1)

    def test_split_address(self):
        a = MemoryArray(rows=8, bpw=4, bpc=4)
        assert a.split_address(0) == (0, 0)
        assert a.split_address(5) == (1, 1)
        assert a.split_address(31) == (7, 3)

    def test_split_address_range(self):
        a = MemoryArray(rows=8, bpw=4, bpc=4, spares=1)
        a.split_address(35)  # spare word: legal
        with pytest.raises(ValueError):
            a.split_address(36)

    def test_cell_index_column_multiplexing(self):
        """Word bit i lives at physical column i*bpc + col (Fig. 2)."""
        a = MemoryArray(rows=8, bpw=4, bpc=4)
        assert a.cell_index(0, 0, 0) == 0
        assert a.cell_index(0, 1, 0) == 4
        assert a.cell_index(0, 1, 3) == 7
        assert a.cell_index(2, 0, 0) == 32

    def test_cell_index_validation(self):
        a = MemoryArray(rows=8, bpw=4, bpc=4)
        with pytest.raises(ValueError):
            a.cell_index(8, 0, 0)
        with pytest.raises(ValueError):
            a.cell_index(0, 4, 0)
        with pytest.raises(ValueError):
            a.cell_index(0, 0, 4)


class TestReadWrite:
    def test_roundtrip_all_words(self):
        a = MemoryArray(rows=4, bpw=8, bpc=2)
        for addr in range(a.words):
            a.write_word(addr, addr * 7 % 256)
        for addr in range(a.words):
            assert a.read_word(addr) == addr * 7 % 256

    def test_words_in_same_row_independent(self):
        a = MemoryArray(rows=4, bpw=4, bpc=4)
        a.write_word(0, 0xF)
        a.write_word(1, 0x0)
        assert a.read_word(0) == 0xF
        assert a.read_word(1) == 0x0

    def test_row_override(self):
        a = MemoryArray(rows=4, bpw=4, bpc=2, spares=1)
        a.write_word(0, 0xA, row_override=4)  # spare row
        assert a.read_word(0) == 0  # regular row untouched
        assert a.read_word(0, row_override=4) == 0xA

    def test_counters(self):
        a = MemoryArray(rows=4, bpw=4, bpc=2)
        a.write_word(0, 1)
        a.read_word(0)
        a.read_word(1)
        assert a.write_count == 1 and a.read_count == 2

    def test_fill(self):
        a = MemoryArray(rows=4, bpw=4, bpc=2, spares=1)
        a.fill(0b1010)
        for addr in range(a.total_words):
            assert a.read_word(addr) == 0b1010


class TestFaultManagement:
    def test_inject_and_list(self):
        a = MemoryArray(rows=4, bpw=4, bpc=2)
        f = StuckAt(a.cell_index(1, 2, 0), 1)
        a.inject(f)
        assert a.faults == (f,)
        assert a.faulty_rows() == [1]

    def test_inject_out_of_range_rejected(self):
        a = MemoryArray(rows=4, bpw=4, bpc=2)
        with pytest.raises(ValueError):
            a.inject(StuckAt(a.cell_count, 1))

    def test_clear_faults(self):
        a = MemoryArray(rows=4, bpw=4, bpc=2)
        a.inject(StuckAt(0, 1))
        a.clear_faults()
        a.write_word(0, 0)
        assert a.read_word(0) == 0
