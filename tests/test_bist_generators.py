"""Unit tests for ADDGEN and DATAGEN."""

import pytest

from repro.bist import AddGen, DataGen, backgrounds_for_word


class TestAddGen:
    def test_up_sequence_covers_space(self):
        gen = AddGen(width=3)
        assert list(gen.sequence()) == list(range(8))

    def test_down_sequence(self):
        gen = AddGen(width=3)
        gen.reset(up=False)
        assert list(gen.sequence()) == list(range(7, -1, -1))

    def test_limit_below_power_of_two(self):
        gen = AddGen(width=4, limit=10)
        assert list(gen.sequence()) == list(range(10))

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            AddGen(width=3, limit=9)
        with pytest.raises(ValueError):
            AddGen(width=0)

    def test_done_flags(self):
        gen = AddGen(width=2)
        gen.reset(up=True)
        assert not gen.done
        for _ in range(3):
            gen.step()
        assert gen.done

    def test_wraps(self):
        gen = AddGen(width=2)
        gen.reset(up=True)
        for _ in range(4):
            gen.step()
        assert gen.value == 0

    def test_bits_lsb_first(self):
        gen = AddGen(width=4)
        gen.value = 0b1010
        assert gen.bits() == (0, 1, 0, 1)


class TestBackgrounds:
    def test_counts(self):
        # log2(bpw) + 1 backgrounds.
        assert len(backgrounds_for_word(1)) == 1
        assert len(backgrounds_for_word(4)) == 3
        assert len(backgrounds_for_word(32)) == 6

    def test_first_is_all_zero(self):
        assert backgrounds_for_word(8)[0] == 0

    def test_stripe_patterns(self):
        got = backgrounds_for_word(8)
        assert got[1] == 0b10101010
        assert got[2] == 0b11001100
        assert got[3] == 0b11110000

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            backgrounds_for_word(6)
        with pytest.raises(ValueError):
            backgrounds_for_word(0)

    def test_every_bit_pair_separated(self):
        """The coupling-coverage property: every pair of distinct bits
        gets both equal and opposite values across the background set
        (with complements via the inversion signal)."""
        bpw = 16
        patterns = backgrounds_for_word(bpw)
        for i in range(bpw):
            for j in range(i + 1, bpw):
                same = any(
                    ((p >> i) & 1) == ((p >> j) & 1) for p in patterns
                )
                diff = any(
                    ((p >> i) & 1) != ((p >> j) & 1) for p in patterns
                )
                assert same and diff, (i, j)


class TestDataGen:
    def test_stage_count(self):
        assert DataGen(8).stage_count == 4  # log2(8) + 1

    def test_step_through_backgrounds(self):
        dg = DataGen(4)
        seen = [dg.pattern(0)]
        while not dg.done:
            seen.append(dg.step())
        assert seen == backgrounds_for_word(4)

    def test_step_past_end_raises(self):
        dg = DataGen(1)
        with pytest.raises(RuntimeError):
            dg.step()

    def test_inversion(self):
        dg = DataGen(4)
        dg.index = 1
        assert dg.pattern(1) == (~dg.pattern(0)) & 0xF

    def test_compare_detects_any_bit(self):
        dg = DataGen(8)
        good = dg.pattern(0)
        assert not dg.compare(good, 0)
        for bit in range(8):
            assert dg.compare(good ^ (1 << bit), 0)

    def test_reset(self):
        dg = DataGen(4)
        dg.step()
        dg.reset()
        assert dg.index == 0

    def test_johnson_state_walk(self):
        dg = DataGen(8)
        states = dg.johnson_states()
        assert states[0] == (0, 0, 0, 0)
        assert states[1] == (1, 0, 0, 0)
        assert states[-1] == (1, 1, 1, 1)
        # One bit shifts in per step: ones count == background index.
        assert [sum(s) for s in states] == list(range(5))
