"""The diagnosis edge-case contract (deterministic, documented).

Empty log, all-failing log, and the row/column tie-break rules:
columns are classified first, but a lane needs two distinct rows (and
a row two distinct words) before a line verdict is allowed.
"""

from repro.memsim import FailRecord, diagnose, fault_bitmap


def rec(address, failing_bits):
    return FailRecord(address=address, observed=failing_bits, expected=0)


class TestEmptyLog:
    def test_clean_device_is_trivially_repairable(self):
        result = diagnose([], rows=8, bpw=4, bpc=2, spares=2)
        assert result.cell_faults == ()
        assert result.row_faults == ()
        assert result.column_faults == ()
        assert result.repairable_with_rows
        assert result.spares_needed == 0


class TestAllFailing:
    def test_everything_failing_reads_as_all_columns(self):
        rows, bpw, bpc = 4, 2, 2
        records = [rec(a, 0b11) for a in range(rows * bpc)]
        result = diagnose(records, rows, bpw, bpc, spares=4)
        # Columns-first precedence applied consistently: every lane
        # meets the column rule, nothing is left for rows or cells.
        assert len(result.column_faults) == bpw * bpc
        assert result.row_faults == ()
        assert result.cell_faults == ()
        assert not result.repairable_with_rows


class TestTieBreak:
    def test_column_beats_row_when_both_could_claim(self):
        # Lane (column 0, bit 1) fails in two rows; each row fails in
        # only one word, so the column verdict wins cleanly.
        records = [rec(0, 0b10), rec(2, 0b10)]  # addresses row 0/1, col 0
        result = diagnose(records, rows=4, bpw=2, bpc=2, spares=2)
        assert result.column_faults == ((0, 1),)
        assert result.row_faults == ()
        assert result.cell_faults == ()

    def test_single_row_event_is_never_a_column(self):
        # Both failures sit in row 0: lanes see one row each, so the
        # row rule (two distinct words) fires instead.
        records = [rec(0, 0b01), rec(1, 0b01)]
        result = diagnose(records, rows=4, bpw=2, bpc=2, spares=2)
        assert result.column_faults == ()
        assert result.row_faults == (0,)

    def test_single_cell_is_neither_row_nor_column(self):
        records = [rec(5, 0b01)]
        result = diagnose(records, rows=4, bpw=2, bpc=2, spares=2)
        assert result.column_faults == () and result.row_faults == ()
        assert result.cell_faults == ((2, 1),)
        assert result.repairable_with_rows
        assert result.spares_needed == 1


class TestFaultBitmap:
    def test_fig2_addressing(self):
        # Address 5 with bpc=2 is (row 2, column 1); failing bit 1
        # lives at physical column 1 * 2 + 1 = 3.
        cells = fault_bitmap([rec(5, 0b10)], bpw=2, bpc=2)
        assert cells == ((2, 3),)

    def test_bits_beyond_bpw_are_masked(self):
        cells = fault_bitmap([rec(5, 0b1111)], bpw=2, bpc=2)
        assert cells == ((2, 1), (2, 3))

    def test_duplicates_fold_and_output_is_sorted(self):
        records = [rec(1, 0b01), rec(1, 0b01), rec(0, 0b01)]
        cells = fault_bitmap(records, bpw=2, bpc=2)
        assert cells == ((0, 0), (0, 1))

    def test_empty_log_is_an_empty_bitmap(self):
        assert fault_bitmap([], bpw=4, bpc=4) == ()
