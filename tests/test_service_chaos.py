"""Tests for the chaos-injection harness (specs, plans, scenarios)."""

import errno

import pytest

from repro.core.errors import ConfigError
from repro.service.chaos import (
    SCENARIOS,
    ChaosPlan,
    ChaosSpec,
    apply_chaos,
    run_scenario,
    run_scenarios,
)


class TestSpecAndPlan:
    def test_spec_validates_action_and_point(self):
        with pytest.raises(ConfigError, match="action"):
            ChaosSpec("explode", "pre_build")
        with pytest.raises(ConfigError, match="point"):
            ChaosSpec("kill", "somewhere")

    def test_spec_round_trips_through_dict(self):
        spec = ChaosSpec("hang", "pre_build", hang_s=1.5)
        assert spec.to_dict() == {"action": "hang",
                                  "point": "pre_build", "hang_s": 1.5}

    def test_plan_injects_fail_times_then_stands_down(self):
        plan = ChaosPlan(ChaosSpec("kill", "spawn"), fail_times=2)
        key = "a" * 64
        assert plan.spec_for(key, 1) is not None
        assert plan.spec_for(key, 1) is not None  # crash retry: same
        assert plan.spec_for(key, 2) is None      # attempt number
        assert plan.spec_for(key, 3) is None

    def test_plan_counts_per_key(self):
        plan = ChaosPlan(ChaosSpec("kill", "spawn"), fail_times=1)
        assert plan.spec_for("a" * 64, 1) is not None
        assert plan.spec_for("b" * 64, 1) is not None
        assert plan.spec_for("a" * 64, 1) is None

    def test_plan_key_filter(self):
        plan = ChaosPlan(ChaosSpec("kill", "spawn"),
                         keys=frozenset(["a" * 64]))
        assert plan.spec_for("b" * 64, 1) is None
        assert plan.spec_for("a" * 64, 1) is not None


class TestApplyChaos:
    def test_wrong_point_is_a_no_op(self):
        spec = ChaosSpec("enospc", "pre_publish").to_dict()
        assert apply_chaos("pre_build", spec, None, "k") is False

    def test_enospc_raises_oserror(self):
        spec = ChaosSpec("enospc", "pre_publish").to_dict()
        with pytest.raises(OSError) as excinfo:
            apply_chaos("pre_publish", spec, None, "k")
        assert excinfo.value.errno == errno.ENOSPC

    def test_unknown_action_in_raw_dict_is_rejected(self):
        with pytest.raises(ConfigError, match="action"):
            apply_chaos("spawn", {"action": "nope", "point": "spawn"},
                        None, "k")


class TestScenarios:
    def test_unknown_scenario_is_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="unknown chaos"):
            run_scenario("nope", tmp_path)

    def test_registry_covers_the_advertised_faults(self):
        assert {"worker_kill", "worker_hang", "torn_publish",
                "corrupt_artifact", "eviction_race", "enospc",
                "wal_replay", "lease_steal", "drain_hang",
                "disk_pressure", "batch_worker_kill",
                "failover"} <= set(SCENARIOS)

    def test_torn_publish_scenario_passes(self, tmp_path):
        report = run_scenario("torn_publish", tmp_path)
        assert report.passed, report.summary()
        payload = report.to_dict()
        assert payload["name"] == "torn_publish"
        assert all(c["passed"] for c in payload["checks"])

    def test_wal_replay_scenario_passes(self, tmp_path):
        report = run_scenario("wal_replay", tmp_path)
        assert report.passed, report.summary()

    def test_eviction_race_scenario_passes(self, tmp_path):
        report = run_scenario("eviction_race", tmp_path)
        assert report.passed, report.summary()

    def test_lease_steal_scenario_passes(self, tmp_path):
        report = run_scenario("lease_steal", tmp_path)
        assert report.passed, report.summary()

    def test_drain_hang_scenario_passes(self, tmp_path):
        report = run_scenario("drain_hang", tmp_path)
        assert report.passed, report.summary()

    def test_disk_pressure_scenario_passes(self, tmp_path):
        report = run_scenario("disk_pressure", tmp_path)
        assert report.passed, report.summary()

    def test_all_expands_to_every_scenario(self, tmp_path, monkeypatch):
        ran = []
        names = list(SCENARIOS)
        monkeypatch.setattr(
            "repro.service.chaos.run_scenario",
            lambda name, workdir: ran.append(name))
        run_scenarios(["all"], tmp_path)
        assert ran == names
