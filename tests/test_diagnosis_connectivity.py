"""Tests for fault diagnosis and the abutment connectivity extractor."""

import pytest

from repro.bist import IFA_9
from repro.memsim import BisrRam
from repro.memsim.diagnosis import (
    Diagnosis,
    FailRecord,
    collect_fail_records,
    diagnose,
)
from repro.memsim.faults import ColumnStuck, RowStuck, StuckAt


def fresh(rows=8, bpw=4, bpc=4, spares=4):
    return BisrRam(rows=rows, bpw=bpw, bpc=bpc, spares=spares)


def run_diagnosis(device):
    records = collect_fail_records(IFA_9, device, bpw=device.array.bpw)
    a = device.array
    return diagnose(records, a.rows, a.bpw, a.bpc, a.spares)


class TestDiagnosis:
    def test_single_cell(self):
        device = fresh()
        device.array.inject(StuckAt(device.array.cell_index(3, 1, 2), 1))
        d = run_diagnosis(device)
        assert d.cell_faults == ((3, 2),)
        assert d.row_faults == ()
        assert d.column_faults == ()
        assert d.repairable_with_rows
        assert d.spares_needed == 1

    def test_row_defect(self):
        device = fresh()
        device.array.inject(RowStuck(5, device.array.phys_cols, 0))
        d = run_diagnosis(device)
        assert d.row_faults == (5,)
        assert d.cell_faults == ()
        assert d.repairable_with_rows

    def test_column_defect_flagged_unrepairable(self):
        device = fresh()
        device.array.inject(
            ColumnStuck(2, device.array.total_rows,
                        device.array.phys_cols, 1)
        )
        d = run_diagnosis(device)
        # Physical column 2 = word bit 0, column 2.
        assert d.column_faults == ((2, 0),)
        assert not d.repairable_with_rows
        assert d.row_faults == ()  # not misdiagnosed as many bad rows

    def test_mixed_pattern(self):
        device = fresh(rows=12)
        device.array.inject(RowStuck(1, device.array.phys_cols, 1))
        device.array.inject(StuckAt(device.array.cell_index(7, 2, 0), 0))
        d = run_diagnosis(device)
        assert d.row_faults == (1,)
        assert d.cell_faults == ((7, 0),)
        assert d.spares_needed == 2
        assert d.repairable_with_rows

    def test_too_many_rows_not_repairable(self):
        device = fresh(rows=12, spares=4)
        for row in range(5):
            device.array.inject(
                RowStuck(row, device.array.phys_cols, 1)
            )
        d = run_diagnosis(device)
        assert len(d.row_faults) == 5
        assert not d.repairable_with_rows

    def test_clean_device(self):
        d = run_diagnosis(fresh())
        assert d == Diagnosis((), (), (), True, 0)

    def test_fail_record_bits(self):
        r = FailRecord(address=0, observed=0b1010, expected=0b0010)
        assert r.failing_bits() == 0b1000

    def test_validation(self):
        with pytest.raises(ValueError):
            diagnose([], rows=0, bpw=4, bpc=4, spares=4)


class TestConnectivity:
    @pytest.fixture(scope="class")
    def plan(self):
        from repro import RamConfig
        from repro.core.floorplan import build_floorplan

        return build_floorplan(
            RamConfig(words=64, bpw=8, bpc=4, spares=4, strap_every=8)
        )

    def test_bitline_nets_span_datapath(self, plan):
        from repro.pnr.connectivity import net_spans_instances

        assert net_spans_instances(
            plan.top, ["array", "precharge_row", "mux_row"], "bl"
        )

    def test_net_count_matches_columns(self, plan):
        from repro.pnr.connectivity import extract_nets

        nets = extract_nets(plan.top)
        bl_nets = [
            n for n in nets
            if any(p.startswith("bl") for _, p in n)
        ]
        # One net per bl and per blb column.
        assert len(bl_nets) == 2 * 32

    def test_statistics(self, plan):
        from repro.pnr.connectivity import net_statistics

        stats = net_statistics(plan.top)
        assert stats["nets"] == 64
        assert stats["abutments"] >= 128
        assert stats["endpoints"] > stats["nets"]

    def test_gap_produces_dangling_ports(self):
        from repro.geometry import Point, Rect, Transform
        from repro.layout import Cell, Port
        from repro.pnr.connectivity import dangling_ports

        a = Cell("a")
        a.add_shape("metal1", Rect(0, 0, 10, 10))
        a.add_port(Port("p", "metal2", Rect(10, 4, 10, 6)))
        b = Cell("b")
        b.add_shape("metal1", Rect(0, 0, 10, 10))
        b.add_port(Port("q", "metal2", Rect(0, 4, 0, 6)))
        top = Cell("top")
        top.add_instance(a, Transform(), name="A")
        top.add_instance(b, Transform(translation=Point(11, 0)),
                         name="B")  # 1 unit gap: no abutment
        assert dangling_ports(top) == [("A", "p"), ("B", "q")]

    def test_ignore_prefixes(self):
        from repro.geometry import Rect, Transform
        from repro.layout import Cell, Port
        from repro.pnr.connectivity import dangling_ports

        a = Cell("a")
        a.add_shape("metal1", Rect(0, 0, 10, 10))
        a.add_port(Port("ext_pin", "metal2", Rect(0, 4, 0, 6)))
        top = Cell("top")
        top.add_instance(a, Transform(), name="A")
        assert dangling_ports(top, ignore=("ext_",)) == []
