"""Unit tests for the fault models — each fault's defining behaviour."""

import pytest

from repro.memsim import MemoryArray
from repro.memsim.faults import (
    ColumnStuck,
    DataRetention,
    IdempotentCoupling,
    InversionCoupling,
    RowStuck,
    StateCoupling,
    StuckAt,
    StuckOpen,
    TransitionFault,
)


def array():
    return MemoryArray(rows=4, bpw=4, bpc=2, spares=1)


def write_cell(a, cell, value):
    """Write one cell through the word interface."""
    row = cell // a.phys_cols
    rest = cell % a.phys_cols
    bit, col = rest // a.bpc, rest % a.bpc
    addr = row * a.bpc + col
    word = a.read_word(addr)
    word = (word | (1 << bit)) if value else (word & ~(1 << bit))
    a.write_word(addr, word)


def read_cell(a, cell):
    row = cell // a.phys_cols
    rest = cell % a.phys_cols
    bit, col = rest // a.bpc, rest % a.bpc
    addr = row * a.bpc + col
    return (a.read_word(addr) >> bit) & 1


class TestStuckAt:
    def test_reads_fixed(self):
        a = array()
        cell = a.cell_index(1, 1, 0)
        a.inject(StuckAt(cell, 1))
        write_cell(a, cell, 0)
        assert read_cell(a, cell) == 1

    def test_sa0(self):
        a = array()
        cell = a.cell_index(1, 1, 0)
        a.inject(StuckAt(cell, 0))
        write_cell(a, cell, 1)
        assert read_cell(a, cell) == 0


class TestStuckOpen:
    def test_read_returns_previous_column_value(self):
        a = array()
        victim = a.cell_index(1, 0, 0)
        neighbour_same_column = a.cell_index(2, 0, 0)
        a.inject(StuckOpen(victim))
        write_cell(a, victim, 1)           # never lands
        write_cell(a, neighbour_same_column, 0)
        read_cell(a, neighbour_same_column)  # bit line now carries 0
        assert read_cell(a, victim) == 0
        write_cell(a, neighbour_same_column, 1)
        read_cell(a, neighbour_same_column)
        assert read_cell(a, victim) == 1

    def test_invisible_to_single_polarity(self):
        """Why tests need both data polarities: a stuck-open cell reads
        like its neighbours when everything holds the same value."""
        a = array()
        victim = a.cell_index(1, 0, 0)
        a.inject(StuckOpen(victim))
        for addr in range(a.words):
            a.write_word(addr, 0)
        mismatches = sum(
            a.read_word(addr) != 0 for addr in range(a.words)
        )
        assert mismatches == 0


class TestTransition:
    def test_rising_blocked(self):
        a = array()
        cell = a.cell_index(0, 2, 1)
        a.inject(TransitionFault(cell, rising=True))
        write_cell(a, cell, 0)
        write_cell(a, cell, 1)
        assert read_cell(a, cell) == 0

    def test_falling_blocked(self):
        a = array()
        cell = a.cell_index(0, 2, 1)
        a.inject(TransitionFault(cell, rising=False))
        write_cell(a, cell, 0)  # 0 -> 0 fine
        assert read_cell(a, cell) == 0
        # Force a 1 in, then the falling transition must fail.
        a.force(cell, 1)
        write_cell(a, cell, 0)
        assert read_cell(a, cell) == 1


class TestCouplings:
    def test_state_coupling_forces_victim(self):
        a = array()
        agg = a.cell_index(1, 0, 0)
        vic = a.cell_index(1, 0, 1)
        a.inject(StateCoupling(agg, vic, w=1, v=0))
        write_cell(a, vic, 1)
        write_cell(a, agg, 1)   # aggressor enters state w=1
        assert read_cell(a, vic) == 0

    def test_state_coupling_inactive_otherwise(self):
        a = array()
        agg = a.cell_index(1, 0, 0)
        vic = a.cell_index(1, 0, 1)
        a.inject(StateCoupling(agg, vic, w=1, v=0))
        write_cell(a, agg, 0)
        write_cell(a, vic, 1)
        assert read_cell(a, vic) == 1

    def test_idempotent_coupling_on_edge_only(self):
        a = array()
        agg = a.cell_index(2, 1, 0)
        vic = a.cell_index(2, 1, 1)
        a.inject(IdempotentCoupling(agg, vic, rising=True, v=1))
        write_cell(a, agg, 0)
        write_cell(a, vic, 0)
        write_cell(a, agg, 1)   # rising edge fires
        assert read_cell(a, vic) == 1
        write_cell(a, vic, 0)
        write_cell(a, agg, 1)   # no edge: 1 -> 1
        assert read_cell(a, vic) == 0

    def test_inversion_coupling_toggles(self):
        a = array()
        agg = a.cell_index(2, 0, 0)
        vic = a.cell_index(2, 0, 1)
        a.inject(InversionCoupling(agg, vic, rising=True))
        write_cell(a, agg, 0)
        write_cell(a, vic, 1)
        write_cell(a, agg, 1)
        assert read_cell(a, vic) == 0
        write_cell(a, agg, 0)
        write_cell(a, agg, 1)
        assert read_cell(a, vic) == 1


class TestRetention:
    def test_leaks_only_after_wait(self):
        a = array()
        cell = a.cell_index(3, 3, 1)
        a.inject(DataRetention(cell, leak_value=0))
        write_cell(a, cell, 1)
        assert read_cell(a, cell) == 1
        a.apply_retention()
        assert read_cell(a, cell) == 0

    def test_leak_to_one(self):
        a = array()
        cell = a.cell_index(3, 3, 1)
        a.inject(DataRetention(cell, leak_value=1))
        write_cell(a, cell, 0)
        a.apply_retention()
        assert read_cell(a, cell) == 1


class TestLineDefects:
    def test_row_stuck_covers_row(self):
        a = array()
        a.inject(RowStuck(2, a.phys_cols, 1))
        for col in range(a.bpc):
            assert a.read_word(2 * a.bpc + col) == 0xF
        assert a.read_word(0) == 0

    def test_column_stuck_hits_every_row(self):
        a = array()
        a.inject(ColumnStuck(0, a.total_rows, a.phys_cols, 1))
        for row in range(a.rows):
            # Physical column 0 = word bit 0, column 0.
            assert a.read_word(row * a.bpc) & 1 == 1

    def test_column_stuck_swamps_row_repair(self):
        """Every row shows the fault — exactly why row redundancy
        cannot fix a column failure."""
        a = array()
        a.inject(ColumnStuck(0, a.total_rows, a.phys_cols, 1))
        for addr in range(a.words):
            a.write_word(addr, 0)
        faulty_rows = {
            addr // a.bpc
            for addr in range(a.words)
            if a.read_word(addr) != 0
        }
        assert faulty_rows == set(range(a.rows))

    def test_describe_strings(self):
        a = array()
        assert "SA1" in StuckAt(0, 1).describe()
        assert "RowStuck" in RowStuck(1, a.phys_cols, 0).describe()
        assert "ColStuck" in ColumnStuck(
            0, a.total_rows, a.phys_cols, 0
        ).describe()
