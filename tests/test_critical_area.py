"""Tests for the critical-area model and the near-zero fatal-area claim."""

import pytest

from repro.cells import sram6t_cell
from repro.geometry import Rect
from repro.layout import Cell
from repro.tech import get_process
from repro.yieldmodel.critical_area import (
    critical_area_curve,
    global_net_critical_area,
    layer_critical_area,
    open_critical_area,
    short_critical_area,
)

PROCESS = get_process("cda07")
LAM = PROCESS.lambda_cu


class TestOpenArea:
    def test_small_defect_cannot_break_wide_wire(self):
        wire = [Rect(0, 0, 1000, 100)]
        assert open_critical_area(wire, radius_cu=40) == 0.0

    def test_band_formula(self):
        wire = [Rect(0, 0, 1000, 100)]
        # 2r - w = 200 - 100 = 100 band height over 1000 length.
        assert open_critical_area(wire, radius_cu=100) == 100_000

    def test_grows_with_radius(self):
        wire = [Rect(0, 0, 1000, 100)]
        areas = [open_critical_area(wire, r) for r in (50, 100, 200)]
        assert areas == sorted(areas)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            open_critical_area([], -1)


class TestShortArea:
    def test_far_apart_no_short(self):
        pair = [Rect(0, 0, 1000, 100), Rect(0, 500, 1000, 600)]
        assert short_critical_area(pair, radius_cu=100) == 0.0

    def test_facing_run_formula(self):
        pair = [Rect(0, 0, 1000, 100), Rect(0, 200, 1000, 300)]
        # gap 100, run 1000: band = 2*100 - 100 = 100.
        assert short_critical_area(pair, radius_cu=100) == 100_000

    def test_touching_shapes_are_one_net(self):
        pair = [Rect(0, 0, 1000, 100), Rect(0, 100, 1000, 200)]
        assert short_critical_area(pair, radius_cu=500) == 0.0

    def test_diagonal_neighbours_ignored(self):
        pair = [Rect(0, 0, 100, 100), Rect(200, 200, 300, 300)]
        assert short_critical_area(pair, radius_cu=150) == 0.0


class TestCellAnalysis:
    @pytest.fixture(scope="class")
    def bit(self):
        return sram6t_cell(PROCESS)

    def test_near_zero_fatal_area_at_small_radii(self, bit):
        """The paper's claim: the chosen 6T template has near-zero
        critical area for fatal (global-net) faults at realistic defect
        radii.  Supply rails are 4-lambda, the word line 5-lambda; for
        defects under ~1.5 lambda radius nothing global can break, and
        there is only one metal3 net per cell so no fatal metal3 short
        exists at any radius."""
        small = global_net_critical_area(bit, radius_cu=LAM)
        assert small["metal1"].open_area == 0.0
        assert small["metal3"].open_area == 0.0
        assert small["metal3"].short_area == 0.0

    def test_large_defects_do_threaten_rails(self, bit):
        big = global_net_critical_area(bit, radius_cu=4 * LAM)
        assert big["metal1"].open_area > 0.0

    def test_curve_monotone(self, bit):
        curve = critical_area_curve(
            bit, "metal1", [0, LAM, 2 * LAM, 4 * LAM, 8 * LAM]
        )
        areas = [a for _, a in curve]
        assert areas == sorted(areas)
        assert areas[0] == 0.0

    def test_fatal_fraction_small_at_realistic_radius(self, bit):
        """At a 1.5-lambda defect radius (large for a spot defect), the
        fatal critical area stays a small fraction of the cell."""
        reports = global_net_critical_area(
            bit, radius_cu=int(1.5 * LAM)
        )
        fatal = sum(r.total for r in reports.values())
        assert fatal / bit.area() < 0.05

    def test_layer_report_fields(self, bit):
        report = layer_critical_area(bit, "metal2", 2 * LAM)
        assert report.layer == "metal2"
        assert report.total == report.open_area + report.short_area
