"""CLI surface of the 2-D repair flow: repair-plan, spare-mix,
campaign --driver montecarlo2d, and compile --spare-cols."""

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


CFG_2D = ["--words", "256", "--bpw", "8", "--bpc", "4",
          "--spares", "4", "--spare-cols", "2"]


class TestRepairPlan:
    def test_repairable_device_exits_zero(self, capsys):
        code, out = run(capsys, "repair-plan", *CFG_2D,
                        "--defects", "4", "--seed", "1",
                        "--column-weight", "0.2")
        assert code == 0
        assert "static plan" in out
        assert "dynamic repair" in out
        assert "REPAIRED" in out

    def test_overwhelming_damage_exits_one(self, capsys):
        code, out = run(capsys, "repair-plan",
                        "--words", "64", "--bpw", "4", "--bpc", "2",
                        "--spares", "4", "--spare-cols", "1",
                        "--defects", "40", "--seed", "1",
                        "--column-weight", "0.1")
        assert code == 1
        assert "DEGRADED" in out
        assert "must-repair" in out

    def test_clean_device_needs_no_spares(self, capsys):
        code, out = run(capsys, "repair-plan", *CFG_2D,
                        "--defects", "0", "--seed", "1")
        assert code == 0
        assert "REPAIRED" in out
        assert "0 spare row(s) + 0 spare column(s)" in out


class TestSpareMix:
    def test_sweep_prints_table_and_best(self, capsys):
        code, out = run(capsys, "spare-mix",
                        "--rows", "64", "--bpw", "4", "--bpc", "4",
                        "--mixes", "2x0,1x1", "--defects", "1,3",
                        "--trials", "200", "--seed", "5",
                        "--col-defect-frac", "0.1")
        assert code == 0
        assert "cost/bit" in out
        assert out.count("best @") == 2

    def test_bad_mix_spec_is_a_config_error(self, capsys):
        code = main(["spare-mix", "--mixes", "2+2"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestCampaignMonteCarlo2D:
    def test_smoke_run_prints_aggregates(self, capsys):
        code, out = run(capsys, "campaign", "--driver", "montecarlo2d",
                        *CFG_2D, "--defects", "2",
                        "--trials", "400", "--shards", "4",
                        "--workers", "2", "--seed", "3",
                        "--col-defect-frac", "0.1")
        assert code == 0
        assert "4/4 shard(s) completed" in out
        assert "aggregates:" in out

    def test_bad_fractions_rejected(self, capsys):
        code = main(["campaign", "--driver", "montecarlo2d", *CFG_2D,
                     "--defects", "2", "--row-defect-frac", "0.9",
                     "--col-defect-frac", "0.9"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestCompileSpareCols:
    def test_compile_accepts_spare_cols(self, capsys):
        code, out = run(capsys, "compile", *CFG_2D)
        assert code == 0
        assert "read access time" in out

    def test_too_many_spare_cols_rejected(self, capsys):
        code = main(["compile", "--words", "256", "--bpw", "8",
                     "--bpc", "4", "--spare-cols", "99"])
        assert code == 2
        assert "error" in capsys.readouterr().err
