"""Fault-coverage tests: the paper's detection claims, measured."""

import pytest

from repro.bist import IFA_9, MARCH_C_MINUS, MATS_PLUS
from repro.memsim import coverage_campaign

# Small arrays and modest sample counts keep the campaign fast while
# the statistics stay decisive (coverage gaps below are large).
KW = dict(samples_per_kind=12, rows=8, bpw=4, bpc=2, seed=3)


@pytest.fixture(scope="module")
def ifa9_report():
    return coverage_campaign(
        IFA_9,
        kinds=("stuck_at", "transition", "state_coupling",
               "data_retention", "stuck_open", "row_defect"),
        **KW,
    )


class TestIfa9Coverage:
    def test_stuck_at_full(self, ifa9_report):
        assert ifa9_report.coverage("stuck_at") == 1.0

    def test_transition_full(self, ifa9_report):
        assert ifa9_report.coverage("transition") == 1.0

    def test_state_coupling_high(self, ifa9_report):
        assert ifa9_report.coverage("state_coupling") >= 0.9

    def test_data_retention_full(self, ifa9_report):
        """The two Delay elements exist exactly for this class."""
        assert ifa9_report.coverage("data_retention") == 1.0

    def test_stuck_open_detected(self, ifa9_report):
        assert ifa9_report.coverage("stuck_open") >= 0.9

    def test_row_defects_full(self, ifa9_report):
        assert ifa9_report.coverage("row_defect") == 1.0

    def test_overall_high(self, ifa9_report):
        assert ifa9_report.coverage() >= 0.95


class TestBaselineComparison:
    def test_mats_misses_retention(self):
        """MATS+ has no delay elements: retention faults escape."""
        report = coverage_campaign(
            MATS_PLUS, kinds=("data_retention",), **KW
        )
        assert report.coverage("data_retention") == 0.0

    def test_mats_catches_stuck_at(self):
        report = coverage_campaign(MATS_PLUS, kinds=("stuck_at",), **KW)
        assert report.coverage("stuck_at") == 1.0

    def test_march_c_minus_catches_couplings_but_not_retention(self):
        report = coverage_campaign(
            MARCH_C_MINUS,
            kinds=("state_coupling", "data_retention"),
            **KW,
        )
        assert report.coverage("state_coupling") >= 0.9
        assert report.coverage("data_retention") == 0.0

    def test_ifa9_dominates_mats_overall(self):
        kinds = ("stuck_at", "transition", "state_coupling",
                 "data_retention")
        ifa = coverage_campaign(IFA_9, kinds=kinds, **KW)
        mats = coverage_campaign(MATS_PLUS, kinds=kinds, **KW)
        assert ifa.coverage() > mats.coverage()


class TestReportApi:
    def test_summary_rows(self):
        report = coverage_campaign(MATS_PLUS, kinds=("stuck_at",), **KW)
        rows = report.summary_rows()
        assert rows[0][0] == "stuck_at"
        assert rows[0][1] == rows[0][2]  # detected == total

    def test_unknown_kind_raises(self):
        report = coverage_campaign(MATS_PLUS, kinds=("stuck_at",), **KW)
        with pytest.raises(ValueError):
            report.coverage("nonexistent")

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError):
            coverage_campaign(MATS_PLUS, kinds=("stuck_at",),
                              samples_per_kind=0)
