"""Technology-backend registry: discovery, validation, fingerprints.

These pin the registry-era identity contract: a deck is *data*, its
content fingerprint folds into every cache key, and a byte-identical
copy of a deck is the same deck no matter where the registry found it.
"""

import hashlib
import shutil
from pathlib import Path

import pytest

from repro import RamConfig
from repro.core.errors import ConfigError, DescriptorError, ReproError
from repro.core.errors import UnknownProcessError
from repro.tech import get_process
from repro.techreg import (
    TechRegistry,
    check_descriptor,
    default_registry,
    load_descriptor,
    validate_descriptor,
)

PACKAGED = Path(__file__).resolve().parents[1] / "src" / "repro" / \
    "techreg" / "decks"


@pytest.fixture
def fresh_registry(monkeypatch):
    """A fresh default registry per test; entry points off for hermeticity."""
    import repro.techreg.registry as regmod

    registry = TechRegistry(use_entry_points=False)
    monkeypatch.setattr(regmod, "_DEFAULT", registry)
    return registry


def _config(**overrides):
    params = dict(words=64, bpw=8, bpc=4, spares=4, strap_every=8)
    params.update(overrides)
    return RamConfig(**params)


class TestValidator:
    def _bad_deck(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text(
            '[tech]\nname = "2bad"\ndeck_type = "lambda"\n'
            'feature_um = -0.5\nmetal_layers = 2\nvdd = 3.3\n'
            '[rules]\n"width.metal9" = 3\n'
            '"touch.corner_connects" = 7\n'
        )
        return path

    def test_per_field_errors(self, tmp_path):
        desc = load_descriptor(self._bad_deck(tmp_path))
        problems = validate_descriptor(desc)
        fields = {p.field for p in problems}
        assert "tech.name" in fields
        assert "tech.feature_um" in fields
        assert "tech.metal_layers" in fields
        assert "rules.width.metal9" in fields
        assert "rules.touch.corner_connects" in fields
        assert "nmos" in fields and "pmos" in fields

    def test_check_descriptor_raises_with_fields(self, tmp_path):
        desc = load_descriptor(self._bad_deck(tmp_path))
        with pytest.raises(DescriptorError) as exc:
            check_descriptor(desc)
        assert exc.value.field_errors
        assert isinstance(exc.value, ReproError)

    def test_absolute_deck_missing_rule_named(self, tmp_path):
        text = (PACKAGED / "pfin7.toml").read_text()
        assert '"width.poly"' in text
        lines = [l for l in text.splitlines()
                 if not l.startswith('"width.poly"')]
        path = tmp_path / "gap.toml"
        path.write_text("\n".join(lines) + "\n")
        problems = validate_descriptor(load_descriptor(path))
        assert any("width.poly" in p.message for p in problems)

    def test_packaged_decks_validate_clean(self):
        for deck in sorted(PACKAGED.glob("*.toml")):
            assert validate_descriptor(load_descriptor(deck)) == []

    def test_malformed_file_raises_descriptor_error(self, tmp_path):
        path = tmp_path / "junk.toml"
        path.write_text("this is [not toml")
        with pytest.raises(DescriptorError):
            load_descriptor(path)


class TestRegistry:
    def test_builtins_and_packaged_discovered(self, fresh_registry):
        names = fresh_registry.names()
        for name in ("cda05", "cda07", "mos06", "mos08",
                     "scn4m", "pfin7"):
            assert name in names

    def test_unknown_process_taxonomy(self, fresh_registry):
        with pytest.raises(UnknownProcessError) as exc:
            get_process("nope")
        assert isinstance(exc.value, ConfigError)
        assert isinstance(exc.value, KeyError)  # era compatibility
        assert "nope" in str(exc.value)
        assert "cda07" in str(exc.value)

    def test_search_dir_shadows_packaged(self, fresh_registry, tmp_path):
        shutil.copy(PACKAGED / "scn4m.toml", tmp_path / "scn4m.toml")
        fresh_registry.add_search_dir(tmp_path)
        row = {r["name"]: r for r in fresh_registry.entries()}["scn4m"]
        assert row["origin"] == "dir"
        assert str(tmp_path) in row["path"]

    def test_env_var_directory(self, fresh_registry, tmp_path,
                               monkeypatch):
        deck = (PACKAGED / "scn4m.toml").read_text().replace(
            'name = "scn4m"', 'name = "envdeck"')
        (tmp_path / "envdeck.toml").write_text(deck)
        monkeypatch.setenv("REPRO_TECH_DIR", str(tmp_path))
        fresh_registry.rescan()
        assert get_process("envdeck").name == "envdeck"

    def test_scan_errors_are_not_fatal(self, fresh_registry, tmp_path):
        (tmp_path / "broken.toml").write_text("nope = [")
        fresh_registry.add_search_dir(tmp_path)
        assert "scn4m" in fresh_registry.names()
        assert fresh_registry.scan_errors


class TestFingerprintIdentity:
    """The digest-stability corpus: what must and must not move keys."""

    GOLDEN_FINGERPRINTS = {
        "cda05": "181116bb20d4db39",
        "cda07": "b0ecee842b7dd852",
        "mos06": "4119a90e8af0cc75",
        "mos08": "c46e8ccd36529c68",
        "scn4m": "90c60e8261daff76",
        "pfin7": "b6f5c2c0e8d6ccf8",
    }

    def test_golden_deck_fingerprints(self, fresh_registry):
        for name, expected in self.GOLDEN_FINGERPRINTS.items():
            assert get_process(name).fingerprint() == expected, name

    def test_byte_identical_copy_is_digest_equal(self, fresh_registry,
                                                 tmp_path):
        baseline = _config(process="scn4m").digest()
        fp = get_process("scn4m").fingerprint()
        shutil.copy(PACKAGED / "scn4m.toml", tmp_path / "scn4m.toml")
        fresh_registry.add_search_dir(tmp_path)
        assert get_process("scn4m").fingerprint() == fp
        assert _config(process="scn4m").digest() == baseline

    def test_rule_edit_changes_digest_and_bundle_key(
            self, fresh_registry, tmp_path):
        from repro.service.bundle import bundle_key

        config = _config(process="scn4m")
        baseline_digest = config.digest()
        baseline_key = bundle_key(config)
        text = (PACKAGED / "scn4m.toml").read_text()
        assert '"width.metal4" = 6' in text
        (tmp_path / "scn4m.toml").write_text(
            text.replace('"width.metal4" = 6', '"width.metal4" = 8'))
        fresh_registry.add_search_dir(tmp_path)
        assert get_process("scn4m").fingerprint() != \
            self.GOLDEN_FINGERPRINTS["scn4m"]
        assert config.digest() != baseline_digest
        assert bundle_key(config) != baseline_key

    def test_provenance_edit_keeps_digest(self, fresh_registry,
                                          tmp_path):
        """Comments/metadata are not identity: only rules and device
        parameters fingerprint."""
        text = (PACKAGED / "scn4m.toml").read_text()
        (tmp_path / "scn4m.toml").write_text(
            text + "\n# trailing comment, not a rule\n")
        fresh_registry.add_search_dir(tmp_path)
        assert get_process("scn4m").fingerprint() == \
            self.GOLDEN_FINGERPRINTS["scn4m"]

    def test_ports_are_digest_relevant(self, fresh_registry):
        assert _config(ports=1).digest() != _config(ports=2).digest()


class TestTechmatrixDriver:
    def test_spec_embeds_deck_fingerprints(self, fresh_registry):
        from repro.runtime.drivers import techmatrix_campaign

        spec = techmatrix_campaign(
            64, 8, 4, 4, processes=["cda07", "pfin7"], ports=(1, 2))
        assert spec.n_shards == 4
        fps = spec.params["deck_fingerprints"]
        assert fps["cda07"] == \
            TestFingerprintIdentity.GOLDEN_FINGERPRINTS["cda07"]
        assert fps["pfin7"] == \
            TestFingerprintIdentity.GOLDEN_FINGERPRINTS["pfin7"]

    def test_spec_rejects_bad_grids(self, fresh_registry):
        from repro.runtime.drivers import techmatrix_campaign

        with pytest.raises(ConfigError):
            techmatrix_campaign(64, 8, 4, 4, processes=[])
        with pytest.raises(ConfigError):
            techmatrix_campaign(64, 8, 4, 4, ports=(1, 3))

    def test_shard_grid_and_determinism(self, fresh_registry):
        from repro.runtime.drivers import (
            techmatrix_campaign,
            techmatrix_reduce,
            techmatrix_shard,
        )
        import numpy as np

        from repro.runtime.runner import ShardSpec

        def _shard(index, n_shards):
            return ShardSpec(index=index, n_shards=n_shards,
                             seed_seq=np.random.SeedSequence(0))

        spec = techmatrix_campaign(
            16, 4, 4, 4, processes=["cda07"], ports=(1, 2),
            strap_every=0)
        results = [
            techmatrix_shard(spec.params, _shard(i, spec.n_shards))
            for i in range(spec.n_shards)
        ]
        assert [(r["process"], r["ports"]) for r in results] == \
            [("cda07", 1), ("cda07", 2)]
        assert all(r["clean"] for r in results)
        rerun = techmatrix_shard(spec.params, _shard(1, 2))
        assert rerun["cif_sha256"] == results[1]["cif_sha256"]
        merged = techmatrix_reduce(results)
        assert merged["points"] == 2 and merged["clean_points"] == 2
        assert merged["cif_sha256"]["cda07/p2"] == \
            results[1]["cif_sha256"]


class TestCliSurface:
    def test_tech_list_and_validate(self, fresh_registry, capsys,
                                    tmp_path):
        from repro.cli import main

        assert main(["tech", "list"]) == 0
        out = capsys.readouterr().out
        assert "scn4m" in out and "pfin7" in out and "builtin" in out
        bad = tmp_path / "bad.toml"
        bad.write_text('[tech]\nname = "x"\ndeck_type = "lambda"\n'
                       'feature_um = 0.5\nmetal_layers = 3\nvdd = 5.0\n')
        assert main(["tech", "validate", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "nmos" in err and "wire.r_ohm_sq" in err

    def test_tech_show_and_tech_dir(self, fresh_registry, capsys,
                                    tmp_path):
        from repro.cli import main

        deck = (PACKAGED / "scn4m.toml").read_text().replace(
            'name = "scn4m"', 'name = "clideck"')
        (tmp_path / "clideck.toml").write_text(deck)
        assert main(["tech", "--tech-dir", str(tmp_path),
                     "show", "clideck"]) == 0
        out = capsys.readouterr().out
        assert "clideck" in out and "width.metal4" in out

    def test_unknown_process_exits_2_with_hint(self, fresh_registry,
                                               capsys):
        from repro.cli import main

        code = main(["compile", "--words", "64", "--bpw", "8",
                     "--bpc", "4", "--process", "missing"])
        assert code == 2
        err = capsys.readouterr().err
        assert "missing" in err and "available" in err
