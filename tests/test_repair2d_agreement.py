"""Static allocator vs dynamic 2-D repair: one truth, two routes.

The ISSUE-9 agreement contract: the static allocator's verdict
(repairable, and how many spares the strictly increasing sequences
consume) must match what the dynamic BIST + repair replay actually does
on the same device — including devices whose *spares* are faulty, where
both sides must walk the dead entries the same way.
"""

import random

import pytest

from repro.bisr import allocate
from repro.bist import IFA_9, TwoDRepairController
from repro.memsim import BisrRam, ColumnStuck, RowStuck, StuckAt

ROWS, BPW, BPC = 16, 4, 2
PHYS_COLS = BPW * BPC
SPARES_R, SPARES_C = 2, 2


def make_device():
    return BisrRam(rows=ROWS, bpw=BPW, bpc=BPC,
                   spares=SPARES_R, spare_cols=SPARES_C)


def cell_of(row, phys_col):
    """Flat cell index of regular-array coordinate (row, phys col)."""
    bit, column = divmod(phys_col, BPC)
    return row * (PHYS_COLS + SPARES_C) + bit * BPC + column


def run_both(device, faults, faulty_spare_rows=(), faulty_spare_cols=()):
    plan = allocate(sorted(faults), ROWS, PHYS_COLS, SPARES_R, SPARES_C,
                    faulty_spare_rows=faulty_spare_rows,
                    faulty_spare_cols=faulty_spare_cols)
    result = TwoDRepairController(IFA_9, bpw=BPW).run(device)
    return plan, result


class TestAgreementScenarios:
    def test_clean_device(self):
        plan, result = run_both(make_device(), [])
        assert plan.repairable and result.repaired
        assert result.spare_rows_used == 0 == plan.spare_rows_used
        assert result.spare_cols_used == 0 == plan.spare_cols_used

    def test_single_cell_fault(self):
        device = make_device()
        device.array.inject(StuckAt(cell_of(5, 3), 1))
        plan, result = run_both(device, [(5, 3)])
        assert plan.repairable and result.repaired
        assert result.spare_rows_used == plan.spare_rows_used
        assert result.spare_cols_used == plan.spare_cols_used
        assert set(result.rows_mapped) == set(plan.rows)
        assert tuple(result.cols_steered) == plan.cols

    def test_column_defect_takes_a_column_spare(self):
        device = make_device()
        array = device.array
        array.inject(ColumnStuck(3, array.total_rows, array.row_stride, 1))
        faults = [(r, 3) for r in range(ROWS)]
        plan, result = run_both(device, faults)
        assert plan.repairable and result.repaired
        assert plan.cols == (3,) and tuple(result.cols_steered) == (3,)
        assert result.spare_cols_used == 1 == plan.spare_cols_used
        assert result.spare_rows_used == 0 == plan.spare_rows_used

    def test_row_defect_takes_a_row_spare(self):
        device = make_device()
        array = device.array
        array.inject(RowStuck(6, array.row_stride, 1))
        faults = [(6, c) for c in range(PHYS_COLS)]
        plan, result = run_both(device, faults)
        assert plan.repairable and result.repaired
        assert plan.rows == (6,) and set(result.rows_mapped) == {6}
        assert result.spare_rows_used == 1 == plan.spare_rows_used

    def test_mixed_row_and_column_damage(self):
        device = make_device()
        array = device.array
        array.inject(RowStuck(2, array.row_stride, 1))
        array.inject(ColumnStuck(5, array.total_rows, array.row_stride, 0))
        device.array.inject(StuckAt(cell_of(9, 0), 1))
        faults = ([(2, c) for c in range(PHYS_COLS)]
                  + [(r, 5) for r in range(ROWS)] + [(9, 0)])
        plan, result = run_both(device, faults)
        assert plan.repairable and result.repaired
        assert result.spare_rows_used == plan.spare_rows_used
        assert result.spare_cols_used == plan.spare_cols_used

    def test_faulty_spare_row_is_walked_by_both(self):
        device = make_device()
        array = device.array
        # Spare row 0 (physical row ROWS) is dead at one bit.
        array.inject(StuckAt(array.cell_index(ROWS, 1, 0), 1))
        array.inject(RowStuck(3, array.row_stride, 1))
        faults = [(3, c) for c in range(PHYS_COLS)]
        plan, result = run_both(device, faults, faulty_spare_rows={0})
        assert plan.repairable and result.repaired
        # Landing row 3 on a good spare burns entries 0 and 1.
        assert plan.spare_rows_used == 2
        assert result.spare_rows_used == 2

    def test_faulty_spare_column_is_walked_by_both(self):
        device = make_device()
        array = device.array
        array.inject(StuckAt(array.spare_cell_index(5, 0), 1))
        array.inject(ColumnStuck(3, array.total_rows, array.row_stride, 1))
        faults = [(r, 3) for r in range(ROWS)]
        plan, result = run_both(device, faults, faulty_spare_cols={0})
        assert plan.repairable and result.repaired
        assert plan.spare_cols_used == 2
        assert result.spare_cols_used == 2

    def test_unrepairable_damage_agrees_on_the_verdict(self):
        device = make_device()
        array = device.array
        for row in (1, 5, 9):
            array.inject(RowStuck(row, array.row_stride, 1))
        faults = [(r, c) for r in (1, 5, 9) for c in range(PHYS_COLS)]
        plan, result = run_both(device, faults)
        assert not plan.repairable
        assert result.degraded and not result.repaired
        assert "infeasible" in result.reason
        # The degrade-around map localises the surviving damage.
        assert set(result.outcome.unrepaired_rows) <= {1, 5, 9}
        assert result.outcome.unrepaired_rows  # at least one row left


class TestAgreementCorpus:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_cell_faults_agree(self, seed):
        rng = random.Random(seed)
        n_faults = rng.randrange(1, SPARES_R + SPARES_C + 1)
        faults = set()
        while len(faults) < n_faults:
            faults.add((rng.randrange(ROWS), rng.randrange(PHYS_COLS)))
        device = make_device()
        for row, col in faults:
            device.array.inject(StuckAt(cell_of(row, col),
                                        rng.randrange(2)))
        plan, result = run_both(device, faults)
        # n <= sr + sc distinct cells are always coverable.
        assert plan.repairable, plan.summary()
        assert result.repaired, result.summary()
        assert set(result.rows_mapped) == set(plan.rows)
        assert tuple(result.cols_steered) == plan.cols
        assert result.spare_rows_used == plan.spare_rows_used
        assert result.spare_cols_used == plan.spare_cols_used


class TestControllerBounds:
    def test_cycle_budget_degrades_not_hangs(self):
        device = make_device()
        device.array.inject(StuckAt(cell_of(4, 4), 1))
        controller = TwoDRepairController(IFA_9, bpw=BPW, max_cycles=1)
        result = controller.run(device)
        assert result.degraded
        assert "cycle budget" in result.reason

    def test_node_budget_zero_still_repairs_simple_damage(self):
        device = make_device()
        device.array.inject(StuckAt(cell_of(4, 4), 1))
        controller = TwoDRepairController(IFA_9, bpw=BPW, node_budget=0)
        result = controller.run(device)
        assert result.repaired
        assert result.plan is not None and not result.plan.exact

    def test_run_never_raises_on_saturated_damage(self):
        device = make_device()
        array = device.array
        for row in range(0, ROWS, 2):
            array.inject(RowStuck(row, array.row_stride, 1))
        result = TwoDRepairController(IFA_9, bpw=BPW).run(device)
        assert result.degraded
        assert result.outcome.unrepaired_rows
