"""Signoff subsystem: reports, hierarchical DRC, stage gates, CLI codes."""

import io
import json

import pytest

from repro.core.compiler import BISRAMGen, compile_ram
from repro.core.config import RamConfig
from repro.core.errors import ConfigError, SignoffError
from repro.geometry import Rect
from repro.layout.cell import Cell
from repro.layout.cif import read_cif, write_cif
from repro.layout.drc import DrcViolation
from repro.tech import get_process
from repro.verify import (
    EXIT_CODES,
    CheckResult,
    DrcCache,
    SignoffFinding,
    SignoffReport,
    cell_hash,
    drc_report,
    hierarchical_drc,
    run_signoff,
)

PROCESS = get_process("cda07")
LAM = PROCESS.lambda_cu
CONFIG = RamConfig(words=64, bpw=8, bpc=4, spares=4, process="cda07")


@pytest.fixture(scope="module")
def compiled():
    return compile_ram(CONFIG)


@pytest.fixture(scope="module")
def clean_report(compiled):
    return run_signoff(compiled)


class TestReportModel:
    def _finding(self):
        return SignoffFinding(
            checker="drc", stage="assembly", kind="drc-violation",
            subject="array/metal2", message="too close",
            data={"cell": "array"},
        )

    def test_finding_round_trip(self):
        f = self._finding()
        assert SignoffFinding.from_dict(
            json.loads(json.dumps(f.to_dict()))) == f

    def test_report_round_trip(self):
        report = SignoffReport(
            config_label="cfg", process="cda07",
            results=[CheckResult(
                checker="drc", stage="assembly", status="fail",
                findings=[self._finding()], stats={"n": 1},
                elapsed_s=0.5,
            )],
        )
        back = SignoffReport.from_dict(
            json.loads(json.dumps(report.to_dict())))
        assert back.clean is False
        assert back.failure_class == "drc"
        assert back.findings()[0] == self._finding()

    def test_failure_class_priority(self):
        def result(checker):
            return CheckResult(checker=checker, stage="s", status="fail")

        report = SignoffReport("c", "p", [result("control"), result("lvs")])
        assert report.failure_class == "lvs"
        report.results.append(result("drc"))
        assert report.failure_class == "drc"

    def test_exit_codes_distinct(self):
        assert EXIT_CODES == {"drc": 3, "lvs": 4, "control": 5}
        clean = SignoffReport("c", "p", [])
        assert clean.exit_code == 0

    def test_drc_violation_round_trip(self):
        v = DrcViolation("min-space", "metal1", 70, 105, Rect(0, 1, 2, 3))
        assert DrcViolation.from_dict(
            json.loads(json.dumps(v.to_dict()))) == v


class TestHierarchicalDrc:
    def test_clean_macro(self, compiled, clean_report):
        assert clean_report.clean
        assert clean_report.exit_code == 0
        stages = {(r.checker, r.stage) for r in clean_report.results}
        assert stages == {("drc", "leaf-cells"), ("drc", "assembly"),
                          ("lvs", "assembly"), ("control", "control")}

    def test_cache_hit_rate_warm(self, compiled):
        cache = DrcCache()
        cold = hierarchical_drc(compiled.floorplan.top, PROCESS, cache=cache)
        warm = hierarchical_drc(compiled.floorplan.top, PROCESS, cache=cache)
        assert cold.clean and warm.clean
        assert cold.stats["cache_hit_rate"] == 0.0
        assert warm.stats["cache_hit_rate"] == 1.0
        assert warm.stats["leaf_checks"] == 0

    def test_content_hash_ignores_names(self):
        a, b = Cell("one"), Cell("two")
        for c in (a, b):
            c.add_shape("metal1", Rect(0, 0, 10, 10))
        assert cell_hash(a) == cell_hash(b)
        b.add_shape("metal1", Rect(20, 0, 30, 10))
        assert cell_hash(a) != cell_hash(b)

    def test_dirty_leaf_attributed(self):
        leaf = Cell("dirty_leaf")
        leaf.add_shape("metal1", Rect(0, 0, 3 * LAM, 3 * LAM))
        leaf.add_shape("metal1", Rect(4 * LAM, 0, 7 * LAM, 3 * LAM))
        top = Cell("top")
        top.add_instance(leaf)
        result = hierarchical_drc(top, PROCESS, cache=DrcCache())
        assert list(result.leaf_violations) == ["dirty_leaf"]
        assert not result.assembly_violations

    def test_seam_violation_attributed_to_assembly(self):
        from repro.geometry import Point, Transform

        leaf = Cell("clean_leaf")
        leaf.add_shape("metal1", Rect(0, 0, 3 * LAM, 3 * LAM))
        top = Cell("top")
        top.add_instance(leaf)
        # Second instance placed within min-space of the first.
        top.add_instance(
            leaf, Transform(translation=Point(4 * LAM, 0)))
        result = hierarchical_drc(top, PROCESS, cache=DrcCache())
        assert not result.leaf_violations
        assert list(result.assembly_violations) == ["top"]
        v = result.assembly_violations["top"][0]
        assert v.rule == "min-space"
        assert v.measured == LAM


def _short_bitlines(top):
    """Draw a metal2 bridge across bl_0/blb_0 at the array's top edge."""
    array_inst = next(i for i in top.instances() if i.name == "array")
    a = array_inst.port("bl_t_0").rect
    b = array_inst.port("blb_t_0").rect
    span = a.union_bbox(b)
    top.add_shape(
        "metal2", Rect(span.x1, span.y1 - 70, span.x2, span.y1 + 70))


def _sabotaged_floorplan(monkeypatch):
    """Make the compiler produce a floorplan with a routing short."""
    import repro.core.compiler as compiler_module

    original = compiler_module.build_floorplan

    def sabotaged(config, march, with_bisr=True):
        plan = original(config, march, with_bisr=with_bisr)
        if with_bisr:
            _short_bitlines(plan.top)
        return plan

    monkeypatch.setattr(compiler_module, "build_floorplan", sabotaged)


class TestStageGates:
    def test_strict_clean_build(self):
        compiled = BISRAMGen(CONFIG).build(signoff="strict")
        assert compiled.signoff is not None
        assert compiled.signoff.clean

    def test_routing_short_detected_and_classified(self):
        compiled = compile_ram(CONFIG)
        _short_bitlines(compiled.floorplan.top)
        report = run_signoff(compiled)
        assert not report.clean
        assert report.failure_class == "lvs"
        assert report.exit_code == EXIT_CODES["lvs"]
        shorted = [f for f in report.findings() if f.kind == "short"]
        assert any("bl_0" in f.subject and "blb_0" in f.subject
                   for f in shorted)

    def test_strict_raises_signoff_error(self, monkeypatch):
        _sabotaged_floorplan(monkeypatch)
        with pytest.raises(SignoffError) as exc:
            BISRAMGen(CONFIG).build(signoff="strict")
        assert exc.value.failure_class == "lvs"
        assert exc.value.report["clean"] is False

    def test_degrade_attaches_report_and_returns(self, monkeypatch):
        _sabotaged_floorplan(monkeypatch)
        compiled = BISRAMGen(CONFIG).build(signoff="degrade")
        assert compiled.signoff is not None
        assert not compiled.signoff.clean
        assert compiled.signoff.failure_class == "lvs"

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigError):
            BISRAMGen(CONFIG).build(signoff="paranoid")


class TestDrcGate:
    def test_injected_drc_violation_names_shape(self):
        compiled = compile_ram(CONFIG)
        top = compiled.floorplan.top
        box = top.bbox()
        # Two parent-level metal1 shapes spaced below the rule.
        top.add_shape("metal1", Rect(box.x2 + 10 * LAM, 0,
                                     box.x2 + 13 * LAM, 10 * LAM))
        top.add_shape("metal1", Rect(box.x2 + 14 * LAM, 0,
                                     box.x2 + 17 * LAM, 10 * LAM))
        report = run_signoff(compiled)
        assert report.failure_class == "drc"
        assert report.exit_code == EXIT_CODES["drc"]
        drc = [f for f in report.findings() if f.checker == "drc"]
        assert drc[0].data["rule"] == "min-space"
        assert drc[0].data["cell"]

    def test_drc_outranks_lvs_in_blame(self):
        report = SignoffReport("c", "p", [
            CheckResult(checker="lvs", stage="assembly", status="fail"),
            CheckResult(checker="drc", stage="assembly", status="fail"),
        ])
        assert report.failure_class == "drc"
        assert report.exit_code == EXIT_CODES["drc"]


class TestControlGate:
    def test_corrupted_personality_trips_control_gate(self, compiled):
        from repro.bist.controller import build_test_program
        from repro.bist.march import IFA_9
        from repro.bist.microcode import assemble
        from repro.bist.trpla import Trpla
        from repro.verify import check_personality

        program = build_test_program(IFA_9, 2)
        asm = assemble(program)
        # Find a flip that is not masked by OR-plane redundancy (the
        # cheap personality check alone), then gate the full signoff.
        bad_pla = None
        for term in range(8):
            or_plane = [list(r) for r in asm.or_plane]
            or_plane[term][0] ^= 1
            candidate = Trpla(asm.and_plane, or_plane)
            if check_personality(program, candidate):
                bad_pla = candidate
                break
        assert bad_pla is not None
        report = run_signoff(compiled, trpla=bad_pla)
        assert report.failure_class == "control"
        assert report.exit_code == EXIT_CODES["control"]
        bad = [f for f in report.findings()
               if f.kind == "microword-mismatch"]
        assert bad and bad[0].subject  # names the corrupted state


class TestCifRoundTrip:
    def test_hash_identical_after_cif(self, compiled):
        buf = io.StringIO()
        write_cif(compiled.floorplan.top, buf, PROCESS.layers)
        buf.seek(0)
        back = read_cif(buf, PROCESS.layers)
        assert cell_hash(back) == cell_hash(compiled.floorplan.top)

    def test_drc_report_on_readback_hits_cache(self, compiled):
        cache = DrcCache()
        hierarchical_drc(compiled.floorplan.top, PROCESS, cache=cache)
        buf = io.StringIO()
        write_cif(compiled.floorplan.top, buf, PROCESS.layers)
        buf.seek(0)
        back = read_cif(buf, PROCESS.layers)
        report = drc_report(back, PROCESS, label="readback", cache=cache)
        assert report.clean
        assert report.results[0].stats["cache_hit_rate"] == 1.0
