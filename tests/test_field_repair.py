"""Tests for in-field transparent self-repair."""

import random

import pytest

from repro.bist import IFA_9, MATS_PLUS
from repro.bist.field_repair import FieldRepairController
from repro.memsim import BisrRam
from repro.memsim.faults import RowStuck, StuckAt


def device_in_service(seed=11, rows=8, bpw=4, bpc=4):
    """A device already holding live data."""
    device = BisrRam(rows=rows, bpw=bpw, bpc=bpc, spares=4)
    rng = random.Random(seed)
    data = [rng.randrange(1 << bpw) for _ in range(device.word_count)]
    for address, value in enumerate(data):
        device.write(address, value)
    return device, data


class TestHealthyDevice:
    def test_maintenance_is_a_noop(self):
        device, data = device_in_service()
        controller = FieldRepairController(IFA_9, device)
        result = controller.maintenance_cycle()
        assert result.healthy
        assert result.faults_found == 0
        assert result.new_rows_mapped == ()
        assert [device.read(a) for a in range(device.word_count)] == data


class TestFieldFailure:
    def test_new_row_failure_repaired_in_service(self):
        device, data = device_in_service()
        # A word line dies in the field.
        device.array.inject(RowStuck(5, device.array.phys_cols, 0))
        controller = FieldRepairController(IFA_9, device)
        result = controller.maintenance_cycle()
        assert result.faults_found > 0
        assert 5 in result.new_rows_mapped
        assert result.healthy
        # Data outside the dead row is fully intact.
        for address, value in enumerate(data):
            if address // device.array.bpc != 5:
                assert device.read(address) == value

    def test_rescue_accounting(self):
        device, data = device_in_service()
        # A single stuck cell: everything in the row except (at most)
        # that one bit's words is rescuable.
        device.array.inject(StuckAt(device.array.cell_index(2, 1, 0), 1))
        controller = FieldRepairController(IFA_9, device)
        result = controller.maintenance_cycle()
        assert result.healthy
        assert result.words_rescued + result.words_lost == \
            len(result.new_rows_mapped) * device.array.bpc
        assert result.words_rescued >= result.words_lost

    def test_second_cycle_is_clean(self):
        device, _ = device_in_service()
        device.array.inject(RowStuck(3, device.array.phys_cols, 1))
        controller = FieldRepairController(IFA_9, device)
        first = controller.maintenance_cycle()
        assert first.healthy
        second = controller.maintenance_cycle()
        assert second.faults_found == 0
        assert second.new_rows_mapped == ()

    def test_accumulating_failures_across_cycles(self):
        device, _ = device_in_service(rows=12)
        controller = FieldRepairController(IFA_9, device)
        for cycle, row in enumerate((2, 7, 9)):
            device.array.inject(
                RowStuck(row, device.array.phys_cols, cycle % 2)
            )
            result = controller.maintenance_cycle()
            assert result.healthy, row
            assert row in device.tlb.mapped_rows()
        assert device.tlb.spares_used == 3

    def test_spares_exhaustion_reported(self):
        device, _ = device_in_service(rows=12)
        for row in range(5):  # five dead rows, four spares
            device.array.inject(RowStuck(row, device.array.phys_cols, 1))
        controller = FieldRepairController(IFA_9, device)
        result = controller.maintenance_cycle()
        assert not result.healthy

    def test_works_with_other_marches(self):
        device, _ = device_in_service()
        device.array.inject(RowStuck(1, device.array.phys_cols, 0))
        controller = FieldRepairController(MATS_PLUS, device)
        assert controller.maintenance_cycle().healthy
