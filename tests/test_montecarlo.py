"""Tests for the row-level Monte-Carlo yield validator."""

import numpy as np
import pytest

from repro.yieldmodel import bisr_yield
from repro.yieldmodel.montecarlo import (
    MonteCarloYield,
    simulate_yield,
    validate_against_analytic,
)


class TestSimulateYield:
    def test_zero_defects_perfect(self):
        mc = simulate_yield(64, 4, 4, 4, 0.0, trials=1000)
        assert mc.yield_estimate == 1.0

    def test_matches_analytic_at_scale(self):
        """The Fig. 4 headline check at full 1024-row scale."""
        rng = np.random.default_rng(3)
        for defects in (1.0, 5.0, 10.0):
            analytic = bisr_yield(1024, 4, 4, 4, defects)
            mc = simulate_yield(1024, 4, 4, 4, defects,
                                trials=20_000, rng=rng)
            assert mc.yield_estimate == pytest.approx(
                analytic, abs=0.04
            ), defects

    def test_spares_help(self):
        rng = np.random.default_rng(5)
        none = simulate_yield(256, 0, 4, 4, 3.0, trials=20_000, rng=rng)
        four = simulate_yield(256, 4, 4, 4, 3.0, trials=20_000, rng=rng)
        assert four.yield_estimate > 3 * none.yield_estimate

    def test_growth_factor_costs_yield(self):
        rng = np.random.default_rng(9)
        slim = simulate_yield(256, 4, 4, 4, 4.0, growth_factor=1.0,
                              trials=20_000, rng=rng)
        fat = simulate_yield(256, 4, 4, 4, 4.0, growth_factor=1.5,
                             trials=20_000, rng=rng)
        assert fat.yield_estimate < slim.yield_estimate

    def test_confidence_interval(self):
        mc = MonteCarloYield(trials=10_000, good=9_000)
        assert mc.yield_estimate == 0.9
        assert 0.004 < mc.confidence_95() < 0.008

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            simulate_yield(0, 4, 4, 4, 1.0)
        with pytest.raises(ValueError):
            simulate_yield(64, 4, 4, 4, -1.0)
        with pytest.raises(ValueError):
            simulate_yield(64, 4, 4, 4, 1.0, growth_factor=0.5)

    def test_validate_report_rows(self):
        rows = validate_against_analytic(
            128, 4, 4, 4, (0.0, 2.0), trials=5_000
        )
        assert len(rows) == 2
        assert all(gap < 0.06 for _, _, _, gap in rows)
