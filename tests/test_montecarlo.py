"""Tests for the row-level Monte-Carlo yield validator."""

import numpy as np
import pytest

from repro.yieldmodel import bisr_yield
from repro.yieldmodel.montecarlo import (
    MonteCarloYield,
    simulate_yield,
    validate_against_analytic,
)


class TestSimulateYield:
    def test_zero_defects_perfect(self):
        mc = simulate_yield(64, 4, 4, 4, 0.0, trials=1000)
        assert mc.yield_estimate == 1.0

    def test_matches_analytic_at_scale(self):
        """The Fig. 4 headline check at full 1024-row scale."""
        rng = np.random.default_rng(3)
        for defects in (1.0, 5.0, 10.0):
            analytic = bisr_yield(1024, 4, 4, 4, defects)
            mc = simulate_yield(1024, 4, 4, 4, defects,
                                trials=20_000, rng=rng)
            assert mc.yield_estimate == pytest.approx(
                analytic, abs=0.04
            ), defects

    def test_spares_help(self):
        rng = np.random.default_rng(5)
        none = simulate_yield(256, 0, 4, 4, 3.0, trials=20_000, rng=rng)
        four = simulate_yield(256, 4, 4, 4, 3.0, trials=20_000, rng=rng)
        assert four.yield_estimate > 3 * none.yield_estimate

    def test_growth_factor_costs_yield(self):
        rng = np.random.default_rng(9)
        slim = simulate_yield(256, 4, 4, 4, 4.0, growth_factor=1.0,
                              trials=20_000, rng=rng)
        fat = simulate_yield(256, 4, 4, 4, 4.0, growth_factor=1.5,
                             trials=20_000, rng=rng)
        assert fat.yield_estimate < slim.yield_estimate

    def test_confidence_interval(self):
        mc = MonteCarloYield(trials=10_000, good=9_000)
        assert mc.yield_estimate == 0.9
        assert 0.004 < mc.confidence_95() < 0.008

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            simulate_yield(0, 4, 4, 4, 1.0)
        with pytest.raises(ValueError):
            simulate_yield(64, 4, 4, 4, -1.0)
        with pytest.raises(ValueError):
            simulate_yield(64, 4, 4, 4, 1.0, growth_factor=0.5)

    def test_validate_report_rows(self):
        rows = validate_against_analytic(
            128, 4, 4, 4, (0.0, 2.0), trials=5_000
        )
        assert len(rows) == 2
        assert all(gap < 0.06 for _, _, _, gap in rows)


class TestDegenerateEstimates:
    """Satellite: confidence_95 degenerate cases and Wilson bounds."""

    def test_zero_trials_raise(self):
        empty = MonteCarloYield(trials=0, good=0)
        with pytest.raises(ValueError):
            empty.yield_estimate
        with pytest.raises(ValueError):
            empty.confidence_95()
        with pytest.raises(ValueError):
            empty.wilson_interval()

    def test_normal_interval_collapses_at_extremes(self):
        """p in {0, 1} drives the normal half-width to exactly 0."""
        assert MonteCarloYield(10, 10).confidence_95() == 0.0
        assert MonteCarloYield(10, 0).confidence_95() == 0.0

    def test_wilson_interval_stays_open_at_extremes(self):
        z = 1.96
        low, high = MonteCarloYield(10, 10).wilson_interval()
        assert high == 1.0
        assert low == pytest.approx(10 / (10 + z * z))
        low0, high0 = MonteCarloYield(10, 0).wilson_interval()
        assert low0 == 0.0
        assert 0.0 < high0 < 0.5

    def test_wilson_brackets_midrange_estimate(self):
        mc = MonteCarloYield(trials=10_000, good=9_000)
        low, high = mc.wilson_interval()
        assert low < mc.yield_estimate < high
        # close to the normal interval away from the extremes
        assert high - low == pytest.approx(
            2 * mc.confidence_95(), rel=0.05)

    def test_merged_pools_counts(self):
        parts = [MonteCarloYield(100, 90), MonteCarloYield(50, 40)]
        merged = MonteCarloYield.merged(parts)
        assert merged.trials == 150 and merged.good == 130

    def test_merged_nothing_is_a_legal_empty_container(self):
        empty = MonteCarloYield.merged([])
        assert empty.trials == 0
        with pytest.raises(ValueError):
            empty.yield_estimate
