"""Tests for the leaf-cell generators: DRC cleanliness, abutment, ports."""

import pytest

from repro.cells import (
    cam_cell,
    cam_match_netlist,
    column_decoder_cell,
    column_mux_cell,
    comparator_slice_cell,
    counter_bit_cell,
    dff_cell,
    johnson_bit_cell,
    pla_cell,
    precharge_cell,
    precharge_netlist,
    row_decoder_cell,
    senseamp_cell,
    senseamp_netlist,
    sram6t_cell,
    sram6t_netlist,
    strap_cell,
    tristate_buffer_cell,
    wordline_driver_cell,
    wordline_driver_netlist,
    write_driver_cell,
)
from repro.cells.sram6t import HEIGHT_LAMBDA, WIDTH_LAMBDA
from repro.cells.stdcell import logic_block_width
from repro.layout import Cell, DrcChecker
from repro.tech import available_processes, get_process

PLA_AND = [[1, 0, 0, 1], [0, 1, 1, 0], [1, 1, 0, 0]]
PLA_OR = [[1, 0], [0, 1], [1, 1]]

GENERATORS = {
    "sram6t": lambda p: sram6t_cell(p),
    "precharge": lambda p: precharge_cell(p),
    "precharge_big": lambda p: precharge_cell(p, gate_size=3),
    "senseamp": lambda p: senseamp_cell(p),
    "column_mux": lambda p: column_mux_cell(p),
    "wl_driver": lambda p: wordline_driver_cell(p),
    "write_driver": lambda p: write_driver_cell(p),
    "tristate": lambda p: tristate_buffer_cell(p),
    "row_decoder": lambda p: row_decoder_cell(p, 10),
    "column_decoder": lambda p: column_decoder_cell(p, 3),
    "dff": lambda p: dff_cell(p),
    "counter_bit": lambda p: counter_bit_cell(p),
    "johnson_bit": lambda p: johnson_bit_cell(p),
    "xor_slice": lambda p: comparator_slice_cell(p),
    "cam": lambda p: cam_cell(p),
    "strap": lambda p: strap_cell(p),
    "pla": lambda p: pla_cell(p, PLA_AND, PLA_OR),
}


@pytest.mark.parametrize("process_name", available_processes())
@pytest.mark.parametrize("kind", sorted(GENERATORS))
def test_cell_is_drc_clean(process_name, kind):
    """Every generator must produce legal layout on every process —
    the design-rule-independence claim."""
    process = get_process(process_name)
    cell = GENERATORS[kind](process)
    violations = DrcChecker(process).check(cell)
    assert violations == [], [str(v) for v in violations[:5]]


@pytest.mark.parametrize("kind", sorted(GENERATORS))
def test_cell_scales_with_lambda(kind):
    """Cell bounding boxes must scale linearly with lambda."""
    small = GENERATORS[kind](get_process("cda05"))
    large = GENERATORS[kind](get_process("cda07"))
    assert large.width * 25 == small.width * 35
    assert large.height * 25 == small.height * 35


class TestSram6t:
    @pytest.fixture(scope="class")
    def bit(self):
        return sram6t_cell(get_process("cda07"))

    def test_dimensions(self, bit):
        lam = get_process("cda07").lambda_cu
        assert bit.width == WIDTH_LAMBDA * lam
        assert bit.height == HEIGHT_LAMBDA * lam

    def test_ports(self, bit):
        names = set(bit.port_names())
        assert {"bl", "blb", "wl", "gnd", "vdd"} <= names
        # Facing-edge twins for abutment detection.
        assert {"bl_t", "blb_t", "wl_r", "gnd_r", "vdd_r"} <= names

    def test_facing_ports_align_for_tiling(self, bit):
        """wl and wl_r sit at the same y band; bl and bl_t at the same
        x band — the condition for pitch tiling to connect them."""
        assert bit.port("wl").rect.y1 == bit.port("wl_r").rect.y1
        assert bit.port("bl").rect.x1 == bit.port("bl_t").rect.x1

    def test_six_transistors(self, bit):
        # Count gate crossings: poly rect overlapping a diffusion rect.
        shapes = list(bit.flatten())
        diffs = [r for l, r in shapes if l in ("ndiff", "pdiff")]
        polys = [r for l, r in shapes if l == "poly"]
        crossings = 0
        for d in diffs:
            for p in polys:
                inter = d.intersection(p)
                if inter is not None and inter.area > 0:
                    crossings += 1
        assert crossings == 6

    def test_mirrored_tile_array_drc_clean(self, bit):
        process = get_process("cda07")
        lam = process.lambda_cu
        arr = Cell("tile")
        arr.tile(bit, columns=3, rows=3, pitch_x=WIDTH_LAMBDA * lam,
                 pitch_y=HEIGHT_LAMBDA * lam, alternate_mirror_y=True)
        assert DrcChecker(process).check(arr) == []

    def test_netlist_is_6t(self):
        net = sram6t_netlist(get_process("cda07"))
        assert len(net.mosfets) == 6
        nmos = sum(1 for m in net.mosfets if m.params.polarity == "nmos")
        assert nmos == 4

    def test_pulldown_stronger_than_access(self):
        net = sram6t_netlist(get_process("cda07"))
        widths = sorted(m.w_um for m in net.mosfets
                        if m.params.polarity == "nmos")
        assert widths[-1] > widths[0]  # pull-down wider than access


class TestColumnPitchMatching:
    def test_precharge_matches_bit_cell_pitch(self):
        p = get_process("mos06")
        assert precharge_cell(p).width == sram6t_cell(p).width

    def test_mux_matches_bit_cell_pitch(self):
        p = get_process("mos06")
        assert column_mux_cell(p).width == sram6t_cell(p).width

    def test_row_pitch_cells(self):
        p = get_process("mos06")
        bit = sram6t_cell(p)
        assert wordline_driver_cell(p).height == bit.height
        assert row_decoder_cell(p, 8).height == bit.height
        assert cam_cell(p).height == bit.height


class TestPla:
    def test_validation_ragged(self):
        p = get_process("cda07")
        with pytest.raises(ValueError):
            pla_cell(p, [[1, 0], [1]], [[1], [0]])

    def test_validation_row_mismatch(self):
        p = get_process("cda07")
        with pytest.raises(ValueError):
            pla_cell(p, PLA_AND, [[1, 0]])

    def test_validation_empty(self):
        p = get_process("cda07")
        with pytest.raises(ValueError):
            pla_cell(p, [], [])

    def test_ports_per_signal(self):
        p = get_process("cda07")
        cell = pla_cell(p, PLA_AND, PLA_OR)
        names = set(cell.port_names())
        assert {"in0_t", "in0_c", "in1_t", "in1_c",
                "out0", "out1", "pc_and", "pc_or"} <= names

    def test_device_count_tracks_personality(self):
        p = get_process("cda07")
        sparse = pla_cell(p, [[1, 0], [0, 1]], [[1], [1]], name="sparse")
        dense = pla_cell(p, [[1, 1], [1, 1]], [[1], [1]], name="dense")
        assert dense.count_shapes() > sparse.count_shapes()

    def test_grows_with_terms(self):
        p = get_process("cda07")
        small = pla_cell(p, PLA_AND, PLA_OR, name="s")
        big = pla_cell(p, PLA_AND * 3, PLA_OR * 3, name="b")
        assert big.height > small.height


class TestValidationErrors:
    def test_gate_size_validated(self):
        p = get_process("cda07")
        for gen in (precharge_cell, senseamp_cell, wordline_driver_cell,
                    write_driver_cell, tristate_buffer_cell):
            with pytest.raises(ValueError):
                gen(p, 0)

    def test_decoder_needs_bits(self):
        with pytest.raises(ValueError):
            row_decoder_cell(get_process("cda07"), 0)

    def test_strap_min_width(self):
        with pytest.raises(ValueError):
            strap_cell(get_process("cda07"), 4)

    def test_logic_block_width_monotone(self):
        assert logic_block_width(8) > logic_block_width(4)
        with pytest.raises(ValueError):
            logic_block_width(0)


class TestCompanionNetlists:
    def test_precharge_netlist_three_pmos(self):
        net = precharge_netlist(get_process("cda07"))
        assert len(net.mosfets) == 3
        assert all(m.params.polarity == "pmos" for m in net.mosfets)

    def test_senseamp_netlist_structure(self):
        net = senseamp_netlist(get_process("cda07"))
        assert len(net.mosfets) == 6
        assert len(net.capacitors) == 2

    def test_wl_driver_netlist_three_inverting_stages(self):
        net = wordline_driver_netlist(get_process("cda07"))
        assert len(net.mosfets) == 6
        # Progressive sizing: each stage wider than the previous.
        widths = sorted({m.w_um for m in net.mosfets
                         if m.params.polarity == "nmos"})
        assert len(widths) == 3
        assert widths[1] == pytest.approx(3 * widths[0])
        assert widths[2] == pytest.approx(9 * widths[0])

    def test_cam_match_netlist_scales_cap(self):
        small = cam_match_netlist(get_process("cda07"), 4)
        large = cam_match_netlist(get_process("cda07"), 16)
        assert large.capacitors[0].farads > small.capacitors[0].farads

    def test_cam_match_netlist_validates(self):
        with pytest.raises(ValueError):
            cam_match_netlist(get_process("cda07"), 0)
