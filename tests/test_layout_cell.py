"""Unit tests for the layout cell hierarchy."""

import pytest

from repro.geometry import Point, Rect, Transform
from repro.geometry.transform import Orientation
from repro.layout import Cell, Port


def leaf(name="leaf", w=10, h=6):
    c = Cell(name)
    c.add_shape("metal1", Rect(0, 0, w, h))
    c.add_port(Port("a", "metal1", Rect(0, 2, 0, 4)))
    return c


class TestCellBasics:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Cell("")

    def test_bbox_over_shapes(self):
        c = Cell("c")
        c.add_shape("poly", Rect(2, 3, 5, 9))
        c.add_shape("metal1", Rect(-1, 0, 1, 2))
        assert c.bbox() == Rect(-1, 0, 5, 9)

    def test_bbox_empty(self):
        assert Cell("c").bbox() is None
        assert Cell("c").area() == 0

    def test_bbox_includes_instances(self):
        parent = Cell("p")
        parent.add_instance(leaf(), Transform(translation=Point(100, 0)))
        assert parent.bbox() == Rect(100, 0, 110, 6)

    def test_bbox_cache_invalidation(self):
        c = Cell("c")
        c.add_shape("poly", Rect(0, 0, 1, 1))
        assert c.bbox() == Rect(0, 0, 1, 1)
        c.add_shape("poly", Rect(5, 5, 9, 9))
        assert c.bbox() == Rect(0, 0, 9, 9)

    def test_duplicate_port_rejected(self):
        c = leaf()
        with pytest.raises(ValueError):
            c.add_port(Port("a", "metal1", Rect(0, 0, 0, 1)))

    def test_port_lookup_error_lists_ports(self):
        with pytest.raises(KeyError, match="ports"):
            leaf().port("zz")

    def test_port_direction_validation(self):
        with pytest.raises(ValueError):
            Port("x", "metal1", Rect(0, 0, 0, 0), direction="sideways")


class TestInstances:
    def test_instance_port_transformed(self):
        parent = Cell("p")
        inst = parent.add_instance(
            leaf(), Transform(translation=Point(50, 10))
        )
        assert inst.port("a").rect == Rect(50, 12, 50, 14)

    def test_mirrored_instance_port(self):
        parent = Cell("p")
        inst = parent.add_instance(leaf(), Transform(Orientation.MY))
        assert inst.port("a").rect == Rect(0, 2, 0, 4)
        assert inst.bbox() == Rect(-10, 0, 0, 6)


class TestFlatten:
    def test_two_level_flatten(self):
        child = leaf()
        mid = Cell("mid")
        mid.add_instance(child, Transform(translation=Point(0, 100)))
        top = Cell("top")
        top.add_instance(mid, Transform(translation=Point(1000, 0)))
        flat = list(top.flatten())
        assert flat == [("metal1", Rect(1000, 100, 1010, 106))]

    def test_flatten_depth_limit(self):
        child = leaf()
        mid = Cell("mid")
        mid.add_shape("poly", Rect(0, 0, 1, 1))
        mid.add_instance(child, Transform())
        top = Cell("top")
        top.add_instance(mid, Transform())
        assert len(list(top.flatten(max_depth=1))) == 1  # mid's own shape
        assert len(list(top.flatten())) == 2

    def test_count_shapes(self):
        child = leaf()
        top = Cell("top")
        for i in range(5):
            top.add_instance(child, Transform(translation=Point(20 * i, 0)))
        assert top.count_shapes() == 5

    def test_subcells(self):
        child = leaf()
        mid = Cell("mid")
        mid.add_instance(child, Transform())
        top = Cell("top")
        top.add_instance(mid, Transform())
        assert set(top.subcells()) == {"top", "mid", "leaf"}


class TestTile:
    def test_tile_counts(self):
        top = Cell("top")
        got = top.tile(leaf(), columns=3, rows=2, pitch_x=10, pitch_y=6)
        assert len(got) == 6
        assert top.bbox() == Rect(0, 0, 30, 12)

    def test_tile_mirror_keeps_slots(self):
        top = Cell("top")
        top.tile(leaf(), columns=1, rows=4, pitch_x=10, pitch_y=6,
                 alternate_mirror_y=True)
        assert top.bbox() == Rect(0, 0, 10, 24)

    def test_tile_mirrored_row_flipped(self):
        c = Cell("asym")
        c.add_shape("metal1", Rect(0, 0, 10, 1))  # bottom-heavy marker
        top = Cell("top")
        top.tile(c, columns=1, rows=2, pitch_x=10, pitch_y=6,
                 alternate_mirror_y=True)
        shapes = sorted(r for _, r in top.flatten())
        # Row 0 marker at y 0..1; row 1 mirrored marker at the TOP of
        # its slot: y 11..12.
        assert shapes == [Rect(0, 0, 10, 1), Rect(0, 11, 10, 12)]

    def test_tile_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            Cell("t").tile(leaf(), columns=0, rows=1, pitch_x=1, pitch_y=1)
