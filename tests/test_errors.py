"""The structured error taxonomy and its wiring through the layers."""

import pytest

from repro.core.errors import (
    ConfigError,
    RepairExhausted,
    ReproError,
    SpiceConvergenceError,
)
from repro.core import RamConfig


class TestTaxonomy:
    def test_hierarchy(self):
        assert issubclass(ConfigError, ReproError)
        assert issubclass(RepairExhausted, ReproError)
        assert issubclass(SpiceConvergenceError, ReproError)

    def test_backwards_compatible_bases(self):
        # Pre-taxonomy call sites catch ValueError / RuntimeError.
        assert issubclass(ConfigError, ValueError)
        assert issubclass(SpiceConvergenceError, RuntimeError)

    def test_repair_exhausted_payload(self):
        err = RepairExhausted("out of spares",
                              unrepaired_rows=(3, 7), spares=4)
        assert err.unrepaired_rows == (3, 7)
        assert err.spares == 4

    def test_spice_convergence_payload(self):
        err = SpiceConvergenceError("stuck", t_reached=1e-9,
                                    t_stop=5e-9, steps=100)
        assert err.t_reached == pytest.approx(1e-9)
        assert err.t_stop == pytest.approx(5e-9)
        assert err.steps == 100


class TestConfigWiring:
    def test_ram_config_raises_config_error(self):
        with pytest.raises(ConfigError):
            RamConfig(words=64, bpw=8, bpc=3)
        with pytest.raises(ConfigError):
            RamConfig(words=64, bpw=8, bpc=4, spares=5)

    def test_still_catchable_as_value_error(self):
        with pytest.raises(ValueError):
            RamConfig(words=0, bpw=8, bpc=4)

    def test_fault_mix_validation(self):
        from repro.memsim import FaultMix

        with pytest.raises(ConfigError):
            FaultMix(stuck_at=-0.1)
        with pytest.raises(ConfigError):
            FaultMix(stuck_at=0, transition=0, stuck_open=0,
                     state_coupling=0, idempotent_coupling=0,
                     inversion_coupling=0, data_retention=0,
                     row_defect=0, column_defect=0)

    def test_compiler_wraps_build_failures(self, monkeypatch):
        from repro.core import BISRAMGen, compiler

        def explode(*args, **kwargs):
            raise ValueError("generator rejected the geometry")

        monkeypatch.setattr(compiler, "build_floorplan", explode)
        with pytest.raises(ConfigError, match="cannot build"):
            BISRAMGen(RamConfig(words=64, bpw=8, bpc=4)).build()


class TestSpiceWiring:
    @staticmethod
    def _slow_net():
        from repro.circuit import GND, Netlist
        from repro.spice import step
        from repro.tech import get_process

        process = get_process("cda07")
        net = Netlist()
        net.add_source("in", step(1e-12, 0.0, process.vdd))
        net.add_mosfet("out", "in", GND, process.nmos, w_um=2.0)
        net.add_capacitor("out", GND, 1e-12)
        return net

    def test_non_converging_transient_is_typed(self):
        from repro.spice import TransientEngine

        engine = TransientEngine(self._slow_net())
        with pytest.raises(SpiceConvergenceError) as excinfo:
            engine.run(t_stop=1e-6, max_steps=10)
        err = excinfo.value
        assert 0.0 < err.t_reached < err.t_stop
        assert err.t_stop == pytest.approx(1e-6)
        assert err.steps == 10

    def test_still_catchable_as_runtime_error(self):
        from repro.spice import TransientEngine

        engine = TransientEngine(self._slow_net())
        with pytest.raises(RuntimeError):
            engine.run(t_stop=1e-6, max_steps=5)


class TestFieldRepairWiring:
    def test_strict_maintenance_raises_repair_exhausted(self):
        from repro.bist import IFA_9, FieldRepairController
        from repro.memsim import BisrRam
        from repro.memsim.faults import RowStuck

        device = BisrRam(rows=8, bpw=4, bpc=4, spares=1)
        for row in (1, 2, 3):
            device.array.inject(
                RowStuck(row, device.array.phys_cols, 1)
            )
        controller = FieldRepairController(IFA_9, device)
        with pytest.raises(RepairExhausted) as excinfo:
            # One spare cannot cover three dead rows; iterate until the
            # TLB overflows and strict mode trips.
            for _ in range(4):
                controller.maintenance_cycle(strict=True)
        assert excinfo.value.spares == 1
        assert excinfo.value.unrepaired_rows

    def test_default_maintenance_never_raises(self):
        from repro.bist import IFA_9, FieldRepairController
        from repro.memsim import BisrRam
        from repro.memsim.faults import RowStuck

        device = BisrRam(rows=8, bpw=4, bpc=4, spares=1)
        for row in (1, 2, 3):
            device.array.inject(
                RowStuck(row, device.array.phys_cols, 1)
            )
        controller = FieldRepairController(IFA_9, device)
        results = [controller.maintenance_cycle() for _ in range(3)]
        assert not any(r.repaired for r in results)


class TestConvergenceProgress:
    """Satellite: SpiceConvergenceError.progress feeds campaign
    degradation reports."""

    def test_halfway(self):
        err = SpiceConvergenceError(
            "stalled", t_reached=2e-9, t_stop=4e-9, steps=100)
        assert err.progress == pytest.approx(0.5)

    def test_zero_t_stop_is_zero_not_nan(self):
        err = SpiceConvergenceError(
            "stalled", t_reached=1e-9, t_stop=0.0, steps=1)
        assert err.progress == 0.0

    def test_overshoot_clamps_to_one(self):
        err = SpiceConvergenceError(
            "stalled", t_reached=5e-9, t_stop=4e-9, steps=1)
        assert err.progress == 1.0
