"""Unit tests for the cost models (Tables II-III, Fig. 8 machinery)."""

import pytest

from repro.cost import (
    MPR_1994_DATASET,
    SpeedBinning,
    binning_distribution,
    die_cost,
    die_cost_comparison,
    dies_per_wafer,
    get_processor,
    table2_rows,
    table3_rows,
)


class TestWaferGeometry:
    def test_bigger_wafer_superlinear_in_area(self):
        """Edge loss shrinks relative to area on larger wafers: the
        paper's 'more than proportionately increase the number of
        dies-per-wafer'."""
        ratio = dies_per_wafer(100, 200) / dies_per_wafer(100, 150)
        assert ratio > (200 / 150) ** 2

    def test_smaller_die_more_dies(self):
        assert dies_per_wafer(50, 200) > dies_per_wafer(200, 200)

    def test_sane_magnitude(self):
        # ~256 mm^2 on a 200 mm wafer: around 90-100 gross dies.
        assert 80 <= dies_per_wafer(256, 200) <= 110

    def test_too_big_die_rejected(self):
        with pytest.raises(ValueError):
            dies_per_wafer(40000, 150)

    def test_die_cost_formula(self):
        dpw = dies_per_wafer(100, 200)
        assert die_cost(2000, 100, 200, 0.5) == pytest.approx(
            2000 / (dpw * 0.5)
        )

    def test_die_cost_validation(self):
        with pytest.raises(ValueError):
            die_cost(0, 100, 200, 0.5)
        with pytest.raises(ValueError):
            die_cost(2000, 100, 200, 0.0)


class TestDataset:
    def test_lookup(self):
        cpu = get_processor("TI SuperSPARC")
        assert cpu.die_area_mm2 == 256.0

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="known"):
            get_processor("Itanium")

    def test_two_metal_chips_cannot_take_bisr(self):
        for cpu in MPR_1994_DATASET:
            if cpu.metal_layers < 3:
                assert not cpu.supports_bisr

    def test_final_test_yields(self):
        assert get_processor("Intel486DX2").final_test_yield == 0.97
        assert get_processor("Intel386DX").final_test_yield == 0.93

    def test_dataset_has_both_wafer_sizes(self):
        sizes = {cpu.wafer_mm for cpu in MPR_1994_DATASET}
        assert sizes == {150, 200}


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r["name"]: r for r in table2_rows()}

    def test_blank_entries_for_two_metal(self, rows):
        assert rows["Intel386DX"]["die_cost_with"] is None
        assert rows["microSPARC"]["die_cost_with"] is None
        assert rows["MIPS R4200"]["die_cost_with"] is None

    def test_bisr_always_cheaper(self, rows):
        for r in rows.values():
            if r["die_cost_with"] is not None:
                assert r["die_cost_with"] < r["die_cost_without"]

    def test_supersparc_near_2x(self, rows):
        """Paper: 'a significant decrease in the cost per good die ...
        often by a factor of about 2' — SuperSPARC is the flagship."""
        assert rows["TI SuperSPARC"]["improvement"] >= 1.5

    def test_small_die_small_benefit(self, rows):
        assert rows["Intel486DX2"]["improvement"] <= 1.10

    def test_bigger_cache_fraction_bigger_benefit(self, rows):
        assert rows["MIPS R4400"]["improvement"] > \
            rows["Intel486DX2"]["improvement"]


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r["name"]: r for r in table3_rows()}

    def test_reduction_band_matches_paper(self, rows):
        """Paper: reductions span 2.35% (486DX2) to 47.2% (SuperSPARC)."""
        r486 = rows["Intel486DX2"]["reduction_percent"]
        rss = rows["TI SuperSPARC"]["reduction_percent"]
        assert 1.0 <= r486 <= 8.0
        assert 30.0 <= rss <= 50.0

    def test_die_cost_dominates_total(self, rows):
        """Paper: die cost is 30-70% of the total (more for big dies)."""
        for r in rows.values():
            assert 0.30 <= r["die_cost_share"] <= 0.90

    def test_total_with_bisr_never_higher(self, rows):
        for r in rows.values():
            if r["total_with"] is not None:
                assert r["total_with"] <= r["total_without"]

    def test_comparison_api(self):
        without, with_ = die_cost_comparison(get_processor("PowerPC601"))
        assert with_.die_yield > without.die_yield
        assert with_.dies_per_wafer <= without.dies_per_wafer


class TestBinning:
    def test_fractions_sum_to_one(self):
        fr = binning_distribution(100, 10, [90, 100, 110])
        assert sum(fr) == pytest.approx(1.0)
        assert len(fr) == 4

    def test_symmetric_about_mean(self):
        fr = binning_distribution(100, 10, [100])
        assert fr[0] == pytest.approx(0.5)

    def test_edges_must_ascend(self):
        with pytest.raises(ValueError):
            binning_distribution(100, 10, [110, 100])

    def test_sigma_positive(self):
        with pytest.raises(ValueError):
            binning_distribution(100, 0, [100])

    def test_price_count_checked(self):
        with pytest.raises(ValueError):
            SpeedBinning(100, 10, (90, 110), (1.0,))

    def test_matched_demand_no_overbuild(self):
        b = SpeedBinning(100, 10, (90, 110), (50.0, 80.0, 120.0))
        supply = b.supply_fractions()
        assert b.production_scale_for_demand(supply) == pytest.approx(1.0)

    def test_fast_part_demand_forces_overbuild(self):
        """Fig. 8's story: demand skewed to the fastest bin forces the
        vendor to overbuild everything."""
        b = SpeedBinning(100, 10, (90, 110), (50.0, 80.0, 120.0))
        supply = b.supply_fractions()
        demand = [0.0, 0.0, 1.0]
        scale = b.production_scale_for_demand(demand)
        assert scale == pytest.approx(1.0 / supply[2])
        assert scale > 4.0

    def test_premium_positive_under_mismatch(self):
        b = SpeedBinning(100, 10, (90, 110), (50.0, 80.0, 120.0))
        premium = b.premium_for_demand([0.0, 0.2, 0.8], unit_cost=30.0)
        assert premium > 0.0

    def test_demand_must_sum_to_one(self):
        b = SpeedBinning(100, 10, (90, 110), (50.0, 80.0, 120.0))
        with pytest.raises(ValueError):
            b.production_scale_for_demand([0.5, 0.2, 0.2])

    def test_revenue_per_unit(self):
        b = SpeedBinning(100, 10, (100,), (50.0, 100.0))
        assert b.revenue_per_wafer_unit() == pytest.approx(75.0)
