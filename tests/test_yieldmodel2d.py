"""2-D repairability: analytic lower bound, Monte-Carlo, spare-mix cost.

The acceptance claim of ISSUE 9 lives here: in a defect environment
with whole-column defects there is at least one density where a
row+column spare mix beats rows-only on cost per good bit — because a
rows-only array cannot repair a broken bit line at any spare count.
"""

import numpy as np
import pytest

from repro.cost import area_growth_factor, best_mix, spare_mix_sweep
from repro.yieldmodel import (
    bisr_yield_2d,
    repair_probability_2d,
    simulate_yield_2d,
)


class TestAnalytic2D:
    def test_zero_defect_rate_is_certain(self):
        assert repair_probability_2d(64, 32, 2, 2, 0.0) == \
            pytest.approx(1.0)

    def test_spares_help_when_defects_are_plentiful(self):
        # ~4 expected cell faults: coverage dominates the strict-
        # goodness penalty for keeping the spare silicon clean.
        lam = 2e-3
        r00 = repair_probability_2d(64, 32, 0, 0, lam)
        r20 = repair_probability_2d(64, 32, 2, 0, lam)
        r22 = repair_probability_2d(64, 32, 2, 2, lam)
        assert r00 < r20 < r22

    def test_strict_goodness_penalises_idle_spares(self):
        # At a vanishing defect rate extra spares only add silicon
        # that must stay clean — the bound correctly *drops*.
        lam = 1e-4
        assert repair_probability_2d(64, 32, 2, 2, lam) < \
            repair_probability_2d(64, 32, 2, 0, lam)

    def test_bad_inputs_raise(self):
        with pytest.raises(ValueError):
            repair_probability_2d(0, 32, 1, 1, 1e-4)
        with pytest.raises(ValueError):
            repair_probability_2d(64, 32, -1, 1, 1e-4)
        with pytest.raises(ValueError):
            repair_probability_2d(64, 32, 1, 1, -1e-4)
        with pytest.raises(ValueError):
            bisr_yield_2d(64, 8, 4, 1, 1, -1.0)
        with pytest.raises(ValueError):
            bisr_yield_2d(64, 8, 4, 1, 1, 1.0, growth_factor=0.9)

    def test_yield_decreases_with_defects(self):
        ys = [bisr_yield_2d(128, 8, 4, 2, 2, n, 1.05)
              for n in (0.0, 1.0, 3.0, 6.0)]
        assert all(a >= b for a, b in zip(ys, ys[1:]))
        assert ys[0] == pytest.approx(1.0)

    def test_analytic_is_a_lower_bound_on_monte_carlo(self):
        for n in (1.0, 3.0, 6.0):
            analytic = bisr_yield_2d(128, 8, 4, 2, 2, n)
            mc = simulate_yield_2d(
                128, 8, 4, 2, 2, n, trials=4000,
                rng=np.random.default_rng(2)).yield_estimate
            assert analytic <= mc + 0.03, (n, analytic, mc)


class TestMonteCarlo2D:
    def test_deterministic_under_a_seed(self):
        kwargs = dict(rows=64, bpw=4, bpc=4, spares_r=2, spares_c=2,
                      n_defects=2.0, trials=800,
                      row_defect_frac=0.1, col_defect_frac=0.1)
        a = simulate_yield_2d(rng=np.random.default_rng(9), **kwargs)
        b = simulate_yield_2d(rng=np.random.default_rng(9), **kwargs)
        assert (a.trials, a.good) == (b.trials, b.good)

    def test_rows_only_cannot_repair_column_lines(self):
        # Every defect is a column-line defect: a rows-only array only
        # survives trials with zero defects, spare columns repair most.
        kwargs = dict(rows=32, bpw=4, bpc=4, n_defects=2.0, trials=500,
                      col_defect_frac=1.0)
        rows_only = simulate_yield_2d(
            spares_r=4, spares_c=0,
            rng=np.random.default_rng(3), **kwargs)
        with_cols = simulate_yield_2d(
            spares_r=0, spares_c=4,
            rng=np.random.default_rng(3), **kwargs)
        assert with_cols.yield_estimate > rows_only.yield_estimate + 0.2

    def test_bad_fractions_raise(self):
        with pytest.raises(ValueError):
            simulate_yield_2d(32, 4, 4, 1, 1, 1.0,
                              row_defect_frac=0.7, col_defect_frac=0.6)

    def test_allocator_hard_cases_still_resolve(self):
        # High cell-fault density forces the allocate() path (residual
        # beyond the sr + sc fast path) without raising.
        mc = simulate_yield_2d(16, 2, 2, 2, 2, 6.0, trials=300,
                               rng=np.random.default_rng(4),
                               node_budget=200)
        assert 0 <= mc.good <= mc.trials


class TestSpareMixCost:
    def test_area_growth_factor_shape(self):
        base = area_growth_factor(128, 32, 0, 0)
        assert base == pytest.approx(1.0)
        rows_only = area_growth_factor(128, 32, 4, 0)
        with_cols = area_growth_factor(128, 32, 4, 2)
        assert 1.0 < rows_only < with_cols
        with pytest.raises(ValueError):
            area_growth_factor(0, 32, 1, 1)

    def test_mix_beats_rows_only_somewhere(self):
        # The ISSUE-9 acceptance sweep: with 5% column-line defects a
        # 2+2 mix must win on cost per good bit at >= 1 density.
        points = spare_mix_sweep(
            128, 8, 4, [(4, 0), (2, 2)], [2.0, 5.0],
            trials=1200, seed=3,
            row_defect_frac=0.02, col_defect_frac=0.05,
        )
        def cost(sr, sc, n):
            return next(p.cost_per_good_bit for p in points
                        if (p.spares_r, p.spares_c, p.n_defects)
                        == (sr, sc, n))
        assert any(cost(2, 2, n) < cost(4, 0, n) for n in (2.0, 5.0))

    def test_best_mix_tie_breaks_deterministically(self):
        points = spare_mix_sweep(
            64, 4, 4, [(2, 0), (0, 2)], [1.0],
            trials=300, seed=7, col_defect_frac=0.2,
        )
        assert best_mix(points) is best_mix(points, 1.0)
        with pytest.raises(ValueError):
            best_mix(points, 99.0)
