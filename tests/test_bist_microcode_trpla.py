"""Unit tests for the microcode assembler and the TRPLA model."""

import pytest

from repro.bist import (
    MicroInstruction,
    Microprogram,
    Trpla,
    assemble,
    read_plane_files,
    write_plane_files,
)


def two_state_program():
    return Microprogram(
        [
            MicroInstruction(
                name="a",
                outputs=("sig_a",),
                branches=(((("cond", 1),), "b"),),
                default="a",
            ),
            MicroInstruction(name="b", outputs=("sig_b",), default="a"),
        ],
        start="a",
    )


class TestMicroprogram:
    def test_duplicate_state_rejected(self):
        with pytest.raises(ValueError):
            Microprogram(
                [
                    MicroInstruction(name="a", default="a"),
                    MicroInstruction(name="a", default="a"),
                ],
                start="a",
            )

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            Microprogram(
                [MicroInstruction(name="a", default="zz")], start="a"
            )

    def test_state_without_successor_rejected(self):
        with pytest.raises(ValueError):
            Microprogram([MicroInstruction(name="a")], start="a")

    def test_state_bits(self):
        prog = two_state_program()
        assert prog.state_bits == 1

    def test_signal_inventories(self):
        prog = two_state_program()
        assert prog.condition_inputs() == ("cond",)
        assert prog.control_outputs() == ("sig_a", "sig_b")

    def test_encoding_start_is_zero(self):
        assert two_state_program().encoding()["a"] == 0

    def test_next_state_priority(self):
        st = MicroInstruction(
            name="s",
            branches=(
                ((("x", 1), ("y", 1)), "both"),
                ((("x", 1),), "just_x"),
            ),
            default="none",
        )
        assert st.next_state({"x": 1, "y": 1}) == "both"
        assert st.next_state({"x": 1, "y": 0}) == "just_x"
        assert st.next_state({"x": 0, "y": 1}) == "none"


class TestAssemble:
    def test_planes_consistent(self):
        pla = assemble(two_state_program())
        assert len(pla.and_plane) == len(pla.or_plane)
        width = 2 * len(pla.input_names)
        assert all(len(r) == width for r in pla.and_plane)

    def test_exactly_one_next_state_term_fires(self):
        """The disjointness property that makes OR-plane mixing safe."""
        prog = two_state_program()
        pla_data = assemble(prog)
        pla = Trpla(pla_data.and_plane, pla_data.or_plane)
        n_bits = pla_data.state_bits
        for state_code in range(len(prog)):
            for cond in (0, 1):
                inputs = [
                    (state_code >> b) & 1 for b in range(n_bits)
                ] + [cond]
                terms = pla.active_terms(inputs)
                next_terms = [
                    t for t in terms
                    if any(pla_data.or_plane[t][:n_bits])
                    or _is_next_state_term(pla_data, t)
                ]
                # Disjoint expansion: exactly one branch term active.
                branch_terms = [
                    t for t in terms if _is_next_state_term(pla_data, t)
                ]
                assert len(branch_terms) == 1

    def test_evaluation_matches_next_state(self):
        prog = two_state_program()
        pla_data = assemble(prog)
        pla = Trpla(pla_data.and_plane, pla_data.or_plane)
        enc = pla_data.state_encoding
        out = pla.evaluate([enc["a"], 1])
        next_code = out[0]
        assert next_code == enc["b"]
        # Control outputs: sig_a asserted in state a.
        names = pla_data.output_names
        assert out[names.index("sig_a")] == 1
        assert out[names.index("sig_b")] == 0


def _is_next_state_term(pla_data, term_index):
    """A term whose AND row tests a condition literal or whose OR row
    drives only next-state bits: the branch terms of the assembler."""
    n_bits = pla_data.state_bits
    or_row = pla_data.or_plane[term_index]
    drives_control = any(or_row[n_bits:])
    return not drives_control


class TestTrpla:
    def test_validation(self):
        with pytest.raises(ValueError):
            Trpla([], [])
        with pytest.raises(ValueError):
            Trpla([[1, 0, 1]], [[1]])  # odd width
        with pytest.raises(ValueError):
            Trpla([[1, 0]], [[1], [0]])  # row mismatch
        with pytest.raises(ValueError):
            Trpla([[1, 0], [0, 1]], [[1], []])  # ragged OR

    def test_and_or_logic(self):
        # Term 0: in0 AND NOT in1 -> out0;  term 1: in1 -> out1.
        pla = Trpla([[1, 0, 0, 1], [0, 0, 1, 0]], [[1, 0], [0, 1]])
        assert pla.evaluate([1, 0]) == (1, 0)
        assert pla.evaluate([1, 1]) == (0, 1)
        assert pla.evaluate([0, 0]) == (0, 0)

    def test_input_count_checked(self):
        pla = Trpla([[1, 0]], [[1]])
        with pytest.raises(ValueError):
            pla.evaluate([1, 0])

    def test_transistor_count(self):
        pla = Trpla([[1, 0, 0, 1], [0, 0, 1, 0]], [[1, 0], [0, 1]])
        assert pla.transistor_count() == 3 + 2


class TestPlaneFiles:
    def test_roundtrip(self, tmp_path):
        and_plane = [[1, 0, 0, 1], [0, 1, 1, 0]]
        or_plane = [[1, 0], [0, 1]]
        a, o = tmp_path / "and.plane", tmp_path / "or.plane"
        write_plane_files(a, o, and_plane, or_plane)
        got_and, got_or = read_plane_files(a, o)
        assert got_and == and_plane and got_or == or_plane

    def test_corrupt_file_rejected(self, tmp_path):
        a, o = tmp_path / "and.plane", tmp_path / "or.plane"
        a.write_text("10x1\n")
        o.write_text("10\n")
        with pytest.raises(ValueError, match="non-binary"):
            read_plane_files(a, o)

    def test_term_count_mismatch_rejected(self, tmp_path):
        a, o = tmp_path / "and.plane", tmp_path / "or.plane"
        a.write_text("1001\n0110\n")
        o.write_text("10\n")
        with pytest.raises(ValueError, match="disagree"):
            read_plane_files(a, o)

    def test_swapping_control_code_changes_behaviour(self, tmp_path):
        """The paper's workflow: edit the plane files to change the
        test algorithm."""
        a, o = tmp_path / "and.plane", tmp_path / "or.plane"
        write_plane_files(a, o, [[1, 0]], [[1]])
        and_p, or_p = read_plane_files(a, o)
        assert Trpla(and_p, or_p).evaluate([1]) == (1,)
        write_plane_files(a, o, [[0, 1]], [[1]])
        and_p, or_p = read_plane_files(a, o)
        assert Trpla(and_p, or_p).evaluate([1]) == (0,)
