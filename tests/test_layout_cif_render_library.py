"""Unit tests for CIF export, rendering, and the cell library."""

import io

import pytest

from repro.geometry import Point, Rect, Transform
from repro.layout import Cell, CellLibrary, render_ascii, render_svg, write_cif
from repro.tech import get_process

PROCESS = get_process("cda07")


def make_leaf():
    c = Cell("leafy")
    c.add_shape("metal1", Rect(0, 0, 100, 50))
    c.add_shape("poly", Rect(10, 10, 30, 40))
    return c


class TestCif:
    def test_structure(self):
        leaf = make_leaf()
        top = Cell("topcell")
        top.add_instance(leaf, Transform(translation=Point(500, 0)))
        out = io.StringIO()
        write_cif(top, out, PROCESS.layers)
        text = out.getvalue()
        assert text.count("DS ") == 2
        assert text.count("DF;") == 2
        assert "9 leafy;" in text
        assert "9 topcell;" in text
        assert text.rstrip().endswith("E")

    def test_children_defined_before_parents(self):
        leaf = make_leaf()
        top = Cell("topcell")
        top.add_instance(leaf, Transform())
        out = io.StringIO()
        write_cif(top, out, PROCESS.layers)
        text = out.getvalue()
        assert text.index("9 leafy;") < text.index("9 topcell;")

    def test_box_center_doubling(self):
        c = Cell("one")
        c.add_shape("metal1", Rect(0, 0, 10, 20))
        out = io.StringIO()
        write_cif(c, out, PROCESS.layers)
        # B <2*w> <2*h> <x1+x2> <y1+y2>
        assert "B 20 40 10 20;" in out.getvalue()

    def test_shared_subcell_emitted_once(self):
        leaf = make_leaf()
        top = Cell("topcell")
        top.add_instance(leaf, Transform())
        top.add_instance(leaf, Transform(translation=Point(200, 0)))
        out = io.StringIO()
        write_cif(top, out, PROCESS.layers)
        assert out.getvalue().count("9 leafy;") == 1


class TestRender:
    def test_svg_contains_shapes(self):
        svg = render_svg(make_leaf(), PROCESS.layers)
        assert svg.startswith("<svg")
        assert svg.count("<rect") >= 3  # background + 2 shapes

    def test_svg_empty_cell(self):
        assert "<svg" in render_svg(Cell("empty"), PROCESS.layers)

    def test_svg_depth_limit(self):
        top = Cell("top")
        top.add_instance(make_leaf(), Transform())
        deep = render_svg(top, PROCESS.layers)
        shallow = render_svg(top, PROCESS.layers, flatten_depth=0)
        assert deep.count("<rect") > shallow.count("<rect")

    def test_ascii_has_labels(self):
        top = Cell("macro")
        top.add_instance(make_leaf(), Transform(), name="blockA")
        art = render_ascii(top)
        assert "macro" in art
        assert "blockA" in art.replace("\n", "")

    def test_ascii_empty(self):
        assert "empty" in render_ascii(Cell("empty"))


class TestLibrary:
    def test_memoisation(self):
        calls = []

        def gen(process, size):
            calls.append(size)
            c = Cell(f"g{size}")
            c.add_shape("metal1", Rect(0, 0, size, size))
            return c

        lib = CellLibrary(PROCESS)
        a = lib.get("g", gen, (100,))
        b = lib.get("g", gen, (100,))
        c = lib.get("g", gen, (200,))
        assert a is b and a is not c
        assert calls == [100, 200]

    def test_user_cell_overrides_generator(self):
        lib = CellLibrary(PROCESS)
        custom = make_leaf()
        lib.register_user_cell("g", custom)

        def gen(process):
            raise AssertionError("generator must not run")

        assert lib.get("g", gen) is custom

    def test_len_counts_cache_and_user(self):
        lib = CellLibrary(PROCESS)
        lib.register_user_cell("u", make_leaf())
        lib.get("g", lambda p, s: make_leaf(), (1,))
        assert len(lib) == 2
