"""The three campaign drivers wired through the runtime."""

import numpy as np
import pytest

from repro.runtime import CampaignRunner
from repro.runtime.drivers import (
    montecarlo_campaign,
    repair_campaign,
    shard_trials,
    sizing_campaign,
)
from repro.yieldmodel import bisr_yield


class TestShardTrials:
    def test_exact_partition(self):
        for total, shards in ((100, 8), (7, 3), (5, 5), (3, 8)):
            counts = [shard_trials(total, shards, i)
                      for i in range(shards)]
            assert sum(counts) == total
            assert max(counts) - min(counts) <= 1


class TestMonteCarloDriver:
    def test_matches_analytic(self):
        spec = montecarlo_campaign(256, 4, 4, 4, defects=3.0,
                                   trials=40_000, n_shards=8, seed=11)
        result = CampaignRunner(workers=2).run(spec)
        assert result.completed == 8
        assert result.aggregates["trials"] == 40_000
        analytic = bisr_yield(256, 4, 4, 4, 3.0)
        assert result.aggregates["yield"] == pytest.approx(
            analytic, abs=0.03)
        # the Wilson bounds bracket the point estimate
        assert result.aggregates["wilson_low"] \
            < result.aggregates["yield"] \
            < result.aggregates["wilson_high"]

    def test_worker_count_invariance(self):
        spec = montecarlo_campaign(128, 4, 4, 4, defects=2.0,
                                   trials=10_000, n_shards=5, seed=4)
        one = CampaignRunner(workers=1).run(spec)
        three = CampaignRunner(workers=3).run(spec)
        assert one.aggregates == three.aggregates

    def test_more_shards_than_trials(self):
        spec = montecarlo_campaign(64, 4, 4, 4, defects=1.0,
                                   trials=3, n_shards=8, seed=0)
        result = CampaignRunner(workers=2).run(spec)
        assert result.completed == 8
        assert result.aggregates["trials"] == 3


class TestRepairDriver:
    def test_low_defect_counts_mostly_repair(self):
        spec = repair_campaign(16, 4, 4, 4, defects=1, trials=16,
                               n_shards=4, seed=23)
        result = CampaignRunner(workers=2).run(spec)
        assert result.completed == 4
        assert result.aggregates["trials"] == 16
        assert result.aggregates["repaired_fraction"] >= 0.85

    def test_overload_degrades_not_raises(self):
        spec = repair_campaign(16, 4, 4, 4, defects=24, trials=8,
                               n_shards=4, seed=5)
        result = CampaignRunner(workers=2).run(spec)
        # the devices degrade; the campaign itself completes cleanly
        assert result.completed == 4
        assert result.aggregates["degraded"] > 0
        assert result.aggregates["repaired_fraction"] < 1.0


class TestSizingDriver:
    def test_sweep_balances_every_width(self):
        spec = sizing_campaign(widths=(0.6, 1.2), tolerance=0.05)
        result = CampaignRunner(workers=2).run(spec)
        assert result.completed == 2
        assert result.aggregates["points"] == 2
        assert result.aggregates["imbalance_worst"] <= 0.05
        # balanced P/N ratio lands above the mobility ratio
        assert 1.5 < result.aggregates["ratio_min"] <= \
            result.aggregates["ratio_max"] < 4.0

    def test_checkpointed_sweep_resumes(self, tmp_path):
        checkpoint = tmp_path / "sizing.jsonl"
        spec = sizing_campaign(widths=(0.9,), max_iterations=4)
        full = CampaignRunner(checkpoint=str(checkpoint)).run(spec)
        resumed = CampaignRunner(checkpoint=str(checkpoint),
                                 resume=True).run(spec)
        assert resumed.resumed == 1
        assert resumed.aggregates == full.aggregates


class TestSeedSharding:
    def test_shard_results_are_independent_streams(self):
        """Two shards of the same campaign never share a generator."""
        spec = montecarlo_campaign(128, 4, 4, 4, defects=4.0,
                                   trials=8_000, n_shards=4, seed=9)
        result = CampaignRunner(workers=1).run(spec)
        goods = [s.result["good"] for s in result.shards]
        assert len(set(goods)) > 1  # astronomically unlikely otherwise

    def test_spawn_children_match_numpy_convention(self):
        parent = np.random.SeedSequence(9)
        children = parent.spawn(4)
        assert children[2].spawn_key == (2,)


class TestWorkloadValidation:
    def test_bad_parameters_fail_before_any_worker(self):
        """Deterministically-wrong parameters are a ConfigError at
        spec-build time (CLI exit 2), not n_shards lost shards."""
        from repro.core.errors import ConfigError

        with pytest.raises(ConfigError):
            montecarlo_campaign(64, 4, 4, 4, defects=-1.0)
        with pytest.raises(ConfigError):
            montecarlo_campaign(64, 4, 4, 4, defects=1.0, trials=0)
        with pytest.raises(ConfigError):
            repair_campaign(16, 4, 4, 4, defects=-2, trials=8)
