"""Control-logic validation: reachability, march round-trip, personality
equivalence, BISR invariants."""

from dataclasses import replace

import pytest

from repro.bist.controller import build_test_program
from repro.bist.march import IFA_9, MATS_PLUS
from repro.bist.microcode import MicroInstruction, Microprogram, assemble
from repro.bist.trpla import Trpla
from repro.verify import (
    check_bisr_invariants,
    check_control,
    check_march_roundtrip,
    check_personality,
    check_reachability,
)


@pytest.fixture(scope="module")
def program():
    return build_test_program(IFA_9, 2)


class TestReachability:
    def test_generated_program_is_clean(self, program):
        assert check_reachability(program) == []

    def test_unreachable_state_flagged(self):
        prog = Microprogram([
            MicroInstruction("a", default="b"),
            MicroInstruction("b", default="b"),
            MicroInstruction("orphan", default="b"),
        ], start="a")
        findings = check_reachability(prog)
        assert [f.kind for f in findings] == ["unreachable-state"]
        assert findings[0].subject == "orphan"

    def test_livelock_flagged_as_dead(self):
        # c and d form a cycle that can never reach the terminal b.
        prog = Microprogram([
            MicroInstruction("a", branches=(((("go", 1),), "c"),),
                             default="b"),
            MicroInstruction("b", default="b"),
            MicroInstruction("c", default="d"),
            MicroInstruction("d", default="c"),
        ], start="a")
        findings = check_reachability(prog)
        dead = {f.subject for f in findings if f.kind == "dead-state"}
        assert dead == {"c", "d"}


class TestMarchRoundTrip:
    def test_generated_program_matches_march(self, program):
        assert check_march_roundtrip(program, IFA_9, passes=2) == []

    def test_wrong_march_mismatches(self, program):
        findings = check_march_roundtrip(program, MATS_PLUS, passes=2)
        assert findings
        assert all(f.kind == "march-mismatch" for f in findings)

    def test_corrupted_op_polarity_flagged(self, program):
        bad = Microprogram(list(program.states.values()), program.start)
        name = "p1_e1_o0"
        inst = bad.states[name]
        flipped = set(inst.outputs) ^ {"data_inv"}
        bad.states[name] = replace(inst, outputs=frozenset(flipped))
        findings = check_march_roundtrip(bad, IFA_9, passes=2)
        assert any(f.subject == name for f in findings)


class TestPersonality:
    def test_assembled_personality_equivalent(self, program):
        assert check_personality(program) == []

    def test_corrupted_or_plane_names_state(self, program):
        # Some single-bit flips are masked by OR-plane redundancy
        # (another active term supplies the same output); scan for a
        # semantically visible one — it must exist within a few terms.
        asm = assemble(program)
        findings = []
        for term in range(8):
            or_plane = [list(r) for r in asm.or_plane]
            or_plane[term][0] ^= 1
            findings = check_personality(
                program, Trpla(asm.and_plane, or_plane))
            if findings:
                break
        assert findings
        assert all(f.kind == "microword-mismatch" for f in findings)
        assert all(f.subject in program.states for f in findings)

    def test_corrupted_and_plane_detected(self, program):
        # Adding a spurious literal makes a term fire in fewer states
        # than the microprogram expects; scan past any term whose
        # outputs happen to be covered by the remaining active terms.
        asm = assemble(program)
        findings = []
        for term in range(len(asm.and_plane)):
            and_plane = [list(r) for r in asm.and_plane]
            row = and_plane[term]
            zero_cols = [i for i, bit in enumerate(row) if not bit]
            if not zero_cols:
                continue
            row[zero_cols[0]] = 1
            findings = check_personality(
                program, Trpla(and_plane, asm.or_plane))
            if findings:
                break
        assert findings

    def test_truncated_plane_reported_not_raised(self, program):
        asm = assemble(program)
        bad = Trpla(asm.and_plane[:4], asm.or_plane[:4])
        findings = check_personality(program, bad)
        assert findings
        assert all(f.kind == "microword-mismatch" for f in findings)


class TestBisrInvariants:
    def test_healthy_repair_run_is_clean(self):
        assert check_bisr_invariants() == []

    def test_orchestrator_clean_and_stats(self):
        findings, stats = check_control()
        assert findings == []
        assert stats["states"] > 40
        assert stats["condition_inputs"] == 5
        assert stats["assignments_per_state"] == 32
