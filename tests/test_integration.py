"""Integration tests: the whole tool, end to end.

These are the scenarios a user of the shipped tool would run: compile a
macro, inject manufacturing defects into its simulation model, run the
generated self-test controller, and use the repaired part — plus the
cross-checks between independent subsystems (static repair analysis vs.
dynamic BIST outcome, analytic yield vs. Monte-Carlo BIST campaigns).
"""

import random

import pytest

from repro import RamConfig, compile_ram
from repro.bisr import analyze_repair
from repro.bist import IFA_9, BistScheduler, TrplaController
from repro.layout import DrcChecker
from repro.memsim import BisrRam, DefectInjector, FaultMix
from repro.memsim.faults import RowStuck, StuckAt
from repro.tech import get_process
from repro.yieldmodel import bisr_yield

CFG = RamConfig(words=64, bpw=8, bpc=4, spares=4, strap_every=8)


class TestCompileAndSelfTest:
    @pytest.fixture(scope="class")
    def ram(self):
        return compile_ram(CFG)

    def test_compiled_layout_is_drc_clean(self, ram):
        process = get_process(CFG.process)
        violations = DrcChecker(process).check(
            ram.floorplan.macrocells["array"]
        )
        assert violations == []

    def test_fault_inject_then_self_repair_then_use(self, ram):
        device = ram.simulation_model()
        device.array.inject(
            StuckAt(device.array.cell_index(3, 2, 1), 1)
        )
        device.array.inject(RowStuck(7, device.array.phys_cols, 0))
        controller = ram.self_test_controller(device)
        result = controller.run()
        assert result.repaired
        # Normal-mode use after repair: clean.
        assert device.check_pattern(0xA5 & ((1 << CFG.bpw) - 1)) == 0

    def test_datasheet_tlb_ratio(self, ram):
        # Even on this tiny test macro the TLB penalty stays below the
        # access time; the order-of-magnitude claim is for large arrays
        # (asserted below on the Fig. 7 configuration).
        ds = ram.datasheet
        assert ds.tlb_penalty_s < ds.read_access_s

    def test_tlb_order_of_magnitude_on_large_array(self):
        from repro.core.datasheet import build_datasheet

        big = RamConfig(words=4096, bpw=256, bpc=16)  # Fig. 7 (1 Mbit)
        ds = build_datasheet(big, area_mm2=400.0)
        assert ds.read_access_s / ds.tlb_penalty_s > 8.0


class TestStaticVsDynamicRepair:
    @pytest.mark.parametrize("seed", range(6))
    def test_analysis_predicts_bist_outcome(self, seed):
        """analyze_repair (static) and the BIST+TLB flow (dynamic) must
        agree on repairability for row-level fault patterns."""
        rng = random.Random(seed)
        rows, spares = 12, 4
        n_bad_rows = rng.randrange(0, 7)
        bad_rows = sorted(rng.sample(range(rows), n_bad_rows))
        bad_spares = sorted(
            s for s in range(spares) if rng.random() < 0.3
        )
        device = BisrRam(rows=rows, bpw=4, bpc=4, spares=spares)
        for row in bad_rows:
            device.array.inject(
                RowStuck(row, device.array.phys_cols, rng.randrange(2))
            )
        for s in bad_spares:
            device.array.inject(
                RowStuck(rows + s, device.array.phys_cols,
                         rng.randrange(2))
            )
        prediction = analyze_repair(bad_rows, spares, bad_spares)
        result = BistScheduler(IFA_9, bpw=4).run(
            device, passes=max(prediction.passes_needed, 2) + 2,
            stop_on_repair_fail=False,
        )
        assert result.repaired == prediction.repairable, (
            bad_rows, bad_spares, prediction,
        )

    def test_spares_consumed_agree(self):
        device = BisrRam(rows=12, bpw=4, bpc=4, spares=4)
        bad_rows = [2, 9]
        for row in bad_rows:
            device.array.inject(RowStuck(row, device.array.phys_cols, 1))
        prediction = analyze_repair(bad_rows, 4)
        BistScheduler(IFA_9, bpw=4).run(device)
        assert device.tlb.spares_used == prediction.spares_consumed


class TestMonteCarloVsAnalyticYield:
    def test_bist_campaign_tracks_yield_model(self):
        """Monte-Carlo: inject Poisson-lambda defects, run full
        BIST/BISR, measure the repaired fraction; must correlate with
        the analytic Y_R ordering in defect count."""
        rng = random.Random(11)
        rows, bpw, bpc, spares = 16, 4, 4, 4
        mix = FaultMix(stuck_at=1.0, transition=0.0, stuck_open=0.0,
                       state_coupling=0.0, idempotent_coupling=0.0,
                       inversion_coupling=0.0, data_retention=0.0,
                       row_defect=0.0, column_defect=0.0)
        trials = 30

        def repaired_fraction(n_defects):
            wins = 0
            for _ in range(trials):
                device = BisrRam(rows=rows, bpw=bpw, bpc=bpc,
                                 spares=spares)
                DefectInjector(rng=rng, mix=mix).inject(
                    device.array, n_defects
                )
                result = BistScheduler(IFA_9, bpw=bpw).run(device)
                wins += result.repaired
            return wins / trials

    # Low-defect arrays must repair far more often than saturated ones,
    # and the analytic model must order the same way.
        few, many = repaired_fraction(2), repaired_fraction(20)
        assert few > many
        assert bisr_yield(rows, spares, bpw, bpc, 2) > \
            bisr_yield(rows, spares, bpw, bpc, 20)
        assert few >= 0.8

    def test_repaired_devices_pass_functional_sweep(self):
        rng = random.Random(5)
        for _ in range(10):
            device = BisrRam(rows=16, bpw=4, bpc=4, spares=4)
            DefectInjector(rng=rng).inject(device.array, 3)
            result = BistScheduler(IFA_9, bpw=4).run(
                device, passes=6, stop_on_repair_fail=False
            )
            if result.repaired:
                retained = device.check_pattern(0b0110)
                # Retention faults may still fire on the *next* wait,
                # but a plain write/read sweep must be clean.
                assert retained == 0


class TestControllerHardwareEquivalence:
    def test_streams_identical_on_faulty_memory_pass1(self):
        """On an identical faulty device, the TRPLA-driven controller
        and the reference scheduler issue the same pass-1 op stream
        (pass 2 diverges by design: the hardware aborts at the first
        verification failure)."""

        def build():
            d = BisrRam(rows=8, bpw=4, bpc=4, spares=4)
            d.array.inject(StuckAt(d.array.cell_index(1, 0, 0), 1))
            return d

        d1, d2 = build(), build()
        r1 = BistScheduler(IFA_9, bpw=4, record_ops=True).run(
            d1, passes=1
        )
        c = TrplaController(IFA_9, bpw=4, target=d2, record_ops=True)
        while not c.finished and c.pass_no == 1:
            c.step()
        pass1_ops = [op for op in c.result.ops if op.pass_no == 1]
        assert pass1_ops == r1.ops
        assert d1.tlb.mapped_rows() == d2.tlb.mapped_rows()
