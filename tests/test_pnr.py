"""Unit tests for macrocell place-and-route."""

import pytest

from repro.geometry import Point, Rect, Transform
from repro.layout import Cell, Port
from repro.pnr import (
    Block,
    ChannelRouter,
    Net,
    abutting_ports,
    align_ports,
    place_decreasing_area,
    placement_quality,
    route_channel,
    stretch_cell,
)
from repro.pnr.abutment import unconnected_ports
from repro.pnr.router import over_the_cell_route
from repro.tech import get_process

PROCESS = get_process("cda07")


class TestPlacer:
    def blocks(self):
        return [
            Block("array", 1000, 800),
            Block("decoder", 120, 800),
            Block("sense", 1000, 150),
            Block("tlb", 300, 100),
            Block("pla", 200, 250),
        ]

    def test_no_overlaps(self):
        placement = place_decreasing_area(self.blocks())
        assert placement.overlaps() == []

    def test_all_blocks_placed(self):
        placement = place_decreasing_area(self.blocks())
        assert set(placement.locations) == {b.name for b in self.blocks()}

    def test_rectangularity(self):
        """The 'as rectangular as possible' objective: for a memory-
        shaped block set, fill within the paper's (1+epsilon) band."""
        placement = place_decreasing_area(self.blocks())
        quality = placement_quality(placement, self.blocks())
        assert quality.fill_ratio >= 0.6
        assert quality.aspect_ratio <= 3.0
        assert quality.epsilon <= 0.7

    def test_sorted_by_decreasing_area(self):
        """The largest block must anchor the first shelf at the origin."""
        placement = place_decreasing_area(self.blocks())
        assert placement.locations["array"].lower_left == Point(0, 0)

    def test_spacing_respected(self):
        placement = place_decreasing_area(self.blocks(), spacing=50)
        locs = list(placement.locations.values())
        for i, a in enumerate(locs):
            for b in locs[i + 1:]:
                assert not a.expanded(25).overlaps(b.expanded(24))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            place_decreasing_area([Block("x", 1, 1), Block("x", 2, 2)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            place_decreasing_area([])

    def test_block_validation(self):
        with pytest.raises(ValueError):
            Block("bad", 0, 5)

    def test_block_from_cell(self):
        c = Cell("macro")
        c.add_shape("metal1", Rect(0, 0, 70, 30))
        b = Block.from_cell(c)
        assert (b.width, b.height) == (70, 30)

    def test_block_from_empty_cell_rejected(self):
        with pytest.raises(ValueError):
            Block.from_cell(Cell("empty"))


def _cell_with_right_ports(name, ys, width=100, height=200):
    c = Cell(name)
    c.add_shape("metal1", Rect(0, 0, width, height))
    for i, y in enumerate(ys):
        c.add_port(Port(f"p{i}", "metal2", Rect(width, y, width, y + 4)))
    return c


def _cell_with_left_ports(name, ys, width=100, height=200):
    c = Cell(name)
    c.add_shape("metal1", Rect(0, 0, width, height))
    for i, y in enumerate(ys):
        c.add_port(Port(f"q{i}", "metal2", Rect(0, y, 0, y + 4)))
    return c


class TestPortAlignment:
    def test_facing_placement(self):
        a = _cell_with_right_ports("a", [20, 60, 100])
        b = _cell_with_left_ports("b", [20, 60, 100])
        result = align_ports(a, b, [("p0", "q0"), ("p1", "q1"),
                                    ("p2", "q2")])
        # Perfectly matching pitches: zero residual misalignment, B
        # placed flush to A's right edge.
        assert result.misalignment == 0
        placed = b.bbox().transformed(result.transform)
        assert placed.x1 == a.bbox().x2

    def test_gap_respected(self):
        a = _cell_with_right_ports("a", [20])
        b = _cell_with_left_ports("b", [20])
        result = align_ports(a, b, [("p0", "q0")], gap=40)
        placed = b.bbox().transformed(result.transform)
        assert placed.x1 == a.bbox().x2 + 40

    def test_offset_pitches_report_misalignment(self):
        a = _cell_with_right_ports("a", [20, 60, 100])
        b = _cell_with_left_ports("b", [20, 70, 120])
        result = align_ports(a, b, [("p0", "q0"), ("p1", "q1"),
                                    ("p2", "q2")])
        assert result.misalignment > 0

    def test_median_alignment_beats_first_port(self):
        # Outlier first pair; median choice keeps total misalignment low.
        a = _cell_with_right_ports("a", [20, 60, 100])
        b = _cell_with_left_ports("b", [50, 60, 100])
        result = align_ports(a, b, [("p0", "q0"), ("p1", "q1"),
                                    ("p2", "q2")])
        assert result.misalignment == 30  # only the outlier misses

    def test_same_edge_ports_get_mirrored(self):
        a = _cell_with_right_ports("a", [20, 60])
        b = _cell_with_right_ports("b", [20, 60])
        result = align_ports(
            a, b, [("p0", "p0"), ("p1", "p1")]
        )
        assert result.transform.is_mirrored()

    def test_needs_pairs(self):
        a = _cell_with_right_ports("a", [20])
        b = _cell_with_left_ports("b", [20])
        with pytest.raises(ValueError):
            align_ports(a, b, [])

    def test_interior_port_rejected(self):
        a = _cell_with_right_ports("a", [20])
        bad = Cell("bad")
        bad.add_shape("metal1", Rect(0, 0, 100, 100))
        bad.add_port(Port("q0", "metal2", Rect(50, 50, 50, 54)))
        with pytest.raises(ValueError, match="boundary"):
            align_ports(a, bad, [("p0", "q0")])


class TestStretching:
    def make_cell(self):
        c = Cell("s")
        c.add_shape("metal1", Rect(0, 0, 10, 100))  # full-height rail
        c.add_shape("poly", Rect(20, 10, 30, 20))   # below the cut
        c.add_shape("poly", Rect(20, 60, 30, 70))   # above the cut
        c.add_port(Port("top", "metal1", Rect(0, 90, 0, 95)))
        return c

    def test_shapes_beyond_cut_move(self):
        got = stretch_cell(self.make_cell(), [(50, 40)])
        shapes = dict()
        polys = sorted(r for l, r in got.flatten() if l == "poly")
        assert polys[0] == Rect(20, 10, 30, 20)       # unmoved
        assert polys[1] == Rect(20, 100, 30, 110)     # moved by 40

    def test_spanning_shapes_grow(self):
        got = stretch_cell(self.make_cell(), [(50, 40)])
        rail = [r for l, r in got.flatten() if l == "metal1"][0]
        assert rail == Rect(0, 0, 10, 140)  # stays continuous

    def test_ports_move(self):
        got = stretch_cell(self.make_cell(), [(50, 40)])
        assert got.port("top").rect == Rect(0, 130, 0, 135)

    def test_multiple_cuts_accumulate(self):
        got = stretch_cell(self.make_cell(), [(5, 10), (50, 40)])
        rail = [r for l, r in got.flatten() if l == "metal1"][0]
        assert rail.height == 150

    def test_x_axis(self):
        got = stretch_cell(self.make_cell(), [(15, 100)], axis="x")
        polys = [r for l, r in got.flatten() if l == "poly"]
        assert all(p.x1 == 120 for p in polys)

    def test_negative_stretch_rejected(self):
        with pytest.raises(ValueError):
            stretch_cell(self.make_cell(), [(50, -1)])

    def test_bad_axis(self):
        with pytest.raises(ValueError):
            stretch_cell(self.make_cell(), [(50, 1)], axis="z")


class TestChannelRouter:
    def test_disjoint_nets_share_track(self):
        router = ChannelRouter(PROCESS)
        nets = [
            Net("a", top_pins=(0,), bottom_pins=(1000,)),
            Net("b", top_pins=(5000,), bottom_pins=(6000,)),
        ]
        routed = {r.net.name: r.track for r in router.assign_tracks(nets)}
        assert routed["a"] == routed["b"] == 0

    def test_overlapping_nets_get_distinct_tracks(self):
        router = ChannelRouter(PROCESS)
        nets = [
            Net("a", top_pins=(0, 5000)),
            Net("b", bottom_pins=(2000, 7000)),
        ]
        routed = {r.net.name: r.track for r in router.assign_tracks(nets)}
        assert routed["a"] != routed["b"]

    def test_channel_height_scales_with_congestion(self):
        router = ChannelRouter(PROCESS)
        thin = [Net("a", top_pins=(0, 1000))]
        fat = [Net(f"n{i}", top_pins=(0, 1000)) for i in range(6)]
        assert router.channel_height(fat) > router.channel_height(thin)

    def test_route_channel_emits_geometry(self):
        cell, height = route_channel(
            PROCESS,
            [Net("a", top_pins=(100,), bottom_pins=(2000,))],
        )
        layers = {l for l, _ in cell.flatten()}
        assert "metal2" in layers and "metal3" in layers
        assert height > 0

    def test_net_needs_pins(self):
        with pytest.raises(ValueError):
            Net("empty")


class TestOverTheCellRoute:
    def test_clean_route(self):
        macro = Cell("macro")
        macro.add_shape("metal1", Rect(0, 0, 10000, 5000))
        wire = over_the_cell_route(PROCESS, macro, 0, 10000, 2000)
        assert any(l == "metal3" for l, _ in wire.flatten())

    def test_conflict_detected(self):
        macro = Cell("macro")
        macro.add_shape("metal3", Rect(0, 1990, 10000, 2100))
        with pytest.raises(ValueError, match="conflicts"):
            over_the_cell_route(PROCESS, macro, 0, 10000, 2000)


class TestAbutment:
    def _abutting_pair(self):
        a = _cell_with_right_ports("a", [20])
        b = _cell_with_left_ports("b", [20])
        top = Cell("top")
        top.add_instance(a, Transform(), name="A")
        top.add_instance(b, Transform(translation=Point(100, 0)), name="B")
        return top

    def test_detects_abutment(self):
        found = abutting_ports(self._abutting_pair())
        assert ("A", "p0", "B", "q0") in found

    def test_gap_breaks_abutment(self):
        a = _cell_with_right_ports("a", [20])
        b = _cell_with_left_ports("b", [20])
        top = Cell("top")
        top.add_instance(a, Transform(), name="A")
        top.add_instance(b, Transform(translation=Point(101, 0)), name="B")
        assert abutting_ports(top) == []

    def test_layer_mismatch_not_connected(self):
        a = _cell_with_right_ports("a", [20])
        b = Cell("b")
        b.add_shape("metal1", Rect(0, 0, 100, 200))
        b.add_port(Port("q0", "metal1", Rect(0, 20, 0, 24)))
        top = Cell("top")
        top.add_instance(a, Transform(), name="A")
        top.add_instance(b, Transform(translation=Point(100, 0)), name="B")
        assert abutting_ports(top) == []

    def test_unconnected_report(self):
        top = self._abutting_pair()
        assert unconnected_ports(top, ["p0", "zz"]) == ["zz"]
