"""Tests for the process learning-curve and extra-layer cost models."""

import pytest

from repro.cost import get_processor
from repro.cost.learning import (
    LearningCurve,
    bisr_advantage_over_ramp,
    extra_layer_wafer_cost,
)


class TestLearningCurve:
    def test_monotone_decay_to_floor(self):
        curve = LearningCurve(d0_per_cm2=2.5, d_inf_per_cm2=0.5,
                              tau_months=6.0)
        densities = [curve.density_at(m) for m in (0, 3, 6, 12, 60)]
        assert densities == sorted(densities, reverse=True)
        assert densities[0] == pytest.approx(2.5)
        assert densities[-1] == pytest.approx(0.5, abs=0.01)

    def test_yield_improves_with_maturity(self):
        curve = LearningCurve()
        y_early = curve.die_yield_at(0, 256.0)
        y_late = curve.die_yield_at(24, 256.0)
        assert y_late > 2 * y_early

    def test_validation(self):
        with pytest.raises(ValueError):
            LearningCurve(d0_per_cm2=0.1, d_inf_per_cm2=0.5)
        with pytest.raises(ValueError):
            LearningCurve(tau_months=0)
        with pytest.raises(ValueError):
            LearningCurve().density_at(-1)


class TestBisrOverRamp:
    def test_advantage_largest_early(self):
        """The §X corollary: BISR saves the most during early ramp."""
        cpu = get_processor("TI SuperSPARC")
        rows = bisr_advantage_over_ramp(cpu, LearningCurve())
        savings = [
            (month, without - with_)
            for month, _, without, with_ in rows
        ]
        # Absolute savings per die shrink as the process matures.
        values = [s for _, s in savings]
        assert values == sorted(values, reverse=True)
        assert values[0] > 2 * values[-1]

    def test_yield_column_monotone(self):
        cpu = get_processor("MIPS R4400")
        rows = bisr_advantage_over_ramp(cpu, LearningCurve())
        yields = [y for _, y, _, _ in rows]
        assert yields == sorted(yields)

    def test_bisr_never_costs_more(self):
        cpu = get_processor("PowerPC601")
        for _, _, without, with_ in bisr_advantage_over_ramp(
            cpu, LearningCurve()
        ):
            assert with_ <= without


class TestExtraLayers:
    def test_three_metal_baseline_unchanged(self):
        assert extra_layer_wafer_cost(2000.0, 3) == 2000.0

    def test_four_metal_adds_one_step(self):
        assert extra_layer_wafer_cost(2000.0, 4) == 2150.0

    def test_extra_poly_counts_as_metal(self):
        assert extra_layer_wafer_cost(2000.0, 3, extra_poly_layers=1) \
            == 2150.0

    def test_local_interconnect_half_step(self):
        assert extra_layer_wafer_cost(
            2000.0, 3, local_interconnect=True
        ) == 2075.0

    def test_validation(self):
        with pytest.raises(ValueError):
            extra_layer_wafer_cost(2000.0, 0)
