"""Transistor-level dynamics of the generated cells, via the transient
engine: the 6T cell holds and accepts writes, the word-line driver
drives its load, the precharge equalises the bit lines.

These are the checks the compiler's "extract and simulate [leaf cells]
ahead of time" flow performs to back its guarantees.
"""

import pytest

from repro.cells import precharge_netlist, sram6t_netlist
from repro.cells.drivers import wordline_driver_netlist
from repro.circuit.netlist import GND
from repro.spice import TransientEngine, propagation_delay, step
from repro.tech import get_process

PROCESS = get_process("cda07")
VDD = PROCESS.vdd


class TestSram6tDynamics:
    def _cell(self, wl_wave, bl_wave, blb_wave, q0, t_stop=6e-9):
        net = sram6t_netlist(PROCESS)
        net.add_source("vdd", VDD)
        net.add_source("wl", wl_wave)
        net.add_source("bl", bl_wave)
        net.add_source("blb", blb_wave)
        engine = TransientEngine(net)
        return engine.run(
            t_stop, record=["q", "qb"],
            initial={"q": q0, "qb": VDD - q0},
        )

    def test_holds_state_with_wordline_low(self):
        for q0 in (0.0, VDD):
            result = self._cell(0.0, VDD, VDD, q0)
            assert result.final("q") == pytest.approx(q0, abs=0.3)

    def test_write_zero(self):
        # WL high, BL low / BLB high writes 0 into a cell holding 1.
        result = self._cell(step(1e-9, 0.0, VDD), 0.0, VDD, q0=VDD)
        assert result.final("q") < 0.1 * VDD
        assert result.final("qb") > 0.9 * VDD

    def test_write_one(self):
        result = self._cell(step(1e-9, 0.0, VDD), VDD, 0.0, q0=0.0)
        assert result.final("q") > 0.9 * VDD

    def test_read_disturb_limited(self):
        """Read access (both bit lines precharged high) must not flip a
        stored 0 — the pull-down/access ratio guarantees it."""
        result = self._cell(step(1e-9, 0.0, VDD), VDD, VDD, q0=0.0,
                            t_stop=8e-9)
        assert result.final("q") < 0.5 * VDD  # state survives the read


class TestWordlineDriverDynamics:
    @staticmethod
    def _run(gate_size):
        net = wordline_driver_netlist(PROCESS, gate_size=gate_size,
                                      wl_cap_f=800e-15)
        net.add_source("vdd", VDD)
        net.add_source("in", step(0.5e-9, VDD, 0.0))
        return TransientEngine(net).run(
            8e-9, record=["in", "wl"],
            initial={"wl": 0.0, "s1": 0.0, "s2": VDD},
        )

    def test_drives_heavy_load(self):
        result = self._run(2)
        # Decoder output falls (active low) -> WL rises.
        assert result.final("wl") > 0.9 * VDD
        d = propagation_delay(result, "in", "wl", VDD,
                              input_rising=False, output_rising=True)
        assert d < 2e-9

    def test_gate_size_speeds_it_up(self):
        def delay(gate_size):
            return propagation_delay(
                self._run(gate_size), "in", "wl", VDD,
                input_rising=False, output_rising=True,
            )

        assert delay(3) < delay(1)


class TestPrechargeDynamics:
    def test_equalises_and_pulls_up(self):
        net = precharge_netlist(PROCESS, gate_size=2)
        net.add_source("vdd", VDD)
        net.add_source("pcb", step(1e-9, VDD, 0.0))  # active low
        net.add_capacitor("bl", GND, 300e-15)
        net.add_capacitor("blb", GND, 300e-15)
        result = TransientEngine(net).run(
            12e-9, record=["bl", "blb"],
            initial={"bl": 0.5, "blb": 4.5},
        )
        assert result.final("bl") > 0.85 * VDD
        assert result.final("blb") > 0.85 * VDD
        assert abs(result.final("bl") - result.final("blb")) < 0.1
