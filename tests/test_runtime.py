"""The crash-safe campaign runtime: runner, journal, degradation.

The shard tasks live at module top level because process-pool dispatch
pickles them by qualified name — exactly the contract
:class:`~repro.runtime.runner.CampaignSpec` enforces.
"""

import json
import os
import time

import pytest

from repro.core.errors import ConfigError, SpiceConvergenceError
from repro.runtime import (
    CampaignRunner,
    CampaignSpec,
    CheckpointJournal,
    RetryPolicy,
    ShardSpec,
)

# ---------------------------------------------------------------------------
# shard tasks (top level: picklable by name)
# ---------------------------------------------------------------------------


def draw_task(params, shard):
    """Deterministic per-shard draw from the spawned seed stream."""
    rng = shard.rng()
    return {"value": int(rng.integers(0, 10_000)), "index": shard.index}


def flaky_task(params, shard):
    """Raises SpiceConvergenceError on the configured shard indices."""
    if shard.index in params["fail"]:
        raise SpiceConvergenceError(
            "transient stalled", t_reached=2e-9, t_stop=4e-9, steps=10
        )
    if shard.index == params.get("crash", -1):
        os._exit(17)  # hard-kill the worker: the BrokenProcessPool path
    return draw_task(params, shard)


def second_try_task(params, shard):
    """Fails its first dispatch, succeeds on the retry."""
    if shard.attempt == 1:
        raise RuntimeError("first attempt always fails")
    return draw_task(params, shard)


def config_error_task(params, shard):
    raise ConfigError("deterministic misuse")


def slow_task(params, shard):
    if shard.index == params.get("slow", -1):
        time.sleep(30)
    return draw_task(params, shard)


def reduce_draws(results):
    done = [r for r in results if r is not None]
    return {"n": len(done), "sum": sum(r["value"] for r in done)}


def spec_for(task, n_shards=6, seed=3, **params):
    return CampaignSpec(name="unit", task=task, n_shards=n_shards,
                        seed=seed, params=params, reduce=reduce_draws)


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_aggregates_identical_across_worker_counts(self):
        """The tentpole determinism claim: workers=1 == workers=4."""
        spec = spec_for(draw_task)
        serial = CampaignRunner(workers=1).run(spec)
        parallel = CampaignRunner(workers=4).run(spec)
        assert serial.aggregates == parallel.aggregates
        assert [s.result for s in serial.shards] == \
            [s.result for s in parallel.shards]

    def test_kill_then_resume_identical(self, tmp_path):
        """Interrupting after k shards and resuming changes nothing."""
        checkpoint = tmp_path / "campaign.jsonl"
        spec = spec_for(draw_task)
        reference = CampaignRunner(
            workers=2, checkpoint=str(checkpoint)).run(spec)

        # Simulate a mid-run kill: header + first 3 shard lines plus a
        # torn partial write of the 4th.
        lines = checkpoint.read_text().splitlines()
        checkpoint.write_text(
            "\n".join(lines[:4]) + "\n" + '{"type": "sha'
        )
        resumed = CampaignRunner(
            workers=2, checkpoint=str(checkpoint), resume=True).run(spec)
        assert resumed.aggregates == reference.aggregates
        assert resumed.resumed == 3
        assert sum(s.from_journal for s in resumed.shards) == 3

    def test_seed_changes_results(self):
        a = CampaignRunner().run(spec_for(draw_task, seed=1))
        b = CampaignRunner().run(spec_for(draw_task, seed=2))
        assert a.aggregates != b.aggregates

    def test_shard_seed_lineage_is_spawn_key(self):
        """Shard i always sees the SeedSequence child spawn_key=(i,)."""
        import numpy as np

        children = np.random.SeedSequence(3).spawn(6)
        shard = ShardSpec(index=2, n_shards=6, seed_seq=children[2])
        expected = int(np.random.default_rng(
            children[2]).integers(0, 10_000))
        result = CampaignRunner().run(spec_for(draw_task))
        assert result.shards[2].result["value"] == expected
        assert shard.py_rng().random() == shard.py_rng().random()


# ---------------------------------------------------------------------------
# fault tolerance
# ---------------------------------------------------------------------------


class TestFaultTolerance:
    def test_degraded_campaign_keeps_partial_aggregates(self):
        """ISSUE acceptance: 20% convergence failures plus one shard
        that hard-kills its worker still yields a CampaignResult with
        partial aggregates and a correct error census."""
        spec = spec_for(flaky_task, n_shards=10, fail=[1, 3], crash=5)
        result = CampaignRunner(
            workers=2,
            retry=RetryPolicy(max_attempts=1, backoff_base=0.0),
        ).run(spec)
        assert result.completed == 7
        assert result.failed == 2
        assert result.quarantined == 1
        assert result.error_counts == {"convergence": 2, "crash": 1}
        assert result.degraded
        assert result.coverage == pytest.approx(0.7)
        assert result.aggregates["n"] == 7
        # the convergence taxonomy carries SPICE progress into the
        # one-line diagnosis
        assert "convergence" in result.reason
        assert "mean progress 50%" in result.reason
        assert "crash" in result.reason

    def test_crashing_shard_is_quarantined_not_retried_forever(self):
        spec = spec_for(flaky_task, n_shards=4, fail=[], crash=2)
        result = CampaignRunner(
            workers=2, retry=RetryPolicy(crash_retries=1)).run(spec)
        crashed = result.shards[2]
        assert crashed.status == "quarantined"
        assert crashed.taxonomy == "crash"
        # innocents co-flighted with the crasher still complete
        assert result.completed == 3

    def test_retry_with_backoff_recovers_transient_failures(self):
        spec = spec_for(second_try_task)
        result = CampaignRunner(
            workers=2,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.01),
        ).run(spec)
        assert result.completed == 6
        assert all(s.attempts == 2 for s in result.shards)
        # and the retried results equal a clean run's (same seed stream)
        clean = CampaignRunner(workers=2).run(spec_for(draw_task))
        assert result.aggregates == clean.aggregates

    def test_config_errors_never_retry(self):
        spec = spec_for(config_error_task, n_shards=2)
        result = CampaignRunner(
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0)
        ).run(spec)
        assert result.completed == 0
        assert all(s.taxonomy == "config" and s.attempts == 1
                   for s in result.shards)

    def test_timeout_kills_hung_shard_spares_innocents(self):
        spec = spec_for(slow_task, n_shards=4, slow=2)
        result = CampaignRunner(
            workers=2, timeout_s=0.5,
            retry=RetryPolicy(max_attempts=1),
        ).run(spec)
        assert result.completed == 3
        assert result.error_counts == {"timeout": 1}
        assert result.shards[2].status == "failed"
        assert "wall-clock" in result.shards[2].message

    def test_summary_reads_like_a_report(self):
        spec = spec_for(flaky_task, n_shards=5, fail=[0])
        result = CampaignRunner(
            retry=RetryPolicy(max_attempts=1)).run(spec)
        text = result.summary()
        assert "4/5 shard(s) completed" in text
        assert "aggregates:" in text
        assert "DEGRADED:" in text


# ---------------------------------------------------------------------------
# the checkpoint journal
# ---------------------------------------------------------------------------


class TestJournal:
    FP = {"campaign": "j", "n_shards": 2, "seed": 0, "params": {},
          "task": "t"}

    def test_fresh_run_overwrites_stale_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("garbage\n")
        journal = CheckpointJournal(path)
        assert journal.open(self.FP, resume=False) == {}
        journal.record({"index": 0, "status": "ok"})
        journal.close()
        prior = CheckpointJournal(path).open(self.FP, resume=True)
        assert prior == {0: {"index": 0, "status": "ok"}}

    def test_resume_refuses_foreign_campaign(self, tmp_path):
        path = tmp_path / "j.jsonl"
        CheckpointJournal(path).open(self.FP, resume=False)
        other = dict(self.FP, seed=99)
        with pytest.raises(ConfigError, match="different campaign"):
            CheckpointJournal(path).open(other, resume=True)

    def test_resume_refuses_mid_file_corruption(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal(path)
        journal.open(self.FP, resume=False)
        journal.record({"index": 0, "status": "ok"})
        journal.close()
        with open(path, "a") as handle:
            handle.write("NOT JSON\n")
            handle.write(json.dumps(
                {"type": "shard", "index": 1, "status": "ok"}) + "\n")
        with pytest.raises(ConfigError, match="corrupt at line"):
            CheckpointJournal(path).open(self.FP, resume=True)

    def test_torn_tail_is_forgiven(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal(path)
        journal.open(self.FP, resume=False)
        journal.record({"index": 0, "status": "ok"})
        journal.close()
        with open(path, "a") as handle:
            handle.write('{"type": "shard", "ind')
        prior = CheckpointJournal(path).open(self.FP, resume=True)
        assert list(prior) == [0]

    def test_last_record_for_an_index_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal(path)
        journal.open(self.FP, resume=False)
        journal.record({"index": 0, "status": "failed"})
        journal.record({"index": 0, "status": "ok"})
        journal.close()
        prior = CheckpointJournal(path).open(self.FP, resume=True)
        assert prior[0]["status"] == "ok"


# ---------------------------------------------------------------------------
# spec and policy validation
# ---------------------------------------------------------------------------


class TestValidation:
    def test_retry_policy_rejects_nonsense(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(crash_retries=-1)
        assert RetryPolicy(backoff_base=0.1).backoff_s(3) == \
            pytest.approx(0.4)

    def test_spec_rejects_local_functions(self):
        def local_task(params, shard):  # pragma: no cover
            return {}

        with pytest.raises(ConfigError, match="module-level"):
            CampaignSpec(name="x", task=local_task, n_shards=1, seed=0)

    def test_spec_rejects_zero_shards(self):
        with pytest.raises(ConfigError):
            CampaignSpec(name="x", task=draw_task, n_shards=0, seed=0)

    def test_runner_rejects_bad_knobs(self):
        with pytest.raises(ConfigError):
            CampaignRunner(workers=0)
        with pytest.raises(ConfigError):
            CampaignRunner(timeout_s=0.0)

    def test_campaign_result_round_trips_to_json(self):
        result = CampaignRunner().run(spec_for(draw_task, n_shards=2))
        data = json.loads(json.dumps(result.to_dict()))
        assert data["completed"] == 2
        assert data["degraded"] is False
        assert data["coverage"] == 1.0
