"""Tests for the shared supervision primitives (repro.runtime)."""

import pytest

from repro.core.errors import (
    ConfigError,
    RepairExhausted,
    ReproError,
    SpiceConvergenceError,
)
from repro.runtime.supervision import (
    CrashBlame,
    DeadlineTable,
    DelayQueue,
    RetryPolicy,
    classify_error,
    terminate_pool,
)


class TestClassifyError:
    def test_taxonomy_mapping(self):
        assert classify_error(ConfigError("x")) == "config"
        assert classify_error(SpiceConvergenceError("x")) == \
            "convergence"
        assert classify_error(RepairExhausted("x")) == \
            "repair_exhausted"
        assert classify_error(ReproError("x")) == "repro"
        assert classify_error(KeyError("x")) == "unexpected"

    def test_timeout_wins_over_io(self):
        """TimeoutError subclasses OSError since 3.10; the taxonomy
        must classify it as a timeout, not generic io."""
        assert classify_error(TimeoutError("x")) == "timeout"
        assert classify_error(OSError("x")) == "io"


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0)
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigError):
            RetryPolicy(crash_retries=-1)


class TestCrashBlame:
    def test_suspects_within_budget_refly(self):
        blame = CrashBlame(crash_retries=1)
        quarantined, suspects = blame.accuse(["a", "b"])
        assert quarantined == []
        assert suspects == ["a", "b"]
        assert blame.crashes("a") == 1
        assert not blame.is_quarantined("a")

    def test_budget_exceeded_quarantines(self):
        blame = CrashBlame(crash_retries=1)
        blame.accuse(["a"])
        quarantined, suspects = blame.accuse(["a"])
        assert quarantined == ["a"]
        assert suspects == []
        assert blame.is_quarantined("a")
        assert blame.quarantined == frozenset(["a"])

    def test_zero_budget_quarantines_on_first_crash(self):
        blame = CrashBlame(crash_retries=0)
        quarantined, _ = blame.accuse(["a"])
        assert quarantined == ["a"]


class TestScheduling:
    def test_delay_queue_orders_by_eta(self):
        queue = DelayQueue()
        queue.push(5.0, "late")
        queue.push(1.0, "early")
        queue.push(3.0, "middle")
        assert queue.next_eta() == 1.0
        assert queue.pop_ready(3.5) == ["early", "middle"]
        assert len(queue) == 1
        assert queue.pop_ready(10.0) == ["late"]
        assert not queue
        assert queue.next_eta() is None

    def test_delay_queue_is_stable_for_equal_etas(self):
        queue = DelayQueue()
        for item in ("first", "second", "third"):
            queue.push(1.0, item)
        assert queue.pop_ready(1.0) == ["first", "second", "third"]

    def test_deadline_table(self):
        table = DeadlineTable()
        table.arm("a", 10.0)
        table.arm("b", 20.0)
        assert table.overdue(15.0) == ["a"]
        table.disarm("a")
        assert table.overdue(15.0) == []
        assert len(table) == 1
        table.clear()
        assert not table


class TestTerminatePool:
    def test_none_is_a_no_op(self):
        terminate_pool(None)

    def test_terminates_live_workers(self):
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=1)
        pool.submit(sum, (1, 2)).result()  # force a worker to spawn
        processes = list(pool._processes.values())
        terminate_pool(pool)
        for process in processes:
            process.join(timeout=10.0)
            assert not process.is_alive()
