from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=(
        "BISRAMGEN reproduction: a physical design tool for "
        "built-in self-repairable static RAMs"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy", "networkx"],
    entry_points={
        "console_scripts": ["bisramgen = repro.cli:main"],
    },
)
