"""Geometry substrate for the layout database.

Everything in the layout layer is Manhattan geometry: axis-aligned
rectangles on named mask layers, placed through one of the eight Manhattan
orientations (four rotations with and without mirroring).  This package
provides the value types those layers are built from:

* :class:`~repro.geometry.point.Point` — an integer grid coordinate,
* :class:`~repro.geometry.rect.Rect` — an axis-aligned rectangle,
* :class:`~repro.geometry.transform.Transform` — one of the eight
  Manhattan orientations plus a translation,
* :mod:`~repro.geometry.polygon` — area/bbox helpers for rectilinear
  polygons described as point lists.

All coordinates are integers in *centimicrons* (hundredths of a micron),
the classic resolution of CIF-era layout tools; design rules in
:mod:`repro.tech` are expressed in the same unit.
"""

from repro.geometry.point import Point
from repro.geometry.rect import Rect, bounding_box, total_area
from repro.geometry.transform import (
    Orientation,
    Transform,
    ALL_ORIENTATIONS,
)
from repro.geometry.polygon import polygon_area, polygon_bbox

__all__ = [
    "Point",
    "Rect",
    "bounding_box",
    "total_area",
    "Orientation",
    "Transform",
    "ALL_ORIENTATIONS",
    "polygon_area",
    "polygon_bbox",
]
