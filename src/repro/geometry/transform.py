"""The eight Manhattan orientations and affine placement transforms.

A macrocell placed in a layout may appear in any of the eight orientations
of the dihedral group D4: rotations by 0/90/180/270 degrees, each with or
without a mirror.  The paper's port-alignment heuristic explicitly avoids
"the long computation involved in trying out all 64 pairs of orientations"
between two macrocells — 8 orientations each — so the full group must be
representable even when the placer prunes it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.geometry.point import Point


class Orientation(enum.Enum):
    """Manhattan orientation: ``R<deg>`` rotations and ``MX/MY`` mirrors.

    The mirrored entries follow the GDSII/LEF convention: ``MX`` mirrors
    about the x-axis (flips y) *before* the rotation is applied.
    """

    R0 = "R0"
    R90 = "R90"
    R180 = "R180"
    R270 = "R270"
    MX = "MX"  # mirror about x axis
    MX90 = "MX90"  # mirror about x axis, then rotate 90
    MY = "MY"  # mirror about y axis
    MY90 = "MY90"  # mirror about y axis, then rotate 90


# Each orientation as a 2x2 integer matrix (a, b, c, d) meaning
#   x' = a*x + b*y ;  y' = c*x + d*y
_MATRICES = {
    Orientation.R0: (1, 0, 0, 1),
    Orientation.R90: (0, -1, 1, 0),
    Orientation.R180: (-1, 0, 0, -1),
    Orientation.R270: (0, 1, -1, 0),
    Orientation.MX: (1, 0, 0, -1),
    Orientation.MX90: (0, -1, -1, 0),
    Orientation.MY: (-1, 0, 0, 1),
    Orientation.MY90: (0, 1, 1, 0),
}

ALL_ORIENTATIONS = tuple(Orientation)


def _compose_matrices(m1, m2):
    """Return the matrix product ``m1 @ m2`` of two orientation matrices."""
    a1, b1, c1, d1 = m1
    a2, b2, c2, d2 = m2
    return (
        a1 * a2 + b1 * c2,
        a1 * b2 + b1 * d2,
        c1 * a2 + d1 * c2,
        c1 * b2 + d1 * d2,
    )


_MATRIX_TO_ORIENT = {m: o for o, m in _MATRICES.items()}


@dataclass(frozen=True)
class Transform:
    """An orientation followed by a translation: ``p' = M p + t``."""

    orientation: Orientation = Orientation.R0
    translation: Point = Point(0, 0)

    def apply(self, point: Point) -> Point:
        """Transform a single point."""
        a, b, c, d = _MATRICES[self.orientation]
        return Point(
            a * point.x + b * point.y + self.translation.x,
            c * point.x + d * point.y + self.translation.y,
        )

    def compose(self, inner: "Transform") -> "Transform":
        """Return the transform equivalent to applying ``inner`` then ``self``.

        Used when flattening a cell hierarchy: the effective transform of a
        grand-child instance is ``parent.compose(child)``.
        """
        m = _compose_matrices(
            _MATRICES[self.orientation], _MATRICES[inner.orientation]
        )
        return Transform(
            orientation=_MATRIX_TO_ORIENT[m],
            translation=self.apply(inner.translation),
        )

    def inverse(self) -> "Transform":
        """Return the transform mapping transformed space back to original."""
        a, b, c, d = _MATRICES[self.orientation]
        # Orientation matrices are orthogonal with integer entries, so the
        # inverse matrix is the transpose.
        inv = (a, c, b, d)
        inv_orient = _MATRIX_TO_ORIENT[inv]
        ia, ib, ic, id_ = inv
        t = self.translation
        return Transform(
            orientation=inv_orient,
            translation=Point(-(ia * t.x + ib * t.y), -(ic * t.x + id_ * t.y)),
        )

    def is_mirrored(self) -> bool:
        """True when the orientation reverses handedness (determinant -1)."""
        a, b, c, d = _MATRICES[self.orientation]
        return a * d - b * c == -1


IDENTITY = Transform()
