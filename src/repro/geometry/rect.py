"""Axis-aligned rectangles, the primitive of the layout database.

Rectangles are stored in canonical form (``x1 <= x2``, ``y1 <= y2``).
A degenerate rectangle with zero width or height is permitted: ports on
cell edges are represented as zero-thickness edge segments so abutment of
two cells makes their port rectangles coincide exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.geometry.point import Point
from repro.geometry.transform import Transform


@dataclass(frozen=True, order=True)
class Rect:
    """A canonical axis-aligned rectangle on the integer grid."""

    x1: int
    y1: int
    x2: int
    y2: int

    def __post_init__(self) -> None:
        if self.x1 > self.x2 or self.y1 > self.y2:
            raise ValueError(
                f"Rect not canonical: ({self.x1},{self.y1})-({self.x2},{self.y2})"
            )

    @classmethod
    def from_points(cls, p1: Point, p2: Point) -> "Rect":
        """Build the canonical rectangle spanned by two corner points."""
        return cls(
            min(p1.x, p2.x), min(p1.y, p2.y), max(p1.x, p2.x), max(p1.y, p2.y)
        )

    @classmethod
    def from_size(cls, origin: Point, width: int, height: int) -> "Rect":
        """Build a rectangle from its lower-left corner and its size."""
        if width < 0 or height < 0:
            raise ValueError("width and height must be non-negative")
        return cls(origin.x, origin.y, origin.x + width, origin.y + height)

    # -- basic measures -------------------------------------------------

    @property
    def width(self) -> int:
        return self.x2 - self.x1

    @property
    def height(self) -> int:
        return self.y2 - self.y1

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def center(self) -> Point:
        """The center, rounded down to the grid."""
        return Point((self.x1 + self.x2) // 2, (self.y1 + self.y2) // 2)

    @property
    def lower_left(self) -> Point:
        return Point(self.x1, self.y1)

    @property
    def upper_right(self) -> Point:
        return Point(self.x2, self.y2)

    def aspect_ratio(self) -> float:
        """Long side over short side; 1.0 is a square, inf is degenerate."""
        short = min(self.width, self.height)
        long = max(self.width, self.height)
        if short == 0:
            return float("inf")
        return long / short

    # -- set-like operations --------------------------------------------

    def intersects(self, other: "Rect") -> bool:
        """True when the two rectangles share interior or boundary."""
        return (
            self.x1 <= other.x2
            and other.x1 <= self.x2
            and self.y1 <= other.y2
            and other.y1 <= self.y2
        )

    def overlaps(self, other: "Rect") -> bool:
        """True when the rectangles share *interior* area (not mere touch)."""
        return (
            self.x1 < other.x2
            and other.x1 < self.x2
            and self.y1 < other.y2
            and other.y1 < self.y2
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """Return the shared rectangle, or None when disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.x1, other.x1),
            max(self.y1, other.y1),
            min(self.x2, other.x2),
            min(self.y2, other.y2),
        )

    def union_bbox(self, other: "Rect") -> "Rect":
        """The bounding box of both rectangles."""
        return Rect(
            min(self.x1, other.x1),
            min(self.y1, other.y1),
            max(self.x2, other.x2),
            max(self.y2, other.y2),
        )

    def contains_point(self, p: Point) -> bool:
        return self.x1 <= p.x <= self.x2 and self.y1 <= p.y <= self.y2

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    def spacing_to(self, other: "Rect") -> int:
        """Euclidean-free Manhattan gap between two rectangles.

        Returns 0 when they touch or overlap.  For diagonal separation the
        design-rule convention is the max of the x and y gaps, matching the
        corner-to-corner spacing checks of classic scalable rule decks.
        """
        dx = max(0, max(self.x1, other.x1) - min(self.x2, other.x2))
        dy = max(0, max(self.y1, other.y1) - min(self.y2, other.y2))
        if dx > 0 and dy > 0:
            return max(dx, dy)
        return dx + dy

    def abuts(self, other: "Rect") -> bool:
        """True when the rectangles share an edge segment of nonzero length.

        This is the relation BISRAMGEN exploits for routing-free assembly:
        ports on abutting edges connect without any wire.
        """
        if self.overlaps(other):
            return False
        shares_vertical_edge = (
            (self.x2 == other.x1 or other.x2 == self.x1)
            and min(self.y2, other.y2) > max(self.y1, other.y1)
        )
        shares_horizontal_edge = (
            (self.y2 == other.y1 or other.y2 == self.y1)
            and min(self.x2, other.x2) > max(self.x1, other.x1)
        )
        return shares_vertical_edge or shares_horizontal_edge

    # -- construction of derived rectangles ------------------------------

    def translated(self, delta: Point) -> "Rect":
        return Rect(
            self.x1 + delta.x, self.y1 + delta.y, self.x2 + delta.x, self.y2 + delta.y
        )

    def expanded(self, margin: int) -> "Rect":
        """Grow (or shrink, for negative margin) by ``margin`` on all sides."""
        r = Rect.from_points(
            Point(self.x1 - margin, self.y1 - margin),
            Point(self.x2 + margin, self.y2 + margin),
        )
        return r

    def transformed(self, transform: Transform) -> "Rect":
        """Apply a placement transform; the result is re-canonicalised."""
        return Rect.from_points(
            transform.apply(self.lower_left), transform.apply(self.upper_right)
        )


def bounding_box(rects: Iterable[Rect]) -> Optional[Rect]:
    """Bounding box of a collection of rectangles (None when empty)."""
    box = None
    for r in rects:
        box = r if box is None else box.union_bbox(r)
    return box


def total_area(rects: Iterable[Rect]) -> int:
    """Exact area of the union of rectangles (sweep-line).

    Uses a coordinate-compressed scanline, so overlapping rectangles are
    not double counted.  Needed for honest area-overhead accounting when
    macrocell outlines overlap routing regions.
    """
    rects = [r for r in rects if r.area > 0]
    if not rects:
        return 0
    xs = sorted({r.x1 for r in rects} | {r.x2 for r in rects})
    area = 0
    for left, right in zip(xs, xs[1:]):
        spans = sorted(
            (r.y1, r.y2) for r in rects if r.x1 <= left and r.x2 >= right
        )
        covered = 0
        last_end = None
        for y1, y2 in spans:
            if last_end is None or y1 > last_end:
                covered += y2 - y1
                last_end = y2
            elif y2 > last_end:
                covered += y2 - last_end
                last_end = y2
        area += covered * (right - left)
    return area
