"""Integer grid points.

Layout coordinates are integers in centimicrons (1 cu = 0.01 um).  Using
integers keeps abutment arithmetic exact: two cells abut if and only if
their edges share identical coordinates, with no floating-point epsilon.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Point:
    """A point on the integer layout grid.

    Points are immutable and ordered lexicographically (x, then y), which
    makes them usable as dict keys and sortable for canonical output.
    """

    x: int
    y: int

    def __post_init__(self) -> None:
        if not isinstance(self.x, int) or not isinstance(self.y, int):
            raise TypeError(
                f"Point coordinates must be integers, got ({self.x!r}, {self.y!r})"
            )

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def scaled(self, factor: int) -> "Point":
        """Return the point scaled by an integer factor about the origin."""
        return Point(self.x * factor, self.y * factor)

    def manhattan_distance(self, other: "Point") -> int:
        """Manhattan (L1) distance to ``other``.

        This is the natural wirelength metric for Manhattan routing: a
        minimal one-bend route between two points has exactly this length.
        """
        return abs(self.x - other.x) + abs(self.y - other.y)

    def as_tuple(self) -> tuple:
        """Return ``(x, y)``, convenient for numpy and plotting code."""
        return (self.x, self.y)


ORIGIN = Point(0, 0)
