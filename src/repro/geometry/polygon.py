"""Rectilinear polygon helpers.

The layout database itself stores only rectangles, but the renderer and
the CIF exporter occasionally deal with polygon outlines (e.g. the
L-shaped outline of a floorplan).  These helpers implement the shoelace
area and bounding box for point-list polygons.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.point import Point
from repro.geometry.rect import Rect


def polygon_area(points: Sequence[Point]) -> float:
    """Unsigned area of a simple polygon via the shoelace formula."""
    n = len(points)
    if n < 3:
        return 0.0
    twice = 0
    for i in range(n):
        p = points[i]
        q = points[(i + 1) % n]
        twice += p.x * q.y - q.x * p.y
    return abs(twice) / 2.0


def polygon_bbox(points: Sequence[Point]) -> Rect:
    """Bounding box of a non-empty point list."""
    if not points:
        raise ValueError("cannot take the bounding box of an empty polygon")
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    return Rect(min(xs), min(ys), max(xs), max(ys))


def is_rectilinear(points: Sequence[Point]) -> bool:
    """True when every edge of the polygon is axis-parallel."""
    n = len(points)
    for i in range(n):
        p = points[i]
        q = points[(i + 1) % n]
        if p.x != q.x and p.y != q.y:
            return False
    return True
