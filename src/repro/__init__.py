"""BISRAMGEN reproduction.

A full reimplementation of *"A Physical Design Tool for Built-In
Self-Repairable RAMs"* (Chakraborty, Kulkarni, Bhattacharya, Mazumder,
Gupta — DATE 1999 / IEEE TVLSI 9(2), 2001): a design-rule-independent
memory compiler that generates column-multiplexed 6T SRAM macros with
spare rows, a microprogrammed IFA-9 BIST engine, and a TLB-based
built-in self-repair circuit — plus the yield, reliability, and
manufacturing-cost models that quantify the benefit.

Quickstart::

    from repro import RamConfig, compile_ram

    ram = compile_ram(RamConfig(words=2048, bpw=32, bpc=8))
    print(ram.datasheet.summary())
    print(ram.render_ascii())

    device = ram.simulation_model()          # fault-injectable RAM
    controller = ram.self_test_controller(device)
    result = controller.run()                # two-pass BIST + BISR
    assert result.repaired
"""

from repro.core import BISRAMGen, CompiledRam, Datasheet, RamConfig, \
    compile_ram

__version__ = "1.0.0"

__all__ = [
    "BISRAMGen",
    "CompiledRam",
    "Datasheet",
    "RamConfig",
    "compile_ram",
    "__version__",
]
