"""Waveform measurements: crossings, propagation delay, rise/fall times."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.spice.engine import TransientResult


def crossing_time(
    result: TransientResult,
    node: str,
    threshold: float,
    rising: bool,
    after: float = 0.0,
) -> Optional[float]:
    """First time the node crosses ``threshold`` in the given direction.

    Linear interpolation between samples; None when no crossing occurs.
    """
    t = result.time
    v = result.trace(node)
    mask = t >= after
    t = t[mask]
    v = v[mask]
    if len(t) < 2:
        return None
    if rising:
        hits = np.nonzero((v[:-1] < threshold) & (v[1:] >= threshold))[0]
    else:
        hits = np.nonzero((v[:-1] > threshold) & (v[1:] <= threshold))[0]
    if len(hits) == 0:
        return None
    i = int(hits[0])
    v0, v1 = v[i], v[i + 1]
    if v1 == v0:
        return float(t[i])
    frac = (threshold - v0) / (v1 - v0)
    return float(t[i] + frac * (t[i + 1] - t[i]))


def propagation_delay(
    result: TransientResult,
    input_node: str,
    output_node: str,
    vdd: float,
    input_rising: bool,
    output_rising: bool,
    after: float = 0.0,
) -> float:
    """50%-to-50% propagation delay in seconds.

    Raises:
        ValueError: when either waveform never crosses 50% — the usual
            symptom of a non-switching circuit, which callers should not
            silently treat as zero delay.
    """
    half = vdd / 2.0
    t_in = crossing_time(result, input_node, half, input_rising, after)
    if t_in is None:
        raise ValueError(f"input {input_node!r} never crosses 50%")
    t_out = crossing_time(result, output_node, half, output_rising, t_in)
    if t_out is None:
        raise ValueError(f"output {output_node!r} never crosses 50%")
    return t_out - t_in


def rise_time(result: TransientResult, node: str, vdd: float,
              after: float = 0.0) -> float:
    """10%-to-90% rise time in seconds."""
    t10 = crossing_time(result, node, 0.1 * vdd, rising=True, after=after)
    if t10 is None:
        raise ValueError(f"{node!r} never rises past 10%")
    t90 = crossing_time(result, node, 0.9 * vdd, rising=True, after=t10)
    if t90 is None:
        raise ValueError(f"{node!r} never rises past 90%")
    return t90 - t10


def fall_time(result: TransientResult, node: str, vdd: float,
              after: float = 0.0) -> float:
    """90%-to-10% fall time in seconds."""
    t90 = crossing_time(result, node, 0.9 * vdd, rising=False, after=after)
    if t90 is None:
        raise ValueError(f"{node!r} never falls past 90%")
    t10 = crossing_time(result, node, 0.1 * vdd, rising=False, after=t90)
    if t10 is None:
        raise ValueError(f"{node!r} never falls past 10%")
    return t10 - t90
