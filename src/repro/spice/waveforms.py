"""Source waveforms: piecewise-linear, step, and pulse."""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence, Tuple


class Pwl:
    """A piecewise-linear waveform defined by (time, volts) breakpoints.

    Before the first breakpoint the waveform holds the first value; after
    the last it holds the last value — SPICE PWL semantics.
    """

    def __init__(self, points: Sequence[Tuple[float, float]]) -> None:
        if not points:
            raise ValueError("PWL needs at least one breakpoint")
        times = [t for t, _ in points]
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise ValueError("PWL breakpoints must be strictly increasing")
        self._times: List[float] = list(times)
        self._volts: List[float] = [v for _, v in points]

    def __call__(self, t: float) -> float:
        times, volts = self._times, self._volts
        if t <= times[0]:
            return volts[0]
        if t >= times[-1]:
            return volts[-1]
        i = bisect_right(times, t)
        t0, t1 = times[i - 1], times[i]
        v0, v1 = volts[i - 1], volts[i]
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)

    def breakpoints(self) -> Tuple[Tuple[float, float], ...]:
        return tuple(zip(self._times, self._volts))


def step(t_step: float, v_low: float, v_high: float,
         t_rise: float = 50e-12) -> Pwl:
    """A single low-to-high (or high-to-low) edge at ``t_step``."""
    if t_rise <= 0:
        raise ValueError("rise time must be positive")
    return Pwl([(0.0, v_low), (t_step, v_low), (t_step + t_rise, v_high)])


def pulse(
    t_start: float,
    width: float,
    v_low: float,
    v_high: float,
    t_edge: float = 50e-12,
) -> Pwl:
    """A single pulse of the given width."""
    if width <= 2 * t_edge:
        raise ValueError("pulse width must exceed both edges")
    return Pwl(
        [
            (0.0, v_low),
            (t_start, v_low),
            (t_start + t_edge, v_high),
            (t_start + width - t_edge, v_high),
            (t_start + width, v_low),
        ]
    )
