"""A small transient circuit simulator ("built-in access to SPICE utilities").

The engine integrates node voltages of a flat netlist (MOSFETs evaluated
with the level-1 model, plus R, C, and ideal voltage sources) with an
adaptive explicit scheme.  It exists to serve the compiler, not to
compete with HSPICE: the workloads are leaf cells and short critical
paths (inverter chains, sense amplifier, TLB match path) with tens of
devices, where the adaptive explicit integration is fast and accurate
enough for the sizing and guarantee extrapolation the paper describes.
"""

from repro.core.errors import SpiceConvergenceError
from repro.spice.engine import TransientEngine, TransientResult
from repro.spice.waveforms import Pwl, step, pulse
from repro.spice.analysis import (
    crossing_time,
    propagation_delay,
    rise_time,
    fall_time,
)

__all__ = [
    "SpiceConvergenceError",
    "TransientEngine",
    "TransientResult",
    "Pwl",
    "step",
    "pulse",
    "crossing_time",
    "propagation_delay",
    "rise_time",
    "fall_time",
]
