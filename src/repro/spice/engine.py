"""Adaptive explicit transient integration of MOS netlists.

Every floating node integrates ``dV/dt = I_node / C_node`` where
``I_node`` sums device currents into the node and ``C_node`` is the total
lumped capacitance there (gate + diffusion + explicit, plus a small
``cmin`` so no node is ever capacitance-free).  The step size adapts so
no node moves more than ``dv_max`` per step, which keeps the explicit
scheme stable: the per-node time constant is C/g and limiting |dV| is
equivalent to limiting dt/(C/g).

Source-driven nodes are pinned to their waveform value each step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.circuit.mosfet import mosfet_current
from repro.circuit.netlist import GND, Netlist
from repro.core.errors import SpiceConvergenceError


@dataclass
class TransientResult:
    """Simulation output: time vector plus a trace per recorded node."""

    time: np.ndarray
    traces: Dict[str, np.ndarray]

    def trace(self, node: str) -> np.ndarray:
        try:
            return self.traces[node]
        except KeyError:
            raise KeyError(
                f"node {node!r} was not recorded; recorded: "
                f"{sorted(self.traces)}"
            ) from None

    def final(self, node: str) -> float:
        return float(self.trace(node)[-1])


class TransientEngine:
    """Transient simulator for one netlist.

    Args:
        netlist: the circuit to simulate.
        cmin: minimum node capacitance (farads); defaults to 2 fF which
            stands in for unextracted local wiring.
        dv_max: per-step voltage movement bound (volts).
        dt_max: ceiling on the adaptive step (seconds).
    """

    def __init__(
        self,
        netlist: Netlist,
        cmin: float = 2e-15,
        dv_max: float = 0.03,
        dt_max: float = 20e-12,
    ) -> None:
        if cmin <= 0 or dv_max <= 0 or dt_max <= 0:
            raise ValueError("cmin, dv_max and dt_max must be positive")
        self.netlist = netlist
        self.cmin = cmin
        self.dv_max = dv_max
        self.dt_max = dt_max
        self._pinned = {v.node: v for v in netlist.sources}
        if GND in self._pinned:
            raise ValueError("do not attach a source to the ground node")
        nodes = sorted(netlist.nodes() - {GND} - set(self._pinned))
        self._free_nodes: List[str] = nodes
        self._index = {n: i for i, n in enumerate(nodes)}
        caps = netlist.node_capacitance()
        self._cap = np.array(
            [max(caps.get(n, 0.0), cmin) for n in nodes], dtype=float
        )

    # -- simulation -------------------------------------------------------

    def run(
        self,
        t_stop: float,
        record: Optional[Sequence[str]] = None,
        initial: Optional[Dict[str, float]] = None,
        max_steps: int = 2_000_000,
    ) -> TransientResult:
        """Integrate from t=0 to ``t_stop`` and return recorded traces.

        Args:
            t_stop: end time in seconds.
            record: node names to record (default: all free + pinned).
            initial: initial voltages for free nodes (default 0 V).
            max_steps: hard bound on integration steps.
        """
        if t_stop <= 0:
            raise ValueError("t_stop must be positive")
        free = self._free_nodes
        v_free = np.zeros(len(free))
        if initial:
            for node, volts in initial.items():
                if node in self._index:
                    v_free[self._index[node]] = volts
        if record is None:
            record = list(free) + sorted(self._pinned)
        for node in record:
            if node != GND and node not in self._index and node not in self._pinned:
                raise KeyError(f"cannot record unknown node {node!r}")

        times: List[float] = [0.0]
        samples: Dict[str, List[float]] = {n: [] for n in record}

        t = 0.0
        voltages = self._voltage_map(v_free, t)
        self._record(samples, record, voltages)
        steps = 0
        while t < t_stop and steps < max_steps:
            currents = self._node_currents(voltages)
            dvdt = currents / self._cap
            peak = float(np.max(np.abs(dvdt))) if len(dvdt) else 0.0
            if peak > 0:
                dt = min(self.dt_max, self.dv_max / peak)
            else:
                dt = self.dt_max
            dt = min(dt, t_stop - t)
            v_free = v_free + dvdt * dt
            t += dt
            steps += 1
            voltages = self._voltage_map(v_free, t)
            times.append(t)
            self._record(samples, record, voltages)
        if steps >= max_steps and t < t_stop:
            # Typed so callers can degrade gracefully: the error says
            # how far integration got, and it still is a RuntimeError
            # for call sites predating the taxonomy.
            raise SpiceConvergenceError(
                f"transient did not reach t_stop={t_stop} within "
                f"{max_steps} steps (reached t={t})",
                t_reached=t, t_stop=t_stop, steps=steps,
            )
        return TransientResult(
            time=np.array(times),
            traces={n: np.array(s) for n, s in samples.items()},
        )

    # -- internals ---------------------------------------------------------

    def _voltage_map(self, v_free: np.ndarray, t: float) -> Dict[str, float]:
        volts = {GND: 0.0}
        for node, idx in self._index.items():
            volts[node] = float(v_free[idx])
        for node, src in self._pinned.items():
            volts[node] = src.volts(t)
        return volts

    def _node_currents(self, volts: Dict[str, float]) -> np.ndarray:
        """Sum of device currents flowing *into* each free node."""
        currents = np.zeros(len(self._free_nodes))
        index = self._index

        def add(node: str, amps: float) -> None:
            i = index.get(node)
            if i is not None:
                currents[i] += amps

        for m in self.netlist.mosfets:
            ids = mosfet_current(
                m.params,
                volts[m.gate],
                volts[m.drain],
                volts[m.source],
                m.w_um,
                m.l_um,
            )
            add(m.drain, -ids)
            add(m.source, ids)
        for r in self.netlist.resistors:
            i_ab = (volts[r.a] - volts[r.b]) / r.ohms
            add(r.a, -i_ab)
            add(r.b, i_ab)
        # Coupling capacitors between two free nodes are treated as load
        # capacitance (already counted in node_capacitance); caps to a
        # pinned node additionally inject no DC current, so nothing to do.
        return currents

    def _record(
        self,
        samples: Dict[str, List[float]],
        record: Sequence[str],
        volts: Dict[str, float],
    ) -> None:
        for node in record:
            samples[node].append(volts.get(node, 0.0))
