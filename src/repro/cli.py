"""Command-line interface: ``python -m repro`` / ``bisramgen``.

The original BISRAMGEN was an interactively invoked generator ("when
invoked, BISRAMGEN allows the user to input the values of the circuit
parameters").  This CLI exposes the same workflow non-interactively:

```
bisramgen compile  --words 2048 --bpw 32 --bpc 8 [--cif m.cif] \
                   [--cache-dir .bisram-cache] [--no-cache] ...
bisramgen serve    --port 8080 --workers 4 --cache-dir .bisram-cache
bisramgen selftest --words 256 --bpw 8 --bpc 4 --defects 3 --seed 1
bisramgen yield    --words 4096 --bpw 4 --bpc 4 --defects 0,5,10,20
bisramgen reliability --words 4096 --bpw 4 --bpc 4 --years 1,5,10
bisramgen cost     [--processor "TI SuperSPARC"]
bisramgen coverage --march IFA-9 --samples 20
bisramgen optimize --words 1024 --bpw 16 --bpc 4 --defects 3.0
bisramgen repair-plan --words 256 --bpw 8 --bpc 4 --spare-cols 2 \
                   --defects 4 --seed 1
bisramgen spare-mix --rows 128 --bpw 8 --bpc 4 --mixes 4x0,2x2,0x4
bisramgen campaign --driver montecarlo --trials 200000 --shards 16 \
                   --workers 4 --checkpoint run.jsonl [--resume]
bisramgen verify   --words 256 --bpw 8 --bpc 4 [--cif m.cif] [--json]
```
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro import RamConfig, compile_ram
from repro.analysis import optimize_spares, spare_tradeoff_table
from repro.bist import ALL_TESTS, IFA_9, parse_march
from repro.bisr import EscalationPolicy, RepairSupervisor
from repro.core.errors import ConfigError, ReproError, SignoffError
from repro.cost import table2_rows, table3_rows
from repro.memsim import DefectInjector, coverage_campaign
from repro.reliability import reliability_words
from repro.yieldmodel import bisr_yield

_MARCHES = {t.name: t for t in ALL_TESTS}


def _add_config_arguments(parser: argparse.ArgumentParser,
                          spares_default: int = 4) -> None:
    parser.add_argument("--words", type=int, required=True,
                        help="addressable words")
    parser.add_argument("--bpw", type=int, required=True,
                        help="bits per word (power of two)")
    parser.add_argument("--bpc", type=int, required=True,
                        help="bits per column / mux factor (power of two)")
    parser.add_argument("--spares", type=int, default=spares_default,
                        choices=(4, 8, 16), help="spare rows")
    parser.add_argument("--spare-cols", type=int, default=0,
                        help="spare columns (0..16; 0 = row-only repair)")
    parser.add_argument("--process", default="cda07",
                        help="rule deck name; builtins plus any deck "
                             "registered via files or entry points "
                             "(see `repro tech list`)")
    parser.add_argument("--ports", type=int, default=1,
                        choices=(1, 2),
                        help="access ports (2 = dual-port 8T array)")
    parser.add_argument("--tech-dir", action="append", default=None,
                        metavar="DIR",
                        help="extra directory of technology descriptor "
                             "files (repeatable; highest precedence)")
    parser.add_argument("--gate-size", type=int, default=1,
                        help="critical-gate drive multiplier")
    parser.add_argument("--strap-every", type=int, default=32,
                        help="bit-cell columns between straps (0=none)")


def _config_from(args: argparse.Namespace) -> RamConfig:
    return RamConfig(
        words=args.words, bpw=args.bpw, bpc=args.bpc,
        spares=args.spares, spare_cols=getattr(args, "spare_cols", 0),
        process=args.process, ports=getattr(args, "ports", 1),
        gate_size=args.gate_size, strap_every=args.strap_every,
    )


def _apply_tech_dirs(args: argparse.Namespace) -> None:
    """Register ``--tech-dir`` directories before any deck lookup."""
    for directory in getattr(args, "tech_dir", None) or ():
        from repro.techreg import default_registry

        default_registry().add_search_dir(directory)


def _int_list(text: str) -> List[int]:
    return [int(x) for x in text.split(",") if x.strip()]


def _float_list(text: str) -> List[float]:
    return [float(x) for x in text.split(",") if x.strip()]


def _confirm_spec(text: str) -> tuple:
    """Parse an N/M confirmation spec like ``2/5``."""
    try:
        n_text, m_text = text.split("/")
        n, m = int(n_text), int(m_text)
    except ValueError:
        raise ConfigError(
            f"--confirm wants N/M (e.g. 2/5), got {text!r}"
        ) from None
    if not 1 <= n <= m:
        raise ConfigError(
            f"--confirm needs 1 <= N <= M, got {n}/{m}"
        )
    return n, m


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------


def cmd_compile(args: argparse.Namespace) -> int:
    config = _config_from(args)
    use_cache = args.cache_dir is not None and not args.no_cache
    if use_cache and not (args.ascii or args.svg):
        # The service path: artifacts come as stored bytes, and a hit
        # never touches the compiler at all.  --ascii/--svg need the
        # live compiled object, so they take the direct path below.
        return _compile_via_store(args, config)
    ram = compile_ram(config, signoff=args.policy)
    if use_cache:
        # Direct build (render flags) but keep the store warm so the
        # next cached invocation of this geometry hits.
        from repro.service import ArtifactStore, bundle_key, render_bundle

        store = ArtifactStore(args.cache_dir)
        store.put(bundle_key(config, IFA_9, args.policy),
                  render_bundle(ram))
    if ram.signoff is not None:
        print(ram.signoff.summary())
        print()
    print(ram.datasheet.summary())
    ar = ram.area_report
    print(f"\narea: {ar.total_mm2:.3f} mm^2 "
          f"(plain {ar.baseline_mm2:.3f}, overhead "
          f"{ar.overhead_percent:.2f}%, BIST/BISR alone "
          f"{ar.bist_bisr_only_percent:.2f}%)")
    if args.ascii:
        print()
        print(ram.render_ascii())
    if args.svg:
        with open(args.svg, "w") as handle:
            handle.write(ram.render_svg())
        print(f"wrote {args.svg}")
    if args.cif:
        ram.write_cif(args.cif)
        print(f"wrote {args.cif}")
    if args.control_dir:
        paths = ram.write_control_code(args.control_dir)
        print(f"wrote {paths['and']} and {paths['or']}")
    return 0


def _compile_via_store(args: argparse.Namespace,
                       config: RamConfig) -> int:
    """``compile --cache-dir``: serve/publish through the artifact
    store; cached and fresh runs write byte-identical artifacts."""
    import json
    from pathlib import Path

    from repro.service import ArtifactStore, compile_cached
    from repro.verify.report import SignoffReport

    store = ArtifactStore(args.cache_dir)
    bundle, hit, key = compile_cached(config, IFA_9,
                                      signoff=args.policy, store=store)
    print(f"cache {'HIT' if hit else 'MISS'} {key[:16]} "
          f"({args.cache_dir})")
    if args.policy and "signoff.json" in bundle:
        report = SignoffReport.from_dict(
            json.loads(bundle["signoff.json"].decode("utf-8")))
        print(report.summary())
        print()
    print(bundle["datasheet.txt"].decode("utf-8"), end="")
    area = json.loads(bundle["area.json"].decode("utf-8"))
    print(f"\narea: {area['total_mm2']:.3f} mm^2 "
          f"(plain {area['baseline_mm2']:.3f}, overhead "
          f"{area['overhead_percent']:.2f}%, BIST/BISR alone "
          f"{area['bist_bisr_only_percent']:.2f}%)")
    if args.cif:
        Path(args.cif).write_bytes(bundle["macro.cif"])
        print(f"wrote {args.cif}")
    if args.control_dir:
        directory = Path(args.control_dir)
        directory.mkdir(parents=True, exist_ok=True)
        paths = {}
        for plane in ("and", "or"):
            paths[plane] = directory / f"trpla_{plane}.plane"
            paths[plane].write_bytes(bundle[f"trpla_{plane}.plane"])
        print(f"wrote {paths['and']} and {paths['or']}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the concurrent macro server (``repro serve``)."""
    from repro.service import ArtifactStore, MacroServer
    from repro.service.http import ServiceClient, make_http_server

    if args.drain:
        client = ServiceClient(host=args.host, port=args.port)
        payload = client.drain()
        print(f"drain requested from {args.host}:{args.port} "
              f"(role={payload.get('role', '?')}); the lease is "
              f"handed off once in-flight builds finish")
        return 0
    if args.lease and args.standby_of:
        raise ConfigError(
            "--lease and --standby-of are mutually exclusive: a "
            "primary owns the lease, a standby only watches it")
    store = None
    if args.cache_dir:
        budget = (int(args.cache_budget_mb * 1_000_000)
                  if args.cache_budget_mb else None)
        store = ArtifactStore(args.cache_dir, byte_budget=budget)
    backend = None
    if args.backend == "process":
        from repro.service.backend import ProcessPoolBackend

        if store is None:
            raise ConfigError(
                "--backend process needs --cache-dir: workers "
                "publish their results through the artifact store")
        backend = ProcessPoolBackend(store, workers=args.workers,
                                     deadline_s=args.deadline_s)
    wal = None
    if args.wal:
        from repro.service.wal import RequestLog

        wal = RequestLog(args.wal)
    lease = None
    role = "primary"
    if args.standby_of:
        from repro.service.ha import Lease

        if store is None:
            raise ConfigError(
                "--standby-of needs --cache-dir: a standby serves "
                "store hits, which live in the artifact store")
        lease = Lease(args.standby_of, ttl_s=args.lease_ttl_s)
        role = "standby"
    elif args.lease:
        from repro.service.ha import Lease

        lease = Lease(args.lease, ttl_s=args.lease_ttl_s)
    governor = None
    if args.disk_reserve_mb or args.rss_limit_mb:
        from repro.service.governor import ResourceGovernor

        if args.disk_reserve_mb and store is None:
            raise ConfigError(
                "--disk-reserve-mb needs --cache-dir: the governor "
                "watches free space on the store volume")
        worker_pids = backend.worker_pids if backend is not None \
            else None
        governor = ResourceGovernor(
            store.root if store is not None else ".",
            disk_reserve_bytes=(int(args.disk_reserve_mb * 1_000_000)
                                if args.disk_reserve_mb else None),
            rss_limit_bytes=(int(args.rss_limit_mb * 1_000_000)
                             if args.rss_limit_mb else None),
            worker_pids=worker_pids)
    server = MacroServer(store=store, workers=args.workers,
                         queue_limit=args.queue_limit,
                         backend=backend, wal=wal,
                         governor=governor, lease=lease, role=role,
                         batch_limit=args.batch_limit)
    httpd = make_http_server(server, host=args.host, port=args.port,
                             verbose=args.verbose,
                             max_requests=args.max_requests)
    host, port = httpd.server_address[:2]
    print(f"macro server on http://{host}:{port} "
          f"(role={role} backend={args.backend} "
          f"workers={args.workers} queue={args.queue_limit} "
          f"cache={args.cache_dir or 'off'} "
          f"wal={args.wal or 'off'} "
          f"lease={args.lease or args.standby_of or 'off'})",
          flush=True)
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.server_close()
        server.shutdown(drain=True)
    stats = server.stats()
    print(f"served {stats['requests']} request(s): "
          f"{stats['builds']} built, {stats['store_hits']} from "
          f"store, {stats['coalesced']} coalesced, "
          f"{stats['rejected']} rejected")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run the chaos scenarios (``repro chaos --scenarios all``)."""
    import json as json_module
    import shutil
    import tempfile

    from repro.service.chaos import run_scenarios

    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    try:
        reports = run_scenarios(args.scenarios, workdir)
    finally:
        if args.workdir is None:
            shutil.rmtree(workdir, ignore_errors=True)
    if args.json:
        print(json_module.dumps(
            {"passed": all(r.passed for r in reports),
             "scenarios": [r.to_dict() for r in reports]},
            indent=1, sort_keys=True))
    else:
        for report in reports:
            print(report.summary())
        failed = [r.name for r in reports if not r.passed]
        verdict = (f"FAILED: {', '.join(failed)}" if failed
                   else f"all {len(reports)} scenario(s) passed")
        print(verdict)
    return 0 if all(r.passed for r in reports) else 1


def cmd_selftest(args: argparse.Namespace) -> int:
    config = _config_from(args)
    ram = compile_ram(config)
    device = ram.simulation_model()
    if args.defects:
        injector = DefectInjector(rng=random.Random(args.seed))
        faults = injector.inject(device.array, args.defects)
        print(f"injected {len(faults)} defects: "
              f"{[f.describe() for f in faults]}")
    if args.retries:
        return _supervised_selftest(args, config, device)
    controller = ram.self_test_controller(device)
    result = controller.run()
    print(f"pass 1+2: {result.op_count} ops, "
          f"{result.fail_count} comparator hits, "
          f"TLB map {device.tlb.mapped_rows()}")
    cycles = 1
    while result.repair_unsuccessful and cycles < args.max_cycles:
        cycles += 1
        result = ram.self_test_controller(device, fresh=False).run()
        print(f"cycle {cycles}: TLB map {device.tlb.mapped_rows()}")
    if result.repaired:
        print(f"REPAIRED after {cycles} two-pass cycle(s); functional "
              f"sweep mismatches: {device.check_pattern(0)}")
        return 0
    print("REPAIR UNSUCCESSFUL (too many faults or dead spares)")
    return 1


def _supervised_selftest(args: argparse.Namespace, config: RamConfig,
                         device) -> int:
    """The escalation-ladder path of ``selftest`` (--retries > 0)."""
    threshold, reads = _confirm_spec(args.confirm)
    policy = EscalationPolicy(
        confirm_reads=reads,
        confirm_threshold=threshold,
        max_attempts=args.retries,
    )
    supervisor = RepairSupervisor(IFA_9, bpw=config.bpw, policy=policy)
    outcome = supervisor.run(device)
    print(f"supervisor: {outcome.attempts} attempt(s), "
          f"{threshold}-of-{reads} confirmation, "
          f"{outcome.probe_reads} probe reads, "
          f"{outcome.backoff_cycles} backoff cycles")
    if outcome.rejected_addresses:
        print(f"rejected as transient (no spare consumed): addresses "
              f"{sorted(set(outcome.rejected_addresses))}")
    if outcome.repaired:
        print(f"REPAIRED rows {list(outcome.confirmed_rows)} using "
              f"{outcome.spares_used} spare(s); functional sweep "
              f"mismatches: {device.check_pattern(0)}")
        return 0
    print(f"DEGRADED: {outcome.reason}")
    if outcome.unrepaired_rows:
        print(f"unrepaired rows: {list(outcome.unrepaired_rows)}")
    return 1


def cmd_yield(args: argparse.Namespace) -> int:
    config = _config_from(args)
    print(f"{'defects':>8}  {'0 spares':>9}  {config.spares:>2} spares")
    for n in _float_list(args.defects):
        y0 = bisr_yield(config.rows, 0, config.bpw, config.bpc, n)
        ys = bisr_yield(config.rows, config.spares, config.bpw,
                        config.bpc, n,
                        growth_factor=1 + config.spares / config.rows)
        print(f"{n:>8.1f}  {y0:>9.4f}  {ys:>9.4f}")
    return 0


def cmd_reliability(args: argparse.Namespace) -> int:
    config = _config_from(args)
    lam = args.rate / 1000.0
    print(f"lambda = {args.rate:g} per kilohour per cell")
    print(f"{'years':>6}  {'0 spares':>9}  {config.spares:>2} spares")
    for years in _float_list(args.years):
        t = years * 8766
        r0 = reliability_words(t, config.rows, 0, config.bpw,
                               config.bpc, lam)
        rs = reliability_words(t, config.rows, config.spares,
                               config.bpw, config.bpc, lam)
        print(f"{years:>6.1f}  {r0:>9.4f}  {rs:>9.4f}")
    return 0


def cmd_cost(args: argparse.Namespace) -> int:
    t2 = {r["name"]: r for r in table2_rows()}
    names = [args.processor] if args.processor else sorted(t2)
    print(f"{'processor':<16}{'die w/o':>10}{'die w/':>10}"
          f"{'total w/o':>11}{'total w/':>10}{'saving':>8}")
    for row3 in table3_rows():
        name = row3["name"]
        if name not in names:
            continue
        row2 = t2[name]
        w2 = row2["die_cost_with"]
        w3 = row3["total_with"]
        print(
            f"{name:<16}"
            f"{row2['die_cost_without']:>10.2f}"
            f"{(f'{w2:.2f}' if w2 else '-'):>10}"
            f"{row3['total_without']:>11.2f}"
            f"{(f'{w3:.2f}' if w3 else '-'):>10}"
            + (f"{row3['reduction_percent']:>7.1f}%"
               if row3["reduction_percent"] is not None else
               f"{'-':>8}")
        )
    return 0


def cmd_coverage(args: argparse.Namespace) -> int:
    if args.march in _MARCHES:
        march = _MARCHES[args.march]
    else:
        march = parse_march("custom", args.march)
    report = coverage_campaign(
        march,
        kinds=("stuck_at", "transition", "stuck_open",
               "state_coupling", "data_retention"),
        samples_per_kind=args.samples,
    )
    print(f"march: {march}")
    for kind, detected, total, cov in report.summary_rows():
        print(f"  {kind:<16} {detected:>3}/{total:<3}  {cov:.0%}")
    print(f"  {'OVERALL':<16} {'':>7}  {report.coverage():.0%}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Full signoff sweep: hierarchical DRC, LVS-lite connectivity, and
    control-logic validation, with one exit code per failure class
    (0 clean, 2 configuration, 3 DRC, 4 LVS, 5 control)."""
    import json as json_module

    from repro.tech import get_process
    from repro.verify import drc_report, run_signoff

    config = _config_from(args)
    process = get_process(config.process)

    if args.cif:
        # Geometry read back from disk: CIF carries no ports, so only
        # the DRC stages are meaningful.
        from repro.layout.cif import read_cif

        with open(args.cif) as handle:
            cell = read_cif(handle, process.layers)
        report = drc_report(cell, process, label=args.cif,
                            max_findings=args.max_findings)
    else:
        trpla = None
        if args.control_dir:
            # Verify the plane-file artifact, not the in-memory
            # assembly: a corrupted microword on disk must be caught.
            from pathlib import Path

            from repro.bist.trpla import Trpla, read_plane_files

            directory = Path(args.control_dir)
            and_plane, or_plane = read_plane_files(
                directory / "trpla_and.plane",
                directory / "trpla_or.plane",
            )
            trpla = Trpla(and_plane, or_plane)
        ram = compile_ram(config)
        report = run_signoff(ram, trpla=trpla,
                             max_findings=args.max_findings)

    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    return report.exit_code


def cmd_diagnose(args: argparse.Namespace) -> int:
    """Inject defects, run a diagnostic pass, classify the damage."""
    from repro.bist import IFA_9
    from repro.memsim import collect_fail_records, diagnose

    config = _config_from(args)
    ram = compile_ram(config)
    device = ram.simulation_model()
    injector = DefectInjector(rng=random.Random(args.seed))
    faults = injector.inject(device.array, args.defects)
    print(f"injected: {[f.describe() for f in faults]}")
    records = collect_fail_records(IFA_9, device, bpw=config.bpw)
    result = diagnose(
        records, config.rows, config.bpw, config.bpc, config.spares
    )
    print(f"{len(records)} comparator hits")
    print(f"diagnosis: {result.summary()}")
    if result.repairable_with_rows:
        print(f"verdict: repairable with {result.spares_needed} of "
              f"{config.spares} spare rows")
        return 0
    print("verdict: NOT repairable with row redundancy"
          + (" (column defect present)" if result.column_faults else ""))
    return 1


def cmd_repair_plan(args: argparse.Namespace) -> int:
    """Inject, diagnose, allocate, then replay the repair in hardware.

    The static leg runs the diagnosis pass over the BIST failure log
    and feeds the fault bitmap to the must-repair + branch-and-bound
    allocator; the dynamic leg hands the same device to the 2-D repair
    controller and lets it discover, allocate and program the spares
    itself.  Exit 0 when the device ends up repaired, 1 when the
    controller degrades.
    """
    from repro.bisr import allocate
    from repro.bist import IFA_9, TwoDRepairController
    from repro.memsim import (
        FaultMix, collect_fail_records, fault_bitmap,
    )

    config = _config_from(args)
    ram = compile_ram(config)
    device = ram.simulation_model()
    mix = FaultMix(column_defect=args.column_weight)
    injector = DefectInjector(rng=random.Random(args.seed), mix=mix,
                              clustering=args.clustering)
    faults = injector.inject(device.array, args.defects)
    print(f"injected: {[f.describe() for f in faults]}")

    records = collect_fail_records(IFA_9, device, bpw=config.bpw)
    cells = fault_bitmap(records, config.bpw, config.bpc)
    print(f"{len(records)} comparator hits -> "
          f"{len(cells)} distinct faulty cells")
    plan = allocate(cells, config.rows, config.columns,
                    config.spares, config.spare_cols,
                    node_budget=args.node_budget)
    print(f"static plan: {plan.summary()}")

    device.reset_for_test()
    controller = TwoDRepairController(IFA_9, bpw=config.bpw,
                                      node_budget=args.node_budget)
    result = controller.run(device)
    print(f"dynamic repair: {result.summary()}")
    if result.repaired:
        print(f"REPAIRED: {result.spare_rows_used} spare row(s) + "
              f"{result.spare_cols_used} spare column(s) in "
              f"{result.cycles} cycle(s)")
        return 0
    print(f"DEGRADED: {result.reason}")
    return 1


def cmd_spare_mix(args: argparse.Namespace) -> int:
    """Sweep row/column spare mixes for cost per good bit."""
    from repro.cost import best_mix, spare_mix_sweep

    mixes = []
    for part in args.mixes.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            sr_text, sc_text = part.split("x")
            mixes.append((int(sr_text), int(sc_text)))
        except ValueError:
            raise ConfigError(
                f"--mixes wants SRxSC pairs like 4x0,2x2, got {part!r}"
            ) from None
    defect_counts = _float_list(args.defects)
    points = spare_mix_sweep(
        args.rows, args.bpw, args.bpc, mixes, defect_counts,
        trials=args.trials, seed=args.seed,
        row_defect_frac=args.row_defect_frac,
        col_defect_frac=args.col_defect_frac,
    )
    print(f"{'mix':>7}  {'defects':>8}  {'area':>7}  "
          f"{'yield':>7}  {'cost/bit':>9}")
    for p in points:
        print(f"{p.spares_r:>3}x{p.spares_c:<3}  {p.n_defects:>8g}  "
              f"{p.area_factor:>7.4f}  {p.yield_estimate:>7.4f}  "
              f"{p.cost_per_good_bit:>9.4f}")
    for n in defect_counts:
        b = best_mix(points, n)
        print(f"best @ {n:g} defects: {b.spares_r} spare row(s) + "
              f"{b.spares_c} spare column(s) "
              f"(cost/bit {b.cost_per_good_bit:.4f})")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Supervised parallel campaign with checkpoint/resume."""
    from repro.runtime import CampaignRunner, RetryPolicy
    from repro.runtime.drivers import (
        montecarlo2d_campaign,
        montecarlo_campaign,
        repair_campaign,
        signoff_campaign,
        sizing_campaign,
        techmatrix_campaign,
    )

    if args.driver == "sizing":
        widths = _float_list(args.widths)
        if not widths:
            raise ConfigError("--widths must name at least one width")
        spec = sizing_campaign(process=args.process, widths=widths,
                               seed=args.seed)
    elif args.driver == "techmatrix":
        config = _config_from(args)
        spec = techmatrix_campaign(
            words=config.words, bpw=config.bpw, bpc=config.bpc,
            spares=config.spares,
            processes=[p.strip() for p in args.processes.split(",")
                       if p.strip()],
            ports=_int_list(args.port_counts),
            seed=args.seed, gate_size=config.gate_size,
            strap_every=config.strap_every,
            cache_dir=args.cache_dir,
            tech_dirs=args.tech_dir or (),
        )
    elif args.driver == "signoff":
        config = _config_from(args)
        spec = signoff_campaign(
            words=config.words, bpw=config.bpw, bpc=config.bpc,
            spares=config.spares,
            processes=[p.strip() for p in args.processes.split(",")
                       if p.strip()],
            seed=args.seed, gate_size=config.gate_size,
            strap_every=config.strap_every,
            cache_dir=args.cache_dir,
        )
    else:
        config = _config_from(args)
        if args.driver == "montecarlo2d":
            from repro.cost import area_growth_factor

            spec = montecarlo2d_campaign(
                rows=config.rows, bpw=config.bpw, bpc=config.bpc,
                spares_r=config.spares, spares_c=config.spare_cols,
                defects=args.defects, trials=args.trials,
                n_shards=args.shards, seed=args.seed,
                growth_factor=area_growth_factor(
                    config.rows, config.columns,
                    config.spares, config.spare_cols),
                row_defect_frac=args.row_defect_frac,
                col_defect_frac=args.col_defect_frac,
                node_budget=args.node_budget,
            )
        elif args.driver == "montecarlo":
            spec = montecarlo_campaign(
                rows=config.rows, spares=config.spares,
                bpw=config.bpw, bpc=config.bpc,
                defects=args.defects, trials=args.trials,
                n_shards=args.shards, seed=args.seed,
                growth_factor=1 + config.spares / config.rows,
            )
        else:
            spec = repair_campaign(
                rows=config.rows, bpw=config.bpw, bpc=config.bpc,
                spares=config.spares, defects=args.defects,
                trials=args.trials, n_shards=args.shards,
                seed=args.seed,
            )
    runner = CampaignRunner(
        workers=args.workers,
        timeout_s=args.timeout,
        retry=RetryPolicy(max_attempts=args.retries,
                          backoff_base=args.backoff),
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    result = runner.run(spec)
    print(result.summary())
    return 0 if not result.degraded else 1


def cmd_optimize(args: argparse.Namespace) -> int:
    config = _config_from(args)
    table = spare_tradeoff_table(config, args.defects)
    for choice in table:
        print(choice.summary())
    best = optimize_spares(config, args.defects)
    if best is None:
        print("no feasible spare count under the constraints")
        return 1
    print(f"\nrecommended: {best.spares} spares")
    return 0


def cmd_tech(args: argparse.Namespace) -> int:
    """Technology-registry tooling: list, show, validate decks."""
    from repro.techreg import (
        default_registry,
        load_descriptor,
        validate_descriptor,
    )

    registry = default_registry()
    if args.tech_cmd == "list":
        rows = registry.entries()
        width = max((len(r["name"]) for r in rows), default=4)
        for row in rows:
            if "error" in row:
                print(f"{row['name']:<{width}}  {row['origin']:<8}  "
                      f"INVALID: {row['error']}")
            else:
                print(f"{row['name']:<{width}}  {row['origin']:<8}  "
                      f"{row['feature_um']:>5} um  {row['vdd']:>4} V  "
                      f"{row['metals']}M  {row['fingerprint']}")
        for problem in registry.scan_errors:
            print(f"warning: {problem}", file=sys.stderr)
        return 0
    if args.tech_cmd == "show":
        process = registry.resolve(args.name)
        desc = registry.descriptor(args.name)
        print(f"name         : {process.name}")
        print(f"description  : {process.description}")
        print(f"feature size : {process.feature_um:g} um "
              f"(lambda = {process.rules.lambda_cu} cu)")
        print(f"metal layers : {process.metal_layers}")
        print(f"vdd          : {process.vdd:g} V")
        print(f"fingerprint  : {process.fingerprint()}")
        if desc is not None and desc.source:
            print(f"source       : {desc.source}")
        print(f"rules        : {len(process.rules.rules)} entries")
        for rule in sorted(process.rules.rules):
            print(f"  {rule:<24} {process.rules.rules[rule]} cu")
        return 0
    # validate: per-field errors for a descriptor file, exit 2 on any.
    desc = load_descriptor(args.path)
    problems = validate_descriptor(desc)
    if not problems:
        print(f"{args.path}: OK ({desc.name}, "
              f"{desc.deck_type} deck, {len(desc.rules)} rules)")
        return 0
    print(f"{args.path}: {len(problems)} problem(s)", file=sys.stderr)
    for problem in problems:
        print(f"  {problem.field}: {problem.message}", file=sys.stderr)
    return 2


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bisramgen",
        description="A physical design tool for built-in "
                    "self-repairable static RAMs (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile a BISR-RAM macro")
    _add_config_arguments(p)
    p.add_argument("--policy", choices=("strict", "degrade"), default=None,
                   help="signoff stage gate: strict fails the build on "
                        "any finding, degrade attaches the report and "
                        "continues (default: skip signoff)")
    p.add_argument("--ascii", action="store_true",
                   help="print the layout sketch")
    p.add_argument("--svg", help="write an SVG layout plot")
    p.add_argument("--cif", help="write the CIF layout")
    p.add_argument("--control-dir",
                   help="write the TRPLA plane files here")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed artifact store: serve this "
                        "configuration from cache when present, "
                        "publish it on a miss")
    p.add_argument("--no-cache", action="store_true",
                   help="build from scratch even with --cache-dir")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser(
        "serve",
        help="run the concurrent macro server (HTTP compile-as-a-"
             "service with single-flight dedup and backpressure)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="TCP port (0 picks a free one)")
    p.add_argument("--workers", type=int, default=4,
                   help="build threads (or worker processes with "
                        "--backend process)")
    p.add_argument("--queue-limit", type=int, default=64,
                   help="max queued-or-running requests before 503 "
                        "backpressure")
    p.add_argument("--backend", choices=("thread", "process"),
                   default="thread",
                   help="'process' builds on supervised worker "
                        "processes (deadlines, crash quarantine, "
                        "claim-based cross-process single-flight); "
                        "requires --cache-dir")
    p.add_argument("--deadline-s", type=float, default=300.0,
                   help="per-build wall-clock budget before a hung "
                        "worker is killed (process backend)")
    p.add_argument("--wal", default=None, metavar="FILE",
                   help="journal every admitted request to this "
                        "write-ahead log and replay unfinished ones "
                        "on restart")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="back the server with this artifact store")
    p.add_argument("--cache-budget-mb", type=float, default=None,
                   help="LRU-evict the store beyond this many MB")
    p.add_argument("--max-requests", type=int, default=None,
                   help="exit after serving this many compile "
                        "requests (CI smoke runs)")
    p.add_argument("--lease", default=None, metavar="FILE",
                   help="acquire this liveness lease as the primary "
                        "and heartbeat it (refuses to start if a live "
                        "primary already holds it)")
    p.add_argument("--standby-of", default=None, metavar="LEASE",
                   help="run as a warm standby: serve store hits "
                        "read-only, watch this lease file, and "
                        "promote to primary when it expires or is "
                        "handed off (requires --cache-dir)")
    p.add_argument("--lease-ttl-s", type=float, default=10.0,
                   help="lease staleness horizon: heartbeats older "
                        "than this mean the primary is dead")
    p.add_argument("--drain", action="store_true",
                   help="do not start a server; ask the one at "
                        "--host/--port to drain and hand off its "
                        "lease, then exit")
    p.add_argument("--batch-limit", type=int, default=64,
                   help="max items in one POST /compile_batch "
                        "(larger batches get 413)")
    p.add_argument("--disk-reserve-mb", type=float, default=None,
                   help="shed new builds (503 + Retry-After) when "
                        "free disk in the store drops below this; "
                        "read-only degraded mode below a quarter of "
                        "it (requires --cache-dir)")
    p.add_argument("--rss-limit-mb", type=float, default=None,
                   help="shed new builds when server + worker RSS "
                        "exceeds this")
    p.add_argument("--verbose", action="store_true",
                   help="log each HTTP request")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "chaos",
        help="run the deterministic chaos scenarios against the "
             "service tier (worker kills, hangs, torn publishes, "
             "eviction races, ENOSPC, WAL replay, lease steals, "
             "drain hangs, disk pressure, batch worker kills, and "
             "full primary->standby failover)",
    )
    p.add_argument("--scenarios", nargs="+", default=["all"],
                   metavar="NAME",
                   help="scenario names, or 'all' (the default)")
    p.add_argument("--workdir", default=None, metavar="DIR",
                   help="scratch directory (default: a fresh "
                        "temporary directory, removed afterwards)")
    p.add_argument("--json", action="store_true",
                   help="emit one JSON report instead of text")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("selftest",
                       help="inject defects and run BIST/BISR")
    _add_config_arguments(p)
    p.add_argument("--defects", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-cycles", type=int, default=4,
                   help="2-pass repair cycles before giving up")
    p.add_argument("--retries", type=int, default=0,
                   help="run under the RepairSupervisor with this many "
                        "bounded escalation attempts (0 = legacy flow)")
    p.add_argument("--confirm", default="2/5", metavar="N/M",
                   help="N-of-M re-read confirmation before a row "
                        "consumes a spare (with --retries; default 2/5)")
    p.set_defaults(func=cmd_selftest)

    p = sub.add_parser("yield", help="repairable yield vs defects")
    _add_config_arguments(p)
    p.add_argument("--defects", default="0,1,2,5,10,20",
                   help="comma-separated defect counts")
    p.set_defaults(func=cmd_yield)

    p = sub.add_parser("reliability", help="reliability vs age")
    _add_config_arguments(p)
    p.add_argument("--years", default="1,2,5,10")
    p.add_argument("--rate", type=float, default=1e-6,
                   help="cell failure rate per kilohour")
    p.set_defaults(func=cmd_reliability)

    p = sub.add_parser("cost",
                       help="Tables II/III manufacturing-cost study")
    p.add_argument("--processor", help="restrict to one processor")
    p.set_defaults(func=cmd_cost)

    p = sub.add_parser("coverage", help="march-test fault coverage")
    p.add_argument("--march", default="IFA-9",
                   help="a known name (IFA-9, IFA-13, MATS+, March C-) "
                        "or march notation like 'm(w0); u(r0,w1)'")
    p.add_argument("--samples", type=int, default=20)
    p.set_defaults(func=cmd_coverage)

    p = sub.add_parser("verify",
                       help="signoff sweep: hierarchical DRC, LVS-lite "
                            "connectivity, control validation; exit "
                            "codes 0=clean 2=config 3=DRC 4=LVS "
                            "5=control")
    _add_config_arguments(p)
    p.add_argument("--cif", metavar="FILE",
                   help="verify this CIF file's geometry instead of "
                        "recompiling (DRC stages only: CIF has no "
                        "port annotations)")
    p.add_argument("--control-dir", metavar="DIR",
                   help="read the TRPLA plane files from here and "
                        "verify the on-disk personality")
    p.add_argument("--json", action="store_true",
                   help="print the structured report as JSON")
    p.add_argument("--max-findings", type=int, default=200,
                   help="per-checker finding budget")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("diagnose",
                       help="classify injected damage from the BIST "
                            "failure log")
    _add_config_arguments(p)
    p.add_argument("--defects", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_diagnose)

    p = sub.add_parser("repair-plan",
                       help="inject defects, diagnose, run the 2-D "
                            "must-repair + branch-and-bound allocator, "
                            "then replay the repair dynamically")
    _add_config_arguments(p)
    p.add_argument("--defects", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--column-weight", type=float, default=0.005,
                   help="column-defect weight in the fault mix")
    p.add_argument("--clustering", type=float, default=0.0,
                   help="defect clustering strength (0 = uniform)")
    p.add_argument("--node-budget", type=int, default=20_000,
                   help="branch-and-bound nodes before the allocator "
                        "falls back to the greedy cover")
    p.set_defaults(func=cmd_repair_plan)

    p = sub.add_parser("spare-mix",
                       help="sweep row/column spare mixes for cost "
                            "per good bit")
    p.add_argument("--rows", type=int, default=128)
    p.add_argument("--bpw", type=int, default=8)
    p.add_argument("--bpc", type=int, default=4)
    p.add_argument("--mixes", default="4x0,2x2,0x4",
                   help="comma-separated SRxSC pairs")
    p.add_argument("--defects", default="1,2,5",
                   help="comma-separated mean defect counts")
    p.add_argument("--trials", type=int, default=2_000)
    p.add_argument("--row-defect-frac", type=float, default=0.02,
                   help="fraction of defects that kill a whole row")
    p.add_argument("--col-defect-frac", type=float, default=0.05,
                   help="fraction of defects that kill a whole column")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_spare_mix)

    p = sub.add_parser(
        "campaign",
        help="supervised parallel campaign: sharded, checkpointed, "
             "resumable",
    )
    p.add_argument("--driver",
                   choices=("montecarlo", "montecarlo2d", "repair",
                            "sizing", "signoff", "techmatrix"),
                   default="montecarlo",
                   help="workload: Monte-Carlo yield (row-only or 2-D "
                        "with the allocator in the loop), "
                        "fault-injection repair, SPICE sizing sweep, "
                        "cross-node signoff, or the deck x port-count "
                        "tech matrix")
    # Geometry defaults so a smoke campaign needs no required flags.
    p.add_argument("--words", type=int, default=4096)
    p.add_argument("--bpw", type=int, default=4)
    p.add_argument("--bpc", type=int, default=4)
    p.add_argument("--spares", type=int, default=4, choices=(4, 8, 16))
    p.add_argument("--spare-cols", type=int, default=0,
                   help="spare columns for the montecarlo2d driver")
    p.add_argument("--row-defect-frac", type=float, default=0.0,
                   help="whole-row defect fraction (montecarlo2d)")
    p.add_argument("--col-defect-frac", type=float, default=0.0,
                   help="whole-column defect fraction (montecarlo2d)")
    p.add_argument("--node-budget", type=int, default=4_000,
                   help="allocator search budget (montecarlo2d)")
    p.add_argument("--process", default="cda07",
                   help="rule deck name (any registered deck)")
    p.add_argument("--ports", type=int, default=1, choices=(1, 2),
                   help="access ports for single-config drivers")
    p.add_argument("--port-counts", default="1,2",
                   help="port counts swept by the techmatrix driver")
    p.add_argument("--tech-dir", action="append", default=None,
                   metavar="DIR",
                   help="extra technology descriptor directory "
                        "(repeatable)")
    p.add_argument("--gate-size", type=int, default=1)
    p.add_argument("--strap-every", type=int, default=32)
    p.add_argument("--defects", type=float, default=5.0,
                   help="defects for the montecarlo/repair drivers")
    p.add_argument("--trials", type=int, default=100_000,
                   help="total trials, split evenly over shards")
    p.add_argument("--shards", type=int, default=8,
                   help="independently seeded task units")
    p.add_argument("--widths", default="0.6,0.9,1.2,1.8",
                   help="NMOS widths (um) for the sizing driver")
    p.add_argument("--processes", default="cda05,mos06,cda07,mos08",
                   help="tech nodes for the signoff driver")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool size")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-shard wall-clock budget in seconds")
    p.add_argument("--retries", type=int, default=3,
                   help="dispatch attempts per shard before it is "
                        "finalised as failed")
    p.add_argument("--backoff", type=float, default=0.05,
                   help="base retry backoff in seconds (doubles per "
                        "attempt)")
    p.add_argument("--checkpoint",
                   help="JSONL journal path; finished shards are "
                        "appended as they complete")
    p.add_argument("--resume", action="store_true",
                   help="adopt finished shards from --checkpoint "
                        "instead of starting over")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="artifact store for the signoff driver: "
                        "shards fetch compiled macros through it")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "tech",
        help="technology-registry tooling: list, show, validate decks",
    )
    p.add_argument("--tech-dir", action="append", default=None,
                   metavar="DIR",
                   help="extra descriptor directory (repeatable)")
    tech_sub = p.add_subparsers(dest="tech_cmd", required=True)
    tp = tech_sub.add_parser("list",
                             help="all registered decks with origin "
                                  "and fingerprint")
    tp.set_defaults(func=cmd_tech)
    tp = tech_sub.add_parser("show",
                             help="one deck's parameters and full "
                                  "rule table")
    tp.add_argument("name", help="registered deck name")
    tp.set_defaults(func=cmd_tech)
    tp = tech_sub.add_parser("validate",
                             help="check a descriptor file; prints "
                                  "per-field problems")
    tp.add_argument("path", help="descriptor file (.toml/.json)")
    tp.set_defaults(func=cmd_tech)

    p = sub.add_parser("optimize", help="choose the spare-row count")
    _add_config_arguments(p)
    p.add_argument("--defects", type=float, default=3.0,
                   help="expected defects in the array")
    p.set_defaults(func=cmd_optimize)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        _apply_tech_dirs(args)
        return args.func(args)
    except SignoffError as error:
        # A strict stage gate tripped: exit with the failing class's
        # own code (3=DRC, 4=LVS, 5=control), same codes as `verify`.
        from repro.verify.report import EXIT_CODES

        print(f"error: {error}", file=sys.stderr)
        return EXIT_CODES.get(error.failure_class, 1)
    except ReproError as error:
        # Anticipated failures (bad configuration, exhausted spares,
        # non-converging transients) exit with one line, no traceback.
        print(f"error: {error}", file=sys.stderr)
        for problem in getattr(error, "field_errors", ()) or ():
            # Descriptor rejections carry per-field diagnostics.
            print(f"  {problem.field}: {problem.message}",
                  file=sys.stderr)
        return 2
    except (ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
