"""Design-rule checking on flattened layout.

The checker implements the rule classes the scalable deck defines:

* minimum width per layer,
* minimum same-layer spacing (between non-touching shape groups),
* contact/via enclosure by the surrounding conductor.

Shapes that touch or overlap are merged into connected groups first so
that a wide wire drawn as several overlapping rectangles is not flagged
for "spacing" against itself — the classic polygon-vs-rectangle DRC
subtlety.  The checker runs on flattened geometry, so hierarchical
interactions (a bit-cell shape against an abutting neighbour's shape)
are checked for real.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.geometry import Rect
from repro.layout.cell import Cell
from repro.tech.process import Process


@dataclass(frozen=True)
class DrcViolation:
    """One design-rule violation."""

    rule: str
    layer: str
    measured: int
    required: int
    where: Rect

    def __str__(self) -> str:
        return (
            f"{self.rule} on {self.layer}: measured {self.measured} cu, "
            f"requires {self.required} cu near "
            f"({self.where.x1},{self.where.y1})-({self.where.x2},{self.where.y2})"
        )

    def to_dict(self) -> dict:
        """JSON-serializable form, journalable by ``CheckpointJournal``."""
        return {
            "rule": self.rule,
            "layer": self.layer,
            "measured": self.measured,
            "required": self.required,
            "where": [self.where.x1, self.where.y1,
                      self.where.x2, self.where.y2],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DrcViolation":
        x1, y1, x2, y2 = data["where"]
        return cls(
            rule=data["rule"],
            layer=data["layer"],
            measured=int(data["measured"]),
            required=int(data["required"]),
            where=Rect(int(x1), int(y1), int(x2), int(y2)),
        )


class _DisjointSet:
    """Union-find over shape indices, for merging touching rectangles."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, i: int) -> int:
        while self.parent[i] != i:
            self.parent[i] = self.parent[self.parent[i]]
            i = self.parent[i]
        return i

    def union(self, i: int, j: int) -> None:
        ri, rj = self.find(i), self.find(j)
        if ri != rj:
            self.parent[rj] = ri


def _merged(a: Rect, b: Rect, corner_touch: bool) -> bool:
    """Whether two rectangles belong to one electrical/DRC group.

    With ``corner_touch`` the deck says a pure corner contact conducts,
    so any boundary intersection merges.  Without it, only an interior
    overlap or a shared edge segment of nonzero length does — two
    shapes meeting at a single point stay separate groups (and are then
    subject to the spacing rule between groups).
    """
    if corner_touch:
        return a.intersects(b)
    return a.overlaps(b) or a.abuts(b)


def _connected_groups(
    rects: Sequence[Rect], corner_touch: bool = True
) -> List[List[Rect]]:
    """Partition rectangles into groups that touch or overlap.

    Sweep over x-sorted rectangles; only pairs whose x-ranges intersect
    are candidates, keeping the common tiled-array case near linear.
    The merge criterion follows the deck's ``touch.corner`` rule via
    ``corner_touch`` (see :func:`_merged`).
    """
    n = len(rects)
    ds = _DisjointSet(n)
    order = sorted(range(n), key=lambda i: rects[i].x1)
    active: List[int] = []
    for idx in order:
        r = rects[idx]
        active = [a for a in active if rects[a].x2 >= r.x1]
        for a in active:
            if _merged(rects[a], r, corner_touch):
                ds.union(a, idx)
        active.append(idx)
    groups: Dict[int, List[Rect]] = defaultdict(list)
    for i in range(n):
        groups[ds.find(i)].append(rects[i])
    return list(groups.values())


def _close_box_pairs(boxes: Sequence[Rect], required: int):
    """Yield index pairs of boxes closer than ``required``.

    X-sweep with an active list, the same pruning idea as
    :func:`_connected_groups`: only pairs whose x-ranges come within
    ``required`` are candidates, so the all-pairs quadratic loop over
    group bounding boxes (the flat checker's hot spot on PLA-sized
    cells) collapses to near-linear on realistic layouts.
    """
    order = sorted(range(len(boxes)), key=lambda i: boxes[i].x1)
    active: List[int] = []
    for idx in order:
        b = boxes[idx]
        active = [a for a in active if boxes[a].x2 + required > b.x1]
        for a in active:
            other = boxes[a]
            if other.y1 - required < b.y2 and b.y1 - required < other.y2 \
                    and other.spacing_to(b) < required:
                yield (a, idx) if a < idx else (idx, a)
        active.append(idx)


class DrcChecker:
    """Checks a cell against a process rule deck."""

    #: layers whose enclosure of cuts is verified: cut layer -> enclosing
    #: conductor rule names.
    _CUT_ENCLOSURES = {
        "contact": ("metal1",),
        "via1": ("metal1", "metal2"),
        "via2": ("metal2", "metal3"),
    }

    def __init__(self, process: Process) -> None:
        self.process = process

    def check(self, cell: Cell, max_violations: int = 1000) -> List[DrcViolation]:
        """Run all checks on the flattened cell; returns violations found."""
        by_layer: Dict[str, List[Rect]] = defaultdict(list)
        for layer, rect in cell.flatten():
            by_layer[layer].append(rect)
        return self.check_layers(by_layer, max_violations)

    def check_layers(
        self,
        by_layer: Dict[str, List[Rect]],
        max_violations: int = 1000,
        widths: bool = True,
    ) -> List[DrcViolation]:
        """Run the rule classes on pre-flattened per-layer geometry.

        The entry point the hierarchical signoff sweep uses for its
        boundary-band interaction windows, where geometry is clipped
        out of several cells and no single ``Cell`` exists.  Width
        checks can be disabled (``widths=False``) for windows whose
        shapes are clipped — a clipped shape is legitimately narrow.
        """
        violations: List[DrcViolation] = []
        for layer, rects in sorted(by_layer.items()):
            if widths:
                violations.extend(self._check_width(layer, rects))
                if len(violations) >= max_violations:
                    return violations[:max_violations]
            violations.extend(self._check_spacing(layer, rects))
            if len(violations) >= max_violations:
                return violations[:max_violations]
        violations.extend(self._check_enclosures(by_layer))
        violations.extend(self._check_gates(by_layer))
        return violations[:max_violations]

    # -- individual rule classes -----------------------------------------

    def _rule(self, name: str) -> Optional[int]:
        return self.process.rules.rules.get(name)

    def _check_width(self, layer: str, rects: Sequence[Rect]) -> List[DrcViolation]:
        required = self._rule(f"width.{layer}")
        if required is None:
            return []
        out = []
        for r in rects:
            if r.area == 0:
                continue  # zero-thickness port markers are not drawn metal
            measured = min(r.width, r.height)
            if measured < required:
                out.append(
                    DrcViolation("min-width", layer, measured, required, r)
                )
        return out

    def _check_spacing(self, layer: str, rects: Sequence[Rect]) -> List[DrcViolation]:
        required = self._rule(f"space.{layer}")
        if required is None or len(rects) < 2:
            return []
        solid = [r for r in rects if r.area > 0]
        corner_touch = self.process.rules.corner_touch_connects()
        groups = _connected_groups(solid, corner_touch)
        if len(groups) < 2:
            return []
        # Compare group bounding boxes first (cheap reject), then the
        # individual rectangles of close groups.
        boxes = []
        for g in groups:
            box = g[0]
            for r in g[1:]:
                box = box.union_bbox(r)
            boxes.append(box)
        out = []
        for i, j in _close_box_pairs(boxes, required):
            gap, pair = min(
                ((a.spacing_to(b), (a, b))
                 for a in groups[i] for b in groups[j]),
                key=lambda item: item[0],
            )
            # A zero gap between *different* groups only happens when
            # the deck says corner contact does not conduct (otherwise
            # the shapes would have merged), and is then a violation.
            if gap < required and (gap > 0 or not corner_touch):
                where = pair[0].union_bbox(pair[1])
                out.append(
                    DrcViolation("min-space", layer, gap, required, where)
                )
        return out

    def _check_enclosures(
        self, by_layer: Dict[str, List[Rect]]
    ) -> List[DrcViolation]:
        out = []
        for cut_layer, enclosers in self._CUT_ENCLOSURES.items():
            cuts = by_layer.get(cut_layer, [])
            if not cuts:
                continue
            for encloser in enclosers:
                required = self._rule(f"enclose.{encloser}_{cut_layer}")
                if required is None:
                    continue
                metal = by_layer.get(encloser, [])
                for cut in cuts:
                    grown = cut.expanded(required)
                    if not any(m.contains_rect(grown) for m in metal):
                        margin = self._best_margin(cut, metal)
                        out.append(
                            DrcViolation(
                                f"enclosure-{encloser}",
                                cut_layer,
                                margin,
                                required,
                                cut,
                            )
                        )
        return out

    def _check_gates(
        self, by_layer: Dict[str, List[Rect]]
    ) -> List[DrcViolation]:
        """Transistor-geometry rules at every poly-diffusion crossing.

        A gate is a poly rectangle overlapping a diffusion rectangle;
        the poly must extend past the diffusion by the endcap rule on
        the channel axis (otherwise the transistor can leak around the
        gate end).  The check infers the channel axis from which pair
        of gate edges falls strictly inside the diffusion.
        """
        endcap = self._rule("overhang.gate_poly")
        if endcap is None:
            return []
        polys = by_layer.get("poly", [])
        out: List[DrcViolation] = []
        for diff_layer in ("ndiff", "pdiff"):
            for diff in by_layer.get(diff_layer, []):
                if diff.area == 0:
                    continue
                for poly in polys:
                    channel = poly.intersection(diff)
                    if channel is None or channel.area == 0:
                        continue
                    crosses_x = poly.x1 <= diff.x1 and poly.x2 >= diff.x2
                    crosses_y = poly.y1 <= diff.y1 and poly.y2 >= diff.y2
                    if crosses_x:
                        # Horizontal poly crossing: endcap in x already
                        # guaranteed; nothing to measure on this axis.
                        margin = min(diff.x1 - poly.x1,
                                     poly.x2 - diff.x2)
                    elif crosses_y:
                        margin = min(diff.y1 - poly.y1,
                                     poly.y2 - diff.y2)
                    else:
                        # Poly ends inside the diffusion on both axes:
                        # no complete gate is formed — flag it.
                        margin = -1
                    if margin < endcap:
                        out.append(
                            DrcViolation(
                                "gate-endcap", "poly",
                                max(margin, 0), endcap, channel,
                            )
                        )
        return out

    @staticmethod
    def _best_margin(cut: Rect, metal: Sequence[Rect]) -> int:
        """Largest enclosure margin any single metal shape achieves."""
        best = -1
        for m in metal:
            if not m.contains_rect(cut):
                continue
            margin = min(
                cut.x1 - m.x1, m.x2 - cut.x2, cut.y1 - m.y1, m.y2 - cut.y2
            )
            best = max(best, margin)
        return best
