"""Design-rule checking on flattened layout.

The checker implements the rule classes the scalable deck defines:

* minimum width per layer,
* minimum same-layer spacing (between non-touching shape groups),
* contact/via enclosure by the surrounding conductor.

Shapes that touch or overlap are merged into connected groups first so
that a wide wire drawn as several overlapping rectangles is not flagged
for "spacing" against itself — the classic polygon-vs-rectangle DRC
subtlety.  The checker runs on flattened geometry, so hierarchical
interactions (a bit-cell shape against an abutting neighbour's shape)
are checked for real.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.geometry import Rect
from repro.layout.cell import Cell
from repro.tech.process import Process


@dataclass(frozen=True)
class DrcViolation:
    """One design-rule violation."""

    rule: str
    layer: str
    measured: int
    required: int
    where: Rect

    def __str__(self) -> str:
        return (
            f"{self.rule} on {self.layer}: measured {self.measured} cu, "
            f"requires {self.required} cu near "
            f"({self.where.x1},{self.where.y1})-({self.where.x2},{self.where.y2})"
        )


class _DisjointSet:
    """Union-find over shape indices, for merging touching rectangles."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, i: int) -> int:
        while self.parent[i] != i:
            self.parent[i] = self.parent[self.parent[i]]
            i = self.parent[i]
        return i

    def union(self, i: int, j: int) -> None:
        ri, rj = self.find(i), self.find(j)
        if ri != rj:
            self.parent[rj] = ri


def _connected_groups(rects: Sequence[Rect]) -> List[List[Rect]]:
    """Partition rectangles into groups that touch or overlap.

    Sweep over x-sorted rectangles; only pairs whose x-ranges intersect
    are candidates, keeping the common tiled-array case near linear.
    """
    n = len(rects)
    ds = _DisjointSet(n)
    order = sorted(range(n), key=lambda i: rects[i].x1)
    active: List[int] = []
    for idx in order:
        r = rects[idx]
        active = [a for a in active if rects[a].x2 >= r.x1]
        for a in active:
            if rects[a].intersects(r):
                ds.union(a, idx)
        active.append(idx)
    groups: Dict[int, List[Rect]] = defaultdict(list)
    for i in range(n):
        groups[ds.find(i)].append(rects[i])
    return list(groups.values())


class DrcChecker:
    """Checks a cell against a process rule deck."""

    #: layers whose enclosure of cuts is verified: cut layer -> enclosing
    #: conductor rule names.
    _CUT_ENCLOSURES = {
        "contact": ("metal1",),
        "via1": ("metal1", "metal2"),
        "via2": ("metal2", "metal3"),
    }

    def __init__(self, process: Process) -> None:
        self.process = process

    def check(self, cell: Cell, max_violations: int = 1000) -> List[DrcViolation]:
        """Run all checks on the flattened cell; returns violations found."""
        by_layer: Dict[str, List[Rect]] = defaultdict(list)
        for layer, rect in cell.flatten():
            by_layer[layer].append(rect)

        violations: List[DrcViolation] = []
        for layer, rects in sorted(by_layer.items()):
            violations.extend(self._check_width(layer, rects))
            if len(violations) >= max_violations:
                return violations[:max_violations]
            violations.extend(self._check_spacing(layer, rects))
            if len(violations) >= max_violations:
                return violations[:max_violations]
        violations.extend(self._check_enclosures(by_layer))
        violations.extend(self._check_gates(by_layer))
        return violations[:max_violations]

    # -- individual rule classes -----------------------------------------

    def _rule(self, name: str) -> Optional[int]:
        return self.process.rules.rules.get(name)

    def _check_width(self, layer: str, rects: Sequence[Rect]) -> List[DrcViolation]:
        required = self._rule(f"width.{layer}")
        if required is None:
            return []
        out = []
        for r in rects:
            if r.area == 0:
                continue  # zero-thickness port markers are not drawn metal
            measured = min(r.width, r.height)
            if measured < required:
                out.append(
                    DrcViolation("min-width", layer, measured, required, r)
                )
        return out

    def _check_spacing(self, layer: str, rects: Sequence[Rect]) -> List[DrcViolation]:
        required = self._rule(f"space.{layer}")
        if required is None or len(rects) < 2:
            return []
        solid = [r for r in rects if r.area > 0]
        groups = _connected_groups(solid)
        if len(groups) < 2:
            return []
        # Compare group bounding boxes first (cheap reject), then the
        # individual rectangles of close groups.
        boxes = []
        for g in groups:
            box = g[0]
            for r in g[1:]:
                box = box.union_bbox(r)
            boxes.append(box)
        out = []
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                if boxes[i].spacing_to(boxes[j]) >= required:
                    continue
                gap = min(
                    a.spacing_to(b) for a in groups[i] for b in groups[j]
                )
                if 0 < gap < required:
                    where = boxes[i].union_bbox(boxes[j])
                    out.append(
                        DrcViolation("min-space", layer, gap, required, where)
                    )
        return out

    def _check_enclosures(
        self, by_layer: Dict[str, List[Rect]]
    ) -> List[DrcViolation]:
        out = []
        for cut_layer, enclosers in self._CUT_ENCLOSURES.items():
            cuts = by_layer.get(cut_layer, [])
            if not cuts:
                continue
            for encloser in enclosers:
                required = self._rule(f"enclose.{encloser}_{cut_layer}")
                if required is None:
                    continue
                metal = by_layer.get(encloser, [])
                for cut in cuts:
                    grown = cut.expanded(required)
                    if not any(m.contains_rect(grown) for m in metal):
                        margin = self._best_margin(cut, metal)
                        out.append(
                            DrcViolation(
                                f"enclosure-{encloser}",
                                cut_layer,
                                margin,
                                required,
                                cut,
                            )
                        )
        return out

    def _check_gates(
        self, by_layer: Dict[str, List[Rect]]
    ) -> List[DrcViolation]:
        """Transistor-geometry rules at every poly-diffusion crossing.

        A gate is a poly rectangle overlapping a diffusion rectangle;
        the poly must extend past the diffusion by the endcap rule on
        the channel axis (otherwise the transistor can leak around the
        gate end).  The check infers the channel axis from which pair
        of gate edges falls strictly inside the diffusion.
        """
        endcap = self._rule("overhang.gate_poly")
        if endcap is None:
            return []
        polys = by_layer.get("poly", [])
        out: List[DrcViolation] = []
        for diff_layer in ("ndiff", "pdiff"):
            for diff in by_layer.get(diff_layer, []):
                if diff.area == 0:
                    continue
                for poly in polys:
                    channel = poly.intersection(diff)
                    if channel is None or channel.area == 0:
                        continue
                    crosses_x = poly.x1 <= diff.x1 and poly.x2 >= diff.x2
                    crosses_y = poly.y1 <= diff.y1 and poly.y2 >= diff.y2
                    if crosses_x:
                        # Horizontal poly crossing: endcap in x already
                        # guaranteed; nothing to measure on this axis.
                        margin = min(diff.x1 - poly.x1,
                                     poly.x2 - diff.x2)
                    elif crosses_y:
                        margin = min(diff.y1 - poly.y1,
                                     poly.y2 - diff.y2)
                    else:
                        # Poly ends inside the diffusion on both axes:
                        # no complete gate is formed — flag it.
                        margin = -1
                    if margin < endcap:
                        out.append(
                            DrcViolation(
                                "gate-endcap", "poly",
                                max(margin, 0), endcap, channel,
                            )
                        )
        return out

    @staticmethod
    def _best_margin(cut: Rect, metal: Sequence[Rect]) -> int:
        """Largest enclosure margin any single metal shape achieves."""
        best = -1
        for m in metal:
            if not m.contains_rect(cut):
                continue
            margin = min(
                cut.x1 - m.x1, m.x2 - cut.x2, cut.y1 - m.y1, m.y2 - cut.y2
            )
            best = max(best, margin)
        return best
