"""CIF (Caltech Intermediate Form) export.

CIF is the interchange format of the era: a plain-text hierarchical
format that the original BISRAMGEN (built on 1990s university CAD
infrastructure) would have produced for MOSIS submission.  We emit
standard CIF 2.0: ``DS``/``DF`` definitions, ``C`` calls with
rotate/mirror/translate, ``L`` layer selection, and ``B`` boxes.

CIF expresses boxes by center and size and its native unit is the
centimicron, which is exactly our database unit, so the export is
loss-free.
"""

from __future__ import annotations

from typing import Dict, List, TextIO

from repro.geometry.transform import Orientation
from repro.layout.cell import Cell
from repro.tech.layers import LayerSet

#: CIF `C` call transform fragments per orientation.  CIF applies
#: transforms left to right; our MX (flip y) is "M Y" in CIF-speak.
#: The combined orientations MX90/MY90 are rotate-then-mirror in this
#: library's matrix convention, so the rotation fragment comes first.
_ORIENT_CIF = {
    Orientation.R0: "",
    Orientation.R90: " R 0 1",
    Orientation.R180: " R -1 0",
    Orientation.R270: " R 0 -1",
    Orientation.MX: " M Y",
    Orientation.MX90: " R 0 1 M Y",
    Orientation.MY: " M X",
    Orientation.MY90: " R 0 1 M X",
}


def write_cif(cell: Cell, stream: TextIO, layers: LayerSet) -> None:
    """Write ``cell`` and its whole hierarchy as CIF 2.0 text.

    Cells are numbered depth-first with children before parents, as CIF
    requires definitions before calls.
    """
    ordered: List[Cell] = []
    seen: Dict[str, int] = {}

    def visit(c: Cell) -> None:
        if c.name in seen:
            return
        for inst in c.instances():
            visit(inst.cell)
        seen[c.name] = len(ordered) + 1
        ordered.append(c)

    visit(cell)

    stream.write(f"( CIF for {cell.name}, database unit = 1 centimicron );\n")
    for c in ordered:
        number = seen[c.name]
        stream.write(f"DS {number} 1 1;\n")
        stream.write(f"9 {c.name};\n")
        current_layer = None
        for layer_name, rect in c.shapes():
            if rect.area == 0:
                continue
            layer = layers.get(layer_name)
            cif_layer = layer.cif_name if layer else layer_name.upper()
            if cif_layer != current_layer:
                stream.write(f"L {cif_layer};\n")
                current_layer = cif_layer
            cx, cy = rect.x1 + rect.x2, rect.y1 + rect.y2
            # CIF boxes take center coordinates; keep everything integral
            # by writing doubled database units when the center is not on
            # the grid (CIF allows any unit scaling via the DS header, but
            # doubling centers is the conventional trick).
            stream.write(
                f"B {rect.width * 2} {rect.height * 2} {cx} {cy};\n"
            )
        for inst in c.instances():
            child_no = seen[inst.cell.name]
            t = inst.transform
            frag = _ORIENT_CIF[t.orientation]
            stream.write(
                f"C {child_no}{frag} T {t.translation.x} {t.translation.y};\n"
            )
        stream.write("DF;\n")
    stream.write(f"C {seen[cell.name]};\n")
    stream.write("E\n")
