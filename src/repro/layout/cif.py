"""CIF (Caltech Intermediate Form) export.

CIF is the interchange format of the era: a plain-text hierarchical
format that the original BISRAMGEN (built on 1990s university CAD
infrastructure) would have produced for MOSIS submission.  We emit
standard CIF 2.0: ``DS``/``DF`` definitions, ``C`` calls with
rotate/mirror/translate, ``L`` layer selection, and ``B`` boxes.

CIF expresses boxes by center and size and its native unit is the
centimicron, which is exactly our database unit, so the export is
loss-free.
"""

from __future__ import annotations

from typing import Dict, List, TextIO

from repro.geometry import Point, Rect, Transform
from repro.geometry.transform import Orientation
from repro.layout.cell import Cell
from repro.tech.layers import LayerSet

#: CIF `C` call transform fragments per orientation.  CIF applies
#: transforms left to right; our MX (flip y) is "M Y" in CIF-speak.
#: The combined orientations MX90/MY90 are rotate-then-mirror in this
#: library's matrix convention, so the rotation fragment comes first.
_ORIENT_CIF = {
    Orientation.R0: "",
    Orientation.R90: " R 0 1",
    Orientation.R180: " R -1 0",
    Orientation.R270: " R 0 -1",
    Orientation.MX: " M Y",
    Orientation.MX90: " R 0 1 M Y",
    Orientation.MY: " M X",
    Orientation.MY90: " R 0 1 M X",
}


def write_cif(cell: Cell, stream: TextIO, layers: LayerSet) -> None:
    """Write ``cell`` and its whole hierarchy as CIF 2.0 text.

    Cells are numbered depth-first with children before parents, as CIF
    requires definitions before calls.
    """
    ordered: List[Cell] = []
    seen: Dict[str, int] = {}

    def visit(c: Cell) -> None:
        if c.name in seen:
            return
        for inst in c.instances():
            visit(inst.cell)
        seen[c.name] = len(ordered) + 1
        ordered.append(c)

    visit(cell)

    stream.write(f"( CIF for {cell.name}, database unit = 1 centimicron );\n")
    for c in ordered:
        number = seen[c.name]
        stream.write(f"DS {number} 1 1;\n")
        stream.write(f"9 {c.name};\n")
        current_layer = None
        for layer_name, rect in c.shapes():
            if rect.area == 0:
                continue
            layer = layers.get(layer_name)
            cif_layer = layer.cif_name if layer else layer_name.upper()
            if cif_layer != current_layer:
                stream.write(f"L {cif_layer};\n")
                current_layer = cif_layer
            cx, cy = rect.x1 + rect.x2, rect.y1 + rect.y2
            # CIF boxes take center coordinates; keep everything integral
            # by writing doubled database units when the center is not on
            # the grid (CIF allows any unit scaling via the DS header, but
            # doubling centers is the conventional trick).
            stream.write(
                f"B {rect.width * 2} {rect.height * 2} {cx} {cy};\n"
            )
        for inst in c.instances():
            child_no = seen[inst.cell.name]
            t = inst.transform
            frag = _ORIENT_CIF[t.orientation]
            stream.write(
                f"C {child_no}{frag} T {t.translation.x} {t.translation.y};\n"
            )
        stream.write("DF;\n")
    stream.write(f"C {seen[cell.name]};\n")
    stream.write("E\n")


#: Reverse of :data:`_ORIENT_CIF`, keyed by normalized fragment tokens.
_CIF_ORIENT = {
    tuple(frag.split()): orient for orient, frag in _ORIENT_CIF.items()
}


def read_cif(stream: TextIO, layers: LayerSet) -> Cell:
    """Read the CIF subset :func:`write_cif` emits back into a hierarchy.

    Understands ``DS``/``DF`` definitions with the ``9 name;`` name
    extension, ``L`` layer selection (CIF layer names are mapped back
    through ``layers``), doubled-unit ``B`` boxes, and ``C`` calls with
    the rotate/mirror/translate fragments the writer produces.  Ports
    do not survive the trip — CIF has no port concept — so a read-back
    cell supports geometric checks (DRC) but not connectivity
    extraction.

    Returns the top cell: the target of the file-level ``C`` call, or
    the last definition when there is none.
    """
    by_cif: Dict[str, str] = {
        layer.cif_name: layer.name for layer in layers
    }
    text = stream.read()
    # Strip comments: parenthesized runs outside definitions.
    cleaned = []
    depth = 0
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth = max(0, depth - 1)
        elif depth == 0:
            cleaned.append(ch)
    commands = [c.split() for c in "".join(cleaned).split(";")]

    cells: Dict[int, Cell] = {}
    current: Cell = None
    current_no = 0
    pending_boxes: List = []
    pending_calls: List = []
    layer_name = ""
    top: Cell = None

    def finish() -> None:
        nonlocal current, pending_boxes, pending_calls
        if current is None:
            return
        for layer, rect in pending_boxes:
            current.add_shape(layer, rect)
        for child_no, transform in pending_calls:
            if child_no not in cells:
                raise ValueError(
                    f"CIF call to undefined symbol {child_no}")
            current.add_instance(cells[child_no], transform)
        cells[current_no] = current
        current, pending_boxes, pending_calls = None, [], []

    for tokens in commands:
        if not tokens:
            continue
        word = tokens[0]
        if word == "DS":
            finish()
            current_no = int(tokens[1])
            current = Cell(f"cif_{current_no}")
        elif word == "9" and current is not None:
            current = Cell(tokens[1])
        elif word == "L":
            layer_name = by_cif.get(tokens[1], tokens[1].lower())
        elif word == "B":
            w, h, cx, cy = (int(t) for t in tokens[1:5])
            rect = Rect((2 * cx - w) // 4, (2 * cy - h) // 4,
                        (2 * cx + w) // 4, (2 * cy + h) // 4)
            pending_boxes.append((layer_name, rect))
        elif word == "C":
            child_no = int(tokens[1])
            rest = tokens[2:]
            tx = ty = 0
            frag: List[str] = []
            i = 0
            while i < len(rest):
                if rest[i] == "T":
                    tx, ty = int(rest[i + 1]), int(rest[i + 2])
                    i += 3
                elif rest[i] == "R":
                    frag += ["R", rest[i + 1], rest[i + 2]]
                    i += 3
                elif rest[i] == "M":
                    frag += ["M", rest[i + 1]]
                    i += 2
                else:
                    raise ValueError(
                        f"unsupported CIF call fragment {rest[i]!r}")
            orient = _CIF_ORIENT.get(tuple(frag))
            if orient is None:
                raise ValueError(
                    f"unsupported CIF transform {' '.join(frag)!r}")
            transform = Transform(orient, Point(tx, ty))
            if current is None:
                top = cells.get(child_no)  # the file-level top call
                if top is None:
                    raise ValueError(
                        f"top-level call to undefined symbol {child_no}")
            else:
                pending_calls.append((child_no, transform))
        elif word in ("DF", "E"):
            finish()
    finish()
    if top is None and cells:
        top = cells[max(cells)]
    if top is None:
        raise ValueError("CIF stream contains no cell definitions")
    return top
