"""Hierarchical layout database.

Cells hold rectangles on mask layers, named ports, and placed instances
of other cells; the hierarchy is flattened on demand for DRC, rendering,
and CIF export.  Ports are layer-tagged edge rectangles so that the
abutment-based assembly style of BISRAMGEN ("no routing is necessary and
the signals in adjacent modules are perfectly aligned and connected by
abutments") can be checked exactly.
"""

from repro.layout.cell import Cell, CellInstance, Port
from repro.layout.drc import DrcChecker, DrcViolation
from repro.layout.cif import write_cif
from repro.layout.render import render_svg, render_ascii
from repro.layout.library import CellLibrary

__all__ = [
    "Cell",
    "CellInstance",
    "Port",
    "DrcChecker",
    "DrcViolation",
    "write_cif",
    "render_svg",
    "render_ascii",
    "CellLibrary",
]
