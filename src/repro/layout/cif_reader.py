"""CIF reader for the exported subset — round-trip verification.

Reads the CIF 2.0 the exporter emits (DS/DF definitions, ``9`` name
extensions, B boxes with doubled centre coordinates, C calls with
R/M/T transforms) back into a :class:`~repro.layout.cell.Cell`
hierarchy.  Ports are not represented in CIF and are lost — geometry
is the contract the round-trip tests check.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Optional

from repro.geometry import Point, Rect, Transform
from repro.geometry.transform import Orientation
from repro.layout.cell import Cell
from repro.tech.layers import LayerSet

_CALL_RE = re.compile(
    r"C\s+(\d+)"
    r"((?:\s+(?:R\s+-?\d+\s+-?\d+|M\s+[XY]|T\s+-?\d+\s+-?\d+))*)"
)
_FRAG_RE = re.compile(r"(R\s+-?\d+\s+-?\d+|M\s+[XY]|T\s+-?\d+\s+-?\d+)")

#: Rotation vector -> orientation (CIF `R a b` is the direction the
#: cell's +x axis points after the transform).
_ROT = {
    (1, 0): Orientation.R0,
    (0, 1): Orientation.R90,
    (-1, 0): Orientation.R180,
    (0, -1): Orientation.R270,
}


def read_cif(path, layers: LayerSet) -> Cell:
    """Parse a CIF file produced by :func:`repro.layout.cif.write_cif`.

    Returns the top cell (the one invoked by the trailing bare ``C``
    call).

    Raises:
        ValueError: on structural errors (unknown calls, missing top).
    """
    text = Path(path).read_text()
    cif_to_layer = {l.cif_name: l.name for l in layers}
    cells: Dict[int, Cell] = {}
    current: Optional[Cell] = None
    current_layer: Optional[str] = None
    top_number: Optional[int] = None

    for raw in text.replace("\n", " ").split(";"):
        statement = raw.strip()
        if not statement or statement.startswith("("):
            continue
        if statement == "E":
            break
        head = statement.split()[0]
        if head == "DS":
            number = int(statement.split()[1])
            current = Cell(f"cell_{number}")
            cells[number] = current
        elif head == "DF":
            current = None
        elif head == "9" and current is not None:
            current.name = statement.split(None, 1)[1]
        elif head == "L":
            cif_name = statement.split()[1]
            current_layer = cif_to_layer.get(cif_name, cif_name.lower())
        elif head == "B":
            if current is None:
                raise ValueError("box outside a definition")
            _, w2, h2, cx, cy = statement.split()[:5]
            w2, h2, cx, cy = int(w2), int(h2), int(cx), int(cy)
            # The exporter doubles sizes and centre coordinates so that
            # half-unit centres stay integral; undo the doubling.
            rect = Rect((cx - w2 // 2) // 2, (cy - h2 // 2) // 2,
                        (cx + w2 // 2) // 2, (cy + h2 // 2) // 2)
            current.add_shape(current_layer or "unknown", rect)
        elif head == "C":
            match = _CALL_RE.match(statement)
            if not match:
                raise ValueError(f"bad call statement {statement!r}")
            number = int(match.group(1))
            transform = _parse_transform(match.group(2) or "")
            if current is None:
                top_number = number
            else:
                if number not in cells:
                    raise ValueError(
                        f"call to undefined cell {number}"
                    )
                current.add_instance(cells[number], transform)
        # Other statements (layer cards we emitted none of) ignored.

    if top_number is None:
        raise ValueError("no top-level call found")
    if top_number not in cells:
        raise ValueError(f"top cell {top_number} undefined")
    return cells[top_number]


def _parse_transform(fragments: str) -> Transform:
    """Compose CIF transform fragments (applied left to right)."""
    result = Transform()
    for frag in _FRAG_RE.findall(fragments):
        parts = frag.split()
        if parts[0] == "T":
            step = Transform(
                translation=Point(int(parts[1]), int(parts[2]))
            )
        elif parts[0] == "R":
            vector = (int(parts[1]), int(parts[2]))
            if vector not in _ROT:
                raise ValueError(f"non-Manhattan rotation {vector}")
            step = Transform(_ROT[vector])
        else:  # M X / M Y
            orient = (
                Orientation.MY if parts[1] == "X" else Orientation.MX
            )
            step = Transform(orient)
        # CIF applies fragments in order: later fragments act on the
        # already-transformed geometry.
        result = step.compose(result)
    return result
