"""Cells, instances, and ports — the layout hierarchy.

A :class:`Cell` is a named container of

* *shapes*: rectangles tagged with a layer name,
* *ports*: named, layer-tagged rectangles that form the cell's signal
  interface (usually zero-thickness segments on the cell boundary), and
* *instances*: placements of child cells under a
  :class:`~repro.geometry.transform.Transform`.

The structure mirrors a CIF/GDS hierarchy.  BISRAMGEN builds macrocells
bottom-up by tiling leaf cells ("exploits the array-like regularity in
module functions and interconnections"), so the dominant operations are
:meth:`Cell.add_instance`, :meth:`Cell.tile`, and abutment queries on
ports; all are kept allocation-light because arrays can reach millions
of bit cells.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.geometry import Point, Rect, Transform, bounding_box
from repro.geometry.transform import Orientation


@dataclass(frozen=True)
class Port:
    """A named signal landing on a cell.

    Attributes:
        name: signal name, unique within the owning cell.
        layer: layer the port metal lives on.
        rect: port geometry in the owning cell's coordinates.  Edge ports
            are zero-thickness rectangles lying exactly on the boundary.
        direction: "in", "out", "inout", or "supply".
    """

    name: str
    layer: str
    rect: Rect
    direction: str = "inout"

    def __post_init__(self) -> None:
        if self.direction not in ("in", "out", "inout", "supply"):
            raise ValueError(f"bad port direction {self.direction!r}")

    def transformed(self, transform: Transform) -> "Port":
        """The port as seen through a placement transform."""
        return replace(self, rect=self.rect.transformed(transform))


@dataclass(frozen=True)
class CellInstance:
    """A placement of a child cell inside a parent."""

    cell: "Cell"
    transform: Transform
    name: str = ""

    def bbox(self) -> Optional[Rect]:
        box = self.cell.bbox()
        if box is None:
            return None
        return box.transformed(self.transform)

    def port(self, name: str) -> Port:
        """A child port mapped into the parent's coordinates."""
        return self.cell.port(name).transformed(self.transform)

    def ports(self) -> Iterator[Port]:
        for p in self.cell.ports():
            yield p.transformed(self.transform)


class Cell:
    """A layout cell: shapes + ports + child instances."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("cell name must be non-empty")
        self.name = name
        self._shapes: List[Tuple[str, Rect]] = []
        self._ports: Dict[str, Port] = {}
        self._instances: List[CellInstance] = []
        self._bbox_cache: Optional[Rect] = None
        self._bbox_dirty = True

    # -- construction ----------------------------------------------------

    def add_shape(self, layer: str, rect: Rect) -> None:
        """Add one rectangle on ``layer``."""
        self._shapes.append((layer, rect))
        self._bbox_dirty = True

    def add_port(self, port: Port) -> None:
        """Register a port; names must be unique within the cell."""
        if port.name in self._ports:
            raise ValueError(f"duplicate port {port.name!r} in cell {self.name!r}")
        self._ports[port.name] = port

    def add_instance(
        self,
        cell: "Cell",
        transform: Transform = Transform(),
        name: str = "",
    ) -> CellInstance:
        """Place ``cell`` under ``transform`` and return the instance."""
        inst = CellInstance(cell=cell, transform=transform, name=name)
        self._instances.append(inst)
        self._bbox_dirty = True
        return inst

    def tile(
        self,
        cell: "Cell",
        columns: int,
        rows: int,
        pitch_x: int,
        pitch_y: int,
        origin: Point = Point(0, 0),
        name_prefix: str = "t",
        alternate_mirror_y: bool = False,
    ) -> List[CellInstance]:
        """Place a ``columns`` x ``rows`` array of ``cell``.

        ``alternate_mirror_y`` mirrors odd rows about the x-axis, the
        standard trick for sharing supply rails between adjacent SRAM
        rows (every other row is flipped so VDD abuts VDD and GND abuts
        GND).
        """
        if columns <= 0 or rows <= 0:
            raise ValueError("tile counts must be positive")
        instances = []
        for r in range(rows):
            for c in range(columns):
                orient = Orientation.R0
                y = origin.y + r * pitch_y
                if alternate_mirror_y and r % 2 == 1:
                    orient = Orientation.MX
                    # MX flips about y=0, so shift up by the cell height to
                    # keep the flipped row occupying the same pitch slot.
                    y += pitch_y
                t = Transform(orient, Point(origin.x + c * pitch_x, y))
                instances.append(
                    self.add_instance(cell, t, name=f"{name_prefix}_{r}_{c}")
                )
        return instances

    # -- queries ----------------------------------------------------------

    def shapes(self) -> Sequence[Tuple[str, Rect]]:
        return tuple(self._shapes)

    def ports(self) -> Iterator[Port]:
        return iter(self._ports.values())

    def port_names(self) -> Tuple[str, ...]:
        return tuple(self._ports)

    def port(self, name: str) -> Port:
        try:
            return self._ports[name]
        except KeyError:
            raise KeyError(
                f"cell {self.name!r} has no port {name!r}; "
                f"ports: {sorted(self._ports)}"
            ) from None

    def has_port(self, name: str) -> bool:
        return name in self._ports

    def instances(self) -> Sequence[CellInstance]:
        return tuple(self._instances)

    def bbox(self) -> Optional[Rect]:
        """Bounding box over own shapes, ports, and child instances."""
        if self._bbox_dirty:
            boxes = [r for _, r in self._shapes]
            boxes.extend(p.rect for p in self._ports.values())
            for inst in self._instances:
                b = inst.bbox()
                if b is not None:
                    boxes.append(b)
            self._bbox_cache = bounding_box(boxes)
            self._bbox_dirty = False
        return self._bbox_cache

    @property
    def width(self) -> int:
        box = self.bbox()
        return 0 if box is None else box.width

    @property
    def height(self) -> int:
        box = self.bbox()
        return 0 if box is None else box.height

    def area(self) -> int:
        """Bounding-box area (the area metric of the paper's Table I)."""
        box = self.bbox()
        return 0 if box is None else box.area

    # -- hierarchy operations ----------------------------------------------

    def flatten(
        self, max_depth: Optional[int] = None
    ) -> Iterator[Tuple[str, Rect]]:
        """Yield every shape of the hierarchy in this cell's coordinates.

        ``max_depth`` limits recursion (0 = own shapes only); None means
        full flattening.
        """
        yield from self._flatten(Transform(), 0, max_depth)

    def _flatten(
        self, transform: Transform, depth: int, max_depth: Optional[int]
    ) -> Iterator[Tuple[str, Rect]]:
        for layer, rect in self._shapes:
            yield layer, rect.transformed(transform)
        if max_depth is not None and depth >= max_depth:
            return
        for inst in self._instances:
            sub = transform.compose(inst.transform)
            yield from inst.cell._flatten(sub, depth + 1, max_depth)

    def count_shapes(self) -> int:
        """Total flattened shape count (used by complexity metrics)."""
        return sum(1 for _ in self.flatten())

    def subcells(self) -> Dict[str, "Cell"]:
        """All distinct cells in the hierarchy, keyed by name."""
        found: Dict[str, Cell] = {}

        def visit(cell: "Cell") -> None:
            if cell.name in found:
                return
            found[cell.name] = cell
            for inst in cell._instances:
                visit(inst.cell)

        visit(self)
        return found

    def __repr__(self) -> str:
        return (
            f"Cell({self.name!r}, shapes={len(self._shapes)}, "
            f"ports={len(self._ports)}, instances={len(self._instances)})"
        )
