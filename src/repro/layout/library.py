"""Leaf-cell library.

BISRAMGEN "builds a library of leaf cells that are subsequently used for
generating modules or macrocells in a bottom-up (hierarchical) fashion".
The library memoises generated cells by (generator, parameters) so each
distinct leaf layout exists once no matter how many million times it is
instantiated, and supports registration of *user-provided building
blocks* — the paper's escape hatch when the tool's own guarantees do not
satisfy the user.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional, Tuple

from repro.layout.cell import Cell
from repro.tech.process import Process


class CellLibrary:
    """Memoising registry of leaf cells for one process."""

    def __init__(self, process: Process) -> None:
        self.process = process
        self._cache: Dict[Tuple[str, Hashable], Cell] = {}
        self._user_cells: Dict[str, Cell] = {}

    def get(
        self,
        kind: str,
        generator: Callable[..., Cell],
        params: Hashable = (),
        **kwargs,
    ) -> Cell:
        """Return the cached cell for (kind, params), generating on miss.

        A user-registered cell of the same ``kind`` overrides the
        generator entirely, mirroring the paper's use of "user-specified
        library of leaf cell and custom RAM designs".
        """
        if kind in self._user_cells:
            return self._user_cells[kind]
        key = (kind, params)
        if key not in self._cache:
            self._cache[key] = generator(self.process, *_as_tuple(params), **kwargs)
        return self._cache[key]

    def register_user_cell(self, kind: str, cell: Cell) -> None:
        """Install a hand-crafted replacement for a generated leaf kind."""
        self._user_cells[kind] = cell

    def user_cell(self, kind: str) -> Optional[Cell]:
        return self._user_cells.get(kind)

    def cached_kinds(self) -> Tuple[str, ...]:
        return tuple(sorted({k for k, _ in self._cache}))

    def __len__(self) -> int:
        return len(self._cache) + len(self._user_cells)


def _as_tuple(params: Hashable) -> tuple:
    if isinstance(params, tuple):
        return params
    if params == ():
        return ()
    return (params,)
