"""Layout rendering: SVG plots and terminal ASCII sketches.

The paper's Figs. 6 and 7 are layout plots of compiled 64 kB and 128 kB
BISR-SRAM macros.  :func:`render_svg` reproduces such plots from any
cell; :func:`render_ascii` draws a coarse block diagram of the top-level
macrocells, which is what the figures actually communicate (array,
decoders, sense amps, BIST/BISR blocks and their relative sizes).
"""

from __future__ import annotations

from typing import List, Optional

from repro.geometry import Rect
from repro.layout.cell import Cell
from repro.tech.layers import LayerSet


def render_svg(
    cell: Cell,
    layers: LayerSet,
    width_px: int = 800,
    max_shapes: int = 200_000,
    flatten_depth: Optional[int] = None,
) -> str:
    """Render a cell as an SVG string.

    ``flatten_depth`` bounds the hierarchy depth drawn; depth 1 shows the
    macrocell floorplan (the view of Figs. 6-7), None draws every
    rectangle.
    """
    box = cell.bbox()
    if box is None or box.area == 0:
        return '<svg xmlns="http://www.w3.org/2000/svg"/>'
    scale = width_px / box.width
    height_px = max(1, int(box.height * scale))
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width_px}" height="{height_px}" '
        f'viewBox="0 0 {box.width} {box.height}">',
        f'<title>{cell.name}</title>',
        f'<rect x="0" y="0" width="{box.width}" height="{box.height}" '
        f'fill="white"/>',
    ]
    count = 0
    for layer_name, rect in cell.flatten(max_depth=flatten_depth):
        if rect.area == 0:
            continue
        count += 1
        if count > max_shapes:
            parts.append(f"<!-- truncated after {max_shapes} shapes -->")
            break
        layer = layers.get(layer_name)
        color = layer.color if layer else "#999999"
        x = rect.x1 - box.x1
        # SVG y grows downward; layout y grows upward.
        y = box.y2 - rect.y2
        parts.append(
            f'<rect x="{x}" y="{y}" width="{rect.width}" '
            f'height="{rect.height}" fill="{color}" fill-opacity="0.55"/>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def render_ascii(cell: Cell, columns: int = 78, rows: int = 24) -> str:
    """Draw the top-level floorplan as labelled ASCII boxes.

    Each direct child instance becomes one box scaled into a character
    grid; overlapping labels are truncated.  This is the "layout plot"
    for terminals.
    """
    box = cell.bbox()
    if box is None or box.area == 0:
        return f"(cell {cell.name} is empty)"
    grid = [[" "] * columns for _ in range(rows)]

    def to_grid(r: Rect):
        gx1 = int((r.x1 - box.x1) / box.width * (columns - 1))
        gx2 = int((r.x2 - box.x1) / box.width * (columns - 1))
        # invert y for screen coordinates
        gy1 = int((box.y2 - r.y2) / box.height * (rows - 1))
        gy2 = int((box.y2 - r.y1) / box.height * (rows - 1))
        return gx1, gy1, max(gx2, gx1 + 1), max(gy2, gy1 + 1)

    def draw_box(r: Rect, label: str) -> None:
        x1, y1, x2, y2 = to_grid(r)
        for x in range(x1, x2 + 1):
            grid[y1][x] = "-"
            grid[y2][x] = "-"
        for y in range(y1, y2 + 1):
            grid[y][x1] = "|"
            grid[y][x2] = "|"
        for corner_y, corner_x in ((y1, x1), (y1, x2), (y2, x1), (y2, x2)):
            grid[corner_y][corner_x] = "+"
        text = label[: max(0, x2 - x1 - 1)]
        ty = (y1 + y2) // 2
        tx = x1 + 1 + max(0, (x2 - x1 - 1 - len(text)) // 2)
        for i, ch in enumerate(text):
            if tx + i < x2:
                grid[ty][tx + i] = ch

    instances = list(cell.instances())
    if not instances:
        draw_box(box, cell.name)
    else:
        # Draw larger children first so small blocks stay visible on top.
        for inst in sorted(
            instances, key=lambda i: -(i.bbox().area if i.bbox() else 0)
        ):
            b = inst.bbox()
            if b is None or b.area == 0:
                continue
            draw_box(b, inst.name or inst.cell.name)
    header = (
        f"{cell.name}: {box.width / 100:.1f} x {box.height / 100:.1f} um "
        f"({box.area / 1e10:.4f} mm^2)"
    )
    return header + "\n" + "\n".join("".join(row).rstrip() for row in grid)
