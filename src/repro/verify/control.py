"""Control-logic validation: TRPLA microprogram and BISR invariants.

The layout checks prove the silicon is drawable; this checker proves
the *controller burned into it* is the right machine:

* **reachability / liveness** — every microprogram state is reachable
  from ``idle``, and every state can still reach a terminal
  (``pass_done``/``repair_fail``); a corrupted branch target strands
  the hardware in a live-locked loop.
* **march round-trip** — the microprogram's per-operation states agree
  with the march test they were compiled from: one ``o<j>`` state per
  operation with the right read/write/polarity outputs, one wait state
  per delay element.
* **personality equivalence** — the AND/OR plane matrices (as built,
  or as read back from plane files) are exhaustively evaluated over
  every state x condition assignment and compared against the
  microprogram semantics, so a single corrupted microword is caught
  and named.
* **BISR invariants** — a short fault-injected self-test run must
  leave the TLB with strictly increasing spare assignments, no
  duplicate rows, and translations that land inside the spare band.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Tuple

from repro.bist.controller import build_test_program
from repro.bist.march import IFA_9, MarchTest
from repro.bist.microcode import Microprogram, assemble
from repro.bist.trpla import Trpla
from repro.verify.report import SignoffFinding

#: Cap on the equivalence sweep's per-state condition assignments; with
#: the standard 5 condition inputs this is exhaustive (2^5 = 32).
_MAX_ASSIGNMENTS = 1 << 10


def _finding(kind: str, subject: str, message: str,
             **data: object) -> SignoffFinding:
    return SignoffFinding(
        checker="control", stage="control", kind=kind,
        subject=subject, message=message, data=data,
    )


def _successors(program: Microprogram, name: str) -> List[str]:
    inst = program.states[name]
    targets = [target for _, target in inst.branches]
    if inst.default:
        targets.append(inst.default)
    return targets


def check_reachability(program: Microprogram) -> List[SignoffFinding]:
    """All states reachable from start; all states can reach a terminal."""
    names = list(program.states)
    reached = {program.start}
    frontier = [program.start]
    while frontier:
        nxt = []
        for name in frontier:
            for succ in _successors(program, name):
                if succ not in reached:
                    reached.add(succ)
                    nxt.append(succ)
        frontier = nxt
    findings = [
        _finding("unreachable-state", name,
                 f"state {name} cannot be reached from {program.start}")
        for name in names if name not in reached
    ]

    # Terminals absorb (every successor is the state itself).
    terminals = {
        name for name in names
        if all(s == name for s in _successors(program, name))
    }
    # Walk backwards: states that can reach a terminal.
    predecessors: Dict[str, List[str]] = {name: [] for name in names}
    for name in names:
        for succ in _successors(program, name):
            if succ != name:
                predecessors[succ].append(name)
    alive = set(terminals)
    frontier = list(terminals)
    while frontier:
        nxt = []
        for name in frontier:
            for pred in predecessors[name]:
                if pred not in alive:
                    alive.add(pred)
                    nxt.append(pred)
        frontier = nxt
    findings.extend(
        _finding("dead-state", name,
                 f"state {name} can never reach a terminal state")
        for name in names if name not in alive and name in reached
    )
    return findings


def check_march_roundtrip(program: Microprogram,
                          march: MarchTest,
                          passes: int = 2) -> List[SignoffFinding]:
    """The microprogram's operation states mirror the march elements.

    Both directions: every march element must have its init/op/wait
    states with the right direction and read/write/polarity outputs,
    and every element-shaped state in the program must trace back to a
    march element — a program compiled from a longer march is flagged,
    not silently accepted as a superset.
    """
    from repro.bist.march import Order

    findings: List[SignoffFinding] = []
    by_name = program.states
    expected: set = set()
    for pass_no in range(1, passes + 1):
        for index, element in enumerate(march.elements):
            prefix = f"p{pass_no}_e{index}"
            if element.is_delay:
                expected.add(f"{prefix}_wait")
                wait = by_name.get(f"{prefix}_wait")
                if wait is None or "wait_retention" not in wait.outputs:
                    findings.append(_finding(
                        "march-mismatch", f"{prefix}_wait",
                        f"delay element {index} of pass {pass_no} has no "
                        f"wait_retention state"))
                continue
            expected.add(f"{prefix}_init")
            init = by_name.get(f"{prefix}_init")
            want_dir = ("addr_reset_up"
                        if element.order is not Order.DOWN
                        else "addr_reset_down")
            if init is None or want_dir not in init.outputs:
                findings.append(_finding(
                    "march-mismatch", f"{prefix}_init",
                    f"element {index} of pass {pass_no} does not reset "
                    f"the address generator {want_dir[11:]}ward"))
            for j, op in enumerate(element.ops):
                expected.add(f"{prefix}_o{j}")
                name = f"{prefix}_o{j}"
                inst = by_name.get(name)
                if inst is None:
                    findings.append(_finding(
                        "march-mismatch", name,
                        f"operation {j} of element {index} (pass {pass_no}) "
                        f"has no microprogram state"))
                    continue
                want_read = op.is_read
                has_read = "op_read" in inst.outputs
                has_write = "op_write" in inst.outputs
                if has_read != want_read or has_write == want_read:
                    findings.append(_finding(
                        "march-mismatch", name,
                        f"state {name} encodes "
                        f"{'read' if has_read else 'write'}, march says "
                        f"{'read' if want_read else 'write'}"))
                want_inv = bool(op.data_bit)
                if ("data_inv" in inst.outputs) != want_inv:
                    findings.append(_finding(
                        "march-mismatch", name,
                        f"state {name} data polarity disagrees with march "
                        f"op {op.describe() if hasattr(op, 'describe') else op}"))

    # Surplus: element-shaped states with no march counterpart.
    import re

    element_state = re.compile(r"^p\d+_e\d+_(?:o\d+|wait|init)$")
    for name in program.states:
        if element_state.match(name) and name not in expected:
            findings.append(_finding(
                "march-mismatch", name,
                f"state {name} has no corresponding march operation"))
    return findings


def check_personality(program: Microprogram,
                      trpla: Optional[Trpla] = None,
                      max_findings: int = 50) -> List[SignoffFinding]:
    """Exhaustive state x conditions equivalence: PLA vs. microprogram.

    ``trpla`` defaults to the personality assembled from ``program``
    (verifying the assembler); pass a :class:`Trpla` read back from
    plane files to verify the *artifact* — a flipped bit in a microword
    is reported with the state it corrupts.
    """
    assembled = assemble(program)
    pla = trpla if trpla is not None else Trpla(
        assembled.and_plane, assembled.or_plane)
    conds = program.condition_inputs()
    state_bits = assembled.state_bits
    encoding = assembled.state_encoding
    out_index = {name: i for i, name in enumerate(assembled.output_names)}
    control_outputs = assembled.output_names[state_bits:]

    findings: List[SignoffFinding] = []
    assignments = list(product((0, 1), repeat=len(conds)))
    if len(assignments) > _MAX_ASSIGNMENTS:
        assignments = assignments[:_MAX_ASSIGNMENTS]
    for inst in program.states.values():
        code = encoding[inst.name]
        state_inputs = [(code >> b) & 1 for b in range(state_bits)]
        for values in assignments:
            inputs = state_inputs + list(values)
            try:
                outputs = pla.evaluate(inputs)
            except (IndexError, ValueError) as error:
                return [_finding(
                    "microword-mismatch", inst.name,
                    f"PLA evaluation failed in state {inst.name}: {error}")]
            got_next = 0
            for b in range(state_bits):
                if outputs[b]:
                    got_next |= 1 << b
            cond_map = dict(zip(conds, values))
            want_next = encoding[inst.next_state(cond_map)]
            if got_next != want_next:
                findings.append(_finding(
                    "microword-mismatch", inst.name,
                    f"state {inst.name} with {cond_map}: PLA jumps to "
                    f"code {got_next}, microprogram says {want_next}",
                    conditions=cond_map))
            else:
                for name in control_outputs:
                    want = 1 if name in inst.outputs else 0
                    if outputs[out_index[name]] != want:
                        findings.append(_finding(
                            "microword-mismatch", inst.name,
                            f"state {inst.name}: control output {name} is "
                            f"{outputs[out_index[name]]}, expected {want}",
                            output=name))
                        break
            if len(findings) >= max_findings:
                return findings
    return findings


def check_bisr_invariants(spares: int = 4,
                          rows: int = 16,
                          bpw: int = 4,
                          bpc: int = 2,
                          march: MarchTest = IFA_9,
                          ) -> List[SignoffFinding]:
    """Run a faulty device through self-repair; audit the TLB after.

    The paper's contract: spare rows are consumed in strictly
    increasing order, each faulty row gets exactly one entry, and every
    diverted translation lands in the spare band.
    """
    from repro.bist.controller import BistScheduler
    from repro.memsim.device import BisrRam
    from repro.memsim.faults import StuckAt

    device = BisrRam(rows=rows, bpw=bpw, bpc=bpc, spares=spares)
    faulty_rows = sorted({1, rows // 2, rows - 2})
    for i, row in enumerate(faulty_rows):
        device.array.inject(
            StuckAt(device.array.cell_index(row, i % bpw, 0), 1))
    BistScheduler(march, bpw=bpw).run(device, passes=2)

    findings: List[SignoffFinding] = []
    tlb = device.tlb
    order = tlb.assigned_spares()
    if any(b <= a for a, b in zip(order, order[1:])):
        findings.append(_finding(
            "spare-order", "tlb",
            f"spare assignment order {order} is not strictly increasing"))
    rows_seen = [e.row for e in tlb.entries]
    if len(rows_seen) != len(set(rows_seen)):
        findings.append(_finding(
            "tlb-entry", "tlb",
            f"duplicate TLB entries for rows {rows_seen}"))
    for entry in tlb.entries:
        physical, diverted = tlb.translate(entry.row)
        if not diverted or not (rows <= physical < rows + spares):
            findings.append(_finding(
                "tlb-entry", f"row_{entry.row}",
                f"row {entry.row} translates to {physical} "
                f"(diverted={diverted}), outside the spare band"))
    if tlb.spares_used > spares:
        findings.append(_finding(
            "tlb-entry", "tlb",
            f"{tlb.spares_used} spares consumed, device has {spares}"))
    return findings


def check_control(march: MarchTest = IFA_9,
                  passes: int = 2,
                  trpla: Optional[Trpla] = None,
                  spares: int = 4,
                  ) -> Tuple[List[SignoffFinding], Dict[str, object]]:
    """The full control stage: microprogram + personality + BISR."""
    program = build_test_program(march, passes)
    findings = check_reachability(program)
    findings += check_march_roundtrip(program, march, passes)
    findings += check_personality(program, trpla)
    findings += check_bisr_invariants(spares=spares, march=march)
    stats = {
        "states": len(program.states),
        "condition_inputs": len(program.condition_inputs()),
        "assignments_per_state": 2 ** len(program.condition_inputs()),
    }
    return findings, stats
