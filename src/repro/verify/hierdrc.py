"""Hierarchical DRC sweep with a content-hash leaf cache.

Flat DRC on an assembled macro re-verifies every one of the thousands
of identical bit-cell placements — tens of seconds for a small array,
unusable as a per-build stage gate.  This sweep exploits the compiler's
own structure instead:

* every *unique* cell (keyed by a content hash over its geometry and
  its children's hashes — not its name) is flat-checked exactly once,
  and the verdict is cached against the hash + rule-deck digest, so a
  second build on the same node re-checks nothing;
* every *composite* cell is then checked only where hierarchy can
  create new violations: interaction zones around each close instance
  pair's halo overlap and around each parent-drawn routing shape —
  the abutment seams where stretching, tiling, and routing interact.
  Identical instance pairs (same content hashes, orientations, and
  relative offset) are checked once, and shape pairs wholly inside one
  already-verified child are never re-examined.

The zone checks run the same rule classes as the flat checker
(:class:`~repro.layout.drc.DrcChecker`), restricted to pairs the flat
checks cannot own — two shapes from different instances, an instance
shape against parent-level routing, or two parent-drawn shapes.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry import Rect
from repro.layout.cell import Cell
from repro.layout.drc import (
    DrcChecker,
    DrcViolation,
    _DisjointSet,
    _close_box_pairs,
    _merged,
)
from repro.tech.process import Process


def cell_hash(cell: Cell, memo: Optional[dict] = None) -> str:
    """Content hash of a cell's full geometry hierarchy.

    Two cells with identical shapes and identically-placed identical
    children hash equal regardless of their names, so cache verdicts
    transfer between builds and between configurations sharing leaf
    generators.  Ports and zero-area shapes are excluded: both are
    markers with no DRC significance (and neither survives a CIF
    round-trip).
    """
    memo = memo if memo is not None else {}
    key = id(cell)
    if key in memo:
        return memo[key]
    digest = hashlib.sha256()
    for layer, rect in sorted(cell.shapes()):
        if rect.area == 0:
            continue
        digest.update(
            f"s:{layer}:{rect.x1}:{rect.y1}:{rect.x2}:{rect.y2};".encode())
    children = []
    for inst in cell.instances():
        t = inst.transform
        children.append(
            f"i:{cell_hash(inst.cell, memo)}:{t.orientation.value}"
            f":{t.translation.x}:{t.translation.y};")
    for entry in sorted(children):
        digest.update(entry.encode())
    value = digest.hexdigest()[:24]
    memo[key] = value
    return value


class DrcCache:
    """Verdict cache keyed on (rule-deck digest, cell content hash).

    Stores violation tuples for both flat leaf checks and composite
    band checks, so an unchanged cell is never re-verified — across
    stages of one signoff, across builds, and (via the module-level
    :data:`default_cache`) across compilations in one process.
    """

    def __init__(self) -> None:
        self._verdicts: Dict[str, Tuple[DrcViolation, ...]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, key: str) -> Optional[Tuple[DrcViolation, ...]]:
        found = self._verdicts.get(key)
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
        return found

    def store(self, key: str, violations: Sequence[DrcViolation]) -> None:
        self._verdicts[key] = tuple(violations)

    def clear(self) -> None:
        self._verdicts.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


#: Shared process-wide cache: repeated builds (campaign shards, test
#: suites, the bench) pay for each unique cell once.
default_cache = DrcCache()


@dataclass
class HierDrcResult:
    """Outcome of one hierarchical sweep."""

    leaf_violations: Dict[str, List[DrcViolation]] = field(
        default_factory=dict)
    assembly_violations: Dict[str, List[DrcViolation]] = field(
        default_factory=dict)
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.leaf_violations and not self.assembly_violations


def _halo_cu(process: Process) -> int:
    """Interaction radius: the largest spacing/overhang rule of the deck.

    No same-layer spacing or transistor-geometry rule reaches farther
    than this, so shapes deeper inside a verified child cannot violate
    against anything outside it.
    """
    values = [v for k, v in process.rules.rules.items()
              if k.startswith(("space.", "overhang.", "enclose."))]
    return max(values) if values else 0


def _shapes_in_region(cell: Cell, transform, region: Rect,
                      out: List[Tuple[str, Rect]]) -> None:
    """Collect ``cell``'s flattened shapes intersecting ``region``.

    The descent is pruned on bounding boxes, so the cost scales with
    the shapes near the region, not with the cell's total area.
    """
    box = cell.bbox()
    if box is None:
        return
    placed_box = box if transform is None else box.transformed(transform)
    if not placed_box.intersects(region):
        return
    for layer, rect in cell.shapes():
        if rect.area == 0:
            continue
        placed = rect if transform is None else rect.transformed(transform)
        if placed.intersects(region):
            out.append((layer, placed))
    for inst in cell.instances():
        eff = (inst.transform if transform is None
               else transform.compose(inst.transform))
        _shapes_in_region(inst.cell, eff, region, out)


def _cross_spacing(checker: DrcChecker, layer: str,
                   items: Sequence[Tuple[Rect, int]],
                   ) -> List[DrcViolation]:
    """Spacing between shapes of *different* sources only.

    Groups all shapes with the deck's connectivity semantics (an
    abutting pair from two instances is one intentional wire, not a
    violation), then flags close group pairs whose nearest shapes come
    from different sources.  Same-source violations were already caught
    by that source's own flat check.
    """
    required = checker.process.rules.rules.get(f"space.{layer}")
    if required is None or len(items) < 2:
        return []
    corner_touch = checker.process.rules.corner_touch_connects()
    rects = [r for r, _ in items]
    sources = [s for _, s in items]
    n = len(rects)
    ds = _DisjointSet(n)
    order = sorted(range(n), key=lambda i: rects[i].x1)
    active: List[int] = []
    for idx in order:
        r = rects[idx]
        active = [a for a in active if rects[a].x2 >= r.x1]
        for a in active:
            if _merged(rects[a], r, corner_touch):
                ds.union(a, idx)
        active.append(idx)
    groups: Dict[int, List[int]] = {}
    for i in range(n):
        groups.setdefault(ds.find(i), []).append(i)
    members = list(groups.values())
    if len(members) < 2:
        return []
    boxes = []
    for g in members:
        box = rects[g[0]]
        for i in g[1:]:
            box = box.union_bbox(rects[i])
        boxes.append(box)
    out: List[DrcViolation] = []
    for i, j in _close_box_pairs(boxes, required):
        # Any violating pair has each shape within the rule distance of
        # the *other group's* bbox, so prune both sides to their
        # boundary shapes before the cross product.
        cand_a = [a for a in members[i]
                  if rects[a].spacing_to(boxes[j]) < required]
        cand_b = [b for b in members[j]
                  if rects[b].spacing_to(boxes[i]) < required]
        if not cand_a or not cand_b:
            continue
        gap, pair = min(
            ((rects[a].spacing_to(rects[b]), (a, b))
             for a in cand_a for b in cand_b),
            key=lambda item: item[0],
        )
        if gap >= required or (gap == 0 and corner_touch):
            continue
        a, b = pair
        if sources[a] == sources[b] and sources[a] != 0:
            continue  # intra-instance: the child's own check owns it
        # Source 0 (parent-drawn routing) has no flat check of its
        # own, so own-vs-own pairs are flagged here too.
        where = rects[a].union_bbox(rects[b])
        out.append(
            DrcViolation("min-space", layer, gap, required, where))
    return out


def _cross_gates(checker: DrcChecker,
                 polys: Sequence[Tuple[Rect, int]],
                 diffs: Sequence[Tuple[Rect, int]],
                 ) -> List[DrcViolation]:
    """Gate-endcap check for poly/diffusion pairs from different sources."""
    endcap = checker.process.rules.rules.get("overhang.gate_poly")
    if endcap is None or not polys or not diffs:
        return []
    from bisect import bisect_right

    by_x1 = sorted(polys, key=lambda item: item[0].x1)
    x1s = [item[0].x1 for item in by_x1]
    out: List[DrcViolation] = []
    for diff, src_d in diffs:
        for poly, src_p in by_x1[:bisect_right(x1s, diff.x2)]:
            if src_p == src_d or poly.x2 < diff.x1:
                continue
            if not poly.overlaps(diff):
                continue
            channel = poly.intersection(diff)
            if channel is None or channel.area == 0:
                continue
            crosses_x = poly.x1 <= diff.x1 and poly.x2 >= diff.x2
            crosses_y = poly.y1 <= diff.y1 and poly.y2 >= diff.y2
            if crosses_x:
                margin = min(diff.x1 - poly.x1, poly.x2 - diff.x2)
            elif crosses_y:
                margin = min(diff.y1 - poly.y1, poly.y2 - diff.y2)
            else:
                margin = -1
            if margin < endcap:
                out.append(DrcViolation(
                    "gate-endcap", "poly", max(margin, 0), endcap, channel))
    return out


def _composite_check(cell: Cell, checker: DrcChecker, halo: int,
                     hash_memo: dict,
                     max_violations: int) -> List[DrcViolation]:
    """Check one composite cell's assembly seams via interaction zones.

    Sources: 0 = the cell's own drawn shapes (routing, straps), 1..n =
    its instances.  Instead of sweeping every child's boundary band at
    once (quadratic on a stack of identical rows), the check builds
    small *zones* where hierarchy can create new violations — the
    halo-overlap window of each close instance pair, and a band around
    each parent-drawn shape — and examines cross-source pairs inside
    them.  Identical pairs (same child content hashes, orientations,
    and relative offset) are checked once, so a 256-row array pays for
    one row seam, not 255.
    """
    own: List[Tuple[str, Rect]] = [
        (layer, rect) for layer, rect in cell.shapes() if rect.area > 0]
    violations: List[DrcViolation] = []

    # Parent-level drawn geometry gets the full width check; instance
    # shapes already passed their own cell's check.
    own_by_layer: Dict[str, List[Rect]] = {}
    for layer, rect in own:
        own_by_layer.setdefault(layer, []).append(rect)
    for layer, rects in sorted(own_by_layer.items()):
        violations.extend(checker._check_width(layer, rects))
        if len(violations) >= max_violations:
            return violations[:max_violations]

    insts = list(cell.instances())
    boxes = [inst.bbox() for inst in insts]

    def zone_items(region: Rect) -> Dict[str, List[Tuple[Rect, int]]]:
        by_layer: Dict[str, List[Tuple[Rect, int]]] = {}
        for layer, rect in own:
            if rect.intersects(region):
                by_layer.setdefault(layer, []).append((rect, 0))
        for k, inst in enumerate(insts):
            if boxes[k] is None or not boxes[k].intersects(region):
                continue
            collected: List[Tuple[str, Rect]] = []
            _shapes_in_region(inst.cell, inst.transform, region, collected)
            for layer, rect in collected:
                by_layer.setdefault(layer, []).append((rect, k + 1))
        return by_layer

    def check_zone(region: Rect) -> List[DrcViolation]:
        found: List[DrcViolation] = []
        by_layer = zone_items(region)
        for layer, items in sorted(by_layer.items()):
            n_own = sum(1 for _, src in items if src == 0)
            if len({src for _, src in items}) < 2 and n_own < 2:
                continue
            found.extend(_cross_spacing(checker, layer, items))
        for diff_layer in ("ndiff", "pdiff"):
            found.extend(_cross_gates(
                checker,
                by_layer.get("poly", ()),
                by_layer.get(diff_layer, ()),
            ))
        return found

    # Instance-pair zones, deduped by relative placement: sweep over
    # halo-expanded bboxes to find interacting pairs.
    expanded = [b.expanded(halo) if b is not None else None for b in boxes]
    seen: set = set()
    order = sorted(
        (k for k in range(len(insts)) if boxes[k] is not None),
        key=lambda k: expanded[k].x1)
    active: List[int] = []
    for k in order:
        e = expanded[k]
        active = [a for a in active if expanded[a].x2 >= e.x1]
        for a in active:
            if not expanded[a].intersects(boxes[k]):
                continue
            ta, tk = insts[a].transform, insts[k].transform
            key_a = (cell_hash(insts[a].cell, hash_memo),
                     ta.orientation.value)
            key_k = (cell_hash(insts[k].cell, hash_memo),
                     tk.orientation.value)
            dx = tk.translation.x - ta.translation.x
            dy = tk.translation.y - ta.translation.y
            if (key_k, key_a) < (key_a, key_k):
                sig = (key_k, key_a, -dx, -dy)
            else:
                sig = (key_a, key_k, dx, dy)
            if sig in seen:
                continue
            seen.add(sig)
            window = expanded[a].intersection(expanded[k])
            if window is None:
                continue
            violations.extend(check_zone(window.expanded(2 * halo)))
            if len(violations) >= max_violations:
                return _dedup(violations)[:max_violations]
        active.append(k)

    # One zone per parent-drawn shape: catches routing-vs-instance and
    # routing-vs-routing interactions wherever the parent drew.
    for _, rect in own:
        violations.extend(check_zone(rect.expanded(2 * halo)))
        if len(violations) >= max_violations:
            return _dedup(violations)[:max_violations]

    # Parent-level cuts may rely on instance metal for enclosure, so
    # they are checked against everything near them.
    own_cuts = [(layer, rect) for layer, rect in own
                if layer in DrcChecker._CUT_ENCLOSURES]
    if own_cuts:
        enclosure_view: Dict[str, List[Rect]] = {}
        for _, cut in own_cuts:
            for layer, items in zone_items(cut.expanded(halo)).items():
                enclosure_view.setdefault(layer, []).extend(
                    r for r, _ in items)
        for cut_layer in DrcChecker._CUT_ENCLOSURES:
            if cut_layer in enclosure_view:
                enclosure_view[cut_layer] = own_by_layer.get(cut_layer, [])
        violations.extend(checker._check_enclosures(enclosure_view))

    return _dedup(violations)[:max_violations]


def _dedup(violations: Sequence[DrcViolation]) -> List[DrcViolation]:
    """Drop duplicates produced by overlapping zones, keeping order."""
    seen: set = set()
    out: List[DrcViolation] = []
    for v in violations:
        key = (v.rule, v.layer, v.measured, v.required,
               v.where.x1, v.where.y1, v.where.x2, v.where.y2)
        if key not in seen:
            seen.add(key)
            out.append(v)
    return out


def hierarchical_drc(
    cell: Cell,
    process: Process,
    cache: Optional[DrcCache] = None,
    max_violations: int = 200,
) -> HierDrcResult:
    """Run the hierarchical sweep over ``cell`` and everything below it.

    Returns per-cell violation lists split into *leaf* (a generator
    produced dirty geometry) and *assembly* (composition created a
    violation across a seam), plus cache/coverage statistics.
    """
    cache = cache if cache is not None else default_cache
    checker = DrcChecker(process)
    deck = process.rules.digest()
    halo = _halo_cu(process)
    hash_memo: dict = {}
    result = HierDrcResult()
    hits0, misses0 = cache.hits, cache.misses
    t0 = time.perf_counter()

    # Unique cells by content hash; keep the first-seen name for blame.
    unique: Dict[str, Cell] = {}
    for name, sub in cell.subcells().items():
        unique.setdefault(cell_hash(sub, hash_memo), sub)

    leaf_checks = composite_checks = 0
    budget = max_violations
    for content, sub in sorted(unique.items(),
                               key=lambda item: item[1].name):
        if budget <= 0:
            break
        is_leaf = not sub.instances()
        key = f"{deck}:{'leaf' if is_leaf else 'comp'}:{content}"
        verdict = cache.lookup(key)
        if verdict is None:
            if is_leaf:
                leaf_checks += 1
                verdict = tuple(checker.check(sub, budget))
            else:
                composite_checks += 1
                verdict = tuple(_composite_check(
                    sub, checker, halo, hash_memo, budget))
            cache.store(key, verdict)
        if verdict:
            bucket = (result.leaf_violations if is_leaf
                      else result.assembly_violations)
            bucket[sub.name] = list(verdict[:budget])
            budget -= len(bucket[sub.name])

    hits = cache.hits - hits0
    misses = cache.misses - misses0
    result.stats = {
        "halo_cu": halo,
        "unique_cells": len(unique),
        "leaf_checks": leaf_checks,
        "composite_checks": composite_checks,
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_rate": round(hits / (hits + misses), 4)
        if hits + misses else 0.0,
        "elapsed_s": round(time.perf_counter() - t0, 6),
    }
    return result
