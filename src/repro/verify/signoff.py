"""Signoff orchestration: every checker, every stage, one report.

``run_signoff`` is the stage-gate entry point
:meth:`~repro.core.compiler.BISRAMGen.build` calls after assembly:

* **drc / leaf-cells** — every unique generated cell flat-checked once
  (content-hash cached across builds, see
  :mod:`repro.verify.hierdrc`);
* **drc / assembly** — composite cells checked at their abutment seams
  only;
* **lvs / assembly** — extracted connectivity of the assembled module
  against the configuration's intended netlist
  (:mod:`repro.verify.lvs`);
* **control / control** — TRPLA microprogram reachability, march
  round-trip, personality equivalence, and BISR TLB invariants
  (:mod:`repro.verify.control`).

``drc_report`` is the reduced sweep for geometry without port
annotations (a CIF file read back from disk), where only DRC is
meaningful.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.bist.march import IFA_9, MarchTest
from repro.bist.trpla import Trpla
from repro.layout.cell import Cell
from repro.tech.process import Process, get_process
from repro.verify.control import check_control
from repro.verify.hierdrc import DrcCache, HierDrcResult, hierarchical_drc
from repro.verify.lvs import check_connectivity
from repro.verify.report import (
    CheckResult,
    SignoffFinding,
    SignoffReport,
    drc_findings,
)


def _drc_results(hier: HierDrcResult, elapsed_s: float,
                 ) -> List[CheckResult]:
    """Split one hierarchical sweep into the two DRC stage verdicts."""
    leaf: List[SignoffFinding] = []
    for name, violations in sorted(hier.leaf_violations.items()):
        leaf.extend(drc_findings("leaf-cells", name, violations))
    assembly: List[SignoffFinding] = []
    for name, violations in sorted(hier.assembly_violations.items()):
        assembly.extend(drc_findings("assembly", name, violations))
    return [
        CheckResult(
            checker="drc", stage="leaf-cells",
            status="fail" if leaf else "pass",
            findings=leaf,
            stats=dict(hier.stats),
            elapsed_s=elapsed_s,
        ),
        CheckResult(
            checker="drc", stage="assembly",
            status="fail" if assembly else "pass",
            findings=assembly,
            stats={"composite_checks": hier.stats.get("composite_checks"),
                   "halo_cu": hier.stats.get("halo_cu")},
            elapsed_s=0.0,  # covered by the leaf-cells sweep timing
        ),
    ]


def run_signoff(
    compiled,
    march: MarchTest = IFA_9,
    cache: Optional[DrcCache] = None,
    trpla: Optional[Trpla] = None,
    max_findings: int = 200,
) -> SignoffReport:
    """Run the full signoff sweep over a :class:`CompiledRam`.

    Args:
        compiled: the compiler's output (``config`` + ``floorplan``).
        march: the march test the control stage validates against.
        cache: DRC verdict cache (defaults to the process-wide one).
        trpla: a personality read back from plane files, to verify the
            artifact instead of the in-memory assembly.
        max_findings: per-checker finding budget.
    """
    config = compiled.config
    process = get_process(config.process)
    report = SignoffReport(
        config_label=config.describe(), process=config.process)

    t0 = time.perf_counter()
    hier = hierarchical_drc(
        compiled.floorplan.top, process,
        cache=cache, max_violations=max_findings,
    )
    report.results.extend(_drc_results(hier, time.perf_counter() - t0))

    t0 = time.perf_counter()
    lvs_findings, lvs_stats = check_connectivity(
        compiled.floorplan.top, config, process,
        max_findings=max_findings,
    )
    report.results.append(CheckResult(
        checker="lvs", stage="assembly",
        status="fail" if lvs_findings else "pass",
        findings=lvs_findings, stats=lvs_stats,
        elapsed_s=time.perf_counter() - t0,
    ))

    t0 = time.perf_counter()
    control_findings, control_stats = check_control(
        march=march, trpla=trpla, spares=config.spares)
    control_findings = control_findings[:max_findings]
    report.results.append(CheckResult(
        checker="control", stage="control",
        status="fail" if control_findings else "pass",
        findings=control_findings, stats=control_stats,
        elapsed_s=time.perf_counter() - t0,
    ))
    return report


def drc_report(
    cell: Cell,
    process: Process,
    label: str = "",
    cache: Optional[DrcCache] = None,
    max_findings: int = 200,
) -> SignoffReport:
    """DRC-only signoff of bare geometry (e.g. a CIF file read back).

    CIF carries no port annotations, so connectivity extraction is
    meaningless there; the report contains the two DRC stages only.
    """
    report = SignoffReport(
        config_label=label or cell.name, process=process.name)
    t0 = time.perf_counter()
    hier = hierarchical_drc(
        cell, process, cache=cache, max_violations=max_findings)
    report.results.extend(_drc_results(hier, time.perf_counter() - t0))
    return report
