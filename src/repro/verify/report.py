"""Structured signoff findings and reports.

Everything the signoff checkers produce is built from three layers:

* :class:`SignoffFinding` — one defect, attributed to a checker
  (``drc``/``lvs``/``control``), a compiler stage
  (``leaf-cells``/``assembly``/``control``), and a subject (the
  offending cell, net, or state).
* :class:`CheckResult` — one checker's verdict for one stage, with its
  findings, free-form stats (cache hit rates, shape counts), and wall
  time.
* :class:`SignoffReport` — the full sweep.  ``clean`` gates the
  compiler; ``failure_class`` picks the CLI exit code.

Every layer round-trips through plain dicts (``to_dict``/``from_dict``)
so reports can be journaled by
:class:`~repro.runtime.journal.CheckpointJournal`, attached to a
:class:`~repro.core.errors.SignoffError`, and rendered by the CLI
without importing layout machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Checker families in blame-priority order: a report failing several
#: classes is attributed to the earliest one (geometry errors usually
#: cause the connectivity errors downstream of them).
FAILURE_CLASSES: Tuple[str, ...] = ("drc", "lvs", "control")

#: CLI exit code per failing checker family (0 = clean, 2 = ConfigError).
EXIT_CODES: Dict[str, int] = {"drc": 3, "lvs": 4, "control": 5}


@dataclass(frozen=True)
class SignoffFinding:
    """One signoff defect, fully attributed.

    Attributes:
        checker: the family that found it (``drc``/``lvs``/``control``).
        stage: the compiler stage it belongs to
            (``leaf-cells``/``assembly``/``control``).
        kind: the specific defect class, e.g. ``drc-violation``,
            ``open``, ``short``, ``floating-port``, ``dead-state``,
            ``microword-mismatch``.
        subject: the offending cell, net, port, or state name.
        message: one human-readable line.
        data: JSON-serializable details (e.g. a
            :meth:`~repro.layout.drc.DrcViolation.to_dict` payload).
    """

    checker: str
    stage: str
    kind: str
    subject: str
    message: str
    data: Mapping[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.checker}/{self.stage}] {self.kind} {self.subject}: " \
               f"{self.message}"

    def to_dict(self) -> dict:
        return {
            "checker": self.checker,
            "stage": self.stage,
            "kind": self.kind,
            "subject": self.subject,
            "message": self.message,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SignoffFinding":
        return cls(
            checker=data["checker"],
            stage=data["stage"],
            kind=data["kind"],
            subject=data["subject"],
            message=data["message"],
            data=dict(data.get("data", {})),
        )


@dataclass
class CheckResult:
    """One checker's verdict for one compiler stage."""

    checker: str
    stage: str
    status: str  # "pass" | "fail" | "skip"
    findings: List[SignoffFinding] = field(default_factory=list)
    stats: Dict[str, object] = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def passed(self) -> bool:
        return self.status != "fail"

    def to_dict(self) -> dict:
        return {
            "checker": self.checker,
            "stage": self.stage,
            "status": self.status,
            "findings": [f.to_dict() for f in self.findings],
            "stats": dict(self.stats),
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CheckResult":
        return cls(
            checker=data["checker"],
            stage=data["stage"],
            status=data["status"],
            findings=[SignoffFinding.from_dict(f)
                      for f in data.get("findings", [])],
            stats=dict(data.get("stats", {})),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
        )


@dataclass
class SignoffReport:
    """The complete signoff sweep for one compiled configuration."""

    config_label: str
    process: str
    results: List[CheckResult] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every checker that ran passed."""
        return all(r.passed for r in self.results)

    def findings(self) -> List[SignoffFinding]:
        return [f for r in self.results for f in r.findings]

    @property
    def failure_class(self) -> Optional[str]:
        """The highest-priority failing checker family, or None.

        Priority follows :data:`FAILURE_CLASSES`: a layout that fails
        DRC very likely fails LVS too, and the geometry defect is the
        one to chase first.
        """
        failing = {r.checker for r in self.results if not r.passed}
        for family in FAILURE_CLASSES:
            if family in failing:
                return family
        return None

    @property
    def exit_code(self) -> int:
        """CLI exit code: 0 clean, else the failing family's code."""
        family = self.failure_class
        return 0 if family is None else EXIT_CODES[family]

    def to_dict(self) -> dict:
        return {
            "config": self.config_label,
            "process": self.process,
            "clean": self.clean,
            "failure_class": self.failure_class,
            "results": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SignoffReport":
        return cls(
            config_label=data["config"],
            process=data["process"],
            results=[CheckResult.from_dict(r)
                     for r in data.get("results", [])],
        )

    def summary(self, max_findings: int = 20) -> str:
        """A terminal-friendly rendering of the report."""
        lines = [f"signoff {self.config_label} [{self.process}]: "
                 f"{'CLEAN' if self.clean else 'FAIL'}"]
        for r in self.results:
            stat_bits = ", ".join(
                f"{k}={v}" for k, v in sorted(r.stats.items())
                if isinstance(v, (int, float, str)))
            lines.append(
                f"  {r.checker:8s} {r.stage:10s} {r.status.upper():4s} "
                f"{len(r.findings):3d} finding(s) "
                f"({r.elapsed_s * 1e3:.0f} ms{'; ' + stat_bits if stat_bits else ''})"
            )
        shown = self.findings()[:max_findings]
        for f in shown:
            lines.append(f"    {f}")
        hidden = len(self.findings()) - len(shown)
        if hidden > 0:
            lines.append(f"    ... and {hidden} more")
        return "\n".join(lines)


def drc_findings(stage: str, cell_name: str, violations: Sequence,
                 ) -> List[SignoffFinding]:
    """Wrap :class:`~repro.layout.drc.DrcViolation`s as signoff findings."""
    out = []
    for v in violations:
        payload = v.to_dict()
        payload["cell"] = cell_name
        out.append(SignoffFinding(
            checker="drc",
            stage=stage,
            kind="drc-violation",
            subject=f"{cell_name}/{v.layer}",
            message=str(v),
            data=payload,
        ))
    return out
