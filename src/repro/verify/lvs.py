"""LVS-lite: extracted connectivity vs. the intended netlist.

The assembled module connects by abutment — "signals in adjacent
modules are perfectly aligned and connected by abutments" — so the
extracted netlist is the port-abutment graph of
:mod:`repro.pnr.connectivity`, extended here with *drawn-geometry*
conduction: any routing shape added at the top level that touches two
port landings electrically bridges them, exactly how a routing
regression creates a short the abutment graph alone cannot see.

The intended netlist is derived from the configuration, not from the
layout: one ``bl_<c>``/``blb_<c>`` net per column, each required to
span the precharge row, the array (bottom and top landings), and the
column-mux row.  The cross-check classifies every discrepancy:

* **open** — an intended net's endpoints fall into more than one
  extracted component (or an endpoint is missing outright);
* **short** — one extracted component contains endpoints of two or
  more intended nets;
* **floating-port** — a bit-line port with no connection at all.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.config import RamConfig
from repro.layout.cell import Cell
from repro.layout.drc import _DisjointSet, _merged
from repro.pnr.connectivity import _through_key, connectivity_graph
from repro.tech.process import Process
from repro.verify.report import SignoffFinding

#: An endpoint of a net: (instance name, port name).
Endpoint = Tuple[str, str]


def intended_netlist(config: RamConfig) -> Dict[str, FrozenSet[Endpoint]]:
    """The nets the compiler is supposed to form, from the config alone.

    Bit lines are the module's abutment-routed signals: every column's
    ``bl``/``blb`` must run precharge → array → mux.  The array exports
    both its bottom landing (``bl_<c>``) and its top-edge feed-through
    twin (``bl_t_<c>``); both belong to the net.  Spare columns are
    full bit-line pairs and carry the same nets, so the intended
    netlist covers ``total_columns`` (the compiled layout is always the
    BISR build, which includes them).
    """
    nets: Dict[str, FrozenSet[Endpoint]] = {}
    for c in range(config.total_columns):
        for polarity in ("bl", "blb"):
            name = f"{polarity}_{c}"
            endpoints = {
                ("precharge_row", name),
                ("array", name),
                ("array", f"{polarity}_t_{c}"),
                ("mux_row", name),
            }
            if config.ports == 2:
                # Port-A lines additionally pass through the port-B
                # precharge row sitting between the mux and the array.
                endpoints |= {
                    ("precharge_row_b", name),
                    ("precharge_row_b", f"{polarity}_t_{c}"),
                }
            nets[name] = frozenset(endpoints)
        if config.ports == 2:
            # Port-B bit lines: array bottom landing to the port-B
            # precharge row's top edge (they do not reach the mux, and
            # the port-A precharge row on top has no bl2 landing).
            for polarity in ("bl2", "blb2"):
                name = f"{polarity}_{c}"
                nets[name] = frozenset({
                    ("array", name),
                    ("array", f"{polarity}_t_{c}"),
                    ("precharge_row_b", f"{polarity}_t_{c}"),
                })
    return nets


def _geometry_bridges(parent: Cell, process: Process,
                      nodes: Sequence[Endpoint],
                      ) -> List[Tuple[Endpoint, Endpoint]]:
    """Port pairs bridged by geometry drawn at the parent level.

    Groups the parent's own shapes per layer with the deck's
    connectivity semantics, then connects any two ports whose landing
    rectangles touch the same conducting group — the path by which a
    stray routing shape shorts two bit lines.
    """
    own: Dict[str, List] = {}
    for layer, rect in parent.shapes():
        if rect.area > 0:
            own.setdefault(layer, []).append(rect)
    if not own:
        return []
    corner_touch = process.rules.corner_touch_connects()
    port_rects: Dict[str, List[Tuple[Endpoint, object]]] = {}
    for inst in parent.instances():
        if not inst.name:
            continue
        for port in inst.ports():
            port_rects.setdefault(port.layer, []).append(
                ((inst.name, port.name), port.rect))

    bridges: List[Tuple[Endpoint, Endpoint]] = []
    for layer, rects in own.items():
        landings = port_rects.get(layer, [])
        if not landings:
            continue
        groups = _DisjointSet(len(rects))
        order = sorted(range(len(rects)), key=lambda i: rects[i].x1)
        active: List[int] = []
        for idx in order:
            r = rects[idx]
            active = [a for a in active if rects[a].x2 >= r.x1]
            for a in active:
                if _merged(rects[a], r, corner_touch):
                    groups.union(a, idx)
            active.append(idx)
        by_group: Dict[int, List[Endpoint]] = {}
        for endpoint, prect in landings:
            for i, r in enumerate(rects):
                if _merged(r, prect, corner_touch):
                    by_group.setdefault(groups.find(i), []).append(endpoint)
                    break
        for members in by_group.values():
            first = members[0]
            for other in members[1:]:
                bridges.append((first, other))
    return bridges


def extract_nets(parent: Cell, process: Process,
                 ) -> List[FrozenSet[Endpoint]]:
    """Extracted electrical components over (instance, port) endpoints.

    Port-abutment edges and feed-through twins come from
    :func:`repro.pnr.connectivity.connectivity_graph`; parent-level
    drawn geometry adds bridges on top.
    """
    graph = connectivity_graph(parent)
    nodes = list(graph.nodes)
    for a, b in _geometry_bridges(parent, process, nodes):
        graph.add_edge(a, b, kind="geometry")
    import networkx as nx

    return [frozenset(c) for c in nx.connected_components(graph)]


def _net_label(endpoint: Endpoint) -> str:
    """Canonical net name of a bit-line endpoint (feed-through folded)."""
    return _through_key(endpoint[1])


def check_connectivity(
    parent: Cell,
    config: RamConfig,
    process: Process,
    max_findings: int = 100,
) -> Tuple[List[SignoffFinding], Dict[str, object]]:
    """Cross-check extracted connectivity against the intended netlist."""
    intended = intended_netlist(config)
    components = extract_nets(parent, process)
    by_endpoint: Dict[Endpoint, int] = {}
    for i, comp in enumerate(components):
        for endpoint in comp:
            by_endpoint[endpoint] = i

    findings: List[SignoffFinding] = []

    def add(kind: str, subject: str, message: str, **data: object) -> None:
        if len(findings) < max_findings:
            findings.append(SignoffFinding(
                checker="lvs", stage="assembly", kind=kind,
                subject=subject, message=message, data=data,
            ))

    # Opens: intended endpoints missing or split across components.
    for name, endpoints in sorted(intended.items()):
        present = [e for e in endpoints if e in by_endpoint]
        missing = sorted(e for e in endpoints if e not in by_endpoint)
        comps = {by_endpoint[e] for e in present}
        if missing:
            add("open", name,
                f"net {name}: endpoint(s) "
                f"{', '.join('/'.join(e) for e in missing)} not connected",
                missing=[list(e) for e in missing])
        elif len(comps) > 1:
            islands = [sorted("/".join(e) for e in endpoints
                              if by_endpoint[e] == c)
                       for c in sorted(comps)]
            add("open", name,
                f"net {name} is split into {len(comps)} islands: "
                + " | ".join(",".join(i) for i in islands),
                islands=islands)

    # Shorts: one component touching two or more intended nets.
    endpoint_net: Dict[Endpoint, str] = {
        e: name for name, endpoints in intended.items() for e in endpoints
    }
    for comp in components:
        nets_hit = sorted({endpoint_net[e] for e in comp
                           if e in endpoint_net})
        if len(nets_hit) > 1:
            add("short", "+".join(nets_hit),
                f"nets {', '.join(nets_hit)} are electrically connected "
                f"({len(comp)} endpoints in one component)",
                nets=nets_hit)

    # Floating bit-line ports: an intended-net endpoint alone in its
    # component (no abutment partner and no geometry bridge).
    for endpoint, net in sorted(endpoint_net.items()):
        i = by_endpoint.get(endpoint)
        if i is not None and len(components[i]) == 1:
            add("floating-port", "/".join(endpoint),
                f"port {endpoint[1]} of {endpoint[0]} (net {net}) "
                f"touches nothing", net=net)

    stats = {
        "intended_nets": len(intended),
        "extracted_components": len(components),
        "endpoints": len(by_endpoint),
    }
    return findings, stats
