"""Signoff guardrails: hierarchical DRC, LVS-lite, control validation.

The subsystem the compiler runs as stage gates after assembly — see
:func:`~repro.verify.signoff.run_signoff` for the orchestration and
:mod:`repro.verify.report` for the structured report every checker
feeds.
"""

from repro.verify.control import (
    check_bisr_invariants,
    check_control,
    check_march_roundtrip,
    check_personality,
    check_reachability,
)
from repro.verify.hierdrc import (
    DrcCache,
    HierDrcResult,
    cell_hash,
    default_cache,
    hierarchical_drc,
)
from repro.verify.lvs import (
    check_connectivity,
    extract_nets,
    intended_netlist,
)
from repro.verify.report import (
    EXIT_CODES,
    FAILURE_CLASSES,
    CheckResult,
    SignoffFinding,
    SignoffReport,
    drc_findings,
)
from repro.verify.signoff import drc_report, run_signoff

__all__ = [
    "EXIT_CODES",
    "FAILURE_CLASSES",
    "CheckResult",
    "DrcCache",
    "HierDrcResult",
    "SignoffFinding",
    "SignoffReport",
    "cell_hash",
    "check_bisr_invariants",
    "check_connectivity",
    "check_control",
    "check_march_roundtrip",
    "check_personality",
    "check_reachability",
    "default_cache",
    "drc_findings",
    "drc_report",
    "extract_nets",
    "hierarchical_drc",
    "intended_netlist",
    "run_signoff",
]
