"""Built-in self-test engine.

The BIST scheme of the paper, in behavioural form that mirrors the
hardware one-to-one:

* :mod:`~repro.bist.march` — march-test notation (IFA-9, IFA-13, MATS+,
  March C-) with a parser for the paper's arrow notation,
* :mod:`~repro.bist.addgen` — ADDGEN, the binary up/down address counter,
* :mod:`~repro.bist.datagen` — DATAGEN, the Johnson-counter background
  generator and read comparator,
* :mod:`~repro.bist.microcode` — the microprogram assembler producing
  AND/OR plane personalities,
* :mod:`~repro.bist.trpla` — TRPLA, the pseudo-NMOS NOR-NOR control PLA
  model, including the two plane files read "at runtime",
* :mod:`~repro.bist.controller` — the test-and-repair state machine,
  both as an algorithmic reference scheduler and as a cycle-stepped
  TRPLA-driven controller (tested to emit identical operation streams).
"""

from repro.bist.march import (
    MarchElement,
    MarchTest,
    Op,
    Order,
    parse_march,
    ALL_TESTS,
    IFA_9,
    IFA_13,
    MATS_PLUS,
    MARCH_C_MINUS,
    MARCH_X,
    MARCH_Y,
    MARCH_B,
)
from repro.bist.transparent import TransparentBist, transparent_march
from repro.bist.field_repair import FieldRepairController, MaintenanceResult
from repro.bist.repair2d import (
    Repair2DResult,
    TwoDRepairController,
    repair2d_result_from_dict,
)
from repro.bist.infrastructure import FaultyInfrastructure
from repro.bist.addgen import AddGen
from repro.bist.datagen import DataGen, backgrounds_for_word
from repro.bist.microcode import Microprogram, MicroInstruction, assemble
from repro.bist.trpla import Trpla, write_plane_files, read_plane_files
from repro.bist.controller import (
    BistScheduler,
    TrplaController,
    MemoryOp,
    build_test_program,
)
from repro.bist.ports import PortView, port_bindings, run_dual_port_test

__all__ = [
    "MarchElement",
    "MarchTest",
    "Op",
    "Order",
    "parse_march",
    "ALL_TESTS",
    "IFA_9",
    "IFA_13",
    "MATS_PLUS",
    "MARCH_C_MINUS",
    "MARCH_X",
    "MARCH_Y",
    "MARCH_B",
    "TransparentBist",
    "transparent_march",
    "FieldRepairController",
    "Repair2DResult",
    "TwoDRepairController",
    "repair2d_result_from_dict",
    "MaintenanceResult",
    "FaultyInfrastructure",
    "AddGen",
    "DataGen",
    "backgrounds_for_word",
    "Microprogram",
    "MicroInstruction",
    "assemble",
    "Trpla",
    "write_plane_files",
    "read_plane_files",
    "BistScheduler",
    "TrplaController",
    "MemoryOp",
    "build_test_program",
    "PortView",
    "port_bindings",
    "run_dual_port_test",
]
