"""Diagnosis-driven 2-D repair: BIST log -> bitmap -> allocation -> programming.

The row-only flow trusts the comparator address stream directly: every
confirmed failing row burns one TLB entry.  With spare columns in play
that is exactly wrong — a broken bit line would swamp the row spares —
so the 2-D flow runs a *diagnostic* pass first, turns the full failure
log into a fault bitmap, hands it to the
:func:`~repro.bisr.allocate.allocate` must-repair/branch-and-bound
allocator, programs the TLB and the column steer from the resulting
plan, and then verifies with diversion and steering active.

Faulty spares are discovered the same way the paper's iterated 2k-pass
flow discovers them: a resource that still fails *while diverted* is
re-recorded, advancing its strictly increasing spare sequence.  The
loop is bounded; when it cannot converge — allocation infeasible,
spares exhausted, or no forward progress — the controller returns the
ladder's :class:`~repro.bisr.escalation.DegradedResult` (wrapped in
:class:`Repair2DResult`) with the still-broken rows localised, never an
exception.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Set, Tuple

from repro.bisr.allocate import RepairPlan, allocate, repair_plan_from_dict
from repro.bisr.escalation import (
    DegradedResult,
    SupervisorResult,
    supervisor_result_from_dict,
)
from repro.bist.march import MarchTest
from repro.memsim.diagnosis import collect_fail_records, fault_bitmap


@dataclass
class Repair2DResult:
    """Outcome of a diagnosis-driven 2-D repair run.

    Wraps the escalation ladder's result type (a
    :class:`~repro.bisr.escalation.SupervisorResult`, or its
    :class:`~repro.bisr.escalation.DegradedResult` subclass when repair
    did not converge) and adds the column dimension plus the final
    allocation plan.
    """

    outcome: SupervisorResult
    plan: Optional[RepairPlan]
    cols_steered: Tuple[int, ...]
    spare_cols_used: int
    cycles: int

    @property
    def repaired(self) -> bool:
        return self.outcome.repaired

    @property
    def degraded(self) -> bool:
        return self.outcome.degraded

    @property
    def reason(self) -> str:
        return getattr(self.outcome, "reason", "")

    @property
    def rows_mapped(self) -> Tuple[int, ...]:
        return self.outcome.confirmed_rows

    @property
    def spare_rows_used(self) -> int:
        return self.outcome.spares_used

    def to_dict(self) -> dict:
        """JSON-ready payload (nested ladder-result + plan payloads)."""
        return {
            "kind": "repair2d_result",
            "outcome": self.outcome.to_dict(),
            "plan": self.plan.to_dict() if self.plan is not None else None,
            "cols_steered": list(self.cols_steered),
            "spare_cols_used": self.spare_cols_used,
            "cycles": self.cycles,
        }

    def summary(self) -> str:
        verdict = "repaired" if self.repaired else "DEGRADED"
        note = f" ({self.reason})" if self.reason else ""
        return (
            f"{verdict} in {self.cycles} cycle(s): "
            f"rows={list(self.rows_mapped)} "
            f"cols={list(self.cols_steered)}, "
            f"{self.spare_rows_used} spare row(s) + "
            f"{self.spare_cols_used} spare col(s) consumed{note}"
        )


def repair2d_result_from_dict(data: Mapping) -> Repair2DResult:
    """Rebuild a :meth:`Repair2DResult.to_dict` payload."""
    data = dict(data)
    kind = data.pop("kind", "repair2d_result")
    if kind != "repair2d_result":
        raise ValueError(f"not a repair2d_result payload: kind={kind!r}")
    plan = data.get("plan")
    return Repair2DResult(
        outcome=supervisor_result_from_dict(data["outcome"]),
        plan=repair_plan_from_dict(plan) if plan is not None else None,
        cols_steered=tuple(data["cols_steered"]),
        spare_cols_used=data["spare_cols_used"],
        cycles=data["cycles"],
    )


class TwoDRepairController:
    """Diagnose, allocate, program, verify — bounded and fail-safe.

    Args:
        march: the march test used for diagnostic and verify passes.
        bpw: bits per word.
        node_budget: branch-and-bound budget handed to the allocator.
        max_cycles: test/repair cycles before degrading; defaults to
            spare_rows + spare_cols + 2 (every cycle must either finish
            or burn at least one spare, so that always terminates).
    """

    def __init__(self, march: MarchTest, bpw: int,
                 node_budget: int = 20000,
                 max_cycles: Optional[int] = None) -> None:
        self.march = march
        self.bpw = bpw
        self.node_budget = node_budget
        self.max_cycles = max_cycles

    def run(self, device) -> Repair2DResult:
        """Run the full 2-D flow on a fresh device; never raises for
        anticipated faults."""
        device.reset_for_test()
        array = device.array
        tlb = device.tlb
        steer = device.colsteer
        max_cycles = self.max_cycles or (tlb.spares + steer.spares + 2)
        plan: Optional[RepairPlan] = None
        logical_faults: Set[Tuple[int, int]] = set()
        probe_reads = 0
        cycle = 0

        for cycle in range(1, max_cycles + 1):
            # Cycle 1 is the raw diagnostic pass; later cycles verify
            # with diversion and steering active.
            device.set_repair_mode(cycle > 1)
            reads_before = array.read_count
            records = collect_fail_records(self.march, device, self.bpw)
            probe_reads += array.read_count - reads_before
            bitmap = fault_bitmap(records, self.bpw, array.bpc)
            if not bitmap:
                return self._success(device, plan, cycle, probe_reads)

            # Classify this cycle's failures: a failure on a diverted
            # or steered resource means the *spare* is faulty and the
            # strictly increasing sequence advances; anything else is a
            # new logical fault for the allocator.
            progress = False
            remapped_rows: Set[int] = set()
            remapped_cols: Set[int] = set()
            mapped = set(tlb.mapped_rows())
            steered = set(steer.active_map())
            for row, col in bitmap:
                if cycle > 1 and row in mapped:
                    if row not in remapped_rows:
                        remapped_rows.add(row)
                        progress |= tlb.record(row, remap=True)
                elif cycle > 1 and col in steered:
                    if col not in remapped_cols:
                        remapped_cols.add(col)
                        progress |= steer.record(col, remap=True)
                elif (row, col) not in logical_faults:
                    logical_faults.add((row, col))
                    progress = True

            # Allocate spares over faults no current mapping covers.
            mapped = set(tlb.mapped_rows())
            steered = set(steer.active_map())
            residual = {(r, c) for r, c in logical_faults
                        if r not in mapped and c not in steered}
            if residual:
                plan = allocate(
                    sorted(residual), array.rows, array.phys_cols,
                    spare_rows=tlb.spares_left,
                    spare_cols=steer.spares_left,
                    node_budget=self.node_budget,
                )
                for r in plan.rows:
                    progress |= tlb.record(r)
                for c in plan.cols:
                    progress |= steer.record(c)
                if not plan.repairable:
                    return self._degraded(
                        device, plan, cycle, probe_reads,
                        reason=f"allocation infeasible: {plan.reason}"
                        if plan.reason else "allocation infeasible",
                    )
            if not progress:
                if tlb.overflowed or steer.overflowed:
                    reason = (
                        f"spares exhausted after {cycle} cycle(s) "
                        f"(rows {tlb.spares_used}/{tlb.spares}, "
                        f"cols {steer.spares_used}/{steer.spares})")
                else:
                    reason = (f"repair did not converge after "
                              f"{cycle} cycle(s)")
                return self._degraded(device, plan, cycle, probe_reads,
                                      reason=reason)

        return self._degraded(
            device, plan, max_cycles, probe_reads,
            reason=f"cycle budget {max_cycles} exhausted",
        )

    # -- outcomes ----------------------------------------------------------

    def _success(self, device, plan, cycles: int,
                 probe_reads: int) -> Repair2DResult:
        outcome = SupervisorResult(
            repaired=True,
            attempts=cycles,
            confirmed_rows=tuple(sorted(device.tlb.mapped_rows())),
            rejected_addresses=(),
            spares_used=device.tlb.spares_used,
            probe_reads=probe_reads,
            backoff_cycles=0,
        )
        return Repair2DResult(
            outcome=outcome,
            plan=plan,
            cols_steered=tuple(device.colsteer.steered_cols()),
            spare_cols_used=device.colsteer.spares_used,
            cycles=cycles,
        )

    def _degraded(self, device, plan, cycles: int, probe_reads: int,
                  reason: str) -> Repair2DResult:
        outcome = DegradedResult(
            repaired=False,
            attempts=cycles,
            confirmed_rows=tuple(sorted(device.tlb.mapped_rows())),
            rejected_addresses=(),
            spares_used=device.tlb.spares_used,
            probe_reads=probe_reads,
            backoff_cycles=0,
            unrepaired_rows=self._sweep_unrepaired(device),
            reason=reason,
        )
        return Repair2DResult(
            outcome=outcome,
            plan=plan,
            cols_steered=tuple(device.colsteer.steered_cols()),
            spare_cols_used=device.colsteer.spares_used,
            cycles=cycles,
        )

    def _sweep_unrepaired(self, device) -> Tuple[int, ...]:
        """Localise still-faulty rows with diversion/steering active
        (the mission computer's degrade-around map)."""
        bpc = device.array.bpc
        mask = (1 << self.bpw) - 1
        device.set_repair_mode(True)
        bad_rows: List[int] = []
        seen: Set[int] = set()
        for pattern in (0, mask):
            for address in range(device.word_count):
                device.write(address, pattern)
            for address in range(device.word_count):
                if device.read(address) != pattern:
                    row = address // bpc
                    if row not in seen:
                        seen.add(row)
                        bad_rows.append(row)
        return tuple(sorted(seen))
