"""ADDGEN: the binary up/down test address counter.

"The test address generator ADDGEN needs to generate a forward as well
as a reverse addressing sequence.  Consequently, it is implemented as a
binary up/down counter."

The model is bit-accurate: ``step`` performs the ripple increment or
decrement exactly as the counter-bit chain does, wrapping modulo the
address space, and raises the ``done`` flag when the terminal address
has been reached (all-ones going up, zero going down).
"""

from __future__ import annotations

from typing import Iterator


class AddGen:
    """A ``width``-bit binary up/down counter over ``limit`` addresses.

    ``limit`` allows an address space that is not a full power of two
    (e.g. regular rows plus mapped spare rows in pass 2); the counter
    then counts 0..limit-1.
    """

    def __init__(self, width: int, limit: int = 0) -> None:
        if width < 1:
            raise ValueError("counter width must be at least 1")
        max_count = 1 << width
        if limit == 0:
            limit = max_count
        if not 1 <= limit <= max_count:
            raise ValueError(
                f"limit {limit} does not fit in {width} bits"
            )
        self.width = width
        self.limit = limit
        self.value = 0
        self.up = True

    def reset(self, up: bool = True) -> None:
        """Load the starting address for a march of the given direction."""
        self.up = up
        self.value = 0 if up else self.limit - 1

    @property
    def done(self) -> bool:
        """True at the last address of the current direction."""
        if self.up:
            return self.value == self.limit - 1
        return self.value == 0

    def step(self) -> int:
        """Advance one address (wrapping) and return the new value."""
        if self.up:
            self.value = (self.value + 1) % self.limit
        else:
            self.value = (self.value - 1) % self.limit
        return self.value

    def sequence(self) -> Iterator[int]:
        """Yield one full sweep in the current direction (limit values)."""
        self.reset(self.up)
        yield self.value
        while not self.done:
            yield self.step()

    def bits(self) -> tuple:
        """Current address as a LSB-first bit tuple (hardware view)."""
        return tuple((self.value >> i) & 1 for i in range(self.width))
