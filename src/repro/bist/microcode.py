"""Microprogram representation and the PLA personality assembler.

The test-and-repair controller is "a combined test and repair controller
that is used for generating control signals in both BIST and BISR modes
of operation ... implemented as a pseudo-NMOS NOR-NOR PLA loaded with
the control code".  A microprogram here is a list of states, each with

* a set of asserted control outputs, and
* a prioritized branch list on condition inputs (with a default).

:func:`assemble` lowers the program to the two personality matrices the
PLA is "loaded" with: the AND plane selects product terms from the
state code and condition literals, the OR plane drives the next-state
code and the control outputs.  Because a PLA ORs every matching term,
next-state terms must be *disjoint*: the assembler expands each state's
default branch into explicit product terms over the complement of the
conditions its other branches test, so exactly one next-state term
fires per cycle.  The same matrices feed both the behavioural
:class:`~repro.bist.trpla.Trpla` model and the
:func:`~repro.cells.pla.pla_cell` layout generator, so the controller
that runs the self-test is the controller whose silicon is measured.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

#: A branch: ((input, value), ...) conditions -> target state name.
Branch = Tuple[Tuple[Tuple[str, int], ...], str]


@dataclass(frozen=True)
class MicroInstruction:
    """One controller state.

    Attributes:
        name: unique state name.
        outputs: control signals asserted while in this state.
        branches: ordered ``(conditions, next_state)`` pairs; conditions
            map input names to required values.  The first branch whose
            conditions all hold is taken.
        default: state entered when no branch matches.
    """

    name: str
    outputs: Tuple[str, ...] = ()
    branches: Tuple[Branch, ...] = ()
    default: str = ""

    def next_state(self, inputs: Mapping[str, int]) -> str:
        """Resolve the successor for the given condition inputs."""
        for conditions, target in self.branches:
            if all(inputs.get(k, 0) == v for k, v in conditions):
                return target
        if not self.default:
            raise ValueError(f"state {self.name!r} has no default successor")
        return self.default


class Microprogram:
    """An ordered collection of states with validation."""

    def __init__(self, states: Sequence[MicroInstruction],
                 start: str) -> None:
        if not states:
            raise ValueError("a microprogram needs at least one state")
        self.states: Dict[str, MicroInstruction] = {}
        for st in states:
            if st.name in self.states:
                raise ValueError(f"duplicate state name {st.name!r}")
            self.states[st.name] = st
        if start not in self.states:
            raise ValueError(f"unknown start state {start!r}")
        self.start = start
        self._validate_targets()

    def _validate_targets(self) -> None:
        for st in self.states.values():
            targets = [t for _, t in st.branches]
            if st.default:
                targets.append(st.default)
            if not targets:
                raise ValueError(f"state {st.name!r} has no successors")
            for t in targets:
                if t not in self.states:
                    raise ValueError(
                        f"state {st.name!r} branches to unknown {t!r}"
                    )

    def __len__(self) -> int:
        return len(self.states)

    @property
    def state_bits(self) -> int:
        """Flip-flops needed for a dense binary state encoding."""
        return max(1, (len(self.states) - 1).bit_length())

    def condition_inputs(self) -> Tuple[str, ...]:
        """All condition input names, sorted."""
        names = set()
        for st in self.states.values():
            for conditions, _ in st.branches:
                names.update(k for k, _ in conditions)
        return tuple(sorted(names))

    def control_outputs(self) -> Tuple[str, ...]:
        """All control output names, sorted."""
        names = set()
        for st in self.states.values():
            names.update(st.outputs)
        return tuple(sorted(names))

    def encoding(self) -> Dict[str, int]:
        """Dense binary state codes, in declaration order, start first."""
        ordered = [self.start] + [n for n in self.states if n != self.start]
        return {name: i for i, name in enumerate(ordered)}


@dataclass(frozen=True)
class AssembledPla:
    """The PLA personality plus its signal maps."""

    and_plane: Tuple[Tuple[int, ...], ...]
    or_plane: Tuple[Tuple[int, ...], ...]
    input_names: Tuple[str, ...]   # state bits then condition inputs
    output_names: Tuple[str, ...]  # next-state bits then control outputs
    state_encoding: Dict[str, int]
    state_bits: int

    @property
    def term_count(self) -> int:
        return len(self.and_plane)


def _disjoint_cases(
    branches: Sequence[Branch], default: str
) -> List[Tuple[Dict[str, int], str]]:
    """Expand prioritized branches into disjoint (assignment, target) terms.

    Enumerates assignments of the condition variables this state tests
    and resolves each through the priority order, then merges
    assignments reaching the same target back into cubes where possible
    (here: keeps full minterms — with <=3 tested variables per state the
    term count stays small and correctness is trivial to audit).
    """
    variables = sorted({k for conds, _ in branches for k, _ in conds})
    if not variables:
        return [({}, default)]
    cases: List[Tuple[Dict[str, int], str]] = []
    for values in itertools.product((0, 1), repeat=len(variables)):
        assignment = dict(zip(variables, values))
        target = default
        for conds, tgt in branches:
            if all(assignment[k] == v for k, v in conds):
                target = tgt
                break
        cases.append((assignment, target))
    return cases


def assemble(program: Microprogram) -> AssembledPla:
    """Lower a microprogram to AND/OR personality matrices.

    Product terms per state: one disjoint next-state term per condition
    case, plus (when the state asserts control outputs) one
    unconditional term carrying only those outputs.  Literal columns
    come in (true, complement) pairs per input, matching the layout
    generator's column order.
    """
    encoding = program.encoding()
    n_bits = program.state_bits
    conditions = program.condition_inputs()
    controls = program.control_outputs()
    input_names = tuple(f"s{i}" for i in range(n_bits)) + conditions
    output_names = tuple(f"ns{i}" for i in range(n_bits)) + controls
    input_index = {name: i for i, name in enumerate(input_names)}

    and_rows: List[Tuple[int, ...]] = []
    or_rows: List[Tuple[int, ...]] = []

    def state_literals(code: int) -> List[int]:
        row = [0] * (2 * len(input_names))
        for b in range(n_bits):
            bit = (code >> b) & 1
            row[2 * b + (0 if bit else 1)] = 1
        return row

    for name, st in program.states.items():
        code = encoding[name]
        # Disjoint next-state terms.
        for assignment, target in _disjoint_cases(st.branches, st.default):
            if not target:
                raise ValueError(
                    f"state {name!r} lacks a successor for inputs "
                    f"{assignment}"
                )
            row = state_literals(code)
            for cname, value in assignment.items():
                col = input_index[cname]
                row[2 * col + (0 if value else 1)] = 1
            out = [0] * len(output_names)
            tcode = encoding[target]
            for b in range(n_bits):
                if (tcode >> b) & 1:
                    out[b] = 1
            and_rows.append(tuple(row))
            or_rows.append(tuple(out))
        # Unconditional control-output term.
        if st.outputs:
            and_rows.append(tuple(state_literals(code)))
            out = [0] * len(output_names)
            for cname in st.outputs:
                out[n_bits + controls.index(cname)] = 1
            or_rows.append(tuple(out))

    return AssembledPla(
        and_plane=tuple(and_rows),
        or_plane=tuple(or_rows),
        input_names=input_names,
        output_names=output_names,
        state_encoding=encoding,
        state_bits=n_bits,
    )
