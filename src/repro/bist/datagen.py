"""DATAGEN: Johnson-counter background generation and read comparison.

"The test data generator DATAGEN is a Johnson counter that can generate
log2(bpw)+1 data backgrounds for a bpw-bit RAM word.  In reality, we
need to generate only log2(bpw)+1 words, as follows: all-0,
0101..., 00110011..., 0000111100001111..., ..., all-1."  (The all-1
row of that list is the complement view of all-0; complements are
produced by the inversion signal, not stored.)

"The test data generator DATAGEN not only generates background
patterns, but also compares the read data with their expected values
... using exclusive-OR gates and a bpw-input OR gate."

The background set is proved in [2] to be exactly what a Johnson
counter of log2(bpw)+1 stages produces when each word bit ``i`` taps
stage ``ctz-pattern`` — concretely, background ``k`` assigns bit ``i``
the value of bit ``k-1`` of ``i``'s binary index for ``k >= 1``
(background 0 is all-0).  These patterns cover every pair of bits of a
word with both equal and opposite values, which is what the intra-word
coupling coverage claim requires; :func:`backgrounds_for_word` has a
property test asserting exactly that.
"""

from __future__ import annotations

from typing import List, Tuple


def backgrounds_for_word(bpw: int) -> List[int]:
    """The log2(bpw)+1 background patterns for a ``bpw``-bit word.

    Background 0 is all-0; background k (k>=1) sets bit i to bit (k-1)
    of i, producing the 0101..., 00110011..., etc. family.  For bpw=1
    the list degenerates to [0].

    Raises:
        ValueError: when bpw is not a positive power of two (the paper
            requires bpw to be a power of 2).
    """
    if bpw < 1 or bpw & (bpw - 1):
        raise ValueError(f"bpw must be a positive power of two, got {bpw}")
    n_backgrounds = bpw.bit_length()  # log2(bpw) + 1
    patterns = []
    for k in range(n_backgrounds):
        if k == 0:
            patterns.append(0)
            continue
        value = 0
        for i in range(bpw):
            if (i >> (k - 1)) & 1:
                value |= 1 << i
        patterns.append(value)
    return patterns


class DataGen:
    """Johnson-counter background generator plus read comparator.

    The hardware is a log2(bpw)+1 stage Johnson (twisted-ring) counter;
    stepping it advances to the next background.  The ``invert`` input
    (the clock generator's *inversion* signal) selects the complemented
    pattern, used for the w1/r1 ops of a march.
    """

    def __init__(self, bpw: int) -> None:
        self.bpw = bpw
        self.mask = (1 << bpw) - 1
        self._patterns = backgrounds_for_word(bpw)
        self.index = 0

    @property
    def stage_count(self) -> int:
        """Johnson counter length: log2(bpw) + 1 stages."""
        return self.bpw.bit_length()

    @property
    def background_count(self) -> int:
        return len(self._patterns)

    @property
    def done(self) -> bool:
        """True when the last background is selected."""
        return self.index == len(self._patterns) - 1

    def reset(self) -> None:
        self.index = 0

    def step(self) -> int:
        """Advance to the next background and return it."""
        if self.done:
            raise RuntimeError("Johnson counter already at last background")
        self.index += 1
        return self.pattern(0)

    def pattern(self, data_bit: int) -> int:
        """Current background (data_bit=0) or its complement (1)."""
        value = self._patterns[self.index]
        if data_bit:
            value = ~value & self.mask
        return value

    def compare(self, read_word: int, data_bit: int) -> bool:
        """XOR/OR comparator: True when the read word mismatches.

        Mirrors the hardware: per-bit XOR against the expected pattern,
        then a bpw-input OR raising the *capture* pulse on any
        discrepancy.
        """
        return (read_word ^ self.pattern(data_bit)) & self.mask != 0

    def johnson_states(self) -> List[Tuple[int, ...]]:
        """The raw Johnson counter state sequence (for the layout/netlist
        view): ``stage_count`` stages walking 000 -> 100 -> 110 -> ...

        The background index is the number of ones in the state, which
        is how the decode of the twisted ring selects patterns.
        """
        n = self.stage_count
        states = []
        state = [0] * n
        states.append(tuple(state))
        for _ in range(n):
            state = [1] + state[:-1]
            states.append(tuple(state))
        return states
