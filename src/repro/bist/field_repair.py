"""In-field transparent self-repair.

The paper's introduction motivates BISR with "mission-critical space,
oceanic, and avionic applications where external field testing and
repair are prohibitively expensive or infeasible" — which implies the
self-test must run *in the field*, on a part holding live data.  That
is exactly what combining the two §III ingredients gives: transparent
testing (contents preserved) plus the TLB repair flow.

:class:`FieldRepairController` runs periodic maintenance cycles:

1. a transparent march pass with TLB recording enabled — live data is
   preserved, new faulty rows are captured,
2. on any new capture: rescue the victims' data (whatever of it still
   reads back), enable/refresh diversion, write the rescued data into
   the spare rows, and
3. a transparent verify pass confirming the repair took.

The data in a freshly-failed row is rescued best-effort: bits the
fault already corrupted are gone (an ECC layer above would recover
them; modelling that is out of scope), which the result reports
honestly as ``words_lost``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.bist.march import MarchTest
from repro.bist.transparent import TransparentBist
from repro.core.errors import RepairExhausted
from repro.memsim.device import BisrRam


@dataclass
class MaintenanceResult:
    """Outcome of one in-field maintenance cycle."""

    faults_found: int
    new_rows_mapped: Tuple[int, ...]
    repaired: bool
    words_rescued: int
    words_lost: int

    @property
    def healthy(self) -> bool:
        """True when the device ended the cycle fully serviceable."""
        return self.repaired


class FieldRepairController:
    """Periodic transparent test-and-repair for a device in service."""

    def __init__(self, march: MarchTest, device: BisrRam) -> None:
        self.march = march
        self.device = device
        self.bpw = device.array.bpw

    def maintenance_cycle(self, strict: bool = False) -> MaintenanceResult:
        """Run one transparent test + repair + verify cycle.

        With ``strict``, an unsuccessful cycle that has also exhausted
        the spare sequence raises
        :class:`~repro.core.errors.RepairExhausted` (carrying the rows
        still mapped-or-faulty) instead of returning — for callers that
        treat a dead redundancy budget as a hard fault.
        """
        device = self.device
        bpc = device.array.bpc

        # Snapshot what the device currently *returns* per word — the
        # best rescue data available in the field (no golden copy).
        snapshot: Dict[int, int] = {
            a: device.read(a) for a in range(device.word_count)
        }
        rows_before = set(device.tlb.mapped_rows())

        # Pass 1: transparent test with capture.  record_fail goes
        # through the device so remap semantics match the factory flow.
        probe = TransparentBist(self.march, self.bpw)
        first = self._run_with_capture(probe)

        new_rows = tuple(sorted(
            set(device.tlb.mapped_rows()) - rows_before
        ))
        rescued = lost = 0
        if new_rows:
            device.set_repair_mode(True)
            # Move the rescued data of each newly-diverted row into its
            # spare through the now-active diversion.
            for row in new_rows:
                for column in range(bpc):
                    address = row * bpc + column
                    device.write(address, snapshot[address])
            # Count how much of it reads back (fault-corrupted bits in
            # the snapshot are lost for good).
            for row in new_rows:
                for column in range(bpc):
                    address = row * bpc + column
                    if device.read(address) == snapshot[address]:
                        rescued += 1
                    else:
                        lost += 1

        # Pass 2: transparent verify with diversion active.
        verify = TransparentBist(self.march, self.bpw)
        second = verify.run(device)
        result = MaintenanceResult(
            faults_found=first,
            new_rows_mapped=new_rows,
            repaired=second.passed and second.contents_preserved,
            words_rescued=rescued,
            words_lost=lost,
        )
        if strict and not result.repaired and device.tlb.overflowed:
            raise RepairExhausted(
                f"in-field repair exhausted all {device.tlb.spares} "
                f"spares with faults remaining",
                unrepaired_rows=tuple(sorted(device.tlb.mapped_rows())),
                spares=device.tlb.spares,
            )
        return result

    def _run_with_capture(self, transparent: TransparentBist) -> int:
        """Run a transparent pass; localise and capture any failures.

        The transparent engine reports *that* comparisons failed; a
        short write-invert-read-restore sweep then localises the
        failing addresses for TLB capture.  The sweep preserves
        contents (on healthy cells) and pins down every solid fault —
        pattern-sensitive couplings may need several maintenance cycles
        to localise, which the periodic-maintenance framing tolerates.
        """
        device = self.device
        result = transparent.run(device)
        if result.fail_count:
            mask = transparent.mask
            for address in range(device.word_count):
                probe = device.read(address)
                device.write(address, probe ^ mask)
                flipped = device.read(address)
                device.write(address, probe)
                if flipped != (probe ^ mask) or \
                        device.read(address) != probe:
                    device.record_fail(address)
        return result.fail_count
