"""The test-and-repair controller.

Two interchangeable implementations of the paper's two-pass flow:

* :class:`BistScheduler` — the algorithmic reference.  "The test
  involves two passes.  In the first pass, the memory array is tested
  and faulty addresses are stored in a translation lookaside buffer
  (TLB).  In the second pass, the array is retested along with the
  mapped redundant addresses.  Any fault detected in the second pass
  produces a 'Repair Unsuccessful' status signal."
* :class:`TrplaController` — the microprogrammed hardware model: a
  state register clocked against the TRPLA personality produced by
  :func:`build_test_program` + :func:`~repro.bist.microcode.assemble`.
  The equivalence test in the suite asserts that both emit identical
  memory-operation streams.

The two-pass flow generalises to 2k passes ("the cycle of self-testing
and self-repair may be iterated to repair faults within the spares
themselves") via the ``passes`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Protocol, Tuple

from repro.bist.addgen import AddGen
from repro.bist.datagen import DataGen
from repro.bist.march import MarchElement, MarchTest, Order
from repro.bist.microcode import MicroInstruction, Microprogram, assemble
from repro.bist.trpla import Trpla


class TestTarget(Protocol):
    """What the BIST engine drives: a RAM with repair plumbing."""

    def read(self, address: int) -> int: ...

    def write(self, address: int, word: int) -> None: ...

    def set_repair_mode(self, enabled: bool) -> None: ...

    def record_fail(self, address: int) -> None: ...

    def retention_wait(self) -> None: ...

    def reset_for_test(self) -> None: ...

    @property
    def word_count(self) -> int: ...


@dataclass(frozen=True)
class MemoryOp:
    """One memory operation of the self-test, for stream comparison."""

    pass_no: int
    background: int
    address: int
    is_read: bool
    data_bit: int


@dataclass
class BistResult:
    """Outcome of a complete self-test/self-repair run."""

    passes_run: int = 0
    op_count: int = 0
    fail_count: int = 0
    repair_unsuccessful: bool = False
    ops: List[MemoryOp] = field(default_factory=list)

    @property
    def repaired(self) -> bool:
        """True when the final verification pass saw no fault."""
        return not self.repair_unsuccessful


class BistScheduler:
    """Algorithmic reference implementation of the two-pass self-test."""

    def __init__(self, march: MarchTest, bpw: int,
                 record_ops: bool = False) -> None:
        self.march = march
        self.datagen = DataGen(bpw)
        self.record_ops = record_ops

    def run(self, target: TestTarget, passes: int = 2,
            stop_on_repair_fail: bool = True,
            divert_during_test: bool = False) -> BistResult:
        """Run ``passes`` passes against ``target``.

        Odd passes test-and-record with diversion reflecting previous
        repairs; even passes verify.  With the standard ``passes=2``,
        pass 1 records into the TLB and pass 2 verifies the repair.

        ``divert_during_test`` keeps diversion active in pass 1 as
        well — the re-entrant cycle of the paper's iterated 2k-pass
        repair (the equivalent of ``TrplaController(fresh=False)``):
        a mapped row that still fails advances to its next spare.
        """
        if passes < 1:
            raise ValueError("need at least one pass")
        result = BistResult()
        for pass_no in range(1, passes + 1):
            target.set_repair_mode(pass_no >= 2 or divert_during_test)
            verification = pass_no % 2 == 0
            failed = self._run_single_pass(
                target, pass_no, verification, result
            )
            result.passes_run = pass_no
            if verification:
                result.repair_unsuccessful = failed
                if failed and stop_on_repair_fail:
                    break
                if not failed:
                    break  # repaired and verified; later passes unneeded
        return result

    def _run_single_pass(self, target: TestTarget, pass_no: int,
                         verification: bool, result: BistResult) -> bool:
        any_fail = False
        self.datagen.reset()
        while True:
            for element in self.march.elements:
                if element.is_delay:
                    target.retention_wait()
                    continue
                addresses = self._addresses(element, target.word_count)
                for address in addresses:
                    for op in element.ops:
                        result.op_count += 1
                        if self.record_ops:
                            result.ops.append(
                                MemoryOp(
                                    pass_no,
                                    self.datagen.index,
                                    address,
                                    op.is_read,
                                    op.data_bit,
                                )
                            )
                        if op.is_read:
                            word = target.read(address)
                            if self.datagen.compare(word, op.data_bit):
                                any_fail = True
                                result.fail_count += 1
                                if not verification:
                                    target.record_fail(address)
                        else:
                            target.write(
                                address, self.datagen.pattern(op.data_bit)
                            )
            if self.datagen.done:
                break
            self.datagen.step()
        return any_fail

    @staticmethod
    def _addresses(element: MarchElement, word_count: int) -> range:
        if element.order is Order.DOWN:
            return range(word_count - 1, -1, -1)
        return range(word_count)


# ---------------------------------------------------------------------------
# Microprogram construction
# ---------------------------------------------------------------------------


def build_test_program(march: MarchTest, passes: int = 2) -> Microprogram:
    """Build the controller microprogram for ``march`` over ``passes``.

    State budget: one init state per op element (loads the address
    counter direction), one state per operation, one wait state per
    delay element, one background-shift state per pass, pass-end glue,
    and the idle/done/repair-fail states.  For IFA-9 and two passes
    this lands at 50 states in 6 flip-flops — the same encoding budget
    as the paper's 59-state controller (the delta is bookkeeping states
    our flow folds into transitions).
    """
    if passes < 1:
        raise ValueError("need at least one pass")
    states: List[MicroInstruction] = []
    states.append(
        MicroInstruction(
            name="idle",
            branches=(((("go", 1),), "init"),),
            default="idle",
        )
    )

    def element_entry(pass_no: int, index: int) -> str:
        element = march.elements[index]
        prefix = f"p{pass_no}_e{index}"
        return f"{prefix}_wait" if element.is_delay else f"{prefix}_init"

    states.append(
        MicroInstruction(
            name="init",
            outputs=("tlb_reset", "datagen_reset"),
            default=element_entry(1, 0),
        )
    )

    for pass_no in range(1, passes + 1):
        verification = pass_no % 2 == 0
        for index, element in enumerate(march.elements):
            prefix = f"p{pass_no}_e{index}"
            is_last_element = index == len(march.elements) - 1
            if is_last_element:
                after = None  # resolved to bg/end logic below
            else:
                after = element_entry(pass_no, index + 1)

            if element.is_delay:
                exit_target = after or f"p{pass_no}_lastexit"
                states.append(
                    MicroInstruction(
                        name=f"{prefix}_wait",
                        outputs=("wait_retention",),
                        branches=(
                            ((("retention_done", 1),), exit_target),
                        ),
                        default=f"{prefix}_wait",
                    )
                )
                continue

            up = element.order is not Order.DOWN
            states.append(
                MicroInstruction(
                    name=f"{prefix}_init",
                    outputs=(
                        "addr_reset_up" if up else "addr_reset_down",
                    ),
                    default=f"{prefix}_o0",
                )
            )
            for j, op in enumerate(element.ops):
                outputs = []
                branches: List[tuple] = []
                if op.is_read:
                    outputs.append("op_read")
                    if verification:
                        branches.append(
                            ((("fail", 1),), "repair_fail")
                        )
                    else:
                        outputs.append("tlb_record")
                else:
                    outputs.append("op_write")
                if op.data_bit:
                    outputs.append("data_inv")
                is_last_op = j == len(element.ops) - 1
                if is_last_op:
                    outputs.append("addr_step")
                    advance = after or f"p{pass_no}_lastexit"
                    if op.is_read and verification:
                        branches = [
                            ((("fail", 1),), "repair_fail"),
                            ((("addr_done", 1),), advance),
                        ]
                    else:
                        branches.append(((("addr_done", 1),), advance))
                    default = f"{prefix}_o0"
                else:
                    default = f"{prefix}_o{j + 1}"
                states.append(
                    MicroInstruction(
                        name=f"{prefix}_o{j}",
                        outputs=tuple(outputs),
                        branches=tuple(branches),
                        default=default,
                    )
                )

        # End-of-march glue for this pass: loop backgrounds, then hand
        # over to the next pass or finish.
        if pass_no < passes:
            end_target = f"p{pass_no}_end"
        else:
            end_target = "pass_done"
        states.append(
            MicroInstruction(
                name=f"p{pass_no}_lastexit",
                branches=(((("bg_done", 1),), end_target),),
                default=f"p{pass_no}_bgshift",
            )
        )
        states.append(
            MicroInstruction(
                name=f"p{pass_no}_bgshift",
                outputs=("datagen_shift",),
                default=element_entry(pass_no, 0),
            )
        )
        if pass_no < passes:
            states.append(
                MicroInstruction(
                    name=f"p{pass_no}_end",
                    outputs=("datagen_reset", "phase_adv"),
                    default=element_entry(pass_no + 1, 0),
                )
            )

    states.append(
        MicroInstruction(
            name="pass_done", outputs=("done",), default="pass_done"
        )
    )
    states.append(
        MicroInstruction(
            name="repair_fail",
            outputs=("repair_unsuccessful",),
            default="repair_fail",
        )
    )
    return Microprogram(states, start="idle")


class TrplaController:
    """Cycle-stepped controller clocked against the TRPLA personality.

    Each clock: the PLA's unconditional terms produce the control
    outputs for the current state; the controller executes them against
    the address counter, data generator, and the target RAM; the
    condition signals that result (address done, background done, fail,
    retention done) feed the PLA's branch terms to produce the next
    state — exactly the settle-then-register behaviour of the silicon.
    """

    def __init__(self, march: MarchTest, bpw: int, target: TestTarget,
                 passes: int = 2, record_ops: bool = False,
                 fresh: bool = True) -> None:
        """``fresh=False`` re-runs the 2-pass cycle on a device that
        already holds a TLB image — the paper's iterated "2k-pass"
        repair of faults within the spares: diversion stays active, and
        recorded rows that still fail advance to their next spare.
        """
        self.march = march
        self.target = target
        self.fresh = fresh
        program = build_test_program(march, passes)
        self.program = program
        self.assembled = assemble(program)
        self.pla = Trpla(self.assembled.and_plane, self.assembled.or_plane)
        self._out_index = {
            name: i for i, name in enumerate(self.assembled.output_names)
        }
        self._cond_names = program.condition_inputs()
        self.state_bits = self.assembled.state_bits
        self.state = self.assembled.state_encoding["idle"]
        self._decode = {
            code: name for name, code in self.assembled.state_encoding.items()
        }
        address_bits = max(1, (target.word_count - 1).bit_length())
        self.addgen = AddGen(address_bits, target.word_count)
        self.datagen = DataGen(bpw)
        self.record_ops = record_ops
        self.result = BistResult()
        self.pass_no = 1
        self.cycles = 0
        self.finished = False

    # -- one clock ---------------------------------------------------------

    def step(self, go: int = 1) -> None:
        """Advance one controller clock."""
        if self.finished:
            return
        self.cycles += 1
        outputs = self._query(conditions={})
        conds = self._execute(outputs, go)
        next_outputs = self._query(conditions=conds)
        next_code = 0
        for b in range(self.state_bits):
            if next_outputs[b]:
                next_code |= 1 << b
        self.state = next_code
        state_name = self._decode[self.state]
        if state_name in ("pass_done", "repair_fail"):
            self.result.repair_unsuccessful = state_name == "repair_fail"
            self.result.passes_run = self.pass_no
            self.finished = True

    def run(self, max_cycles: int = 50_000_000) -> BistResult:
        """Clock until done; raises RuntimeError on runaway programs."""
        while not self.finished:
            if self.cycles >= max_cycles:
                raise RuntimeError(
                    f"controller did not finish within {max_cycles} cycles"
                )
            self.step()
        return self.result

    # -- internals -----------------------------------------------------------

    def _query(self, conditions) -> Tuple[int, ...]:
        inputs = [
            (self.state >> b) & 1 for b in range(self.state_bits)
        ]
        inputs += [conditions.get(name, 0) for name in self._cond_names]
        return self.pla.evaluate(inputs)

    def _on(self, outputs: Tuple[int, ...], name: str) -> bool:
        idx = self._out_index.get(name)
        return bool(idx is not None and outputs[idx])

    def _execute(self, outputs: Tuple[int, ...], go: int) -> dict:
        on = lambda name: self._on(outputs, name)  # noqa: E731
        conds = {"go": go}
        if on("tlb_reset") and self.fresh:
            self.target.reset_for_test()
        if on("datagen_reset"):
            self.datagen.reset()
        if on("phase_adv"):
            self.pass_no += 1
            self.target.set_repair_mode(True)
        if on("addr_reset_up"):
            self.addgen.reset(up=True)
        if on("addr_reset_down"):
            self.addgen.reset(up=False)
        if on("wait_retention"):
            self.target.retention_wait()
            conds["retention_done"] = 1

        fail = 0
        data_bit = 1 if on("data_inv") else 0
        if on("op_read") or on("op_write"):
            address = self.addgen.value
            self.result.op_count += 1
            if self.record_ops:
                self.result.ops.append(
                    MemoryOp(
                        self.pass_no,
                        self.datagen.index,
                        address,
                        on("op_read"),
                        data_bit,
                    )
                )
            if on("op_read"):
                word = self.target.read(address)
                if self.datagen.compare(word, data_bit):
                    fail = 1
                    self.result.fail_count += 1
                    if on("tlb_record"):
                        self.target.record_fail(address)
            else:
                self.target.write(address, self.datagen.pattern(data_bit))

        conds["fail"] = fail
        conds["addr_done"] = 1 if self.addgen.done else 0
        conds["bg_done"] = 1 if self.datagen.done else 0
        if on("addr_step"):
            self.addgen.step()
        if on("datagen_shift"):
            self.datagen.step()
        return conds
