"""March-test notation.

A march test is a sequence of march elements; each element visits every
address in a fixed order (ascending, descending, or either) and applies
a short sequence of operations at each address.  The paper's IFA-9
march notation is::

    m(w0), u(r0,w1), u(r1,w0), d(r0,w1), d(r1,w0), Delay,
    m(r0,w1), Delay, m(r1)

where ``u`` is an up-march, ``d`` a down-march, ``m`` either order, and
``Delay`` the data-retention pause during which the embedded processor
tristates the RAM interface.  Data values 0/1 are relative to the
current background pattern: "for a wide-word RAM, this test has to be
repeated with multiple background patterns".
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import List, Tuple


class Order(enum.Enum):
    """Address order of a march element."""

    UP = "u"
    DOWN = "d"
    EITHER = "m"  # the paper's updown arrow: order is irrelevant


class Op(enum.Enum):
    """One memory operation within a march element.

    Values are relative to the background: ``W0`` writes the background
    pattern, ``W1`` its complement; ``R0``/``R1`` read and compare
    against the respective pattern.
    """

    W0 = "w0"
    W1 = "w1"
    R0 = "r0"
    R1 = "r1"

    @property
    def is_read(self) -> bool:
        return self in (Op.R0, Op.R1)

    @property
    def data_bit(self) -> int:
        """0 when the op concerns the background, 1 for its complement."""
        return 1 if self in (Op.W1, Op.R1) else 0


@dataclass(frozen=True)
class MarchElement:
    """One march element: an address order plus an op sequence.

    A delay (data-retention pause) is modelled as an element with an
    empty op tuple and ``is_delay`` True.
    """

    order: Order
    ops: Tuple[Op, ...]
    is_delay: bool = False

    def __post_init__(self) -> None:
        if self.is_delay and self.ops:
            raise ValueError("a delay element carries no operations")
        if not self.is_delay and not self.ops:
            raise ValueError("a march element needs at least one op")

    def __str__(self) -> str:
        if self.is_delay:
            return "Delay"
        ops = ",".join(op.value for op in self.ops)
        return f"{self.order.value}({ops})"


DELAY = MarchElement(order=Order.EITHER, ops=(), is_delay=True)


@dataclass(frozen=True)
class MarchTest:
    """A named march test."""

    name: str
    elements: Tuple[MarchElement, ...]

    def __post_init__(self) -> None:
        if not self.elements:
            raise ValueError("a march test needs at least one element")

    @property
    def operations_per_address(self) -> int:
        """Total ops applied per address per background (test length /N)."""
        return sum(len(e.ops) for e in self.elements)

    @property
    def delay_count(self) -> int:
        return sum(1 for e in self.elements if e.is_delay)

    def __str__(self) -> str:
        return "; ".join(str(e) for e in self.elements)


_ELEMENT_RE = re.compile(r"^([umd])\(([a-z0-9,]+)\)$")


def parse_march(name: str, notation: str) -> MarchTest:
    """Parse the textual march notation into a :class:`MarchTest`.

    Grammar: semicolon-separated elements, each ``u(...)``, ``d(...)``,
    ``m(...)`` with comma-separated ops from {w0, w1, r0, r1}, or the
    bare word ``Delay``.

    Raises:
        ValueError: on any syntax error, citing the offending element.
    """
    elements: List[MarchElement] = []
    for raw in notation.split(";"):
        token = raw.strip()
        if not token:
            continue
        if token.lower() == "delay":
            elements.append(DELAY)
            continue
        match = _ELEMENT_RE.match(token)
        if not match:
            raise ValueError(f"bad march element {token!r} in {name}")
        order = Order(match.group(1))
        try:
            ops = tuple(Op(o.strip()) for o in match.group(2).split(","))
        except ValueError:
            raise ValueError(
                f"bad op list {match.group(2)!r} in element {token!r}"
            ) from None
        elements.append(MarchElement(order=order, ops=ops))
    return MarchTest(name=name, elements=tuple(elements))


#: IFA-9 — the test BISRAMGEN microprograms into the TRPLA (section V).
IFA_9 = parse_march(
    "IFA-9",
    "m(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); Delay; "
    "m(r0,w1); Delay; m(r1)",
)

#: IFA-13 — used by Chen and Sunada's scheme (section III); IFA-9 plus
#: separate read-after-delay verification marches.
IFA_13 = parse_march(
    "IFA-13",
    "m(w0); u(r0,w1,r1); u(r1,w0,r0); d(r0,w1,r1); d(r1,w0,r0); Delay; "
    "m(r0,w1); Delay; m(r1)",
)

#: MATS+ — the minimal stuck-at test, a useful lower bound baseline.
MATS_PLUS = parse_march("MATS+", "m(w0); u(r0,w1); d(r1,w0)")

#: March C- — the classic coupling-fault test, a stronger baseline.
MARCH_C_MINUS = parse_march(
    "March C-",
    "m(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); m(r0)",
)

#: March X — the inversion-coupling test (4N + 2N ops).
MARCH_X = parse_march("March X", "m(w0); u(r0,w1); d(r1,w0); m(r0)")

#: March Y — March X plus transition-fault reads.
MARCH_Y = parse_march(
    "March Y", "m(w0); u(r0,w1,r1); d(r1,w0,r0); m(r0)"
)

#: March B — the 17N linked test for linked idempotent couplings.
MARCH_B = parse_march(
    "March B",
    "m(w0); u(r0,w1,r1,w0,r0,w1); u(r1,w0,w1); "
    "d(r1,w0,w1,w0); d(r0,w1,w0)",
)

ALL_TESTS: Tuple[MarchTest, ...] = (
    IFA_9, IFA_13, MATS_PLUS, MARCH_C_MINUS, MARCH_X, MARCH_Y, MARCH_B,
)
