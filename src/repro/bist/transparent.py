"""Transparent BIST (the Kebichi-Nicolaidis transformation, paper §III).

"A RAM generator was described by Kebichi and Nicolaidis for RAMs
equipped with BIST and *transparent* BIST, i.e., BIST techniques that
result in the normal-mode contents of the RAM to remain unmodified at
the end of the self-test."  Their approach does not include self-repair
— which is the paper's point of comparison — but transparent testing is
valuable for periodic in-field testing, so this module implements the
standard transformation:

* every ``w0`` becomes "write the *complement* of the initial content",
  every ``w1`` "write the initial content back", and reads compare
  against the correspondingly transformed expected data;
* the transformed test must end with every address holding its initial
  content, which requires the op sequence to apply an even number of
  inversions per address — :func:`transparent_march` verifies this and
  appends a restoring element when needed;
* expected read values are content-dependent, so the comparator works
  against a signature captured in a pre-phase read sweep (modelled here
  by remembering the initial words).

:class:`TransparentBist` runs the transformed test against any
:class:`~repro.bist.controller.TestTarget`; its guarantee — contents
preserved, faults still detected — is property-tested in the suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.bist.controller import TestTarget
from repro.bist.datagen import DataGen
from repro.bist.march import MarchElement, MarchTest, Op, Order


def _inversions_per_address(test: MarchTest) -> int:
    """Net inversions each address suffers across the whole test.

    In the transparent transformation a write op stores the initial
    image or its complement, selected by the data bit; what matters
    for transparency is the *final* data bit written.
    """
    last_write_bit = None
    for element in test.elements:
        for op in element.ops:
            if not op.is_read:
                last_write_bit = op.data_bit
    return 0 if last_write_bit in (None, 0) else 1


def transparent_march(test: MarchTest) -> MarchTest:
    """Make a march test transparent-ready.

    Returns the test itself when it already ends with every address
    holding the initial image (final write bit 0 == "the original
    data"), otherwise appends a restoring ``m(w0)`` element.
    """
    if _inversions_per_address(test) == 0:
        return test
    restore = MarchElement(Order.EITHER, (Op.W0,))
    return MarchTest(
        name=f"{test.name} (transparent)",
        elements=test.elements + (restore,),
    )


@dataclass
class TransparentResult:
    """Outcome of a transparent self-test."""

    op_count: int
    fail_count: int
    contents_preserved: bool

    @property
    def passed(self) -> bool:
        return self.fail_count == 0


class TransparentBist:
    """Run a march test transparently: contents restored afterwards.

    The data generator's background patterns are XOR-masks over the
    initial contents instead of absolute values: op data bit 0 writes
    ``initial ^ background``... with background 0 that is the initial
    word itself, so the classic all-0 background degenerates to pure
    transparency and the stripe backgrounds still exercise intra-word
    couplings relative to the stored image.
    """

    def __init__(self, march: MarchTest, bpw: int) -> None:
        self.march = transparent_march(march)
        self.datagen = DataGen(bpw)
        self.mask = (1 << bpw) - 1

    def run(self, target: TestTarget) -> TransparentResult:
        initial: Dict[int, int] = {
            a: target.read(a) for a in range(target.word_count)
        }
        op_count = len(initial)  # the signature pre-read sweep
        fails = 0
        self.datagen.reset()
        while True:
            background = self.datagen.pattern(0)
            for element in self.march.elements:
                if element.is_delay:
                    target.retention_wait()
                    continue
                addresses = (
                    range(target.word_count - 1, -1, -1)
                    if element.order is Order.DOWN
                    else range(target.word_count)
                )
                for address in addresses:
                    base = initial[address] ^ background
                    for op in element.ops:
                        op_count += 1
                        expected = (
                            base ^ self.mask if op.data_bit else base
                        )
                        if op.is_read:
                            if target.read(address) != expected:
                                fails += 1
                        else:
                            target.write(address, expected)
            if self.datagen.done:
                break
            self.datagen.step()
        # Final restore sweep: the march leaves every word holding
        # ``initial ^ last_background``; one write pass folds the mask
        # back out (in hardware this is the inverse-mask write phase of
        # the transparent controller, not a stored-copy restore).
        if self.datagen.pattern(0) != 0:
            for address in range(target.word_count):
                op_count += 1
                target.write(address, initial[address])
        preserved = all(
            target.read(a) == initial[a]
            for a in range(target.word_count)
        )
        return TransparentResult(
            op_count=op_count,
            fail_count=fails,
            contents_preserved=preserved,
        )
