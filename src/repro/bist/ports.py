"""Port-aware BIST for dual-port devices.

A dual-port RAM has faults a single-port march cannot see: a broken
second word line, an open on a ``bl2``/``blb2`` pair, or a short
between the two ports' access paths leaves port A fully functional
while port B misreads.  The scheme here runs the existing march engine
unchanged through a :class:`PortView` — an adapter that binds each
read and write of the :class:`~repro.bist.controller.TestTarget`
protocol to a fixed device port — in three bindings:

1. all operations on port A (the classic single-port pass),
2. all operations on port B (exercises WL2 and the bl2 pair end to
   end),
3. cross-port: writes on one port, reads on the other, both
   directions — the binding that catches asymmetric open/short faults
   where a cell takes a value from one port but cannot deliver it to
   the other.

Diagnosis and repair plumbing (``record_fail``, repair mode, the TLB)
pass straight through to the shared device, so a fault seen from
either port is repaired for both — the spare row replicates both
ports' access structures.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bist.controller import BistScheduler, TestTarget
from repro.bist.march import IFA_9, MarchTest
from repro.memsim.device import BisrRam


class PortView:
    """A :class:`TestTarget` facade binding reads/writes to fixed ports.

    ``write_port`` and ``read_port`` may differ (cross-port testing);
    everything except read/write delegates to the underlying device.
    """

    def __init__(self, device: BisrRam, write_port: int = 0,
                 read_port: int = 0) -> None:
        if max(write_port, read_port) >= device.ports:
            raise ValueError(
                f"port binding (w={write_port}, r={read_port}) exceeds "
                f"the device's {device.ports} port(s)")
        self.device = device
        self.write_port = write_port
        self.read_port = read_port

    @property
    def word_count(self) -> int:
        return self.device.word_count

    def read(self, address: int) -> int:
        return self.device.read(address, port=self.read_port)

    def write(self, address: int, word: int) -> None:
        self.device.write(address, word, port=self.write_port)

    def set_repair_mode(self, enabled: bool) -> None:
        self.device.set_repair_mode(enabled)

    def record_fail(self, address: int) -> None:
        self.device.record_fail(address)

    def retention_wait(self) -> None:
        self.device.retention_wait()

    def reset_for_test(self) -> None:
        self.device.reset_for_test()


def port_bindings(ports: int) -> List[Tuple[str, int, int]]:
    """The (label, write_port, read_port) sweep for a device.

    Single-port devices get the one classic binding; dual-port devices
    add the port-B-only pass and both cross-port directions.
    """
    if ports == 1:
        return [("a", 0, 0)]
    return [
        ("a", 0, 0),
        ("b", 1, 1),
        ("w0r1", 0, 1),
        ("w1r0", 1, 0),
    ]


def run_dual_port_test(device: BisrRam, march: MarchTest = IFA_9,
                       passes: int = 2) -> dict:
    """Run the full port-binding sweep; return per-binding results.

    Each binding runs the complete test-and-repair schedule through its
    own :class:`PortView`.  The returned mapping carries, per binding
    label, the scheduler's repair verdict and fail count — all bindings
    must end repaired for the device to pass.
    """
    results = {}
    scheduler = BistScheduler(march, bpw=device.array.bpw)
    for label, wp, rp in port_bindings(device.ports):
        view = PortView(device, write_port=wp, read_port=rp)
        results[label] = scheduler.run(view, passes=passes)
    return results
