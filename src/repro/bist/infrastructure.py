"""Fault models for the BIST/BISR machinery itself.

The paper already concedes the repair hardware is imperfect — spare
rows can be faulty, forcing iterated 2k-pass repair — but the test
*infrastructure* can break too: the comparator can lie in either
direction, an ADDGEN counter bit can stick, and a TLB CAM cell can
divert a repaired row to the wrong spare.  A self-test that trusts a
broken tester silently ships bad parts (false pass) or burns its
entire spare budget on ghosts (false fail).

:class:`FaultyInfrastructure` wraps any
:class:`~repro.bist.controller.TestTarget` and injects these failure
modes *between* the controller and the device, which is exactly where
they live in silicon:

* **Flaky comparator** — with ``false_fail_rate`` a read is reported
  corrupted when it was clean; with ``false_pass_rate`` a genuinely
  corrupted read is reported clean (modelled by returning the last
  value written to that address, i.e. what a perfect memory would have
  returned).
* **Stuck ADDGEN bit** — ``stuck_address_bit=(bit, value)`` forces one
  bit of every generated address, aliasing part of the address space.
* **Corrupt TLB entry** — ``corrupt_tlb_entry=(index, wrong_spare)``
  models a broken CAM cell in entry ``index``: whatever spare the
  repair flow assigns it, the stored index reads back as
  ``wrong_spare``, so the diversion lands on the wrong row.

All randomness comes from the injected ``rng``, so campaigns stay
reproducible under a fixed seed.  The proxy (with its wrapped device,
RNG state, and shadow memory) round-trips through :mod:`pickle` so the
campaign runtime (:mod:`repro.runtime`) can dispatch
infrastructure-faulted test targets to process-pool workers;
``test_pickling.py`` enforces the round-trip.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.core.errors import ConfigError


class FaultyInfrastructure:
    """A TestTarget proxy with injectable infrastructure faults.

    Args:
        target: the real device (any TestTarget, usually a
            :class:`~repro.memsim.device.BisrRam`).
        rng: seeded randomness source for the flaky comparator.
        false_fail_rate: per-read probability of corrupting a clean
            read result (spurious comparator hit).
        false_pass_rate: per-read probability of masking a genuinely
            corrupted read result (missed comparator hit).
        stuck_address_bit: ``(bit, value)`` forcing address bit ``bit``
            to ``value`` on every access, or None.
        corrupt_tlb_entry: ``(index, wrong_spare)`` forcing TLB entry
            ``index`` to divert to spare ``wrong_spare``, or None.
    """

    def __init__(
        self,
        target,
        rng: Optional[random.Random] = None,
        *,
        false_fail_rate: float = 0.0,
        false_pass_rate: float = 0.0,
        stuck_address_bit: Optional[Tuple[int, int]] = None,
        corrupt_tlb_entry: Optional[Tuple[int, int]] = None,
    ) -> None:
        for name, rate in (("false_fail_rate", false_fail_rate),
                           ("false_pass_rate", false_pass_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate!r}")
        if stuck_address_bit is not None:
            bit, value = stuck_address_bit
            address_bits = max(1, (target.word_count - 1).bit_length())
            if not 0 <= bit < address_bits:
                raise ConfigError(
                    f"stuck address bit {bit} outside the "
                    f"{address_bits}-bit address counter"
                )
            if value not in (0, 1):
                raise ConfigError("stuck address bit value must be 0 or 1")
        if corrupt_tlb_entry is not None:
            tlb = getattr(target, "tlb", None)
            if tlb is None:
                raise ConfigError(
                    "corrupt_tlb_entry needs a target with a TLB"
                )
            index, wrong_spare = corrupt_tlb_entry
            if not 0 <= index < tlb.spares:
                raise ConfigError(f"TLB entry index {index} out of range")
            if not 0 <= wrong_spare < tlb.spares:
                raise ConfigError(
                    f"wrong_spare {wrong_spare} out of range"
                )
        self.target = target
        self.rng = rng or random.Random(0)
        self.false_fail_rate = false_fail_rate
        self.false_pass_rate = false_pass_rate
        self.stuck_address_bit = stuck_address_bit
        self.corrupt_tlb_entry = corrupt_tlb_entry
        self._shadow: Dict[int, int] = {}
        # observability counters for tests and diagnosis
        self.false_fails = 0
        self.false_passes = 0
        self.address_aliases = 0
        self.tlb_corruptions = 0

    # -- TestTarget protocol ---------------------------------------------------

    @property
    def word_count(self) -> int:
        return self.target.word_count

    @property
    def tlb(self):
        return getattr(self.target, "tlb", None)

    def read(self, address: int) -> int:
        address = self._addr(address)
        word = self.target.read(address)
        expected = self._shadow.get(address)
        if (expected is not None and word != expected
                and self.false_pass_rate
                and self.rng.random() < self.false_pass_rate):
            self.false_passes += 1
            return expected
        if self.false_fail_rate and self.rng.random() < self.false_fail_rate:
            self.false_fails += 1
            return word ^ 1
        return word

    def write(self, address: int, word: int) -> None:
        address = self._addr(address)
        self._shadow[address] = word
        self.target.write(address, word)

    def set_repair_mode(self, enabled: bool) -> None:
        self.target.set_repair_mode(enabled)

    def record_fail(self, address: int) -> None:
        self.target.record_fail(self._addr(address))
        self._apply_tlb_corruption()

    def retention_wait(self) -> None:
        self.target.retention_wait()

    def reset_for_test(self) -> None:
        self._shadow.clear()
        self.target.reset_for_test()

    # -- internals ---------------------------------------------------------------

    def _addr(self, address: int) -> int:
        if self.stuck_address_bit is None:
            return address
        bit, value = self.stuck_address_bit
        forced = (address | (1 << bit)) if value \
            else (address & ~(1 << bit))
        forced %= self.target.word_count
        if forced != address:
            self.address_aliases += 1
        return forced

    def _apply_tlb_corruption(self) -> None:
        """Re-assert the broken CAM cell after every TLB update."""
        if self.corrupt_tlb_entry is None:
            return
        tlb = self.tlb
        index, wrong_spare = self.corrupt_tlb_entry
        entries = tlb.entries
        if index < len(entries) and entries[index].spare != wrong_spare:
            entries[index].spare = wrong_spare
            self.tlb_corruptions += 1

    def describe(self) -> str:
        parts = []
        if self.false_fail_rate:
            parts.append(f"false_fail={self.false_fail_rate:g}")
        if self.false_pass_rate:
            parts.append(f"false_pass={self.false_pass_rate:g}")
        if self.stuck_address_bit:
            bit, value = self.stuck_address_bit
            parts.append(f"addr_bit{bit}={value}")
        if self.corrupt_tlb_entry:
            index, wrong = self.corrupt_tlb_entry
            parts.append(f"tlb[{index}]->spare{wrong}")
        return f"FaultyInfrastructure({', '.join(parts) or 'clean'})"
