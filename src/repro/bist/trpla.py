"""TRPLA: the pseudo-NMOS NOR-NOR control PLA, behavioural model + files.

"The microprogrammed control unit is called Test and Repair Controller
PLA (TRPLA) ... implemented as a pseudo-NMOS NOR-NOR PLA loaded with
the control code.  During layout synthesis of the BISR-RAM module, the
control code is read in at runtime by BISRAMGEN from two input files
(one for the AND plane, the other for the OR plane)."

The behavioural model evaluates the personality in sum-of-products
form.  In the silicon, each plane is a NOR array and the product terms
appear active-low between the planes; De Morgan makes the NOR-NOR pair
compute exactly the AND-OR evaluated here, so the model and the
:func:`~repro.cells.pla.pla_cell` layout agree cycle for cycle.

:func:`write_plane_files` / :func:`read_plane_files` implement the two
plane files: one 0/1 row per product term, whitespace-free, matching
the "changing these files to implement a different test algorithm is a
simple and straightforward matter" workflow.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Tuple


class Trpla:
    """Evaluate a NOR-NOR PLA personality.

    Args:
        and_plane: terms x (2 * n_inputs) matrix; column ``2k`` is the
            true literal of input ``k``, column ``2k+1`` its complement.
        or_plane: terms x n_outputs matrix.
    """

    def __init__(
        self,
        and_plane: Sequence[Sequence[int]],
        or_plane: Sequence[Sequence[int]],
    ) -> None:
        if not and_plane:
            raise ValueError("AND plane must have at least one term")
        width = len(and_plane[0])
        if width == 0 or width % 2:
            raise ValueError(
                "AND plane width must be a positive even number "
                "(true/complement column pairs)"
            )
        if any(len(r) != width for r in and_plane):
            raise ValueError("ragged AND plane")
        if len(or_plane) != len(and_plane):
            raise ValueError("OR plane must have one row per product term")
        out_width = len(or_plane[0]) if or_plane else 0
        if out_width == 0 or any(len(r) != out_width for r in or_plane):
            raise ValueError("ragged or empty OR plane")
        self.and_plane = [tuple(r) for r in and_plane]
        self.or_plane = [tuple(r) for r in or_plane]
        self.n_inputs = width // 2
        self.n_outputs = out_width

    @property
    def term_count(self) -> int:
        return len(self.and_plane)

    def active_terms(self, inputs: Sequence[int]) -> List[int]:
        """Indices of product terms selected by the input vector."""
        if len(inputs) != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} inputs, got {len(inputs)}"
            )
        literals = []
        for value in inputs:
            literals.append(1 if value else 0)
            literals.append(0 if value else 1)
        active = []
        for t, row in enumerate(self.and_plane):
            # A term is pulled low (deselected) by any programmed device
            # whose literal line is high while the literal is false;
            # equivalently, it stays high iff every programmed literal
            # holds.
            if all(literals[c] for c, bit in enumerate(row) if bit):
                active.append(t)
        return active

    def evaluate(self, inputs: Sequence[int]) -> Tuple[int, ...]:
        """Output vector for the given inputs (sum of products)."""
        outputs = [0] * self.n_outputs
        for t in self.active_terms(inputs):
            for o, bit in enumerate(self.or_plane[t]):
                if bit:
                    outputs[o] = 1
        return tuple(outputs)

    def transistor_count(self) -> int:
        """Programmed device count across both planes (area metric)."""
        return sum(sum(r) for r in self.and_plane) + sum(
            sum(r) for r in self.or_plane
        )


def render_plane_text(plane) -> str:
    """One plane as control-code text, one 0/1 row per product term.

    The single source of the on-disk format: :func:`write_plane_files`
    and the artifact store both persist exactly this string, so cached
    and freshly generated plane files are byte-identical.
    """
    lines = ["".join(str(int(bool(b))) for b in row) for row in plane]
    return "\n".join(lines) + "\n"


def write_plane_files(and_path, or_path, and_plane, or_plane) -> None:
    """Write the two control-code files, one 0/1 row per product term."""
    for path, plane in ((and_path, and_plane), (or_path, or_plane)):
        Path(path).write_text(render_plane_text(plane))


def read_plane_files(and_path, or_path) -> Tuple[list, list]:
    """Read the two control-code files back into personality matrices.

    Raises:
        ValueError: on non-binary characters or mismatched row counts —
            a corrupt control program must not silently produce a
            controller that tests nothing.
    """
    planes = []
    for path in (and_path, or_path):
        rows = []
        for ln, line in enumerate(Path(path).read_text().splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            if set(line) - {"0", "1"}:
                raise ValueError(f"{path}:{ln}: non-binary control code")
            rows.append([int(ch) for ch in line])
        planes.append(rows)
    and_plane, or_plane = planes
    if len(and_plane) != len(or_plane):
        raise ValueError(
            f"plane files disagree on term count: "
            f"{len(and_plane)} vs {len(or_plane)}"
        )
    return and_plane, or_plane
