"""Test application time and DATAGEN hardware trade-off (paper §V).

"The generation of log2(bpw)+1 background patterns in each word
requires less hardware than that of bpw patterns, and is thereby
preferable, even though it causes a greater test application time."
The design space has three corners: a single background (cheapest and
fastest, but blind to intra-word couplings), the Johnson counter's
log2(bpw)+1 backgrounds (BISRAMGEN's choice), and a full bpw-pattern
generator.  This module makes the trade computable:

* :func:`test_application_time` — wall-clock of one self-test pass,
* :func:`datagen_hardware` — flip-flop/gate cost of the three
  background-generation schemes,
* :func:`retention_wait_total` — the data-retention pauses ("say
  100 ms" each) that dominate IFA test time on real parts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.bist.march import MarchTest

#: The retention wait the paper suggests the embedded processor holds
#: the interface tristated for.
DEFAULT_RETENTION_WAIT_S = 100e-3


@dataclass(frozen=True)
class TestTime:
    """Breakdown of one pass's application time."""

    operations: int
    op_time_s: float
    retention_time_s: float

    @property
    def total_s(self) -> float:
        return self.op_time_s + self.retention_time_s


def backgrounds_for_scheme(bpw: int, scheme: str) -> int:
    """Background count per scheme.

    * ``single``  — all-0 only (plus inversion): no intra-word coverage,
    * ``johnson`` — log2(bpw)+1 (BISRAMGEN's DATAGEN),
    * ``walking`` — bpw walking-one patterns (full per-pair coverage in
      one polarity each, the hardware-hungry alternative).
    """
    if bpw < 1 or bpw & (bpw - 1):
        raise ValueError("bpw must be a positive power of two")
    if scheme == "single":
        return 1
    if scheme == "johnson":
        return bpw.bit_length()
    if scheme == "walking":
        return bpw
    raise ValueError(f"unknown scheme {scheme!r}")


def test_application_time(
    march: MarchTest,
    words: int,
    bpw: int,
    cycle_s: float,
    scheme: str = "johnson",
    retention_wait_s: float = DEFAULT_RETENTION_WAIT_S,
    passes: int = 2,
) -> TestTime:
    """Self-test duration for ``passes`` passes of ``march``.

    Operations scale with words x ops-per-address x backgrounds; every
    Delay element costs one full retention wait per background per
    pass.
    """
    if words < 1 or cycle_s <= 0 or passes < 1:
        raise ValueError("words, cycle_s, passes must be positive")
    backgrounds = backgrounds_for_scheme(bpw, scheme)
    ops = march.operations_per_address * words * backgrounds * passes
    waits = march.delay_count * backgrounds * passes
    return TestTime(
        operations=ops,
        op_time_s=ops * cycle_s,
        retention_time_s=waits * retention_wait_s,
    )


def datagen_hardware(bpw: int, scheme: str) -> Dict[str, int]:
    """First-order hardware cost of the background generator.

    Flip-flop and 2-input-gate-equivalent counts:

    * ``single``: no generator at all (constant + the inversion XORs),
    * ``johnson``: log2(bpw)+1 flip-flops in a twisted ring plus a
      decode gate per word bit,
    * ``walking``: a bpw-bit ring counter (one flip-flop per word bit).

    Comparators (bpw XORs + OR tree) are common to all and excluded.
    """
    if bpw < 1 or bpw & (bpw - 1):
        raise ValueError("bpw must be a positive power of two")
    if scheme == "single":
        return {"flip_flops": 0, "gates": 0}
    if scheme == "johnson":
        stages = bpw.bit_length()
        return {"flip_flops": stages, "gates": bpw}
    if scheme == "walking":
        return {"flip_flops": bpw, "gates": bpw // 2}
    raise ValueError(f"unknown scheme {scheme!r}")


def retention_wait_total(march: MarchTest, bpw: int,
                         scheme: str = "johnson",
                         passes: int = 2,
                         retention_wait_s: float =
                         DEFAULT_RETENTION_WAIT_S) -> float:
    """Total retention-pause time across the whole self-test."""
    backgrounds = backgrounds_for_scheme(bpw, scheme)
    return march.delay_count * backgrounds * passes * retention_wait_s
