"""Technology layer: mask layers, design rules, and process presets.

BISRAMGEN is *design-rule independent*: all leaf-cell generators consume a
:class:`~repro.tech.rules.DesignRules` object rather than hard-coded
dimensions, so the same generator code produces legal layout for any
3-metal CMOS process at 0.5 um and above.  The paper exercised the tool
with the Cascade Design Automation processes ``CDA.5u3m1p`` and
``CDA.7u3m1p`` and the MOSIS ``mos.6u3m1pHP`` process; those decks are
proprietary, so this package ships faithful *scalable* equivalents
(``cda05``, ``mos06``, ``cda07``) expressed as multiples of a lambda grid,
plus SPICE level-1 device parameters typical of each node.
"""

from repro.tech.layers import Layer, LayerSet, STANDARD_LAYERS
from repro.tech.rules import DesignRules, RuleViolationError
from repro.tech.process import (
    Process,
    available_processes,
    get_process,
    CDA05,
    MOS06,
    CDA07,
)
from repro.tech.spice_params import MosParams

__all__ = [
    "Layer",
    "LayerSet",
    "STANDARD_LAYERS",
    "DesignRules",
    "RuleViolationError",
    "Process",
    "available_processes",
    "get_process",
    "CDA05",
    "MOS06",
    "CDA07",
    "MosParams",
]
