"""Process presets.

Each preset bundles a layer set, a resolved design-rule deck, SPICE
device parameters, supply voltage, and wire parasitics — everything a
leaf-cell generator or the delay models need.  The three presets mirror
the processes named in the paper:

* ``cda05`` — stands in for Cascade Design Automation ``CDA.5u3m1p``
  (0.5 um, 3 metal, 1 poly),
* ``mos06`` — stands in for MOSIS ``mos.6u3m1pHP`` (0.6 um HP),
* ``cda07`` — stands in for ``CDA.7u3m1p`` (0.7 um), the process used
  for Table I and the 1.2 ns TLB delay quote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.tech.layers import LayerSet
from repro.tech.rules import DesignRules
from repro.tech.spice_params import MosParams, nmos_for_node, pmos_for_node


@dataclass(frozen=True)
class Process:
    """A complete process description.

    Attributes:
        name: preset identifier (``cda05``, ``mos06``, ``cda07``).
        description: human-readable note, including which proprietary
            process this preset stands in for.
        feature_um: drawn feature size in microns.
        metal_layers: number of routing metals (always 3 here; the cost
            model refuses 2-metal chips exactly as the paper does).
        vdd: supply voltage in volts (5 V class for these nodes).
        layers: the mask layer set.
        rules: resolved design rules in centimicrons.
        nmos / pmos: level-1 device parameters.
        wire_r_ohm_sq: sheet resistance of metal1, ohms/square.
        wire_c_af_um: metal1 wire capacitance, attofarads per micron.
    """

    name: str
    description: str
    feature_um: float
    metal_layers: int
    vdd: float
    layers: LayerSet
    rules: DesignRules
    nmos: MosParams
    pmos: MosParams
    wire_r_ohm_sq: float
    wire_c_af_um: float

    @property
    def lambda_cu(self) -> int:
        return self.rules.lambda_cu

    def um_to_cu(self, um: float) -> int:
        """Convert microns to integer centimicrons."""
        return int(round(um * 100))

    def cu_to_um(self, cu: int) -> float:
        """Convert centimicrons back to microns."""
        return cu / 100.0

    def fingerprint(self, chars: int = 16) -> str:
        """Content hash of the *resolved* deck: everything that can
        change generated geometry or the guarantee models.

        Deliberately excludes the name, description, and provenance
        (builtin vs file vs entry point): a registry-loaded deck that
        is byte-for-byte the builtin must fingerprint equal, so cached
        artifacts survive the packaging change.  Any rule, layer,
        device, or supply edit changes the fingerprint — this is the
        value :meth:`repro.core.config.RamConfig.digest`, the artifact
        store's bundle key, and campaign journal fingerprints fold in.
        """
        import dataclasses

        from repro.core.canonical import stable_digest

        payload = {
            "feature_um": self.feature_um,
            "metal_layers": self.metal_layers,
            "vdd": self.vdd,
            "lambda_cu": self.rules.lambda_cu,
            "rules": dict(self.rules.rules),
            "layers": [
                [l.name, l.cif_name, l.gds_number, l.conductor,
                 l.routing_level]
                for l in self.layers
            ],
            "nmos": dataclasses.asdict(self.nmos),
            "pmos": dataclasses.asdict(self.pmos),
            "wire_r_ohm_sq": self.wire_r_ohm_sq,
            "wire_c_af_um": self.wire_c_af_um,
        }
        return stable_digest(payload, chars)


def _make_process(name: str, description: str, feature_um: float) -> Process:
    lambda_cu = int(round(feature_um * 100 / 2))
    return Process(
        name=name,
        description=description,
        feature_um=feature_um,
        metal_layers=3,
        vdd=5.0,
        layers=LayerSet(),
        rules=DesignRules.scalable(lambda_cu),
        nmos=nmos_for_node(feature_um),
        pmos=pmos_for_node(feature_um),
        wire_r_ohm_sq=0.07,
        wire_c_af_um=200.0 * feature_um,
    )


CDA05 = _make_process(
    "cda05",
    "Scalable stand-in for Cascade Design Automation CDA.5u3m1p "
    "(0.5 um, 3 metal, 1 poly)",
    0.5,
)

MOS06 = _make_process(
    "mos06",
    "Scalable stand-in for MOSIS mos.6u3m1pHP (0.6 um HP, 3 metal, 1 poly)",
    0.6,
)

CDA07 = _make_process(
    "cda07",
    "Scalable stand-in for Cascade Design Automation CDA.7u3m1p "
    "(0.7 um, 3 metal, 1 poly); process of the paper's Table I",
    0.7,
)

MOS08 = _make_process(
    "mos08",
    "Scalable 0.8 um 3-metal preset — the node most of the Table II "
    "microprocessor dataset was fabbed on",
    0.8,
)

_PRESETS: Dict[str, Process] = {
    p.name: p for p in (CDA05, MOS06, CDA07, MOS08)
}


def available_processes() -> Tuple[str, ...]:
    """Names of the shipped process presets."""
    return tuple(sorted(_PRESETS))


def get_process(name: str) -> Process:
    """Look a process up by name — builtin preset or registry deck.

    Registry decks (packaged descriptor files, ``--tech-dir``
    directories, ``repro.techs`` entry points) can also *shadow* a
    builtin name, so resolution always goes through the registry;
    builtins are its lowest-precedence source and the common case stays
    a dict hit.

    Raises:
        UnknownProcessError: (a :class:`~repro.core.errors.ConfigError`
            *and* a ``KeyError``) when the name resolves nowhere; the
            message lists every available deck.
    """
    from repro.techreg.registry import default_registry

    return default_registry().resolve(name)
