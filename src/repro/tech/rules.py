"""Scalable (lambda-based) design rules.

The rule deck is the contract between a process and every leaf-cell
generator: generators ask the deck for minimum widths, spacings, contact
sizes, and enclosures instead of hard-coding dimensions.  This is exactly
how BISRAMGEN achieves its design-rule independence — "a range of 3-metal
processes with feature widths in the range of 0.5 um and above ... may be
chosen by the user".

Rules are stored as integers in centimicrons (1 cu = 0.01 um).  The deck
is generated from a lambda value (half the feature width, per the MOSIS
scalable-CMOS convention) plus optional per-rule overrides, so adding a
new process is a one-liner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional


class RuleViolationError(Exception):
    """Raised when generated geometry violates the active design rules."""


#: Default scalable rules, in units of lambda.  Derived from the MOSIS
#: SCMOS rule set (rev. 7) restricted to the layers this tool draws.
_DEFAULT_LAMBDA_RULES: Dict[str, int] = {
    # minimum widths
    "width.ndiff": 3,
    "width.pdiff": 3,
    "width.poly": 2,
    "width.metal1": 3,
    "width.metal2": 3,
    "width.metal3": 5,
    "width.contact": 2,
    "width.via1": 2,
    "width.via2": 2,
    "width.nwell": 10,
    "width.pwell": 10,
    # minimum same-layer spacings
    "space.ndiff": 3,
    "space.pdiff": 3,
    "space.poly": 2,
    "space.metal1": 3,
    "space.metal2": 4,
    "space.metal3": 5,
    "space.contact": 2,
    "space.via1": 3,
    "space.via2": 3,
    "space.nwell": 9,
    "space.pwell": 9,
    # inter-layer rules
    "space.poly_to_diff": 1,
    "overhang.gate_poly": 2,       # poly endcap beyond diffusion
    "overhang.diff_gate": 3,       # source/drain diffusion beyond gate
    "enclose.diff_contact": 1,     # diffusion around a contact cut
    "enclose.poly_contact": 1,
    "enclose.metal1_contact": 1,
    "enclose.metal1_via1": 1,
    "enclose.metal2_via1": 1,
    "enclose.metal2_via2": 1,
    "enclose.metal3_via2": 2,
    "enclose.well_diff": 5,        # well around same-type diffusion
    "space.well_edge_diff": 5,     # well edge to opposite diffusion
    # connectivity semantics (boolean flags, NOT scaled by lambda)
    "touch.corner": 1,             # shapes meeting only at a corner conduct
}

#: Rule-name prefixes whose values are flags/counts, not geometry —
#: :meth:`DesignRules.scalable` leaves them unscaled.
_UNSCALED_PREFIXES = ("touch.",)


def required_rule_names() -> frozenset:
    """Names every complete rule deck must define (the default table).

    The descriptor validator's completeness check: an absolute deck
    missing any of these would crash a generator at draw time, so it is
    rejected at load time instead.
    """
    return frozenset(_DEFAULT_LAMBDA_RULES)


@dataclass(frozen=True)
class DesignRules:
    """A complete rule deck for one process.

    Attributes:
        lambda_cu: lambda in centimicrons.  A 0.6 um process has
            ``lambda_cu == 30`` (lambda = 0.3 um).
        rules: resolved rule table in centimicrons.
    """

    lambda_cu: int
    rules: Mapping[str, int] = field(default_factory=dict)

    @classmethod
    def scalable(
        cls,
        lambda_cu: int,
        overrides: Optional[Mapping[str, int]] = None,
        extensions: Optional[Mapping[str, int]] = None,
    ) -> "DesignRules":
        """Build a deck from a lambda value, with optional lambda overrides.

        Args:
            lambda_cu: lambda in centimicrons; must be positive.
            overrides: per-rule overrides *in lambda units* applied on top
                of the default SCMOS-like table.
            extensions: *new* rule names (also in lambda units) the
                default table does not carry — how a 4-metal deck adds
                ``width.metal4``/``space.via3`` without the unknown-rule
                guard rejecting them.  A name already in the table is an
                error here (use ``overrides``).
        """
        if lambda_cu <= 0:
            raise ValueError(f"lambda must be positive, got {lambda_cu}")
        table = dict(_DEFAULT_LAMBDA_RULES)
        if overrides:
            unknown = set(overrides) - set(table)
            if unknown:
                raise KeyError(f"unknown design rules: {sorted(unknown)}")
            table.update(overrides)
        if extensions:
            clashes = set(extensions) & set(table)
            if clashes:
                raise KeyError(
                    f"extension rules already exist: {sorted(clashes)}")
            table.update(extensions)
        resolved = {
            name: (value if name.startswith(_UNSCALED_PREFIXES)
                   else value * lambda_cu)
            for name, value in table.items()
        }
        return cls(lambda_cu=lambda_cu, rules=resolved)

    @classmethod
    def absolute(cls, lambda_cu: int,
                 rules: Mapping[str, int]) -> "DesignRules":
        """Build a deck from an already-resolved centimicron rule table.

        The registry's *absolute* descriptor path: nm-scale decks whose
        rules are not lambda multiples supply the full table directly.
        ``lambda_cu`` still sets the generators' drawing grid.
        """
        if lambda_cu <= 0:
            raise ValueError(f"lambda must be positive, got {lambda_cu}")
        return cls(lambda_cu=lambda_cu, rules=dict(rules))

    def __getitem__(self, name: str) -> int:
        try:
            return self.rules[name]
        except KeyError:
            raise KeyError(
                f"unknown design rule {name!r}; known: {sorted(self.rules)}"
            ) from None

    def min_width(self, layer: str) -> int:
        """Minimum drawn width of ``layer`` in centimicrons."""
        return self[f"width.{layer}"]

    def min_space(self, layer: str) -> int:
        """Minimum same-layer spacing of ``layer`` in centimicrons."""
        return self[f"space.{layer}"]

    def enclosure(self, outer: str, inner: str) -> int:
        """Minimum enclosure of ``inner`` by ``outer`` in centimicrons."""
        return self[f"enclose.{outer}_{inner}"]

    def pitch(self, layer: str) -> int:
        """Width + spacing: the track pitch used by the router."""
        return self.min_width(layer) + self.min_space(layer)

    def corner_touch_connects(self) -> bool:
        """Whether shapes meeting only at a corner count as connected.

        Governs both DRC group merging (connected shapes are exempt
        from same-layer spacing) and connectivity extraction.  Decks
        predating the ``touch.corner`` rule behave as if it were set.
        """
        return bool(self.rules.get("touch.corner", 1))

    def digest(self) -> str:
        """Stable content hash of the resolved deck.

        Keys the hierarchical-DRC leaf cache: two processes with
        identical resolved rule tables may share cached verdicts, and
        any override invalidates them.
        """
        import hashlib

        payload = ";".join(
            f"{name}={self.rules[name]}" for name in sorted(self.rules))
        payload = f"lambda={self.lambda_cu};{payload}"
        return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]

    def feature_um(self) -> float:
        """The drawn feature size (2 lambda) in microns."""
        return 2 * self.lambda_cu / 100.0
