"""SPICE level-1 MOSFET parameters per process node.

The compiler's "built-in access to SPICE utilities" (paper section II) is
used for two things: sizing the P and N devices of critical gates so the
rise and fall times balance, and extrapolating access-time guarantees
from extracted leaf cells.  A level-1 (Shichman-Hodges) model is entirely
adequate for both, and its handful of parameters are public knowledge for
each node, unlike the proprietary BSIM decks of the real CDA/MOSIS kits.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MosParams:
    """Level-1 parameters for one device polarity.

    Attributes:
        polarity: ``"nmos"`` or ``"pmos"``.
        vto: threshold voltage in volts (signed: negative for PMOS).
        kp: transconductance parameter ``u0 * Cox`` in A/V^2.
        lambda_: channel-length modulation in 1/V.
        cox: gate-oxide capacitance per area, F/m^2.
        cj: zero-bias junction capacitance per area, F/m^2.
        cjsw: junction sidewall capacitance per meter, F/m.
        min_l_um: minimum drawn channel length in microns.
    """

    polarity: str
    vto: float
    kp: float
    lambda_: float
    cox: float
    cj: float
    cjsw: float
    min_l_um: float

    def __post_init__(self) -> None:
        if self.polarity not in ("nmos", "pmos"):
            raise ValueError(f"bad polarity {self.polarity!r}")
        if self.polarity == "nmos" and self.vto <= 0:
            raise ValueError("NMOS vto must be positive")
        if self.polarity == "pmos" and self.vto >= 0:
            raise ValueError("PMOS vto must be negative")

    def beta(self, w_um: float, l_um: float) -> float:
        """Device transconductance ``kp * W / L`` for drawn W, L in um."""
        if w_um <= 0 or l_um <= 0:
            raise ValueError("W and L must be positive")
        return self.kp * (w_um / l_um)


def nmos_for_node(feature_um: float) -> MosParams:
    """Representative NMOS level-1 parameters for a feature size in um.

    Values interpolate published MOSIS test data for 0.5-0.8 um HP/AMI
    runs: vto ~0.7 V, kp rising as tox thins at smaller nodes.
    """
    _check_node(feature_um)
    kp = 7.0e-5 + (0.8 - feature_um) * 8.0e-5   # ~70-94 uA/V^2
    return MosParams(
        polarity="nmos",
        vto=0.7,
        kp=kp,
        lambda_=0.04,
        cox=2.4e-3 / feature_um * 0.5,           # thinner oxide per node
        cj=4.0e-4,
        cjsw=3.0e-10,
        min_l_um=feature_um,
    )


def pmos_for_node(feature_um: float) -> MosParams:
    """Representative PMOS level-1 parameters (kp about 1/2.5 of NMOS)."""
    _check_node(feature_um)
    n = nmos_for_node(feature_um)
    return MosParams(
        polarity="pmos",
        vto=-0.8,
        kp=n.kp / 2.5,
        lambda_=0.05,
        cox=n.cox,
        cj=5.0e-4,
        cjsw=3.5e-10,
        min_l_um=feature_um,
    )


def _check_node(feature_um: float) -> None:
    if not 0.3 <= feature_um <= 2.0:
        raise ValueError(
            f"feature size {feature_um} um outside the supported "
            "0.3-2.0 um range (the paper targets 0.5 um and above)"
        )
