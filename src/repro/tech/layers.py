"""Mask layers of a generic 3-metal, 1-poly CMOS process.

The layer list matches what a mid-1990s 3-metal CMOS process exposes to a
layout generator.  Each layer carries the properties the rest of the tool
needs: a CIF name for export, a drawing style for the SVG renderer, and
whether the layer is a conductor (and therefore participates in
connectivity extraction and spacing checks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple


@dataclass(frozen=True)
class Layer:
    """One mask layer.

    Attributes:
        name: canonical lower-case layer name used throughout the tool.
        cif_name: layer name emitted in CIF output.
        gds_number: numeric id for stream-format output.
        conductor: True for layers that carry signals (diffusion, poly,
            metals); False for implants, wells, and cuts.
        routing_level: 0 for non-routing layers; 1..3 for metal1..metal3.
            The paper's over-the-cell routing uses level 3.
        color: fill color used by the SVG renderer.
    """

    name: str
    cif_name: str
    gds_number: int
    conductor: bool = False
    routing_level: int = 0
    color: str = "#888888"


STANDARD_LAYERS: Tuple[Layer, ...] = (
    Layer("nwell", "CWN", 1, color="#d0d0a0"),
    Layer("pwell", "CWP", 2, color="#a0d0d0"),
    Layer("ndiff", "CSN", 3, conductor=True, color="#00a000"),
    Layer("pdiff", "CSP", 4, conductor=True, color="#a06000"),
    Layer("poly", "CPG", 5, conductor=True, color="#d04040"),
    Layer("contact", "CCC", 6, color="#101010"),
    Layer("metal1", "CMF", 7, conductor=True, routing_level=1, color="#4060e0"),
    Layer("via1", "CV1", 8, color="#202020"),
    Layer("metal2", "CMS", 9, conductor=True, routing_level=2, color="#b040b0"),
    Layer("via2", "CV2", 10, color="#303030"),
    Layer("metal3", "CMT", 11, conductor=True, routing_level=3, color="#30b0b0"),
    Layer("glass", "COG", 12, color="#e0e0e0"),
)


class LayerSet:
    """An ordered, name-indexed collection of layers."""

    def __init__(self, layers: Tuple[Layer, ...] = STANDARD_LAYERS) -> None:
        self._layers: Dict[str, Layer] = {}
        for layer in layers:
            if layer.name in self._layers:
                raise ValueError(f"duplicate layer name {layer.name!r}")
            self._layers[layer.name] = layer

    def __getitem__(self, name: str) -> Layer:
        try:
            return self._layers[name]
        except KeyError:
            raise KeyError(
                f"unknown layer {name!r}; known: {sorted(self._layers)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._layers

    def __iter__(self) -> Iterator[Layer]:
        return iter(self._layers.values())

    def __len__(self) -> int:
        return len(self._layers)

    def get(self, name: str) -> Optional[Layer]:
        return self._layers.get(name)

    def conductors(self) -> Tuple[Layer, ...]:
        """Layers participating in connectivity and spacing checks."""
        return tuple(l for l in self if l.conductor)

    def routing_layers(self) -> Tuple[Layer, ...]:
        """Metal layers ordered by routing level (metal1, metal2, metal3)."""
        return tuple(
            sorted(
                (l for l in self if l.routing_level > 0),
                key=lambda l: l.routing_level,
            )
        )

    def metal(self, level: int) -> Layer:
        """Return the metal layer at routing level 1, 2, or 3."""
        for layer in self:
            if layer.routing_level == level:
                return layer
        raise KeyError(f"no metal layer at routing level {level}")
