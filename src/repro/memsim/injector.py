"""Defect injection: mapping manufacturing defects to functional faults.

Defects are placed either uniformly or with Stapper-style clustering
(cluster centres + local spread), then mapped to IFA fault types with a
configurable mix.  The defaults follow the inductive-fault-analysis
observation that most spot defects in an SRAM core manifest as
stuck-at/transition faults, with smaller shares of stuck-open, coupling
and retention faults, and rare whole-row/column (line-break) defects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.errors import ConfigError
from repro.memsim.array import MemoryArray
from repro.memsim.intermittent import (
    IntermittentReadFlip,
    IntermittentStuckAt,
    WearoutStuckAt,
)
from repro.memsim.faults import (
    ColumnStuck,
    DataRetention,
    Fault,
    IdempotentCoupling,
    InversionCoupling,
    RowStuck,
    StateCoupling,
    StuckAt,
    StuckOpen,
    TransitionFault,
)


@dataclass(frozen=True)
class FaultMix:
    """Relative weights of fault types produced by a spot defect.

    The intermittent/wearout weights default to zero: manufacturing
    campaigns stay solid-fault-only (and bit-for-bit reproducible
    against earlier seeds), while in-field robustness studies opt in.

    A degenerate mix (any negative weight, or all weights zero) is
    rejected with a :class:`~repro.core.errors.ConfigError` instead of
    silently producing a broken distribution at draw time.
    """

    stuck_at: float = 0.40
    transition: float = 0.18
    stuck_open: float = 0.10
    state_coupling: float = 0.12
    idempotent_coupling: float = 0.06
    inversion_coupling: float = 0.04
    data_retention: float = 0.08
    row_defect: float = 0.015
    column_defect: float = 0.005
    intermittent: float = 0.0
    wearout: float = 0.0

    def __post_init__(self) -> None:
        weights = self.weights()
        negative = [name for name, w in zip(_KINDS, weights) if w < 0]
        if negative:
            raise ConfigError(
                f"FaultMix weights must be non-negative; negative: "
                f"{', '.join(negative)}"
            )
        if not any(weights):
            raise ConfigError(
                "FaultMix weights are all zero — no fault type can "
                "ever be drawn"
            )

    def weights(self) -> List[float]:
        return [
            self.stuck_at,
            self.transition,
            self.stuck_open,
            self.state_coupling,
            self.idempotent_coupling,
            self.inversion_coupling,
            self.data_retention,
            self.row_defect,
            self.column_defect,
            self.intermittent,
            self.wearout,
        ]


_KINDS = (
    "stuck_at",
    "transition",
    "stuck_open",
    "state_coupling",
    "idempotent_coupling",
    "inversion_coupling",
    "data_retention",
    "row_defect",
    "column_defect",
    "intermittent",
    "wearout",
)


class DefectInjector:
    """Places defects on an array and converts them to faults.

    Args:
        rng: a seeded :class:`random.Random` for reproducible campaigns.
        mix: fault-type weights.
        clustering: 0 = uniform placement; larger values concentrate
            defects around cluster centres (negative-binomial-flavoured
            clustering: alpha small = strongly clustered).
    """

    def __init__(self, rng: Optional[random.Random] = None,
                 mix: Optional[FaultMix] = None,
                 clustering: float = 0.0) -> None:
        self.rng = rng or random.Random(0)
        self.mix = mix or FaultMix()
        if clustering < 0:
            raise ValueError("clustering must be non-negative")
        self.clustering = clustering

    # -- placement ------------------------------------------------------------

    def _pick_cell(self, array: MemoryArray,
                   cluster_center: Optional[int]) -> int:
        if cluster_center is None:
            return self.rng.randrange(array.cell_count)
        # Spread around the centre with a geometric-ish tail.
        spread = max(1, int(array.row_stride * 2))
        offset = int(self.rng.gauss(0, spread))
        return min(max(cluster_center + offset, 0), array.cell_count - 1)

    def make_fault(self, array: MemoryArray, kind: str, cell: int) -> Fault:
        """Build one fault of ``kind`` anchored at ``cell``."""
        rng = self.rng
        if kind == "stuck_at":
            return StuckAt(cell, rng.randrange(2))
        if kind == "transition":
            return TransitionFault(cell, rising=bool(rng.randrange(2)))
        if kind == "stuck_open":
            return StuckOpen(cell)
        if kind in ("state_coupling", "idempotent_coupling",
                    "inversion_coupling"):
            # The coupled neighbour is physically adjacent: same row,
            # next physical column (wrapping at the row edge).
            stride = array.row_stride
            row = cell // stride
            col = cell % stride
            neighbour = row * stride + (col + 1) % stride
            if kind == "state_coupling":
                return StateCoupling(
                    aggressor=cell, victim=neighbour,
                    w=rng.randrange(2), v=rng.randrange(2),
                )
            if kind == "idempotent_coupling":
                return IdempotentCoupling(
                    aggressor=cell, victim=neighbour,
                    rising=bool(rng.randrange(2)), v=rng.randrange(2),
                )
            return InversionCoupling(
                aggressor=cell, victim=neighbour,
                rising=bool(rng.randrange(2)),
            )
        if kind == "data_retention":
            return DataRetention(cell, leak_value=rng.randrange(2))
        if kind == "intermittent":
            # Half the draws are marginal cells (solid-ish stuck-at
            # that activates 20-80% of the time), half are noisy read
            # paths down to the single-upset regime.
            if rng.randrange(2):
                return IntermittentStuckAt(
                    cell, rng.randrange(2),
                    probability=0.2 + 0.6 * rng.random(),
                    seed=rng.getrandbits(32),
                )
            return IntermittentReadFlip(
                cell, probability=0.01 + 0.3 * rng.random(),
                seed=rng.getrandbits(32),
            )
        if kind == "wearout":
            return WearoutStuckAt(
                cell, rng.randrange(2),
                onset=rng.randrange(50, 500),
                ramp=rng.randrange(50, 500),
                seed=rng.getrandbits(32),
            )
        if kind == "row_defect":
            row = cell // array.row_stride
            return RowStuck(row, array.row_stride, rng.randrange(2))
        if kind == "column_defect":
            col = cell % array.row_stride
            return ColumnStuck(
                col, array.total_rows, array.row_stride, rng.randrange(2)
            )
        raise ValueError(f"unknown fault kind {kind!r}")

    def inject(self, array: MemoryArray, n_defects: int,
               spare_rows_immune: bool = False) -> List[Fault]:
        """Inject ``n_defects`` defects; returns the created faults.

        ``spare_rows_immune`` restricts defects to regular rows — used
        by experiments isolating the "spares must be fault-free"
        condition.
        """
        if n_defects < 0:
            raise ValueError("n_defects must be non-negative")
        faults: List[Fault] = []
        centres: List[int] = []
        n_clusters = max(1, int(n_defects / max(self.clustering, 1)))
        if self.clustering > 0:
            centres = [
                self.rng.randrange(array.cell_count)
                for _ in range(n_clusters)
            ]
        for _ in range(n_defects):
            centre = self.rng.choice(centres) if centres else None
            cell = self._pick_cell(array, centre)
            if spare_rows_immune:
                limit = array.rows * array.row_stride
                cell = cell % limit
            kind = self.rng.choices(_KINDS, weights=self.mix.weights())[0]
            fault = self.make_fault(array, kind, cell)
            array.inject(fault)
            faults.append(fault)
        return faults
