"""IFA-style functional fault models.

"IFA-9 detects a wide range of functional faults caused by layout
defects; for example, stuck-at and stuck-open faults, transition faults
and state coupling faults" — plus the data-retention faults its two
delay elements exist for.

Faults hook into the array at three points:

* ``on_write(cell, old, new) -> stored`` — what actually lands in the
  cell,
* ``on_read(cell, stored) -> observed`` — what the sense path returns,
* ``after_write(array, cell)`` — coupling side effects on *other* cells,
* ``on_retention(array)`` — decay during the data-retention pause.

Cells are flat indices ``row * row_stride + phys_col`` where
``row_stride`` covers regular and spare columns (equal to ``phys_cols``
on arrays without spare columns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.memsim.array import MemoryArray


class Fault:
    """Base fault.  Subclasses override the hooks they need.

    ``cells`` lists every flat cell index the fault involves, letting
    the array build its dispatch tables.
    """

    def cells(self) -> Tuple[int, ...]:
        raise NotImplementedError

    def on_write(self, cell: int, old: int, new: int) -> int:
        return new

    def on_read(self, cell: int, stored: int,
                array: "MemoryArray") -> int:
        return stored

    def after_write(self, array: "MemoryArray", cell: int) -> None:
        return None

    def on_retention(self, array: "MemoryArray") -> None:
        return None

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class StuckAt(Fault):
    """Cell permanently reads (and stores) ``value``."""

    cell: int
    value: int

    def cells(self) -> Tuple[int, ...]:
        return (self.cell,)

    def on_write(self, cell: int, old: int, new: int) -> int:
        return self.value

    def on_read(self, cell: int, stored: int, array) -> int:
        return self.value

    def describe(self) -> str:
        return f"SA{self.value}@{self.cell}"


@dataclass
class StuckOpen(Fault):
    """Open access path: the cell cannot be driven or sensed.

    Reads return whatever the bit-line pair last carried on this
    physical column (the classic sequential behaviour that makes
    stuck-open faults invisible to tests without both data polarities).
    """

    cell: int

    def cells(self) -> Tuple[int, ...]:
        return (self.cell,)

    def on_write(self, cell: int, old: int, new: int) -> int:
        return old  # the write never reaches the cell

    def on_read(self, cell: int, stored: int, array) -> int:
        phys_col = cell % array.row_stride
        return array.last_column_value(phys_col)

    def describe(self) -> str:
        return f"SOp@{self.cell}"


@dataclass
class TransitionFault(Fault):
    """The cell cannot make the ``rising``(0->1) or falling transition."""

    cell: int
    rising: bool

    def cells(self) -> Tuple[int, ...]:
        return (self.cell,)

    def on_write(self, cell: int, old: int, new: int) -> int:
        if self.rising and old == 0 and new == 1:
            return 0
        if not self.rising and old == 1 and new == 0:
            return 1
        return new

    def describe(self) -> str:
        return f"TF{'r' if self.rising else 'f'}@{self.cell}"


@dataclass
class StateCoupling(Fault):
    """CFst: while the aggressor holds ``w``, the victim is forced to ``v``."""

    aggressor: int
    victim: int
    w: int
    v: int

    def cells(self) -> Tuple[int, ...]:
        return (self.aggressor, self.victim)

    def after_write(self, array, cell: int) -> None:
        if array.raw(self.aggressor) == self.w:
            array.force(self.victim, self.v)

    def describe(self) -> str:
        return f"CFst<{self.aggressor}:{self.w}->{self.victim}={self.v}>"


@dataclass
class IdempotentCoupling(Fault):
    """CFid: an aggressor transition forces the victim to ``v``."""

    aggressor: int
    victim: int
    rising: bool
    v: int
    _prev: Optional[int] = None

    def cells(self) -> Tuple[int, ...]:
        return (self.aggressor, self.victim)

    def after_write(self, array, cell: int) -> None:
        now = array.raw(self.aggressor)
        if self._prev is not None and cell == self.aggressor:
            edge = (self._prev, now)
            wanted = (0, 1) if self.rising else (1, 0)
            if edge == wanted:
                array.force(self.victim, self.v)
        if cell == self.aggressor:
            self._prev = now

    def describe(self) -> str:
        kind = "r" if self.rising else "f"
        return f"CFid<{self.aggressor}{kind}->{self.victim}={self.v}>"


@dataclass
class InversionCoupling(Fault):
    """CFin: an aggressor transition inverts the victim."""

    aggressor: int
    victim: int
    rising: bool
    _prev: Optional[int] = None

    def cells(self) -> Tuple[int, ...]:
        return (self.aggressor, self.victim)

    def after_write(self, array, cell: int) -> None:
        now = array.raw(self.aggressor)
        if self._prev is not None and cell == self.aggressor:
            edge = (self._prev, now)
            wanted = (0, 1) if self.rising else (1, 0)
            if edge == wanted:
                array.force(self.victim, 1 - array.raw(self.victim))
        if cell == self.aggressor:
            self._prev = now

    def describe(self) -> str:
        kind = "r" if self.rising else "f"
        return f"CFin<{self.aggressor}{kind}->{self.victim}>"


@dataclass
class DataRetention(Fault):
    """DRF: the cell leaks to ``leak_value`` during a retention pause.

    Exactly what the two Delay elements of IFA-9 exist to catch; only a
    test that writes, waits, and reads both polarities detects both
    leak directions.
    """

    cell: int
    leak_value: int

    def cells(self) -> Tuple[int, ...]:
        return (self.cell,)

    def on_retention(self, array) -> None:
        array.force(self.cell, self.leak_value)

    def describe(self) -> str:
        return f"DRF{self.leak_value}@{self.cell}"


@dataclass
class RowStuck(Fault):
    """A whole-row defect (broken word line): every cell reads ``value``.

    Repairable by a single spare row — the sweet spot of row-redundancy
    BISR.
    """

    row: int
    phys_cols: int
    value: int

    def cells(self) -> Tuple[int, ...]:
        base = self.row * self.phys_cols
        return tuple(range(base, base + self.phys_cols))

    def on_write(self, cell: int, old: int, new: int) -> int:
        return self.value

    def on_read(self, cell: int, stored: int, array) -> int:
        return self.value

    def describe(self) -> str:
        return f"RowStuck{self.value}@r{self.row}"


@dataclass
class ColumnStuck(Fault):
    """A whole-column defect (broken bit line): every cell reads ``value``.

    "If a column is faulty, the row redundancy will be quickly swamped
    because every single word on a faulty column will be found to be
    faulty ... column failures can be detected but not directly
    repaired in our approach."
    """

    phys_col: int
    total_rows: int
    phys_cols: int
    value: int

    def cells(self) -> Tuple[int, ...]:
        return tuple(
            r * self.phys_cols + self.phys_col
            for r in range(self.total_rows)
        )

    def on_write(self, cell: int, old: int, new: int) -> int:
        return self.value

    def on_read(self, cell: int, stored: int, array) -> int:
        return self.value

    def describe(self) -> str:
        return f"ColStuck{self.value}@c{self.phys_col}"
