"""Intermittent and wearout fault models.

The deterministic IFA models in :mod:`repro.memsim.faults` activate on
every access — fine for manufacturing defects, wrong for the
mission-critical in-field setting that motivates BISR: a marginal cell
activates only *sometimes*, a cosmic-ray upset corrupts one read and is
never seen again, and a wearing-out cell starts healthy and degrades
with use.  Treating every comparator hit as a solid fault then wastes
the strictly-increasing spare sequence on noise; ignoring repeats lets
a dying cell ship.  These models give the repair supervisor
(:mod:`repro.bisr.escalation`) something honest to discriminate.

Each fault owns a private seeded :class:`random.Random` stream derived
from ``(seed, cell)``, so a campaign replays bit-for-bit under a fixed
seed regardless of how many other faults are present or in what order
the array consults them.

Pickle contract: every fault here round-trips through :mod:`pickle`
with its RNG stream *and* wear state intact — the continuation of a
pickled fault draws exactly what the original would have drawn.  The
campaign runtime (:mod:`repro.runtime`) depends on this to ship
fault-injected devices to process-pool workers; ``test_pickling.py``
enforces it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from repro.core.errors import ConfigError
from repro.memsim.faults import Fault


def _stream(seed: int, cell: int, tag: str) -> random.Random:
    """A per-fault RNG stream independent of global call order."""
    return random.Random(f"{tag}:{seed}:{cell}")


def _check_probability(probability: float) -> None:
    if not 0.0 <= probability <= 1.0:
        raise ConfigError(
            f"activation probability must be in [0, 1], "
            f"got {probability!r}"
        )


@dataclass
class IntermittentStuckAt(Fault):
    """A marginal cell: reads return ``value`` with ``probability``.

    The stored bit stays intact (the write path is healthy); only the
    sense path is marginal.  With ``probability=1`` this degenerates to
    the read behaviour of a solid stuck-at.
    """

    cell: int
    value: int
    probability: float
    seed: int = 0

    def __post_init__(self) -> None:
        _check_probability(self.probability)
        self._rng = _stream(self.seed, self.cell, "isa")
        self.activations = 0

    def cells(self) -> Tuple[int, ...]:
        return (self.cell,)

    def on_read(self, cell: int, stored: int, array) -> int:
        if self._rng.random() < self.probability:
            self.activations += 1
            return self.value
        return stored

    def describe(self) -> str:
        return f"iSA{self.value}@{self.cell}~p{self.probability:g}"


@dataclass
class IntermittentReadFlip(Fault):
    """A noisy read path: each read inverts with ``probability``.

    At low probability this is the single-transient-upset model: the
    stored bit is fine, one read lies, and no amount of re-reading
    reproduces it — exactly the event that must *not* consume a spare.
    """

    cell: int
    probability: float
    seed: int = 0

    def __post_init__(self) -> None:
        _check_probability(self.probability)
        self._rng = _stream(self.seed, self.cell, "irf")
        self.activations = 0

    def cells(self) -> Tuple[int, ...]:
        return (self.cell,)

    def on_read(self, cell: int, stored: int, array) -> int:
        if self._rng.random() < self.probability:
            self.activations += 1
            return 1 - (1 if stored else 0)
        return stored

    def describe(self) -> str:
        return f"iRF@{self.cell}~p{self.probability:g}"


@dataclass
class WearoutStuckAt(Fault):
    """A cell that degrades with use: activation ramps up over accesses.

    The activation probability is 0 for the first ``onset`` reads of
    the cell, then ramps linearly to 1 over the next ``ramp`` reads and
    stays there — the classic intermittent-becomes-solid wearout
    trajectory.  Retention pauses age the cell too (``age_per_wait``
    reads' worth each), so a device sitting idle in orbit still wears.
    """

    cell: int
    value: int
    onset: int = 100
    ramp: int = 100
    age_per_wait: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.onset < 0 or self.ramp < 1 or self.age_per_wait < 0:
            raise ConfigError(
                "wearout needs onset >= 0, ramp >= 1, age_per_wait >= 0"
            )
        self._rng = _stream(self.seed, self.cell, "wear")
        self.age = 0
        self.activations = 0

    def cells(self) -> Tuple[int, ...]:
        return (self.cell,)

    @property
    def activation_probability(self) -> float:
        if self.age < self.onset:
            return 0.0
        return min(1.0, (self.age - self.onset) / self.ramp)

    def on_read(self, cell: int, stored: int, array) -> int:
        probability = self.activation_probability
        self.age += 1
        if probability and self._rng.random() < probability:
            self.activations += 1
            return self.value
        return stored

    def on_retention(self, array) -> None:
        self.age += self.age_per_wait

    def describe(self) -> str:
        return (f"wSA{self.value}@{self.cell}"
                f"~onset{self.onset}+ramp{self.ramp}")
