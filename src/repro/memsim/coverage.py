"""Fault-coverage campaigns for march tests.

Injects one fault at a time into a fresh array, runs a march test (one
pass, no repair), and records whether the comparator ever fired.
Coverage per fault class lets the suite verify the paper's claims: the
IFA-9 microprogram "achieves a high fault coverage for functional and
parametric faults (such as stuck-open, data retention, and state
coupling faults)", Johnson backgrounds add intra-word coupling
coverage, and weaker baselines (MATS+) measurably miss fault classes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bist.controller import BistScheduler
from repro.bist.march import MarchTest
from repro.memsim.array import MemoryArray
from repro.memsim.device import BisrRam
from repro.memsim.injector import DefectInjector


@dataclass
class CoverageReport:
    """Detection statistics per fault class."""

    march: str
    detected: Dict[str, int] = field(default_factory=dict)
    total: Dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, caught: bool) -> None:
        self.total[kind] = self.total.get(kind, 0) + 1
        if caught:
            self.detected[kind] = self.detected.get(kind, 0) + 1

    def coverage(self, kind: Optional[str] = None) -> float:
        """Detection fraction for one class (or overall)."""
        if kind is not None:
            total = self.total.get(kind, 0)
            if total == 0:
                raise ValueError(f"no faults of kind {kind!r} were run")
            return self.detected.get(kind, 0) / total
        total = sum(self.total.values())
        if total == 0:
            raise ValueError("empty campaign")
        return sum(self.detected.values()) / total

    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted(self.total))

    def summary_rows(self) -> List[Tuple[str, int, int, float]]:
        """(kind, detected, total, coverage) rows for reporting."""
        return [
            (k, self.detected.get(k, 0), self.total[k], self.coverage(k))
            for k in self.kinds()
        ]


def _single_fault_detected(march: MarchTest, rows: int, bpw: int,
                           bpc: int, fault) -> bool:
    """Run one single-pass march over an array with exactly one fault."""
    device = BisrRam(rows=rows, bpw=bpw, bpc=bpc, spares=1)
    device.array.inject(fault)
    scheduler = BistScheduler(march, bpw=bpw)
    result = scheduler.run(device, passes=1)
    return result.fail_count > 0


def coverage_campaign(
    march: MarchTest,
    kinds: Sequence[str],
    samples_per_kind: int = 40,
    rows: int = 16,
    bpw: int = 4,
    bpc: int = 4,
    seed: int = 1,
) -> CoverageReport:
    """Measure detection coverage of ``march`` per fault class.

    Each sample injects one randomly-placed fault of the class into a
    fresh ``rows x bpw x bpc`` array and runs a single full-march pass.
    """
    if samples_per_kind < 1:
        raise ValueError("need at least one sample per kind")
    rng = random.Random(seed)
    injector = DefectInjector(rng=rng)
    report = CoverageReport(march=march.name)
    for kind in kinds:
        for _ in range(samples_per_kind):
            array = MemoryArray(rows, bpw, bpc, spares=1)
            # Anchor on a regular-row cell so the fault is visible to a
            # march over the regular address space.
            cell = rng.randrange(rows * array.phys_cols)
            fault = injector.make_fault(array, kind, cell)
            caught = _single_fault_detected(march, rows, bpw, bpc, fault)
            report.record(kind, caught)
    return report
