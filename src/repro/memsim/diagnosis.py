"""Fault diagnosis from BIST failure signatures.

The repair decision needs more than "address X failed": a column
defect "will quickly swamp the row redundancy" and must be recognised
as unrepairable *before* burning every spare, while a row defect is the
ideal one-spare repair.  This module classifies the failure log of a
test pass:

* ``cell`` — isolated failing word bits in one (row, column) spot,
* ``row`` — many failing words sharing one row,
* ``column`` — failures in the same word-column position across many
  rows, with the same failing bit lane (the signature of a broken
  bit line).

The classifier is the software twin of what a repair allocator in
hardware would infer from the fault-capture stream.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple


@dataclass(frozen=True)
class FailRecord:
    """One comparator hit during a test pass."""

    address: int
    observed: int
    expected: int

    def failing_bits(self) -> int:
        return self.observed ^ self.expected


@dataclass(frozen=True)
class Diagnosis:
    """Classified fault regions of one device."""

    cell_faults: Tuple[Tuple[int, int], ...]   # (row, column) spots
    row_faults: Tuple[int, ...]                # whole rows
    column_faults: Tuple[Tuple[int, int], ...]  # (column, bit lane)
    repairable_with_rows: bool
    spares_needed: int

    def summary(self) -> str:
        return (
            f"cells={list(self.cell_faults)}, rows={list(self.row_faults)}, "
            f"columns={list(self.column_faults)}, "
            f"row-repairable={self.repairable_with_rows} "
            f"({self.spares_needed} spares needed)"
        )


def diagnose(
    records: Sequence[FailRecord],
    rows: int,
    bpw: int,
    bpc: int,
    spares: int,
    row_threshold: float = 0.5,
    column_threshold: float = 0.5,
) -> Diagnosis:
    """Classify a failure log.

    Args:
        records: comparator hits from one (non-diverted) test pass.
        rows/bpw/bpc/spares: the array organisation.
        row_threshold: fraction of a row's words that must fail to call
            the whole row bad.
        column_threshold: fraction of rows that must fail at one
            (column, bit-lane) to call the bit line bad.
    """
    if rows < 1:
        raise ValueError("rows must be positive")
    fail_words: Dict[Tuple[int, int], int] = defaultdict(int)
    for record in records:
        row, column = divmod(record.address, bpc)
        fail_words[(row, column)] |= record.failing_bits()

    # Column analysis first: a (column, bit lane) failing in most rows
    # is a bit-line defect; its contributions are removed before row
    # analysis so a broken column does not masquerade as many bad rows.
    lane_rows: Dict[Tuple[int, int], Set[int]] = defaultdict(set)
    for (row, column), bits in fail_words.items():
        for bit in range(bpw):
            if (bits >> bit) & 1:
                lane_rows[(column, bit)].add(row)
    column_faults = sorted(
        lane for lane, hit_rows in lane_rows.items()
        if len(hit_rows) >= column_threshold * rows
    )
    column_set = set(column_faults)

    residual: Dict[Tuple[int, int], int] = {}
    for (row, column), bits in fail_words.items():
        kept = 0
        for bit in range(bpw):
            if (bits >> bit) & 1 and (column, bit) not in column_set:
                kept |= 1 << bit
        if kept:
            residual[(row, column)] = kept

    words_per_row: Dict[int, int] = Counter(
        row for (row, _c) in residual
    )
    row_faults = sorted(
        row for row, count in words_per_row.items()
        if count >= max(2, row_threshold * bpc)
    )
    row_set = set(row_faults)

    cell_faults = sorted(
        (row, column) for (row, column) in residual
        if row not in row_set
    )

    # Row repair covers rows and cells (a cell fault costs one spare
    # row for its whole row) but never columns.
    rows_needing_spares = row_set | {row for row, _ in cell_faults}
    repairable = (
        not column_faults and len(rows_needing_spares) <= spares
    )
    return Diagnosis(
        cell_faults=tuple(cell_faults),
        row_faults=tuple(row_faults),
        column_faults=tuple(column_faults),
        repairable_with_rows=repairable,
        spares_needed=len(rows_needing_spares),
    )


def collect_fail_records(march, device, bpw: int) -> List[FailRecord]:
    """Run one diagnostic pass of ``march`` and log every comparator
    hit with observed/expected data (a richer log than the production
    controller keeps — this is the diagnosis mode)."""
    from repro.bist.datagen import DataGen
    from repro.bist.march import Order

    datagen = DataGen(bpw)
    records: List[FailRecord] = []
    datagen.reset()
    while True:
        for element in march.elements:
            if element.is_delay:
                device.retention_wait()
                continue
            addresses = (
                range(device.word_count - 1, -1, -1)
                if element.order is Order.DOWN
                else range(device.word_count)
            )
            for address in addresses:
                for op in element.ops:
                    if op.is_read:
                        word = device.read(address)
                        expected = datagen.pattern(op.data_bit)
                        if word != expected:
                            records.append(
                                FailRecord(address, word, expected)
                            )
                    else:
                        device.write(
                            address, datagen.pattern(op.data_bit)
                        )
        if datagen.done:
            break
        datagen.step()
    return records
