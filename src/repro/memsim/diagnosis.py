"""Fault diagnosis from BIST failure signatures.

The repair decision needs more than "address X failed": a column
defect "will quickly swamp the row redundancy" and must be recognised
as unrepairable *before* burning every spare, while a row defect is the
ideal one-spare repair.  This module classifies the failure log of a
test pass:

* ``cell`` — isolated failing word bits in one (row, column) spot,
* ``row`` — many failing words sharing one row,
* ``column`` — failures in the same word-column position across many
  rows, with the same failing bit lane (the signature of a broken
  bit line).

The classifier is the software twin of what a repair allocator in
hardware would infer from the fault-capture stream.

Edge-case behaviour is deterministic and part of the contract:

* **empty failure log** — an empty, row-repairable diagnosis with zero
  spares needed (a clean device is trivially repairable);
* **row/column tie-break** — columns are classified first and their
  contributions removed before row analysis, so when one physical
  event could be read either way the *column* verdict wins; but a lane
  must fail in at least two distinct rows to be called a column, and a
  row must fail in at least two distinct words to be called a row, so
  a single-row event can never masquerade as a column (or vice versa)
  regardless of how small the array is;
* **all addresses failing on all bits** — every lane meets the column
  rule, so the verdict is all-columns (rows and cells empty) and not
  row-repairable: the columns-first precedence applied consistently.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Sequence, Set, Tuple


@dataclass(frozen=True)
class FailRecord:
    """One comparator hit during a test pass."""

    address: int
    observed: int
    expected: int

    def failing_bits(self) -> int:
        return self.observed ^ self.expected


@dataclass(frozen=True)
class Diagnosis:
    """Classified fault regions of one device."""

    cell_faults: Tuple[Tuple[int, int], ...]   # (row, column) spots
    row_faults: Tuple[int, ...]                # whole rows
    column_faults: Tuple[Tuple[int, int], ...]  # (column, bit lane)
    repairable_with_rows: bool
    spares_needed: int

    def summary(self) -> str:
        return (
            f"cells={list(self.cell_faults)}, rows={list(self.row_faults)}, "
            f"columns={list(self.column_faults)}, "
            f"row-repairable={self.repairable_with_rows} "
            f"({self.spares_needed} spares needed)"
        )

    def to_dict(self) -> dict:
        """JSON-ready representation with a ``kind`` discriminator."""
        data = asdict(self)
        data["kind"] = "diagnosis"
        return data


def diagnose(
    records: Sequence[FailRecord],
    rows: int,
    bpw: int,
    bpc: int,
    spares: int,
    row_threshold: float = 0.5,
    column_threshold: float = 0.5,
) -> Diagnosis:
    """Classify a failure log.

    Args:
        records: comparator hits from one (non-diverted) test pass.
        rows/bpw/bpc/spares: the array organisation.
        row_threshold: fraction of a row's words that must fail to call
            the whole row bad.
        column_threshold: fraction of rows that must fail at one
            (column, bit-lane) to call the bit line bad (at least two
            distinct rows regardless, so a single-row event is never
            read as a column).
    """
    if rows < 1:
        raise ValueError("rows must be positive")
    fail_words: Dict[Tuple[int, int], int] = defaultdict(int)
    for record in records:
        row, column = divmod(record.address, bpc)
        fail_words[(row, column)] |= record.failing_bits()

    # Column analysis first: a (column, bit lane) failing in most rows
    # is a bit-line defect; its contributions are removed before row
    # analysis so a broken column does not masquerade as many bad rows.
    lane_rows: Dict[Tuple[int, int], Set[int]] = defaultdict(set)
    for (row, column), bits in fail_words.items():
        for bit in range(bpw):
            if (bits >> bit) & 1:
                lane_rows[(column, bit)].add(row)
    column_faults = sorted(
        lane for lane, hit_rows in lane_rows.items()
        if len(hit_rows) >= max(2, column_threshold * rows)
    )
    column_set = set(column_faults)

    residual: Dict[Tuple[int, int], int] = {}
    for (row, column), bits in fail_words.items():
        kept = 0
        for bit in range(bpw):
            if (bits >> bit) & 1 and (column, bit) not in column_set:
                kept |= 1 << bit
        if kept:
            residual[(row, column)] = kept

    words_per_row: Dict[int, int] = Counter(
        row for (row, _c) in residual
    )
    row_faults = sorted(
        row for row, count in words_per_row.items()
        if count >= max(2, row_threshold * bpc)
    )
    row_set = set(row_faults)

    cell_faults = sorted(
        (row, column) for (row, column) in residual
        if row not in row_set
    )

    # Row repair covers rows and cells (a cell fault costs one spare
    # row for its whole row) but never columns.
    rows_needing_spares = row_set | {row for row, _ in cell_faults}
    repairable = (
        not column_faults and len(rows_needing_spares) <= spares
    )
    return Diagnosis(
        cell_faults=tuple(cell_faults),
        row_faults=tuple(row_faults),
        column_faults=tuple(column_faults),
        repairable_with_rows=repairable,
        spares_needed=len(rows_needing_spares),
    )


def diagnosis_from_dict(data: Mapping) -> Diagnosis:
    """Rebuild a :meth:`Diagnosis.to_dict` payload.

    Tolerates a JSON round-trip (tuples come back as lists); rejects
    payloads carrying the wrong ``kind``.
    """
    data = dict(data)
    kind = data.pop("kind", "diagnosis")
    if kind != "diagnosis":
        raise ValueError(f"not a diagnosis payload: kind={kind!r}")
    return Diagnosis(
        cell_faults=tuple((r, c) for r, c in data["cell_faults"]),
        row_faults=tuple(data["row_faults"]),
        column_faults=tuple((c, b) for c, b in data["column_faults"]),
        repairable_with_rows=bool(data["repairable_with_rows"]),
        spares_needed=data["spares_needed"],
    )


def fault_bitmap(records: Sequence[FailRecord], bpw: int, bpc: int,
                 ) -> Tuple[Tuple[int, int], ...]:
    """Failure log -> sorted (row, physical column) fault coordinates.

    The bitmap the 2-D allocator consumes: word address ``a`` failing
    on bit ``b`` means cell (``a // bpc``, ``b * bpc + a % bpc``) per
    the Fig. 2 addressing.  Bits beyond ``bpw`` are masked (a defensive
    guard against corrupt comparator payloads); duplicates fold.
    """
    cells: Set[Tuple[int, int]] = set()
    mask = (1 << bpw) - 1
    for record in records:
        row, column = divmod(record.address, bpc)
        bits = record.failing_bits() & mask
        for bit in range(bpw):
            if (bits >> bit) & 1:
                cells.add((row, bit * bpc + column))
    return tuple(sorted(cells))


def collect_fail_records(march, device, bpw: int) -> List[FailRecord]:
    """Run one diagnostic pass of ``march`` and log every comparator
    hit with observed/expected data (a richer log than the production
    controller keeps — this is the diagnosis mode)."""
    from repro.bist.datagen import DataGen
    from repro.bist.march import Order

    datagen = DataGen(bpw)
    records: List[FailRecord] = []
    datagen.reset()
    while True:
        for element in march.elements:
            if element.is_delay:
                device.retention_wait()
                continue
            addresses = (
                range(device.word_count - 1, -1, -1)
                if element.order is Order.DOWN
                else range(device.word_count)
            )
            for address in addresses:
                for op in element.ops:
                    if op.is_read:
                        word = device.read(address)
                        expected = datagen.pattern(op.data_bit)
                        if word != expected:
                            records.append(
                                FailRecord(address, word, expected)
                            )
                    else:
                        device.write(
                            address, datagen.pattern(op.data_bit)
                        )
        if datagen.done:
            break
        datagen.step()
    return records
