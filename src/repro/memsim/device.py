"""The complete BISR-RAM device: array + TLB + address diversion.

Implements the :class:`~repro.bist.controller.TestTarget` protocol, so
both controller implementations can drive it, and the normal-mode API a
system would use after self-repair.  "After a fault or defect has been
diagnosed and the system switches back to normal operational mode, any
incoming address intended for a faulty memory location is diverted to a
new address."

With ``spare_cols > 0`` the device also carries a
:class:`~repro.bisr.colsteer.ColumnSteer`: in repair mode, bit lines
recorded as faulty are steered onto spare columns in the data path,
composing freely with TLB row diversion (spare rows have spare-column
cells too, so a diverted row still benefits from steering).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bisr.colsteer import ColumnSteer
from repro.bisr.tlb import Tlb
from repro.memsim.array import MemoryArray


class BisrRam:
    """A self-repairable RAM.

    Args:
        rows: regular rows.
        bpw: bits per word.
        bpc: bits per column (column-mux factor).
        spares: spare rows (also the TLB entry count).
        spare_cols: spare bit-line pairs (also the steer entry count).
        ports: access ports (1 or 2).  Both ports see the same storage
            through the same TLB diversion and column steering — the
            physical cell is shared; only the access path is doubled.
    """

    def __init__(self, rows: int, bpw: int, bpc: int, spares: int,
                 spare_cols: int = 0, ports: int = 1) -> None:
        if spares < 1:
            raise ValueError("a BISR RAM needs at least one spare row")
        if ports not in (1, 2):
            raise ValueError("ports must be 1 or 2")
        self.array = MemoryArray(rows, bpw, bpc, spares, spare_cols)
        self.tlb = Tlb(regular_rows=rows, spares=spares)
        self.colsteer = ColumnSteer(
            regular_cols=self.array.phys_cols, spares=spare_cols)
        self.ports = ports
        self.repair_mode = False
        self.diversion_count = 0
        self.port_ops = [0] * ports
        self._remapped_rows = set()

    # -- TestTarget protocol -------------------------------------------------

    @property
    def word_count(self) -> int:
        """The CPU-visible address space: regular words only."""
        return self.array.words

    def read(self, address: int, port: int = 0) -> int:
        self._check_port(port)
        row = self._physical_row(address)
        return self.array.read_word(
            address, row_override=row, col_map=self._col_map())

    def write(self, address: int, word: int, port: int = 0) -> None:
        self._check_port(port)
        row = self._physical_row(address)
        self.array.write_word(
            address, word, row_override=row, col_map=self._col_map())

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.ports:
            raise ValueError(
                f"port {port} out of range for a {self.ports}-port device")
        self.port_ops[port] += 1

    def set_repair_mode(self, enabled: bool) -> None:
        """Enable/disable TLB diversion (BIST pass 1 runs with it off).

        Called at the start of every test pass; also re-arms the
        one-remap-per-pass guard (see :meth:`record_fail`).
        """
        self.repair_mode = bool(enabled)
        self._remapped_rows = set()

    def record_fail(self, address: int) -> None:
        """Record the row of a failing *incoming* address in the TLB.

        The incoming (pre-diversion) row is recorded.  When diversion
        is active (an iterated repair pass), a failure of an
        already-mapped row means its spare is faulty, so the row
        re-records and advances to the next spare — at most once per
        pass: right after a mid-march remap, one read can still see the
        fresh spare's stale contents, and that echo must not burn
        another spare.
        """
        row = address // self.array.bpc
        remap = self.repair_mode
        if remap and row in self._remapped_rows:
            return
        if remap and self.tlb.translate(row)[1]:
            self._remapped_rows.add(row)
        self.tlb.record(row, remap=remap)

    def retention_wait(self) -> None:
        """The embedded processor tristates the interface; cells leak."""
        self.array.apply_retention()

    # -- internals ---------------------------------------------------------------

    def _physical_row(self, address: int) -> Optional[int]:
        if not self.repair_mode:
            return None
        row = address // self.array.bpc
        physical, diverted = self.tlb.translate(row)
        if diverted:
            self.diversion_count += 1
            return physical
        return None

    def _col_map(self) -> Optional[Dict[int, int]]:
        if not self.repair_mode or not len(self.colsteer):
            return None
        return self.colsteer.active_map()

    # -- normal-mode conveniences ---------------------------------------------------

    def reset_for_test(self) -> None:
        """Fresh self-test: clear the TLB/steer, leave repair mode off."""
        self.tlb.reset()
        self.colsteer.reset()
        self.repair_mode = False
        self.diversion_count = 0
        self._remapped_rows = set()

    def check_pattern(self, pattern_word: int) -> int:
        """Write-then-read the whole visible space; count mismatches.

        A quick post-repair sanity sweep used by the examples: with a
        successful repair it returns 0 even on a fault-injected array.
        """
        mismatches = 0
        for address in range(self.word_count):
            self.write(address, pattern_word)
        for address in range(self.word_count):
            if self.read(address) != pattern_word:
                mismatches += 1
        return mismatches

    def describe(self) -> str:
        a = self.array
        steer = (f", spare_cols={a.spare_cols}, "
                 f"steer_used={self.colsteer.spares_used}"
                 if a.spare_cols else "")
        return (
            f"BisrRam(rows={a.rows}, bpw={a.bpw}, bpc={a.bpc}, "
            f"spares={a.spares}, words={a.words}, "
            f"tlb_used={self.tlb.spares_used}{steer})"
        )
