"""Behavioural memory simulation with fault injection.

The silicon substrate the paper's claims are tested against:

* :mod:`~repro.memsim.array` — a column-multiplexed SRAM array with
  spare rows, bit-accurate addressing (word bit ``i`` lives in I/O
  subarray ``i``, column ``address % bpc``),
* :mod:`~repro.memsim.faults` — IFA-style fault models: stuck-at,
  stuck-open, transition, state/idempotent/inversion coupling, data
  retention, plus whole-row and whole-column defects,
* :mod:`~repro.memsim.injector` — defect placement (uniform or
  clustered) and defect-to-fault mapping,
* :mod:`~repro.memsim.device` — the complete BISR-RAM: array + TLB +
  repair-mode address diversion, implementing the controller's
  :class:`~repro.bist.controller.TestTarget` protocol,
* :mod:`~repro.memsim.coverage` — fault-coverage campaigns over march
  tests.
"""

from repro.memsim.array import MemoryArray
from repro.memsim.faults import (
    Fault,
    StuckAt,
    StuckOpen,
    TransitionFault,
    StateCoupling,
    IdempotentCoupling,
    InversionCoupling,
    DataRetention,
    RowStuck,
    ColumnStuck,
)
from repro.memsim.intermittent import (
    IntermittentStuckAt,
    IntermittentReadFlip,
    WearoutStuckAt,
)
from repro.memsim.injector import DefectInjector, FaultMix
from repro.memsim.device import BisrRam
from repro.memsim.coverage import coverage_campaign, CoverageReport
from repro.memsim.diagnosis import (
    FailRecord,
    Diagnosis,
    diagnose,
    diagnosis_from_dict,
    fault_bitmap,
    collect_fail_records,
)

__all__ = [
    "MemoryArray",
    "Fault",
    "StuckAt",
    "StuckOpen",
    "TransitionFault",
    "StateCoupling",
    "IdempotentCoupling",
    "InversionCoupling",
    "DataRetention",
    "RowStuck",
    "ColumnStuck",
    "IntermittentStuckAt",
    "IntermittentReadFlip",
    "WearoutStuckAt",
    "DefectInjector",
    "FaultMix",
    "BisrRam",
    "coverage_campaign",
    "CoverageReport",
    "FailRecord",
    "Diagnosis",
    "diagnose",
    "diagnosis_from_dict",
    "fault_bitmap",
    "collect_fail_records",
]
