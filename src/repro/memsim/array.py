"""The column-multiplexed SRAM array model.

Addressing follows the paper's Fig. 2 exactly: the array is ``bpw``
I/O subarrays of ``bpc`` physical columns each; word address ``a``
selects row ``a // bpc`` and column ``a % bpc``; word bit ``i`` lives at
physical column ``i * bpc + (a % bpc)``.  ``spares`` extra rows sit
above the regular rows, "fully integrated with the main array and
[sharing] the same column multiplexers"; they are reached only through
the spare word addresses ``regular_words + s * bpc + c``.

``spare_cols`` extra bit-line pairs sit to the right of the regular
columns (physical columns ``phys_cols .. phys_cols + spare_cols - 1``)
and run the full array height, spare rows included.  They are reached
only through the column-steering map (``col_map``): normal addressing
never touches them, exactly like spare rows and the TLB.

Cell indices are flat ``row * row_stride + phys_col`` where
``row_stride = phys_cols + spare_cols``; with no spare columns this is
the historical ``row * phys_cols + phys_col`` layout, bit for bit.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Mapping, Optional, Tuple

from repro.memsim.faults import Fault


class MemoryArray:
    """A bit-accurate faultable SRAM array.

    Args:
        rows: regular word-line count.
        bpw: bits per word (power of two).
        bpc: bits per column — the column-mux factor (power of two).
        spares: spare rows (0 allowed: a plain non-redundant array).
        spare_cols: spare bit-line pairs (0 allowed: row-only BISR).
    """

    def __init__(self, rows: int, bpw: int, bpc: int,
                 spares: int = 0, spare_cols: int = 0) -> None:
        for name, value in (("rows", rows), ("bpw", bpw), ("bpc", bpc)):
            if value < 1:
                raise ValueError(f"{name} must be positive")
        for name, value in (("bpw", bpw), ("bpc", bpc)):
            if value & (value - 1):
                raise ValueError(f"{name} must be a power of two")
        if spares < 0:
            raise ValueError("spares must be non-negative")
        if spare_cols < 0:
            raise ValueError("spare_cols must be non-negative")
        self.rows = rows
        self.bpw = bpw
        self.bpc = bpc
        self.spares = spares
        self.spare_cols = spare_cols
        self.total_rows = rows + spares
        self.phys_cols = bpw * bpc
        self.row_stride = self.phys_cols + spare_cols
        self._bits = bytearray(self.total_rows * self.row_stride)
        self._faults: List[Fault] = []
        self._cell_faults: Dict[int, List[Fault]] = defaultdict(list)
        self._column_last: Dict[int, int] = {}
        self.read_count = 0
        self.write_count = 0

    # -- geometry ----------------------------------------------------------

    @property
    def words(self) -> int:
        """Regular (CPU-visible) word count."""
        return self.rows * self.bpc

    @property
    def total_words(self) -> int:
        """Regular plus spare word count."""
        return self.total_rows * self.bpc

    @property
    def cell_count(self) -> int:
        return self.total_rows * self.row_stride

    def cell_index(self, row: int, word_bit: int, column: int) -> int:
        """Flat cell index of word bit ``word_bit`` at (row, column)."""
        if not 0 <= row < self.total_rows:
            raise ValueError(f"row {row} out of range")
        if not 0 <= word_bit < self.bpw:
            raise ValueError(f"word bit {word_bit} out of range")
        if not 0 <= column < self.bpc:
            raise ValueError(f"column {column} out of range")
        return row * self.row_stride + word_bit * self.bpc + column

    def spare_cell_index(self, row: int, spare_col: int) -> int:
        """Flat cell index of spare column ``spare_col`` at ``row``."""
        if not 0 <= row < self.total_rows:
            raise ValueError(f"row {row} out of range")
        if not 0 <= spare_col < self.spare_cols:
            raise ValueError(f"spare column {spare_col} out of range")
        return row * self.row_stride + self.phys_cols + spare_col

    def split_address(self, address: int) -> Tuple[int, int]:
        """Word address -> (row, column)."""
        if not 0 <= address < self.total_words:
            raise ValueError(
                f"address {address} outside 0..{self.total_words - 1}"
            )
        return address // self.bpc, address % self.bpc

    # -- fault management ------------------------------------------------------

    def inject(self, fault: Fault) -> None:
        """Attach a fault to the array."""
        self._faults.append(fault)
        for cell in fault.cells():
            if not 0 <= cell < self.cell_count:
                raise ValueError(
                    f"fault {fault.describe()} touches cell {cell} "
                    f"outside the array"
                )
            self._cell_faults[cell].append(fault)

    def clear_faults(self) -> None:
        self._faults.clear()
        self._cell_faults.clear()

    @property
    def faults(self) -> Tuple[Fault, ...]:
        return tuple(self._faults)

    def faulty_rows(self) -> List[int]:
        """Rows touched by any injected fault, ascending."""
        rows = {cell // self.row_stride
                for f in self._faults for cell in f.cells()}
        return sorted(rows)

    # -- raw cell access (used by fault hooks) -----------------------------------

    def raw(self, cell: int) -> int:
        """Stored value, bypassing fault read effects."""
        return self._bits[cell]

    def force(self, cell: int, value: int) -> None:
        """Overwrite a cell, bypassing fault write effects."""
        self._bits[cell] = 1 if value else 0

    def last_column_value(self, phys_col: int) -> int:
        """Last value sensed on a physical column (stuck-open model)."""
        return self._column_last.get(phys_col, 0)

    # -- word access ----------------------------------------------------------------

    def _resolve_cell(self, row: int, bit: int, column: int,
                      col_map: Optional[Mapping[int, int]],
                      ) -> Tuple[int, int]:
        """(flat cell, resolved physical column) for one word bit.

        ``col_map`` is the column-steering map: logical physical column
        -> spare column index.  A steered bit's cell lives in the spare
        column at the same row; everything else follows Fig. 2.
        """
        logical = bit * self.bpc + column
        if col_map is not None:
            spare = col_map.get(logical)
            if spare is not None:
                phys = self.phys_cols + spare
                return row * self.row_stride + phys, phys
        return row * self.row_stride + logical, logical

    def read_word(self, address: int, row_override: int = None,
                  col_map: Optional[Mapping[int, int]] = None) -> int:
        """Read the ``bpw``-bit word at ``address``.

        ``row_override`` substitutes the physical row while keeping the
        column from the address — the BISR diversion path.  ``col_map``
        steers individual physical columns onto spare columns — the
        2-D repair path.
        """
        row, column = self.split_address(address)
        if row_override is not None:
            row = row_override
        self.read_count += 1
        word = 0
        for bit in range(self.bpw):
            cell, phys = self._resolve_cell(row, bit, column, col_map)
            value = self._bits[cell]
            for fault in self._cell_faults.get(cell, ()):
                value = fault.on_read(cell, value, self)
            value = 1 if value else 0
            self._column_last[phys] = value
            if value:
                word |= 1 << bit
        return word

    def write_word(self, address: int, word: int,
                   row_override: int = None,
                   col_map: Optional[Mapping[int, int]] = None) -> None:
        """Write the ``bpw``-bit ``word`` at ``address``."""
        row, column = self.split_address(address)
        if row_override is not None:
            row = row_override
        self.write_count += 1
        touched = []
        for bit in range(self.bpw):
            cell, phys = self._resolve_cell(row, bit, column, col_map)
            old = self._bits[cell]
            new = (word >> bit) & 1
            for fault in self._cell_faults.get(cell, ()):
                new = fault.on_write(cell, old, new)
            self._bits[cell] = 1 if new else 0
            self._column_last[phys] = self._bits[cell]
            touched.append(cell)
        # Coupling side effects fire after the whole word lands.
        for cell in touched:
            for fault in self._cell_faults.get(cell, ()):
                fault.after_write(self, cell)

    def apply_retention(self) -> None:
        """Model the data-retention pause: leaky cells decay."""
        for fault in self._faults:
            fault.on_retention(self)

    def fill(self, pattern_word: int) -> None:
        """Fault-free bulk initialise every word (test setup helper)."""
        for bit in range(self.bpw):
            value = (pattern_word >> bit) & 1
            for row in range(self.total_rows):
                for column in range(self.bpc):
                    self._bits[self.cell_index(row, bit, column)] = value
