"""Design-space analysis utilities built on the models.

* :mod:`~repro.analysis.spare_optimizer` — choose the spare-row count
  that maximises the economic return: the yield benefit of more spares
  against their silicon cost and reliability exposure,
* :mod:`~repro.analysis.comparison` — head-to-head comparison of the
  BISRAMGEN TLB scheme against the Chen-Sunada hierarchical baseline
  (repair capability, delay penalty, silicon granularity).
"""

from repro.analysis.spare_optimizer import (
    SpareChoice,
    optimize_spares,
    spare_tradeoff_table,
)
from repro.analysis.comparison import SchemeComparison, compare_schemes

__all__ = [
    "SpareChoice",
    "optimize_spares",
    "spare_tradeoff_table",
    "SchemeComparison",
    "compare_schemes",
]
