"""BISRAMGEN vs. Chen-Sunada, quantified (paper §III).

The paper argues four advantages over the hierarchical two-fault
scheme; this module computes the two quantitative ones on equal-sized
memories:

* **repair capability** — "BISRAMGEN affords a much greater degree of
  fault tolerance of about bpc*S to 4*bpc*S faulty addresses in each
  subblock" vs two per subblock,
* **delay penalty** — parallel TLB compare vs sequential capture-
  register compare.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bisr.chen_sunada import (
    ChenSunadaRam,
    sequential_compare_delay_s,
)
from repro.bisr.delay import tlb_delay_s
from repro.bisr.repair import analyze_repair
from repro.core.config import RamConfig
from repro.tech.process import get_process


@dataclass(frozen=True)
class SchemeComparison:
    """Head-to-head numbers for one configuration."""

    config: RamConfig
    bisramgen_capacity_words: int
    chen_sunada_capacity_words: int
    bisramgen_worst_case_kill: int
    chen_sunada_worst_case_kill: int
    bisramgen_delay_s: float
    chen_sunada_delay_s: float
    chen_sunada_delay_equal_entries_s: float
    survival_bisramgen: float
    survival_chen_sunada: float


def compare_schemes(
    config: RamConfig,
    subblocks: int = 16,
    spare_subblocks: int = 1,
    random_faults: int = 6,
    trials: int = 200,
    seed: int = 5,
) -> SchemeComparison:
    """Compare the two schemes on one memory configuration.

    ``survival_*`` is a Monte-Carlo estimate: the fraction of random
    ``random_faults``-word fault patterns each scheme repairs.
    """
    process = get_process(config.process)
    words = config.words
    wps = words // subblocks
    if wps < 1:
        raise ValueError("more subblocks than words")

    # Capacity: best case repairable faulty words.
    bis_capacity = config.spares * config.bpc  # spare words
    cs = ChenSunadaRam(subblocks, wps, spare_subblocks)
    cs_capacity = cs.repair_capacity_words()

    # Worst case kill: smallest fault count that can defeat each.
    bis_kill = config.spares + 1          # S+1 faulty rows
    cs_kill = cs.worst_case_unrepairable()

    # Delay penalties.  The sequential compare is cheap at two capture
    # registers but scales linearly with the entry count; the parallel
    # TLB barely grows.  Comparing both at the TLB's entry count is the
    # paper's point: "BISRAMGEN, which uses a very fast, parallel
    # comparison ... produces a very tiny delay penalty".
    bis_delay = tlb_delay_s(process, config.row_address_bits,
                            config.spares)
    local_bits = max(1, (wps - 1).bit_length())
    cs_delay = sequential_compare_delay_s(process, local_bits)
    cs_delay_equal = sequential_compare_delay_s(
        process, local_bits, captures=config.spares
    )

    # Monte-Carlo survival under a realistic defect mix: half the
    # defects are row defects (a broken word/bit line corrupts all bpc
    # words of the row — the clustering that motivates row repair),
    # half are single-word spot defects.
    rng = random.Random(seed)
    bis_wins = cs_wins = 0
    for _ in range(trials):
        faulty_words = set()
        for _ in range(random_faults):
            if rng.random() < 0.5:
                row = rng.randrange(config.rows)
                faulty_words.update(
                    row * config.bpc + c for c in range(config.bpc)
                )
            else:
                faulty_words.add(rng.randrange(words))
        rows = sorted({a // config.bpc for a in faulty_words})
        bis_wins += analyze_repair(rows, config.spares).repairable
        cs_wins += ChenSunadaRam(
            subblocks, wps, spare_subblocks
        ).repairable(sorted(faulty_words))
    return SchemeComparison(
        config=config,
        bisramgen_capacity_words=bis_capacity,
        chen_sunada_capacity_words=cs_capacity,
        bisramgen_worst_case_kill=bis_kill,
        chen_sunada_worst_case_kill=cs_kill,
        bisramgen_delay_s=bis_delay,
        chen_sunada_delay_s=cs_delay,
        chen_sunada_delay_equal_entries_s=cs_delay_equal,
        survival_bisramgen=bis_wins / trials,
        survival_chen_sunada=cs_wins / trials,
    )
