"""Spare-count optimisation.

The paper exposes spares in {4, 8, 16} and shows both sides of the
trade: more spares buy manufacturing yield (Fig. 4) but cost silicon,
can forfeit the TLB delay-masking guarantee (only 1-4 spares are
vouched for), and *reduce* early-life reliability (Fig. 5).  This
module turns those models into a decision: given a defect environment
and a die-cost structure, which spare count minimises the effective
cost per good, maskable die?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bisr.delay import tlb_delay_s
from repro.core.config import RamConfig
from repro.reliability.model import reliability_words
from repro.tech.process import get_process
from repro.yieldmodel.repair_prob import bisr_yield

#: The spare counts BISRAMGEN offers (plus 0 as the no-BISR reference).
CANDIDATES = (0, 4, 8, 16)


@dataclass(frozen=True)
class SpareChoice:
    """One evaluated spare count."""

    spares: int
    yield_value: float
    area_factor: float
    tlb_delay_s: float
    tlb_maskable: bool
    reliability_at_horizon: float
    cost_per_good_die: float

    def summary(self) -> str:
        mask = "maskable" if self.tlb_maskable else "NOT maskable"
        return (
            f"{self.spares:>2} spares: yield {self.yield_value:6.1%}, "
            f"area x{self.area_factor:.3f}, "
            f"TLB {self.tlb_delay_s * 1e9:.2f} ns ({mask}), "
            f"R(horizon) {self.reliability_at_horizon:6.1%}, "
            f"cost/good x{self.cost_per_good_die:.3f}"
        )


def evaluate_spares(
    config: RamConfig,
    spares: int,
    expected_defects: float,
    field_lambda_per_hour: float = 1e-9,
    horizon_hours: float = 5 * 8766,
    mask_budget_s: float = 1.3e-9,
) -> SpareChoice:
    """Score one spare count for a configuration and environment.

    ``cost_per_good_die`` is normalised: (area factor) / yield — the
    die-cost proportionality of the MPR model with everything constant
    except the RAM redundancy.
    """
    if expected_defects < 0:
        raise ValueError("expected_defects must be non-negative")
    process = get_process(config.process)
    # Area: spares add rows; the BIST/BISR circuitry is spare-count
    # insensitive to first order (TLB rows are the only per-spare cost).
    area_factor = 1.0 + spares / config.rows * 1.02
    y = bisr_yield(
        config.rows, spares, config.bpw, config.bpc,
        expected_defects, growth_factor=area_factor,
    )
    if spares > 0:
        delay = tlb_delay_s(process, config.row_address_bits, spares)
        maskable = delay <= mask_budget_s
    else:
        delay = 0.0
        maskable = True
    reliability = reliability_words(
        horizon_hours, config.rows, spares, config.bpw, config.bpc,
        field_lambda_per_hour,
    )
    cost = area_factor / max(y, 1e-12)
    return SpareChoice(
        spares=spares,
        yield_value=y,
        area_factor=area_factor,
        tlb_delay_s=delay,
        tlb_maskable=maskable,
        reliability_at_horizon=reliability,
        cost_per_good_die=cost,
    )


def spare_tradeoff_table(
    config: RamConfig,
    expected_defects: float,
    candidates: Sequence[int] = CANDIDATES,
    **kwargs,
) -> List[SpareChoice]:
    """Evaluate every candidate spare count."""
    return [
        evaluate_spares(config, s, expected_defects, **kwargs)
        for s in candidates
    ]


def optimize_spares(
    config: RamConfig,
    expected_defects: float,
    candidates: Sequence[int] = CANDIDATES,
    require_maskable: bool = True,
    min_reliability: float = 0.0,
    **kwargs,
) -> Optional[SpareChoice]:
    """The cheapest good-die choice meeting the constraints.

    Returns None when no candidate satisfies both the maskability and
    reliability constraints (the caller must relax one).
    """
    table = spare_tradeoff_table(config, expected_defects, candidates,
                                 **kwargs)
    feasible = [
        c for c in table
        if (c.tlb_maskable or not require_maskable)
        and c.reliability_at_horizon >= min_reliability
    ]
    if not feasible:
        return None
    return min(feasible, key=lambda c: c.cost_per_good_die)
