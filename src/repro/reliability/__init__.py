"""Reliability models (paper section VIII, Fig. 5)."""

from repro.reliability.model import (
    word_fault_prob_at,
    reliability_words,
    reliability_rows,
    mttf_words,
    mttf_numeric,
    failure_pdf,
    crossover_age,
)

__all__ = [
    "word_fault_prob_at",
    "reliability_words",
    "reliability_rows",
    "mttf_words",
    "mttf_numeric",
    "failure_pdf",
    "crossover_age",
]
