"""Reliability R(t) and MTTF of a BISR RAM (paper section VIII).

Definitions (paper): R(t) is the probability of correct functioning
until time t; f(t) = -dR/dt; MTTF = integral of R(t) from 0 to
infinity.  "The RAM module will survive until time t if and only if at
most S_w of the regular words are faulty until time t, and the S_w
spare words are themselves fault-free until this time", with
P_w(t) = 1 - exp(-bpw * lambda * t) the word fault probability for a
per-bit failure rate lambda.

Two granularities are provided:

* :func:`reliability_words` — the paper's word-level formula (spare
  capacity counted in words, S_w = spares * bpc),
* :func:`reliability_rows` — the row-accurate variant (a spare row
  replaces a whole faulty row), which is what the hardware does.

Both exhibit the paper's headline phenomenon: "the reliability
typically increases with the number of spares only after a period of
several years after manufacture.  Initially the reliability is found to
decrease with the number of spares" — young devices rarely fail, so
extra spares only add silicon that must stay fault-free, while old
devices exploit the repair capacity.  For the Fig. 5 configuration
(1024 rows, bpc = bpw = 4, lambda = 1e-6 per kilohour per cell) the
4-vs-8-spare crossover falls near 70,000 hours (about 8 years).
"""

from __future__ import annotations

import math
from typing import Callable

from scipy import integrate, optimize, special


def word_fault_prob_at(t: float, lam: float, bpw: int) -> float:
    """P_w(t) = 1 - exp(-bpw * lambda * t)."""
    if t < 0 or lam < 0:
        raise ValueError("time and failure rate must be non-negative")
    if bpw < 1:
        raise ValueError("bpw must be positive")
    return 1.0 - math.exp(-bpw * lam * t)


def _binomial_tail(n: int, k_max: int, p: float) -> float:
    """P(X <= k_max) for X ~ Binomial(n, p), numerically stable."""
    if p <= 0.0:
        return 1.0
    if p >= 1.0:
        return 0.0 if k_max < n else 1.0
    total = 0.0
    log_q = n * math.log1p(-p)
    for j in range(k_max + 1):
        log_term = (
            _log_comb(n, j) + j * (math.log(p) - math.log1p(-p)) + log_q
        )
        total += math.exp(log_term)
    return min(total, 1.0)


def _log_comb(n: int, k: int) -> float:
    return float(
        special.gammaln(n + 1) - special.gammaln(k + 1)
        - special.gammaln(n - k + 1)
    )


def reliability_words(t: float, rows: int, spares: int, bpw: int,
                      bpc: int, lam: float) -> float:
    """The paper's word-level reliability.

    R(t) = P(#faulty regular words <= S_w) * P(S_w spare words OK),
    with W = rows*bpc regular words and S_w = spares*bpc spare words.
    """
    _check_geometry(rows, spares, bpw, bpc)
    p_w = word_fault_prob_at(t, lam, bpw)
    regular_words = rows * bpc
    spare_words = spares * bpc
    survive_regular = _binomial_tail(regular_words, spare_words, p_w)
    spares_ok = math.exp(-bpw * lam * t * spare_words)
    return survive_regular * spares_ok


def reliability_rows(t: float, rows: int, spares: int, bpw: int,
                     bpc: int, lam: float) -> float:
    """Row-accurate reliability: at most ``spares`` faulty regular rows
    and all spare rows fault-free."""
    _check_geometry(rows, spares, bpw, bpc)
    bits_row = bpw * bpc
    p_row = 1.0 - math.exp(-bits_row * lam * t)
    survive_regular = _binomial_tail(rows, spares, p_row)
    spares_ok = math.exp(-bits_row * lam * t * spares)
    return survive_regular * spares_ok


def mttf_words(rows: int, spares: int, bpw: int, bpc: int,
               lam: float) -> float:
    """Closed-form MTTF for the word-level model.

    Expanding (1-e^{-b l t})^j binomially and integrating term by term:
    every term is an exponential in t, so the integral is an explicit
    double sum — the paper's closed form.  The sum alternates with
    astronomically large binomial coefficients, so it is evaluated in
    exact rational arithmetic (the cancellation destroys float64 for
    realistic word counts) and converted to float at the end.
    """
    _check_geometry(rows, spares, bpw, bpc)
    if lam <= 0:
        raise ValueError("failure rate must be positive for a finite MTTF")
    from fractions import Fraction

    W = rows * bpc
    S = spares * bpc
    total = Fraction(0)
    for j in range(S + 1):
        cwj = math.comb(W, j)
        for k in range(j + 1):
            term = Fraction(cwj * math.comb(j, k), W - j + k + S)
            total += -term if k % 2 else term
    return float(total) / (bpw * lam)


def mttf_numeric(reliability: Callable[[float], float],
                 t_scale: float) -> float:
    """MTTF by numeric integration of an arbitrary R(t).

    ``t_scale`` is a characteristic time (e.g. 1/(bpw*lam*words)) used
    to split the integration range for accuracy.
    """
    if t_scale <= 0:
        raise ValueError("t_scale must be positive")
    first, _ = integrate.quad(reliability, 0, 10 * t_scale, limit=200)
    second, _ = integrate.quad(
        reliability, 10 * t_scale, 1000 * t_scale, limit=200
    )
    return first + second


def failure_pdf(reliability: Callable[[float], float], t: float,
                dt: float = None) -> float:
    """f(t) = -dR/dt via central difference."""
    if t < 0:
        raise ValueError("time must be non-negative")
    h = dt if dt is not None else max(t, 1.0) * 1e-5
    lo = max(t - h, 0.0)
    return (reliability(lo) - reliability(t + h)) / (t + h - lo)


def crossover_age(
    rows: int, bpw: int, bpc: int, lam: float,
    spares_a: int, spares_b: int,
    t_hint: float = 1e4,
    model: Callable = reliability_words,
) -> float:
    """Age at which ``spares_b`` overtakes ``spares_a`` in reliability.

    Returns the root of R_b(t) - R_a(t) near ``t_hint`` hours; raises
    when no crossover is bracketed within [t_hint/1e3, t_hint*1e3].
    """

    def gap(t: float) -> float:
        return (
            model(t, rows, spares_b, bpw, bpc, lam)
            - model(t, rows, spares_a, bpw, bpc, lam)
        )

    # Scan a log grid for the first sign change: at very large t both
    # reliabilities underflow to zero and the gap degenerates, so a
    # naive wide bracket would hand brentq a spurious root out there.
    grid = [t_hint * 10 ** (e / 8.0) for e in range(-24, 25)]
    previous_t, previous_g = grid[0], gap(grid[0])
    for t in grid[1:]:
        g = gap(t)
        if previous_g != 0.0 and g != 0.0 and (previous_g < 0) != (g < 0):
            return float(optimize.brentq(gap, previous_t, t))
        if previous_g == 0.0 and g != 0.0:
            previous_t, previous_g = t, g
            continue
        previous_t, previous_g = t, g
    raise ValueError(
        f"no reliability crossover found near t_hint={t_hint:g} hours"
    )


def _check_geometry(rows: int, spares: int, bpw: int, bpc: int) -> None:
    if rows < 1 or bpw < 1 or bpc < 1:
        raise ValueError("rows, bpw, bpc must be positive")
    if spares < 0:
        raise ValueError("spares must be non-negative")
