"""Manufacturing cost models (paper section X, Tables II-III, Fig. 8)."""

from repro.cost.wafer import dies_per_wafer, die_cost
from repro.cost.mpr import Microprocessor, MPR_1994_DATASET, get_processor
from repro.cost.analysis import (
    CostBreakdown,
    die_cost_comparison,
    total_cost_comparison,
    table2_rows,
    table3_rows,
)
from repro.cost.binning import SpeedBinning, binning_distribution
from repro.cost.sparemix import (
    SpareMixPoint,
    area_growth_factor,
    best_mix,
    evaluate_mix,
    spare_mix_point_from_dict,
    spare_mix_sweep,
)
from repro.cost.learning import (
    LearningCurve,
    bisr_advantage_over_ramp,
    extra_layer_wafer_cost,
)

__all__ = [
    "dies_per_wafer",
    "die_cost",
    "Microprocessor",
    "MPR_1994_DATASET",
    "get_processor",
    "CostBreakdown",
    "die_cost_comparison",
    "total_cost_comparison",
    "table2_rows",
    "table3_rows",
    "SpeedBinning",
    "binning_distribution",
    "SpareMixPoint",
    "area_growth_factor",
    "best_mix",
    "evaluate_mix",
    "spare_mix_point_from_dict",
    "spare_mix_sweep",
    "LearningCurve",
    "bisr_advantage_over_ramp",
    "extra_layer_wafer_cost",
]
