"""The Table II / Table III cost pipelines.

Table II: cost per good die before wafer testing, with and without
embedded-RAM BISR.  Table III: total manufacturing cost per packaged
and tested chip (MPR model: die cost + wafer test & assembly +
packaging & final test).

The BISR leg of the pipeline:

1. back the embedded RAM yield out of the die yield
   (``die_yield ** cache_fraction``),
2. invert Stapper to get the RAM's mean defect count,
3. compute the repairable yield of the RAM organised as 1024-row,
   4-spare BISR subarrays (the compiler's canonical organisation, four
   spare rows as in the paper's tables),
4. scale the die yield by the RAM improvement and shrink dies-per-wafer
   by the BISR area overhead on the cache share of the die.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cost.mpr import MPR_1994_DATASET, Microprocessor
from repro.cost.wafer import die_cost, dies_per_wafer
from repro.yieldmodel.chip import embedded_ram_yield
from repro.yieldmodel.repair_prob import bisr_yield
from repro.yieldmodel.stapper import defects_from_yield

#: Canonical compiler organisation used to evaluate cache repair.
_SUBARRAY_ROWS = 1024
_SUBARRAY_BPC = 4
_SUBARRAY_BPW = 32
_SPARES = 4

#: BIST/BISR area overhead on the cache share (Table I band).
_BISR_AREA_OVERHEAD = 0.05

#: Wafer-test cost, "$5.00 per minute for wafer test".
_TEST_COST_PER_MINUTE = 5.0
_BAD_DIE_TEST_SECONDS = 5.0

#: Packaging and final test: "about one cent per pin".
_PACKAGE_COST_PER_PIN = 0.01


@dataclass(frozen=True)
class CostBreakdown:
    """Cost components for one processor, one configuration."""

    name: str
    die_yield: float
    dies_per_wafer: int
    die_cost: float
    test_cost: float
    package_cost: float
    total_cost: float


def _ram_bisr_improvement(cpu: Microprocessor) -> float:
    """Yield improvement factor the BISR cache achieves."""
    ram_yield = embedded_ram_yield(cpu.die_yield, cpu.cache_fraction)
    mean_defects = defects_from_yield(ram_yield, alpha=2.0)
    # Split the cache into canonical subarrays by area; defects spread
    # uniformly across them.
    cache_area_mm2 = cpu.die_area_mm2 * cpu.cache_fraction
    # One canonical subarray of SRAM at the period's density ~ 17 mm^2
    # (128 Kbit at ~7.7 Mbit/cm^2); the split only needs to be
    # self-consistent, as the product over subarrays restores the total.
    n_sub = max(1, round(cache_area_mm2 / 17.0))
    per_sub_defects = mean_defects / n_sub
    y_sub_plain = math.exp(-per_sub_defects)
    y_sub_bisr = bisr_yield(
        _SUBARRAY_ROWS, _SPARES, _SUBARRAY_BPW, _SUBARRAY_BPC,
        per_sub_defects, growth_factor=1.0 + _BISR_AREA_OVERHEAD,
    )
    improvement_per_sub = max(1.0, y_sub_bisr / y_sub_plain)
    return improvement_per_sub ** n_sub


def _breakdown(cpu: Microprocessor, with_bisr: bool) -> CostBreakdown:
    area = cpu.die_area_mm2
    die_yield = cpu.die_yield
    if with_bisr:
        if not cpu.supports_bisr:
            raise ValueError(
                f"{cpu.name} cannot take BISR "
                f"({cpu.metal_layers} metal layers, "
                f"cache fraction {cpu.cache_fraction})"
            )
        improvement = _ram_bisr_improvement(cpu)
        ram_yield = embedded_ram_yield(die_yield, cpu.cache_fraction)
        improved_ram = min(1.0, ram_yield * improvement)
        die_yield = (die_yield / ram_yield) * improved_ram
        area = area * (1.0 + cpu.cache_fraction * _BISR_AREA_OVERHEAD)
    dpw = dies_per_wafer(area, cpu.wafer_mm)
    cost_die = cpu.wafer_cost / (dpw * die_yield)

    # Wafer test: full test per good die, a few seconds per bad die,
    # amortised over the good dies.
    good = dpw * die_yield
    bad = dpw - good
    test_minutes = (
        good * cpu.test_seconds + bad * _BAD_DIE_TEST_SECONDS
    ) / 60.0
    cost_test = test_minutes * _TEST_COST_PER_MINUTE / good

    cost_package = cpu.pins * _PACKAGE_COST_PER_PIN
    total = (cost_die + cost_test + cost_package) / cpu.final_test_yield
    return CostBreakdown(
        name=cpu.name,
        die_yield=die_yield,
        dies_per_wafer=dpw,
        die_cost=cost_die,
        test_cost=cost_test,
        package_cost=cost_package,
        total_cost=total,
    )


def die_cost_comparison(cpu: Microprocessor
                        ) -> Optional[tuple]:
    """(without, with) die-cost breakdowns; None for 2-metal chips."""
    without = _breakdown(cpu, with_bisr=False)
    if not cpu.supports_bisr:
        return (without, None)
    return (without, _breakdown(cpu, with_bisr=True))


def total_cost_comparison(cpu: Microprocessor) -> Optional[tuple]:
    """Alias of :func:`die_cost_comparison`; totals live in the rows."""
    return die_cost_comparison(cpu)


def table2_rows(dataset: Sequence[Microprocessor] = MPR_1994_DATASET
                ) -> List[dict]:
    """Table II: cost per good die, with/without RAM BISR.

    Blank (None) 'with' entries mark 2-metal chips, as in the paper.
    """
    rows = []
    for cpu in dataset:
        without, with_ = die_cost_comparison(cpu)
        rows.append(
            {
                "name": cpu.name,
                "metal_layers": cpu.metal_layers,
                "die_cost_without": without.die_cost,
                "die_cost_with": with_.die_cost if with_ else None,
                "improvement": (
                    without.die_cost / with_.die_cost if with_ else None
                ),
            }
        )
    return rows


def table3_rows(dataset: Sequence[Microprocessor] = MPR_1994_DATASET
                ) -> List[dict]:
    """Table III: total manufacturing cost per packaged, tested chip."""
    rows = []
    for cpu in dataset:
        without, with_ = die_cost_comparison(cpu)
        reduction = None
        if with_:
            reduction = 100.0 * (1.0 - with_.total_cost / without.total_cost)
        rows.append(
            {
                "name": cpu.name,
                "total_without": without.total_cost,
                "total_with": with_.total_cost if with_ else None,
                "reduction_percent": reduction,
                "die_cost_share": without.die_cost / without.total_cost,
            }
        )
    return rows
