"""Process maturity effects on the BISR business case (§X's
"complications" list, modelled).

The paper notes two effects its simple cost model omits:

* **The learning curve.**  "Defect densities ... vary within the
  operational life-time of any process.  The defect rate for new
  processes (i.e., in the early part of the learning curve) is high,
  whereas the defect rate for more mature processes is lower ...
  [Intel's 0.8 um BiCMOS] defect rate was initially quite high but fell
  rapidly within the next few months."  Defect learning follows the
  classic exponential: ``D(t) = D_inf + (D_0 - D_inf) * exp(-t / tau)``.
  The corollary this module quantifies: BISR's cost advantage is
  largest exactly when it matters most commercially — during the
  early-ramp months when yields are worst.

* **Extra mask layers.**  "This effect can be modeled by adding a
  certain realistic increment to the wafer cost for chips with two
  polysilicon layers or ... local interconnect; for example, counting
  the extra polysilicon layer as an extra metal layer, and the local
  interconnect as one-half of a metal layer."
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.cost.analysis import die_cost_comparison
from repro.cost.mpr import Microprocessor
from repro.yieldmodel.stapper import defects_from_yield, stapper_yield

import math


@dataclass(frozen=True)
class LearningCurve:
    """Exponential defect-density learning.

    Attributes:
        d0_per_cm2: defect density at process introduction.
        d_inf_per_cm2: mature-process floor.
        tau_months: learning time constant.
    """

    d0_per_cm2: float = 2.5
    d_inf_per_cm2: float = 0.5
    tau_months: float = 6.0

    def __post_init__(self) -> None:
        if self.d0_per_cm2 < self.d_inf_per_cm2:
            raise ValueError("initial density cannot be below the floor")
        if self.tau_months <= 0:
            raise ValueError("tau must be positive")

    def density_at(self, months: float) -> float:
        """Defect density (per cm^2) after ``months`` in production."""
        if months < 0:
            raise ValueError("months must be non-negative")
        return self.d_inf_per_cm2 + (
            self.d0_per_cm2 - self.d_inf_per_cm2
        ) * math.exp(-months / self.tau_months)

    def die_yield_at(self, months: float, die_area_mm2: float,
                     alpha: float = 2.0) -> float:
        """Stapper yield of a die at a point on the learning curve."""
        area_cm2 = die_area_mm2 / 100.0
        return stapper_yield(self.density_at(months), area_cm2, alpha)


def bisr_advantage_over_ramp(
    cpu: Microprocessor,
    curve: LearningCurve,
    months: Tuple[float, ...] = (0.0, 3.0, 6.0, 12.0, 24.0),
) -> List[Tuple[float, float, float, float]]:
    """(month, die yield, die cost w/o BISR, die cost w/ BISR) rows.

    Rebuilds the Table II pipeline at each maturity point by swapping
    the processor's period-typical yield for the learning-curve value.
    """
    out = []
    for month in months:
        die_yield = curve.die_yield_at(month, cpu.die_area_mm2)
        aged = replace(cpu, die_yield=min(max(die_yield, 1e-3), 1.0))
        without, with_ = die_cost_comparison(aged)
        out.append((
            month,
            aged.die_yield,
            without.die_cost,
            with_.die_cost if with_ else without.die_cost,
        ))
    return out


def extra_layer_wafer_cost(base_wafer_cost: float,
                           metal_layers: int,
                           extra_poly_layers: int = 0,
                           local_interconnect: bool = False,
                           cost_per_metal_step: float = 150.0) -> float:
    """Wafer cost adjusted for extra patterning steps.

    Per the paper's recipe: each metal beyond three adds one step, an
    extra polysilicon layer counts as one metal step, local interconnect
    as half a step.
    """
    if metal_layers < 1 or extra_poly_layers < 0:
        raise ValueError("bad layer counts")
    steps = max(0, metal_layers - 3)
    steps += extra_poly_layers
    half = 0.5 if local_interconnect else 0.0
    return base_wafer_cost + (steps + half) * cost_per_metal_step
