"""Dies-per-wafer and die-cost arithmetic.

"Since wafers are circular and dies are rectangular, the larger wafers
increase the wafer cost, but more than proportionately increase the
number of dies-per-wafer" — the classic geometry: usable dies equal the
wafer area over the die area minus an edge-loss term proportional to
the wafer circumference over the die diagonal.
"""

from __future__ import annotations

import math


def dies_per_wafer(die_area_mm2: float, wafer_diameter_mm: float) -> int:
    """Gross dies per wafer with the standard edge-loss correction.

    N = pi (d/2)^2 / A  -  pi d / sqrt(2 A)
    """
    if die_area_mm2 <= 0:
        raise ValueError("die area must be positive")
    if wafer_diameter_mm <= 0:
        raise ValueError("wafer diameter must be positive")
    radius = wafer_diameter_mm / 2.0
    gross = math.pi * radius * radius / die_area_mm2
    edge_loss = math.pi * wafer_diameter_mm / math.sqrt(2.0 * die_area_mm2)
    count = int(gross - edge_loss)
    if count < 1:
        raise ValueError(
            f"die of {die_area_mm2} mm^2 does not fit a "
            f"{wafer_diameter_mm} mm wafer"
        )
    return count


def die_cost(wafer_cost: float, die_area_mm2: float,
             wafer_diameter_mm: float, die_yield: float) -> float:
    """Die cost = wafer cost / (dies-per-wafer * yield)."""
    if wafer_cost <= 0:
        raise ValueError("wafer cost must be positive")
    if not 0.0 < die_yield <= 1.0:
        raise ValueError("die yield must be in (0, 1]")
    dpw = dies_per_wafer(die_area_mm2, wafer_diameter_mm)
    return wafer_cost / (dpw * die_yield)
