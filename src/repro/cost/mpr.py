"""The 1993-94 *Microprocessor Report* processor dataset.

Tables II and III of the paper are computed from MPR's published
die/wafer/package data ("based on September 1994 and August 1993 data
... as found in [13]").  That report is proprietary; this module
reconstructs the same inputs from the public record of the era (die
sizes, processes, metal counts, wafer sizes, package pin counts, and
period-typical wafer costs and yields).  Values are documented
approximations — the cost pipeline consumes exactly these fields, so a
reader with the original MPR numbers can swap them in.

Chips on 2-metal processes get blank table entries exactly as in the
paper: "BISR RAMs built by BISRAMGEN require three metal layers, hence
it is not possible to implement BISR for those chips using our tool."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Microprocessor:
    """One row of the reconstructed MPR dataset.

    Attributes:
        name: marketing name.
        process_um: drawn feature size.
        metal_layers: routing metals (BISR needs >= 3).
        die_area_mm2: die area.
        wafer_mm: wafer diameter (150 or 200).
        wafer_cost: processed wafer cost, USD.
        die_yield: period-typical die yield.
        cache_fraction: on-chip cache share of the die area (from die
            photographs, the paper's method).
        pins: package pin count.
        package: "PGA" or "PQFP" (final-test yield 0.97 / 0.93).
        test_seconds: wafer test time for a good die.
    """

    name: str
    process_um: float
    metal_layers: int
    die_area_mm2: float
    wafer_mm: int
    wafer_cost: float
    die_yield: float
    cache_fraction: float
    pins: int
    package: str
    test_seconds: float

    def __post_init__(self) -> None:
        if self.package not in ("PGA", "PQFP"):
            raise ValueError(f"unknown package {self.package!r}")
        if not 0.0 <= self.cache_fraction < 1.0:
            raise ValueError("cache fraction must be in [0, 1)")
        if not 0.0 < self.die_yield <= 1.0:
            raise ValueError("die yield must be in (0, 1]")

    @property
    def supports_bisr(self) -> bool:
        """Three metals and an on-chip cache are required."""
        return self.metal_layers >= 3 and self.cache_fraction > 0.0

    @property
    def final_test_yield(self) -> float:
        """"For PQFP packages, a realistic value of this final yield is
        93%, whereas for PGA packages it is ... about 97%."""
        return 0.97 if self.package == "PGA" else 0.93


MPR_1994_DATASET: Tuple[Microprocessor, ...] = (
    Microprocessor("Intel386DX", 1.0, 2, 43.0, 150, 900.0, 0.72,
                   0.00, 132, "PQFP", 30.0),
    Microprocessor("Intel486DX2", 0.8, 3, 81.0, 150, 1300.0, 0.60,
                   0.10, 168, "PGA", 45.0),
    Microprocessor("Intel486DX4", 0.6, 3, 76.0, 200, 2100.0, 0.55,
                   0.17, 168, "PGA", 60.0),
    Microprocessor("AMD486DX2", 0.7, 3, 81.0, 150, 1350.0, 0.55,
                   0.10, 168, "PGA", 45.0),
    Microprocessor("Pentium-66", 0.8, 3, 294.0, 200, 2300.0, 0.16,
                   0.12, 273, "PGA", 300.0),
    Microprocessor("Pentium-90", 0.6, 4, 148.0, 200, 2700.0, 0.40,
                   0.15, 296, "PGA", 240.0),
    Microprocessor("TI SuperSPARC", 0.8, 3, 256.0, 200, 2500.0, 0.10,
                   0.26, 293, "PGA", 300.0),
    Microprocessor("microSPARC", 0.8, 2, 85.0, 150, 1200.0, 0.55,
                   0.08, 288, "PQFP", 60.0),
    Microprocessor("HyperSPARC", 0.5, 3, 90.0, 200, 2800.0, 0.45,
                   0.14, 144, "PGA", 120.0),
    Microprocessor("MIPS R4400", 0.6, 3, 186.0, 200, 2600.0, 0.30,
                   0.30, 179, "PGA", 180.0),
    Microprocessor("MIPS R4200", 0.64, 2, 81.0, 200, 2200.0, 0.55,
                   0.20, 179, "PQFP", 60.0),
    Microprocessor("PowerPC601", 0.6, 4, 121.0, 200, 2600.0, 0.45,
                   0.27, 304, "PGA", 120.0),
    Microprocessor("PowerPC603", 0.5, 4, 85.0, 200, 2800.0, 0.50,
                   0.20, 240, "PQFP", 90.0),
    Microprocessor("Alpha21064", 0.75, 3, 234.0, 200, 2500.0, 0.18,
                   0.15, 431, "PGA", 300.0),
    Microprocessor("Motorola68040", 0.8, 2, 163.0, 150, 1300.0, 0.35,
                   0.12, 179, "PGA", 90.0),
)

_BY_NAME: Dict[str, Microprocessor] = {p.name: p for p in MPR_1994_DATASET}


def get_processor(name: str) -> Microprocessor:
    """Look a processor up by name, with the valid names on error."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown processor {name!r}; known: {sorted(_BY_NAME)}"
        ) from None
