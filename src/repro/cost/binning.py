"""Speed binning (paper Fig. 8).

"Minor process variations cause a statistical distribution of the
number of chips about a median clock frequency ... consider the
hypothesis that this curve is a normal distribution.  Suppose customer
demand does not match this curve and the demand for the fastest parts
is more than that given by the normal curve.  In that case, the vendor
may be forced to considerably expand his supply of all parts to meet
this demand ... compelling the vendor to charge enough of a premium to
cover the cost of the unsold (slower) parts."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from scipy import stats


def binning_distribution(
    mean_mhz: float, sigma_mhz: float, bin_edges: Sequence[float]
) -> List[float]:
    """Fraction of production landing in each frequency bin.

    ``bin_edges`` are ascending cut frequencies; bin i holds parts with
    max frequency in [edge_i, edge_{i+1}); the first bin is open below,
    the last open above.
    """
    if sigma_mhz <= 0:
        raise ValueError("sigma must be positive")
    edges = list(bin_edges)
    if edges != sorted(edges) or len(set(edges)) != len(edges):
        raise ValueError("bin edges must be strictly ascending")
    cdf = [0.0]
    cdf += [float(stats.norm.cdf(e, mean_mhz, sigma_mhz)) for e in edges]
    cdf.append(1.0)
    return [hi - lo for lo, hi in zip(cdf, cdf[1:])]


@dataclass(frozen=True)
class SpeedBinning:
    """A binned product line with per-bin demand and pricing."""

    mean_mhz: float
    sigma_mhz: float
    bin_edges: Tuple[float, ...]
    prices: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.prices) != len(self.bin_edges) + 1:
            raise ValueError("need one price per bin (edges + 1)")

    def supply_fractions(self) -> List[float]:
        return binning_distribution(
            self.mean_mhz, self.sigma_mhz, self.bin_edges
        )

    def production_scale_for_demand(
        self, demand_fractions: Sequence[float]
    ) -> float:
        """Production multiplier to satisfy a mismatched demand mix.

        If demand wants fraction d_i of bin i but production yields
        s_i, the vendor must build max_i(d_i / s_i) units per unit of
        demand — everything above 1.0 becomes unsold slower parts.
        """
        supply = self.supply_fractions()
        if len(demand_fractions) != len(supply):
            raise ValueError("demand must cover every bin")
        if abs(sum(demand_fractions) - 1.0) > 1e-9:
            raise ValueError("demand fractions must sum to 1")
        scale = 0.0
        for demand, supplied in zip(demand_fractions, supply):
            if demand == 0:
                continue
            if supplied <= 0:
                raise ValueError("demand for an empty bin is unsatisfiable")
            scale = max(scale, demand / supplied)
        return scale

    def premium_for_demand(
        self, demand_fractions: Sequence[float], unit_cost: float
    ) -> float:
        """Extra cost per sold unit caused by the demand mismatch.

        The overbuilt units (scale - 1 per sold unit) are a dead cost
        the vendor must recover as a premium on sold parts.
        """
        scale = self.production_scale_for_demand(demand_fractions)
        return (scale - 1.0) * unit_cost

    def revenue_per_wafer_unit(self) -> float:
        """Expected revenue per produced unit when all bins sell."""
        return sum(
            f * p for f, p in zip(self.supply_fractions(), self.prices)
        )
