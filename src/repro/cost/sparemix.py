"""Spare-mix economics: cost per good bit across row/column mixes.

The paper's cost chapter prices a fixed organisation (four spare
rows).  With 2-D redundancy the question becomes *which* mix of spare
rows and spare columns buys the most good bits per unit silicon: spare
columns are cheaper per spare on tall arrays (one column is ``rows``
cells against ``cols`` per row) but carry the column-steering overhead
(CAM + bypass muxes), and only a column spare can absorb a whole-column
defect.  This module sweeps mixes at a given defect environment and
reports cost per good bit, where cost is module area divided by yield
— the standard dies-per-wafer argument of Table II with constant
wafer cost.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.yieldmodel.montecarlo import simulate_yield_2d

#: Fractional module-area overhead per spare column for the steering
#: logic (CAM word + tristate drivers + per-I/O bypass muxes); the
#: floorplan's colsteer macro lands in this band for the canonical
#: organisations.
STEER_OVERHEAD_PER_COL = 0.004

#: Fractional module-area overhead per spare row for the TLB entry
#: (CAM compare + spare decoder row); matches the Table I band the
#: row-only cost model charges via its 5% four-spare overhead.
TLB_OVERHEAD_PER_ROW = 0.010


def area_growth_factor(rows: int, cols: int, spares_r: int,
                       spares_c: int) -> float:
    """Module area relative to the nonredundant array.

    Cell-array growth ``((rows + sr) * (cols + sc)) / (rows * cols)``
    times the repair-logic overheads, which scale with the spare counts
    (a rows-only module pays no steering, a cols-only module no TLB).
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be positive")
    if spares_r < 0 or spares_c < 0:
        raise ValueError("spare counts must be non-negative")
    cell_growth = ((rows + spares_r) * (cols + spares_c)) / (rows * cols)
    logic = (1.0 + TLB_OVERHEAD_PER_ROW * spares_r
             + STEER_OVERHEAD_PER_COL * spares_c)
    return cell_growth * logic


@dataclass(frozen=True)
class SpareMixPoint:
    """One (spares_r, spares_c) mix evaluated at one defect density."""

    spares_r: int
    spares_c: int
    n_defects: float
    area_factor: float
    yield_estimate: float
    cost_per_good_bit: float
    trials: int

    def to_dict(self) -> dict:
        data = asdict(self)
        data["kind"] = "spare_mix_point"
        return data

    def summary(self) -> str:
        return (f"sr={self.spares_r} sc={self.spares_c} "
                f"@ {self.n_defects:g} defects: area x{self.area_factor:.4f}, "
                f"yield {self.yield_estimate:.4f}, "
                f"cost/bit {self.cost_per_good_bit:.4f}")


def spare_mix_point_from_dict(data: dict) -> SpareMixPoint:
    if data.get("kind") != "spare_mix_point":
        raise ValueError(f"not a spare_mix_point dict: {data.get('kind')!r}")
    fields = {k: v for k, v in data.items() if k != "kind"}
    return SpareMixPoint(**fields)


def evaluate_mix(
    rows: int,
    bpw: int,
    bpc: int,
    spares_r: int,
    spares_c: int,
    n_defects: float,
    trials: int = 4_000,
    rng: Optional[np.random.Generator] = None,
    row_defect_frac: float = 0.0,
    col_defect_frac: float = 0.0,
    node_budget: int = 4_000,
) -> SpareMixPoint:
    """Cost per good bit for one mix at one defect density.

    Cost per good bit is ``area_factor / yield`` in units of the
    nonredundant array's per-bit cost at yield 1: the area factor
    shrinks dies per wafer, the yield divides good dies, and the bit
    count cancels across mixes of the same logical geometry.  A yield
    estimate of zero prices the mix at ``inf`` — every die is scrap.
    """
    cols = bpw * bpc
    growth = area_growth_factor(rows, cols, spares_r, spares_c)
    result = simulate_yield_2d(
        rows, bpw, bpc, spares_r, spares_c, n_defects,
        growth_factor=growth, trials=trials, rng=rng,
        row_defect_frac=row_defect_frac, col_defect_frac=col_defect_frac,
        node_budget=node_budget,
    )
    y = result.yield_estimate
    cost = growth / y if y > 0.0 else float("inf")
    return SpareMixPoint(
        spares_r=spares_r,
        spares_c=spares_c,
        n_defects=n_defects,
        area_factor=growth,
        yield_estimate=y,
        cost_per_good_bit=cost,
        trials=result.trials,
    )


def spare_mix_sweep(
    rows: int,
    bpw: int,
    bpc: int,
    mixes: Sequence[Tuple[int, int]],
    defect_counts: Sequence[float],
    trials: int = 4_000,
    seed: int = 0,
    row_defect_frac: float = 0.0,
    col_defect_frac: float = 0.0,
    node_budget: int = 4_000,
) -> List[SpareMixPoint]:
    """Evaluate every mix at every defect density.

    One child generator per (mix, density) pair, spawned from ``seed``,
    so the sweep is deterministic and each point is independent of the
    evaluation order.
    """
    if not mixes:
        raise ValueError("at least one (spares_r, spares_c) mix required")
    root = np.random.SeedSequence(seed)
    children = root.spawn(len(mixes) * len(defect_counts))
    points = []
    index = 0
    for spares_r, spares_c in mixes:
        for n in defect_counts:
            rng = np.random.default_rng(children[index])
            index += 1
            points.append(evaluate_mix(
                rows, bpw, bpc, spares_r, spares_c, n,
                trials=trials, rng=rng,
                row_defect_frac=row_defect_frac,
                col_defect_frac=col_defect_frac,
                node_budget=node_budget,
            ))
    return points


def best_mix(points: Sequence[SpareMixPoint],
             n_defects: Optional[float] = None) -> SpareMixPoint:
    """Cheapest mix, optionally restricted to one defect density.

    Ties break deterministically toward fewer total spares, then fewer
    spare columns (the simpler repair structure).
    """
    candidates = [p for p in points
                  if n_defects is None or p.n_defects == n_defects]
    if not candidates:
        raise ValueError("no points to choose from")
    return min(candidates,
               key=lambda p: (p.cost_per_good_bit,
                              p.spares_r + p.spares_c,
                              p.spares_c))
