"""Column steering: the spare-column twin of the TLB.

Where the TLB diverts a faulty *row* address to a spare row, the column
steer diverts a faulty *bit line* to a spare bit-line pair: a small
register file holds (faulty physical column -> spare column) entries,
and a mux tree in the data path substitutes the spare column's
sense/write circuits for the faulty one's.  The same strictly
increasing spare-assignment rule applies, for the same reason: if a
spare column itself turns out faulty, re-recording the logical column
advances it to the next spare, so the iterated 2k-pass flow converges
on faulty spares without any erase capability in hardware.

Unlike the TLB (whose CAM sits in the address path), the steer sits in
the *data* path after the column mux; its delay is a mux stage per
datum, modelled in :class:`ColumnSteerDelayModel` and accounted in the
datasheet when ``spare_cols > 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.circuit.mosfet import effective_resistance
from repro.tech.process import Process


@dataclass
class ColumnSteerEntry:
    """One steering register: a faulty physical column -> spare index."""

    col: int
    spare: int


class ColumnSteer:
    """A ``spares``-entry column steer over ``regular_cols`` bit lines.

    ``spares = 0`` is legal (a row-only device): every ``record`` then
    overflows immediately, which is exactly the hardware a config
    without spare columns has.
    """

    def __init__(self, regular_cols: int, spares: int) -> None:
        if regular_cols < 1:
            raise ValueError("need at least one regular column")
        if spares < 0:
            raise ValueError("spare columns must be non-negative")
        self.regular_cols = regular_cols
        self.spares = spares
        self._entries: List[ColumnSteerEntry] = []
        self._next_spare = 0
        self.overflowed = False

    # -- test-mode operations ------------------------------------------------

    def reset(self) -> None:
        """Clear all entries (start of a fresh self-test)."""
        self._entries.clear()
        self._next_spare = 0
        self.overflowed = False

    def record(self, col: int, remap: bool = False) -> bool:
        """Record a faulty column; returns False when out of spares.

        A column already steered is a no-op unless ``remap`` is set —
        with ``remap`` (the failure was seen *despite* active steering,
        i.e. the assigned spare column is itself faulty) the column
        advances to the next spare in the strictly increasing sequence.
        Only regular columns are recordable: spare columns have no
        logical lane of their own, so a bad spare is always reached —
        and replaced — through the logical column steered onto it.
        """
        if not 0 <= col < self.regular_cols:
            raise ValueError(f"column {col} outside the regular array")
        existing = self._find(col)
        if existing is not None and not remap:
            return True
        if self._next_spare >= self.spares:
            self.overflowed = True
            return False
        if existing is not None:
            existing.spare = self._next_spare
        else:
            self._entries.append(
                ColumnSteerEntry(col=col, spare=self._next_spare))
        self._next_spare += 1
        return True

    # -- normal-mode operation --------------------------------------------------

    def steer(self, col: int) -> Tuple[Optional[int], bool]:
        """Returns (spare column index, steered) for a physical column."""
        entry = self._find(col)
        if entry is None:
            return None, False
        return entry.spare, True

    def active_map(self) -> Dict[int, int]:
        """Current steering map: faulty physical column -> spare index."""
        return {e.col: e.spare for e in self._entries}

    # -- introspection -------------------------------------------------------------

    def _find(self, col: int) -> Optional[ColumnSteerEntry]:
        for entry in self._entries:
            if entry.col == col:
                return entry
        return None

    @property
    def entries(self) -> Tuple[ColumnSteerEntry, ...]:
        return tuple(self._entries)

    @property
    def spares_used(self) -> int:
        return self._next_spare

    @property
    def spares_left(self) -> int:
        return self.spares - self._next_spare

    def steered_cols(self) -> List[int]:
        """Logical columns currently steered, ascending."""
        return sorted(e.col for e in self._entries)

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(frozen=True)
class ColumnSteerDelayModel:
    """Analytic data-path penalty of the steering mux.

    The steer adds one 2:1 mux stage per data bit (select between the
    regular column's sense line and the spare bus), plus the spare bus
    wire spanning ``spare_cols`` column pitches.  Entry count only
    loads the spare bus, so like the TLB the delay grows gently with
    the number of spares.
    """

    process: Process
    spare_cols: int

    def __post_init__(self) -> None:
        if self.spare_cols < 0:
            raise ValueError("spare_cols must be non-negative")

    def breakdown(self) -> Dict[str, float]:
        """Per-stage delays in seconds (empty penalty at 0 spares)."""
        if self.spare_cols == 0:
            return {"steer_mux": 0.0, "spare_bus": 0.0}
        p = self.process
        f = p.feature_um
        # Stage 1: the 2:1 pass mux in the data path — one transmission
        # gate driving the sense-amp input.
        r_pass = effective_resistance(p.nmos, p.vdd, 6 * f, f)
        gate_cap = p.nmos.cox * (8 * f * 1e-6) * (f * 1e-6)
        t_mux = 0.69 * r_pass * (gate_cap + 60e-15)
        # Stage 2: the spare bus spanning the spare columns (48 lambda
        # of column pitch each) with one tristate drain junction per
        # spare column hanging off it.
        junction = 3.0 * p.nmos.cj * (4 * f * 1e-6) * (1.5 * f * 1e-6)
        bus_wire = self.spare_cols * 48 * f * p.wire_c_af_um * 1e-18
        r_drv = effective_resistance(p.pmos, p.vdd, 6 * f, f)
        t_bus = 0.69 * r_drv * (
            self.spare_cols * junction + bus_wire + 40e-15)
        return {"steer_mux": t_mux, "spare_bus": t_bus}

    def total(self) -> float:
        """Total steering penalty in seconds."""
        return sum(self.breakdown().values())


def colsteer_delay_s(process: Process, spare_cols: int) -> float:
    """Convenience wrapper: total column-steer delay in seconds."""
    return ColumnSteerDelayModel(process, spare_cols).total()
