"""The Chen-Sunada hierarchical self-repair scheme (the paper's §III
comparison baseline).

T. Chen and G. Sunada, "Design of a self-testing and self-repairing
structure for highly hierarchical ultra-large capacity memory chips",
IEEE Trans. VLSI Systems 1(2), 1993.  Their architecture, as the paper
describes it:

* the memory is recursively decomposed into subblocks; the self-test
  and self-repair logic live at the lowest level,
* each lowest-level subblock has a *fault signature block* with **two**
  fault-capture registers — it "is capable of storing and repairing at
  most two faults at different address locations",
* during normal operation "the incoming address is compared
  sequentially, instead of in parallel, with the two addresses stored
  in the two fault capture blocks" — a per-access delay penalty,
* a subblock with more than two faulty addresses is excluded entirely
  by the top-level *fault assembler*, which "diverts accesses from dead
  blocks to functional blocks" — so the chip survives only while spare
  subblocks remain.

Implementing the baseline lets the benchmarks measure the paper's three
quantitative criticisms head-to-head:

1. repair capability: 2 faulty addresses per subblock vs BISRAMGEN's
   ~bpc x spares faulty words per block,
2. delay: sequential compare (grows with capture-register count) vs the
   TLB's parallel compare,
3. granularity: losing a whole subblock to a third fault vs losing one
   row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.circuit.mosfet import effective_resistance
from repro.tech.process import Process


@dataclass
class FaultCaptureBlock:
    """One subblock's fault-signature logic: two capture registers plus
    the two spare word locations they divert to."""

    captures: List[int] = field(default_factory=list)
    dead: bool = False

    CAPACITY = 2

    def record(self, local_address: int) -> bool:
        """Capture a failing local address; False when the subblock is
        beyond its two-fault capacity (it must then be excluded)."""
        if local_address in self.captures:
            return not self.dead
        if len(self.captures) >= self.CAPACITY:
            self.dead = True
            return False
        self.captures.append(local_address)
        return True

    def translate(self, local_address: int) -> Tuple[int, bool]:
        """Sequential compare: returns (spare index or address, hit)."""
        for i, captured in enumerate(self.captures):
            if captured == local_address:
                return i, True
        return local_address, False


class ChenSunadaRam:
    """A behavioural model of the hierarchical scheme.

    Args:
        subblocks: number of lowest-level subblocks.
        words_per_subblock: addressable words per subblock.
        spare_subblocks: spare subblocks the fault assembler can swap
            in for excluded (dead) ones.
    """

    def __init__(self, subblocks: int, words_per_subblock: int,
                 spare_subblocks: int = 1) -> None:
        if subblocks < 1 or words_per_subblock < 1:
            raise ValueError("need at least one subblock and one word")
        if spare_subblocks < 0:
            raise ValueError("spare subblocks must be non-negative")
        self.subblocks = subblocks
        self.words_per_subblock = words_per_subblock
        self.spare_subblocks = spare_subblocks
        self.capture: Dict[int, FaultCaptureBlock] = {
            b: FaultCaptureBlock() for b in range(subblocks)
        }
        # Fault-assembler state: dead subblock -> spare subblock index.
        self.block_map: Dict[int, int] = {}
        self._spares_used = 0

    # -- test-mode -----------------------------------------------------------

    def record_fail(self, address: int) -> bool:
        """Record one failing address; returns False when the device is
        beyond repair (a subblock died with no spare subblock left)."""
        block, local = self._split(address)
        if block in self.block_map:
            return True  # already remapped to a (assumed good) spare
        ok = self.capture[block].record(local)
        if ok:
            return True
        # Subblock exceeded two faults: exclude it.
        if self._spares_used >= self.spare_subblocks:
            return False
        self.block_map[block] = self._spares_used
        self._spares_used += 1
        return True

    # -- normal-mode ------------------------------------------------------------

    def translate(self, address: int) -> Tuple[str, int, int]:
        """Resolve an address: ('block'|'spare_word'|'spare_block',
        physical block, local index)."""
        block, local = self._split(address)
        if block in self.block_map:
            return ("spare_block", self.block_map[block], local)
        spare, hit = self.capture[block].translate(local)
        if hit:
            return ("spare_word", block, spare)
        return ("block", block, local)

    def repairable(self, faulty_addresses: Sequence[int]) -> bool:
        """Static check: does the scheme survive this fault pattern?

        (Assumes fault-free spares, matching the strict goodness used
        for BISRAMGEN's analysis.)
        """
        per_block: Dict[int, Set[int]] = {}
        for address in faulty_addresses:
            block, local = self._split(address)
            per_block.setdefault(block, set()).add(local)
        dead = sum(
            1 for locals_ in per_block.values()
            if len(locals_) > FaultCaptureBlock.CAPACITY
        )
        return dead <= self.spare_subblocks

    def repair_capacity_words(self) -> int:
        """Faulty words survivable in the best case."""
        return (
            self.subblocks * FaultCaptureBlock.CAPACITY
            + self.spare_subblocks * self.words_per_subblock
        )

    def worst_case_unrepairable(self) -> int:
        """Smallest fault count that can kill the device: three faults
        in each of (spare_subblocks + 1) subblocks."""
        return 3 * (self.spare_subblocks + 1)

    def _split(self, address: int) -> Tuple[int, int]:
        total = self.subblocks * self.words_per_subblock
        if not 0 <= address < total:
            raise ValueError(f"address {address} outside 0..{total - 1}")
        return divmod(address, self.words_per_subblock)[0], \
            address % self.words_per_subblock


def sequential_compare_delay_s(process: Process, address_bits: int,
                               captures: int = 2) -> float:
    """Normal-mode delay of the sequential address comparison.

    Each capture register is compared one after another: one
    equality-compare stage (XOR tree of depth log2(bits) + the wired
    AND) per register, serialised.  This is the paper's criticism #1:
    "the incoming address is compared sequentially, instead of in
    parallel, with the two addresses stored in the two fault capture
    blocks" — so the penalty scales with the register count, while the
    TLB's parallel compare does not.
    """
    if captures < 1:
        raise ValueError("at least one capture register")
    f = process.feature_um
    r_gate = effective_resistance(process.nmos, process.vdd, 4 * f, f)
    # XOR tree depth + match gate, ~ (log2(bits) + 2) gate delays of
    # ~3.5 fanout each.
    import math

    stages = math.ceil(math.log2(max(address_bits, 2))) + 2
    per_compare = stages * 0.69 * r_gate * 45e-15
    mux_step = 0.69 * r_gate * 60e-15  # select/steer after each miss
    return captures * per_compare + (captures - 1) * mux_step
