"""Built-in self-repair.

* :mod:`~repro.bisr.tlb` — the translation lookaside buffer: parallel
  CAM compare of the incoming row address against all stored faulty
  addresses, with the strictly increasing spare-assignment rule,
* :mod:`~repro.bisr.repair` — repair bookkeeping and the
  "Repair Unsuccessful" analysis,
* :mod:`~repro.bisr.delay` — the TLB delay-penalty model (the paper
  quotes about 1.2 ns at 0.7 um with four spare rows),
* :mod:`~repro.bisr.masking` — the three circuit techniques for hiding
  that penalty inside the RAM cycle.
"""

from repro.bisr.tlb import Tlb, TlbEntry
from repro.bisr.repair import RepairAnalysis, analyze_repair
from repro.bisr.colsteer import (
    ColumnSteer,
    ColumnSteerEntry,
    ColumnSteerDelayModel,
    colsteer_delay_s,
)
from repro.bisr.allocate import (
    RepairPlan,
    allocate,
    repair_plan_from_dict,
    sequence_spares_consumed,
)
from repro.bisr.escalation import (
    AttemptRecord,
    DegradedResult,
    EscalationPolicy,
    RepairSupervisor,
    SupervisorResult,
    supervisor_result_from_dict,
)
from repro.bisr.delay import tlb_delay_s, tlb_delay_breakdown, TlbDelayModel
from repro.bisr.masking import (
    MaskingStrategy,
    AsyncPrechargeOverlap,
    SyncAddressRegisterOverlap,
    DecoderUpsizing,
    best_masking_strategy,
)

__all__ = [
    "Tlb",
    "TlbEntry",
    "RepairAnalysis",
    "analyze_repair",
    "ColumnSteer",
    "ColumnSteerEntry",
    "ColumnSteerDelayModel",
    "colsteer_delay_s",
    "RepairPlan",
    "allocate",
    "repair_plan_from_dict",
    "sequence_spares_consumed",
    "AttemptRecord",
    "DegradedResult",
    "EscalationPolicy",
    "RepairSupervisor",
    "SupervisorResult",
    "supervisor_result_from_dict",
    "tlb_delay_s",
    "tlb_delay_breakdown",
    "TlbDelayModel",
    "MaskingStrategy",
    "AsyncPrechargeOverlap",
    "SyncAddressRegisterOverlap",
    "DecoderUpsizing",
    "best_masking_strategy",
]
