"""Repair feasibility analysis.

Static analysis of the strictly-increasing spare assignment: given the
set of faulty regular rows and the set of faulty *spare* rows, predict
whether iterated 2k-pass self-repair converges, how many spares it
consumes, and how many passes it takes.  The dynamic equivalent (really
running BIST+BISR on a fault-injected array) lives in
:mod:`repro.memsim`; the test suite checks the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple


@dataclass(frozen=True)
class RepairAnalysis:
    """Outcome of the static repair analysis.

    Attributes:
        repairable: True when every faulty row ends on a good spare.
        spares_consumed: spare indices used (including faulty spares
            that were assigned and then skipped past).
        passes_needed: total BIST passes (test+verify pairs) until the
            verify pass is clean, assuming one re-record per faulty
            spare hit; 2 when no spare is faulty.
        assignment: final (faulty row -> spare index) pairs.
        wasted_spares: assigned spare indices that turned out faulty.
    """

    repairable: bool
    spares_consumed: int
    passes_needed: int
    assignment: Tuple[Tuple[int, int], ...]
    wasted_spares: Tuple[int, ...]


def analyze_repair(
    faulty_rows: Sequence[int],
    spares: int,
    faulty_spares: Sequence[int] = (),
) -> RepairAnalysis:
    """Predict the outcome of iterated self-repair.

    Args:
        faulty_rows: faulty regular-row addresses in detection order
            (the up-march of pass 1 detects them in ascending address
            order, so pass sorted addresses for fidelity).
        spares: number of spare rows.
        faulty_spares: indices (0-based) of spares that are themselves
            faulty.

    The model walks the predetermined strictly increasing spare
    sequence: each faulty row takes the next spare; a faulty spare is
    discovered one verify pass later and the row re-records, taking the
    next spare index.  Repair fails when the sequence runs out.
    """
    if spares < 0:
        raise ValueError("spares must be non-negative")
    bad_spares: Set[int] = set(faulty_spares)
    if any(s < 0 or s >= spares for s in bad_spares):
        raise ValueError("faulty spare index out of range")

    # Round 1: assign spares in detection order.
    pointer = 0
    pending: List[int] = list(dict.fromkeys(faulty_rows))  # dedupe, keep order
    assignment = {}
    wasted: List[int] = []
    rounds = 0
    while pending:
        rounds += 1
        next_pending: List[int] = []
        for row in pending:
            if pointer >= spares:
                return RepairAnalysis(
                    repairable=False,
                    spares_consumed=spares,
                    passes_needed=2 * rounds,
                    assignment=tuple(sorted(assignment.items())),
                    wasted_spares=tuple(wasted),
                )
            assignment[row] = pointer
            if pointer in bad_spares:
                wasted.append(pointer)
                next_pending.append(row)
            pointer += 1
        pending = next_pending
    rounds = max(rounds, 1)
    return RepairAnalysis(
        repairable=True,
        spares_consumed=pointer,
        passes_needed=2 * rounds,
        assignment=tuple(sorted(assignment.items())),
        wasted_spares=tuple(wasted),
    )
