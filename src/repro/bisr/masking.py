"""Circuit techniques masking the TLB delay (paper section VI).

Three strategies, each a class reporting whether it hides the penalty
and at what cost:

1. :class:`AsyncPrechargeOverlap` — asynchronous RAM: overlap the TLB
   with the precharge phase that follows address-transition detection.
2. :class:`SyncAddressRegisterOverlap` — synchronous RAM with a
   level-sensitive address register: the TLB compares while the clock
   is low, tristate buffers select TLB or register output when it goes
   high.
3. :class:`DecoderUpsizing` — compensate by making the row/column
   decoders faster with larger devices, "at the expense of a greater
   power consumption ... and a slightly greater silicon area".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class MaskingReport:
    """What one strategy achieves for a given timing budget."""

    strategy: str
    masked: bool
    residual_penalty_s: float
    power_factor: float = 1.0
    area_factor: float = 1.0
    note: str = ""


class MaskingStrategy:
    """Base interface: evaluate a strategy against RAM timing."""

    name = "abstract"

    def evaluate(self, tlb_delay_s: float) -> MaskingReport:
        raise NotImplementedError


@dataclass(frozen=True)
class AsyncPrechargeOverlap(MaskingStrategy):
    """Overlap with the ATD-triggered precharge phase.

    Attributes:
        precharge_time_s: duration of the precharge phase following an
            address transition.
    """

    precharge_time_s: float
    name: str = "async-precharge-overlap"

    def evaluate(self, tlb_delay_s: float) -> MaskingReport:
        residual = max(0.0, tlb_delay_s - self.precharge_time_s)
        return MaskingReport(
            strategy=self.name,
            masked=residual == 0.0,
            residual_penalty_s=residual,
            note="TLB resolves during bit-line precharge after ATD",
        )


@dataclass(frozen=True)
class SyncAddressRegisterOverlap(MaskingStrategy):
    """Overlap with the clock-low phase of a level-sensitive register.

    Attributes:
        clock_low_time_s: duration of the low phase during which the
            address register is transparent and the TLB compares.
    """

    clock_low_time_s: float
    name: str = "sync-register-overlap"

    def evaluate(self, tlb_delay_s: float) -> MaskingReport:
        residual = max(0.0, tlb_delay_s - self.clock_low_time_s)
        return MaskingReport(
            strategy=self.name,
            masked=residual == 0.0,
            residual_penalty_s=residual,
            note=(
                "TLB compares while the clock is low; tristate buffers "
                "select the TLB or the address register when it rises"
            ),
        )


@dataclass(frozen=True)
class DecoderUpsizing(MaskingStrategy):
    """Buy the delay back by speeding up the decoders.

    First-order device scaling: decoder delay scales ~1/k with device
    width factor k (until wire dominance), power scales ~k, decoder
    area scales ~k.

    Attributes:
        decoder_delay_s: nominal decoder delay to shave.
        max_upsizing: largest acceptable width factor.
        wire_floor_s: delay floor the decoder cannot go below.
    """

    decoder_delay_s: float
    max_upsizing: float = 4.0
    wire_floor_s: float = 50e-12
    name: str = "decoder-upsizing"

    def evaluate(self, tlb_delay_s: float) -> MaskingReport:
        target = self.decoder_delay_s - tlb_delay_s
        if target <= self.wire_floor_s:
            return MaskingReport(
                strategy=self.name,
                masked=False,
                residual_penalty_s=tlb_delay_s
                - (self.decoder_delay_s - self.wire_floor_s),
                note="TLB penalty exceeds what decoder scaling can recover",
            )
        k = self.decoder_delay_s / target
        if k > self.max_upsizing:
            achievable = self.decoder_delay_s * (1 - 1 / self.max_upsizing)
            return MaskingReport(
                strategy=self.name,
                masked=False,
                residual_penalty_s=max(0.0, tlb_delay_s - achievable),
                power_factor=self.max_upsizing,
                area_factor=self.max_upsizing,
                note=f"would need {k:.1f}x devices, above the "
                f"{self.max_upsizing}x limit",
            )
        return MaskingReport(
            strategy=self.name,
            masked=True,
            residual_penalty_s=0.0,
            power_factor=k,
            area_factor=k,
            note=f"decoders upsized {k:.2f}x absorb the TLB delay",
        )


def best_masking_strategy(
    strategies: Sequence[MaskingStrategy], tlb_delay_s: float
) -> Optional[MaskingReport]:
    """Pick the cheapest strategy that fully masks the penalty.

    Preference order: zero-cost overlaps first (smaller power factor
    wins), None when nothing masks.
    """
    reports = [s.evaluate(tlb_delay_s) for s in strategies]
    masked = [r for r in reports if r.masked]
    if not masked:
        return None
    return min(masked, key=lambda r: (r.power_factor, r.area_factor))
